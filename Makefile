PYTHON ?= python
export PYTHONPATH := src

# Worker processes for the parallel sweep (make bench-check JOBS=8).
# Output is byte-identical for any JOBS value; see repro/perf/sweep.py.
JOBS ?= 1

.PHONY: test test-obs bench bench-check bench-sweep bench-matrix \
        bench-matrix-rerun trace-demo

test:
	$(PYTHON) -m pytest -x -q

test-obs:
	$(PYTHON) -m pytest -m obs -q

bench:
	cd benchmarks && PYTHONPATH=../src $(PYTHON) -m pytest -q -s --benchmark-only --json BENCH_all.json

# Perf-regression gate: run the micro hot-path suite and fail if any
# benchmark slowed >20% against the committed baseline
# (benchmarks/baselines/BENCH_micro.json; regenerate it with the same
# pytest command when a slowdown is intended).
bench-check: bench-sweep
	cd benchmarks && PYTHONPATH=../src $(PYTHON) -m pytest bench_micro_hotpaths.py -q -s --benchmark-only --benchmark-disable-gc --benchmark-min-rounds=7 --json BENCH_micro.json
	$(PYTHON) benchmarks/compare.py benchmarks/baselines/BENCH_micro.json benchmarks/BENCH_micro.json $(BENCH_COMPARE_FLAGS)

# Scenario/model sweep, sharded over $(JOBS) worker processes.  The
# merged JSON is independent of JOBS (deterministic merge order).
bench-sweep:
	$(PYTHON) benchmarks/runner.py --jobs $(JOBS) --json benchmarks/BENCH_sweep.json

# Full experiment matrix (200+ scenario x topology x cipher x
# scheduler x seed points) with the content-addressed result cache:
# unchanged points are served from .bench_cache (override with
# --cache-dir or REPRO_BENCH_CACHE), so an immediately repeated run is
# ~100% cache hits and finishes in seconds.  The trend gate diffs the
# whole matrix against the committed envelope, grouping regressions by
# axis value; refresh benchmarks/baselines/BENCH_matrix.json when a
# drift is intended.
bench-matrix:
	$(PYTHON) benchmarks/runner.py --matrix --jobs $(JOBS) \
	    --json benchmarks/BENCH_matrix.json \
	    --stats-json benchmarks/BENCH_matrix.stats.json
	$(PYTHON) benchmarks/trend.py \
	    benchmarks/baselines/BENCH_matrix.json \
	    benchmarks/BENCH_matrix.json

# Re-execute exactly the matrix points whose journalled result carried
# an "error" tag (everything else is reused), then re-gate.
bench-matrix-rerun:
	$(PYTHON) benchmarks/runner.py --matrix --jobs $(JOBS) \
	    --rerun-failed --json benchmarks/BENCH_matrix.json \
	    --stats-json benchmarks/BENCH_matrix.stats.json
	$(PYTHON) benchmarks/trend.py \
	    benchmarks/baselines/BENCH_matrix.json \
	    benchmarks/BENCH_matrix.json

# Run the Fig. 8 failover scenario with the full observability stack
# armed and write trace_failover.qlog (inspect with QVIS).
trace-demo:
	$(PYTHON) examples/trace_failover.py trace_failover.qlog
