PYTHON ?= python
export PYTHONPATH := src

# Worker processes for the parallel sweep (make bench-check JOBS=8).
# Output is byte-identical for any JOBS value; see repro/perf/sweep.py.
JOBS ?= 1

.PHONY: test test-obs bench bench-check bench-sweep trace-demo

test:
	$(PYTHON) -m pytest -x -q

test-obs:
	$(PYTHON) -m pytest -m obs -q

bench:
	cd benchmarks && PYTHONPATH=../src $(PYTHON) -m pytest -q -s --benchmark-only --json BENCH_all.json

# Perf-regression gate: run the micro hot-path suite and fail if any
# benchmark slowed >20% against the committed baseline
# (benchmarks/baselines/BENCH_micro.json; regenerate it with the same
# pytest command when a slowdown is intended).
bench-check: bench-sweep
	cd benchmarks && PYTHONPATH=../src $(PYTHON) -m pytest bench_micro_hotpaths.py -q -s --benchmark-only --benchmark-disable-gc --benchmark-min-rounds=7 --json BENCH_micro.json
	$(PYTHON) benchmarks/compare.py benchmarks/baselines/BENCH_micro.json benchmarks/BENCH_micro.json $(BENCH_COMPARE_FLAGS)

# Scenario/model sweep, sharded over $(JOBS) worker processes.  The
# merged JSON is independent of JOBS (deterministic merge order).
bench-sweep:
	$(PYTHON) benchmarks/runner.py --jobs $(JOBS) --json benchmarks/BENCH_sweep.json

# Run the Fig. 8 failover scenario with the full observability stack
# armed and write trace_failover.qlog (inspect with QVIS).
trace-demo:
	$(PYTHON) examples/trace_failover.py trace_failover.qlog
