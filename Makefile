PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-obs bench trace-demo

test:
	$(PYTHON) -m pytest -x -q

test-obs:
	$(PYTHON) -m pytest -m obs -q

bench:
	cd benchmarks && PYTHONPATH=../src $(PYTHON) -m pytest -q -s --benchmark-only

# Run the Fig. 8 failover scenario with the full observability stack
# armed and write trace_failover.qlog (inspect with QVIS).
trace-demo:
	$(PYTHON) examples/trace_failover.py trace_failover.qlog
