#!/usr/bin/env python
"""Trace a failover end to end and write a real qlog file.

The Fig. 8 scenario — a two-path TCPLS download whose primary path
blackholes mid-transfer — runs with the full observability stack armed:

- a :class:`QlogTracer` subscribed to the event bus captures the
  session/recovery/tcp/link event stream and writes
  ``trace_failover.qlog`` (load it in QVIS, https://qvis.quictools.info);
- every protocol invariant checker (monotone record sequences, nonce
  uniqueness, cwnd sanity, failover legality, link conservation) is
  armed via ``arm_invariants`` and must finish clean.

Run:  python examples/trace_failover.py [output.qlog]
"""

import sys

from repro.core import TcplsClient, TcplsServer
from repro.net import Simulator, build_faulty_multipath
from repro.net.address import Endpoint
from repro.obs import arm_invariants
from repro.qlog import QlogTracer
from repro.tcp import TcpStack

PSK = b"trace-psk"
SIZE = 8 << 20   # 8 MiB download
OUT = sys.argv[1] if len(sys.argv) > 1 else "trace_failover.qlog"


def main():
    sim = Simulator(seed=8)
    topo = build_faulty_multipath(sim, n_paths=2)
    p0, p1 = topo.path(0), topo.path(1)

    # --- observability: qlog sink + armed invariants -----------------
    tracer = QlogTracer(sim, title="fig8 failover")
    sim.bus.subscribe(tracer,
                      categories=("session", "recovery", "tcp", "link"))
    harness = arm_invariants(sim)

    # --- the Fig. 8 download -----------------------------------------
    cstack = TcpStack(sim, topo.client)
    sstack = TcpStack(sim, topo.server)
    server = TcplsServer(sim, sstack, 443, psk=PSK)
    client = TcplsClient(sim, cstack, psk=PSK)
    received = bytearray()
    finished = []

    def on_session(sess):
        sess.enable_failover()

        def on_stream_data(stream):
            if stream.recv().startswith(b"GET"):
                out = sess.create_stream(sess.conns[0])
                out.send(b"F" * SIZE)
                out.close()
        sess.on_stream_data = on_stream_data

    server.on_session = on_session

    def on_client_stream(stream):
        received.extend(stream.recv())
        if len(received) >= SIZE and not finished:
            finished.append(sim.now)

    client.on_stream_data = on_client_stream
    client.on_ready = lambda s: (
        client.set_user_timeout(client.conns[0], 0.25),
        client.join(p1.client_addr),
        client.create_stream(client.conns[0]).send(b"GET /file"),
    )
    client.connect(p0.client_addr, Endpoint(p0.server_addr, 443))

    topo.flap_path(0, at=1.5, duration=2.0)      # the outage
    sim.run(until=30)

    assert finished, "download did not complete"
    assert len(received) == SIZE
    harness.assert_clean()                       # zero violations

    tracer.dump(OUT)
    key = [e for e in tracer.events
           if e["event"] in ("ready", "join", "conn_failed", "failover",
                             "sync_received", "replay")]
    print("[done]   t=%.2fs  %d MiB delivered, invariants clean"
          % (finished[0], SIZE >> 20))
    for event in key:
        print("[trace]  t=%7.1fms  %-14s %s"
              % (event["time"], event["event"], event["data"]))
    print("[qlog]   %d events -> %s (open in QVIS)"
          % (len(tracer.events), OUT))


if __name__ == "__main__":
    main()
