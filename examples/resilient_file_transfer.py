#!/usr/bin/env python
"""Resilient multihomed bulk transfer: aggregation + failover together.

A backup client pushes a large archive to a server over two network
paths at once (coupled streams, round-robin scheduling).  Failover is
enabled, a 250 ms User Timeout is shipped inside an encrypted record,
and when one path blackholes mid-transfer the session replays the lost
records on the surviving path and keeps going -- no application-level
retry logic needed.

Run:  python examples/resilient_file_transfer.py
"""

from repro.core import TcplsClient, TcplsServer
from repro.net import Simulator, build_faulty_multipath
from repro.net.address import Endpoint
from repro.tcp import TcpStack

PSK = b"backup-psk"
ARCHIVE = bytes(range(256)) * (64 << 10)   # 16 MiB patterned archive
OUTAGE_AT = 2.5


def main():
    sim = Simulator(seed=5)
    # 2 x 25 Mbps disjoint paths, with a fault-scenario layer attached.
    topo = build_faulty_multipath(sim, n_paths=2)
    client_stack = TcpStack(sim, topo.client)
    server_stack = TcpStack(sim, topo.server)

    server = TcplsServer(sim, server_stack, 443, psk=PSK)
    received = bytearray()
    finished = []

    def on_session(session):
        session.enable_failover()

        def on_group_data(group):
            received.extend(group.recv())
            if group.complete:
                finished.append(sim.now)
                print("[server] t=%.2fs archive complete and verified: %s"
                      % (sim.now, bytes(received) == ARCHIVE))
        session.on_group_data = on_group_data

    server.on_session = on_session

    client = TcplsClient(sim, client_stack, psk=PSK)
    client.auto_user_timeout = 0.25          # blackhole detector

    started = []

    def on_ready(_session):
        client.enable_failover()
        client.join(topo.path(1).client_addr)

    def on_join(_conn):
        # on_join also fires for joins the failover engine makes later;
        # only the first one starts the upload.
        if started:
            return
        started.append(sim.now)
        print("[client] t=%.2fs both paths up; uploading %d MiB over a "
              "coupled group" % (sim.now, len(ARCHIVE) >> 20))
        group = client.create_coupled_group(client.alive_connections())
        group.send(ARCHIVE)
        group.close()

    client.on_ready = on_ready
    client.on_join = on_join
    client.on_conn_failed = lambda conn, reason: print(
        "[client] t=%.2fs path %d failed (%s)" % (sim.now, conn.index,
                                                  reason))
    client.on_failover = lambda old, new: print(
        "[client] t=%.2fs failover: records replayed onto path %d"
        % (sim.now, new.index))

    path0 = topo.path(0)
    client.connect(path0.client_addr, Endpoint(path0.server_addr, 443))

    # One path dies mid-transfer — scripted through the deterministic
    # fault layer, so every run replays the exact same outage.
    print("[net]    path 0 will blackhole at t=%.1fs" % OUTAGE_AT)
    topo.flap_path(0, at=OUTAGE_AT)
    sim.run(until=30)

    assert finished, "transfer did not complete"
    assert bytes(received) == ARCHIVE
    stats = client.stats
    print("[client] records sent=%d replayed=%d failovers=%d"
          % (stats["records_sent"], stats["records_replayed"],
             stats["failovers"]))
    print("done: every byte arrived exactly once, in order")


if __name__ == "__main__":
    main()
