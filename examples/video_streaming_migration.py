#!/usr/bin/env python
"""Connection migration for a video stream (the paper's Sec. 3.3.2
motivating scenario).

A "smartphone" client watches a video over Wi-Fi (IPv4).  Mid-stream,
the Wi-Fi path becomes bufferbloated and the application notices its
delay metric degrading (via ``tcp_info`` and a TCPLS ping probe).  It
joins the LTE path (IPv6) with a single-use cookie and asks the server
to migrate the video through a coupled-streams window, sustaining the
bitrate throughout -- the Fig. 10 behaviour driven by application
metrics rather than a script.

Run:  python examples/video_streaming_migration.py
"""

from repro.core import TcplsClient, TcplsServer
from repro.net import Simulator, build_multipath
from repro.net.address import Endpoint
from repro.tcp import TcpStack

PSK = b"video-psk"
VIDEO_SIZE = 18 << 20            # an 18 MiB segment sequence
WIFI_RATE, LTE_RATE = 30_000_000, 25_000_000
RTT_PROBE_PERIOD = 0.5
MIGRATE_WHEN_SRTT_ABOVE = 0.200  # application's delay budget
# (probes ride in-band, so the budget sits above the ~150 ms of
# self-induced queueing a saturated Wi-Fi path already shows)


def main():
    sim = Simulator(seed=3)
    # Path 0 = Wi-Fi (v4), path 1 = LTE (v6).
    topo = build_multipath(sim, n_paths=2,
                           rates=[WIFI_RATE, LTE_RATE],
                           delays=[0.015, 0.035])
    client_stack = TcpStack(sim, topo.client)
    server_stack = TcpStack(sim, topo.server)

    server = TcplsServer(sim, server_stack, 443, psk=PSK)
    state = {"session": None, "group": None, "migrated": False,
             "received": 0}

    def on_session(session):
        state["session"] = session

        def on_stream_data(stream):
            request = stream.recv()
            if request.startswith(b"PLAY"):
                group = session.create_coupled_group([session.conns[0]])
                state["group"] = group
                group.send(b"\x42" * VIDEO_SIZE)
                group.close()
        session.on_stream_data = on_stream_data

        def on_join(conn):
            # Server-side migration policy: when the client joins a new
            # path mid-video, move the group over a coupled window.
            group = state["group"]
            if group is None or state["migrated"]:
                return
            state["migrated"] = True
            old_streams = list(group.streams)
            session.add_group_stream(group, conn)
            print("[server] t=%.2fs migrating video to %s (coupled "
                  "window)" % (sim.now, conn.tcp.remote))

            def finish():
                for stream in old_streams:
                    session.remove_group_stream(group, stream)
                print("[server] t=%.2fs migration window closed" % sim.now)

            sim.schedule(1.0, finish)
        session.on_join = on_join

    server.on_session = on_session

    client = TcplsClient(sim, client_stack, psk=PSK)

    def on_ready(_session):
        print("[client] t=%.2fs session up, starting playback over "
              "Wi-Fi" % sim.now)
        request = client.create_stream(client.conns[0])
        request.send(b"PLAY /video")
        sim.schedule(RTT_PROBE_PERIOD, monitor_path_quality)

    def on_group_data(group):
        state["received"] += len(group.recv())
        if group.complete:
            print("[client] t=%.2fs playback finished (%d MiB)"
                  % (sim.now, state["received"] >> 20))

    # Application-level delay probing with TCPLS echo records
    # (Sec. 3.3.3: "define TCPLS records to actively probe a connection,
    # e.g. with an echo/request record to actively measure delays").
    probe_sent_at = {}

    def on_pong(conn, payload):
        rtt = sim.now - probe_sent_at.pop(payload, sim.now)
        if (rtt > MIGRATE_WHEN_SRTT_ABOVE and len(client.conns) == 1
                and state["received"] < VIDEO_SIZE):
            print("[client] t=%.2fs Wi-Fi probe RTT=%.0fms > budget; "
                  "joining LTE" % (sim.now, rtt * 1000))
            client.join(topo.path(1).client_addr)

    client.on_pong = on_pong

    def monitor_path_quality():
        if state["received"] >= VIDEO_SIZE:
            return
        wifi = client.conns[0]
        if wifi.usable() and len(client.conns) == 1:
            token = ("probe-%.3f" % sim.now).encode()
            probe_sent_at[token] = sim.now
            client.ping(wifi, token)
        sim.schedule(RTT_PROBE_PERIOD, monitor_path_quality)

    client.on_ready = on_ready
    client.on_group_data = on_group_data
    path = topo.path(0)
    client.connect(path.client_addr, Endpoint(path.server_addr, 443))

    # Bufferbloat strikes the Wi-Fi path at t=2s: RTT jumps 5x.
    def bufferbloat():
        print("[net]    t=%.2fs Wi-Fi path becomes bufferbloated" % sim.now)
        topo.path(0).c2s.delay = 0.075
        topo.path(0).s2c.delay = 0.075

    sim.at(2.0, bufferbloat)
    sim.run(until=90)
    assert state["received"] == VIDEO_SIZE, "video incomplete"
    print("done: video delivered in full despite the Wi-Fi degradation")


if __name__ == "__main__":
    main()
