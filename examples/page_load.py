#!/usr/bin/env python
"""Load one synthetic web page over multipath TCPLS and print the
per-object waterfall.

A 30-object dependency graph (HTML -> CSS/JS -> images/fonts) is
fetched through a connection pool whose entries are the two
connections of a single joined TCPLS session.  Path 0 suffers
Gilbert-Elliott burst loss, so the scheduling policy's placement
choices are visible in the waterfall: objects landed on the lossy
path finish late, objects steered to the clean path finish on time.

Every row comes from the ``workload`` bus events (object_ready /
object_start / object_done / page_load), not from private state.

Run:  python examples/page_load.py [policy]
      (policy: round-robin | lowest-rtt | predictive | weighted |
       redundant; default round-robin)
"""

import sys

from repro.net import Simulator, build_faulty_multipath
from repro.obs import CaptureSink
from repro.perf.pageload import make_policy
from repro.workload import TcplsPageFetcher, TransferManager, synthetic_page

POLICY = sys.argv[1] if len(sys.argv) > 1 else "round-robin"
RATE_BPS = 25_000_000
N_OBJECTS = 30


def main():
    sim = Simulator(seed=7)
    topo = build_faulty_multipath(sim, n_paths=2, rate_bps=RATE_BPS,
                                  delay=0.010)
    # Gilbert-Elliott bursts on path 0: ~0.5% chance per packet of
    # entering a bad state that drops everything until it recovers.
    topo.burst_loss(0, p_gb=0.005, p_bg=0.30, loss_bad=1.0, seed=8)

    capture = CaptureSink()
    sim.bus.subscribe(capture, categories=("workload",))

    fetcher = TcplsPageFetcher(sim, topo, n_paths=2)
    pool = fetcher.pool(bus=sim.bus)
    page = synthetic_page(seed=7, n_objects=N_OBJECTS)
    policy = make_policy(POLICY, rate_cap_bps=RATE_BPS)
    manager = TransferManager(page, pool, policy, sim, fetcher.fetch,
                              bus=sim.bus)

    fetcher.connect(manager.start)
    sim.run(until=60.0)

    if not manager.done:
        raise SystemExit("page did not complete within the horizon")

    starts = {e.data["object"]: e for e in capture.select(name="object_start")}
    print("page %r: %d objects, %d bytes, policy %s" % (
        page.name, len(page), page.total_bytes, policy.name))
    print("%-12s %-6s %9s %9s %9s %9s  %s" % (
        "object", "kind", "bytes", "ready", "start", "done", "placement"))
    for row in manager.waterfall():
        start = starts[row["name"]]
        print("%-12s %-6s %9d %9.3f %9.3f %9.3f  %s conn=%s" % (
            row["name"], row["kind"], row["size"], row["t_ready"],
            row["t_start"], row["t_done"], start.data["placement"],
            start.data["conn"]))

    (load,) = capture.select(name="page_load")
    stats = pool.stats()
    print("page load time: %.3f s  (pool: %d opened, %d reused, "
          "%d shared)" % (load.data["plt"], stats["opened"],
                          stats["reused"], stats["shared"]))


if __name__ == "__main__":
    main()
