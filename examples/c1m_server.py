#!/usr/bin/env python
"""A C1M-style multi-session TCPLS server on real kernel sockets.

One :class:`MultiSessionServer` — one ``selectors`` event loop —
serves a whole herd of concurrent TCPLS sessions: an fd-keyed
connection table (libconvert's ``_tcpls_lookup`` shape), an O(1)
join-credential cache, bounded per-session receive memory with
backpressure, and automatic retirement when a session's last
transport disappears.  psk_ke handshakes (``key_exchange="psk"``)
keep the per-session setup cost flat.

The demo hosts server and a configurable client storm in the same
process over OS loopback: every client handshakes, sends a tagged
request, gets its private echo back, then the close wave drains the
table back to zero.

Run:  PYTHONPATH=src python examples/c1m_server.py [n_clients]

For the 10k-session simulated churn benchmark (connect waves, MPJOINs,
scripted path outage + failovers, close/reconnect churn), see
``benchmarks/bench_c1m.py``.  For worker-process sharding, give each
worker its own ``ShardLayout(n).port_for(i)`` listener (or one shared
port with ``SocketDriver(reuse_port=True)``).
"""

import sys

from repro.core.drivers.multi import MultiSessionServer
from repro.core.drivers.sockets import SocketDriver
from repro.core.engine import TcplsClientEngine

PSK = b"c1m-example-psk"


def run_storm(n_clients=50, verbose=True):
    """Returns the mux after a full accept/echo/close storm."""
    say = print if verbose else (lambda *a: None)
    driver = SocketDriver(name="c1m", backlog=256)
    try:
        mux = MultiSessionServer(driver, 0, PSK, auto_retire=True,
                                 budget_bytes=256 * 1024)

        def serve(session):
            session.on_stream_data = lambda s: s.send(s.recv())

        mux.on_session = serve
        say("[mux] listening on 127.0.0.1:%d" % mux.port)

        clients, echoes = [], []
        for i in range(n_clients):
            client = TcplsClientEngine(driver, PSK, key_exchange="psk")
            echo = bytearray()
            client.on_stream_data = \
                (lambda buf: lambda s: buf.extend(s.recv()))(echo)
            client.connect(None, driver.endpoint("127.0.0.1", mux.port))
            clients.append(client)
            echoes.append(echo)
        driver.run_until(lambda: all(c.ready for c in clients),
                         timeout=60.0)
        say("[mux] %d sessions up; table=%d (peak %d)"
            % (mux.session_count(), len(mux.table), mux.table.peak))

        payloads = [bytes([i % 251]) * 1024 for i in range(n_clients)]
        for client, payload in zip(clients, payloads):
            stream = client.create_stream(client.conns[0])
            stream.send(payload)
        driver.run_until(
            lambda: all(len(e) == len(p)
                        for e, p in zip(echoes, payloads)),
            timeout=60.0,
        )
        assert all(bytes(e) == p for e, p in zip(echoes, payloads)), \
            "cross-session byte leak"
        say("[mux] every session echoed exactly its own bytes")

        for client in clients:
            client.close()
        driver.run_until(
            lambda: mux.session_count() == 0 and len(mux.table) == 0,
            timeout=60.0,
        )
        say("[mux] close wave done: table=%d sessions=%d retired=%d"
            % (len(mux.table), mux.session_count(), mux.retired))
        return mux
    finally:
        driver.close()


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 50
    run_storm(n)
