#!/usr/bin/env python
"""TCPLS over real kernel TCP on OS loopback.

The same sans-I/O engine that powers every simulated experiment runs
here over actual sockets: a :class:`SocketDriver` hosts both endpoints
on 127.0.0.1, the client opens a TCPLS session (TLS 1.3 handshake with
the TCPLS Hello extension, record-level encryption), echoes a request,
then transfers data on two concurrent streams.

Run:  PYTHONPATH=src python examples/loopback_sockets.py
"""

from repro.core.drivers.sockets import SocketDriver
from repro.core.engine import TcplsClientEngine, TcplsServerEngine

PSK = b"loopback-psk"


def run_echo_and_transfer(cipher="chacha20poly1305", payload_kib=256,
                          verbose=True):
    """Returns (echo_reply, {stream_id: received_bytes}) after running
    an echo round-trip and a 2-stream transfer over loopback."""
    driver = SocketDriver(name="loopback")
    say = print if verbose else (lambda *a: None)

    # -- server: echo stream 1, count bytes on every stream -------------
    received = {}

    def on_session(session):
        def on_stream_data(stream):
            data = stream.recv()
            received.setdefault(stream.stream_id, bytearray()).extend(data)
            if stream.stream_id == 1 and stream.fin_received:
                reply = session.create_stream(session.conns[0])
                reply.send(b"echo:" + bytes(received[1]))
                reply.close()
        session.on_stream_data = on_stream_data

    server = TcplsServerEngine(driver, 0, PSK, cipher_names=(cipher,))
    server.on_session = on_session
    say("[server] listening on 127.0.0.1:%d" % server.port)

    # -- client ----------------------------------------------------------
    client = TcplsClientEngine(driver, PSK, cipher_names=(cipher,))
    ready = []
    client.on_ready = ready.append
    client.connect(None, driver.endpoint("127.0.0.1", server.port))
    driver.run_until(lambda: ready, timeout=10.0)
    say("[client] session ready; cipher=%s tcpls=%s"
        % (cipher, client.tcpls_enabled))

    # Echo round-trip on stream 1.
    request = client.create_stream(client.conns[0])
    request.send(b"hello over real sockets")
    request.close()
    echo = bytearray()

    def on_stream_data(stream):
        echo.extend(stream.recv())

    client.on_stream_data = on_stream_data
    driver.run_until(
        lambda: bytes(echo) == b"echo:hello over real sockets",
        timeout=10.0,
    )
    say("[client] echo reply: %r" % bytes(echo))

    # 2-stream transfer: distinct payloads on concurrent streams.
    payloads = {}
    streams = []
    for fill in (b"A", b"B"):
        stream = client.create_stream(client.conns[0])
        body = fill * (payload_kib * 1024)
        payloads[stream.stream_id] = body
        stream.send(body)
        stream.close()
        streams.append(stream)

    def transferred():
        return all(
            len(received.get(sid, b"")) == len(body)
            for sid, body in payloads.items()
        )

    driver.run_until(transferred, timeout=30.0)
    for sid, body in payloads.items():
        assert bytes(received[sid]) == body, "stream %d corrupted" % sid
    say("[client] transferred %d KiB on each of %d streams, verified"
        % (payload_kib, len(streams)))
    say("[client] records sent=%d received=%d (server trials=%d)"
        % (client.stats["records_sent"], client.stats["records_received"],
           next(iter(server.sessions.values())).stats["tag_trials"]))

    driver.close()
    return bytes(echo), {sid: bytes(b) for sid, b in received.items()}


if __name__ == "__main__":
    run_echo_and_transfer()
