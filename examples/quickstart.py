#!/usr/bin/env python
"""Quickstart: a TCPLS session on a simulated dual-stack network.

Builds the paper's basic setup -- a dual-stack client and server with
disjoint IPv4/IPv6 paths -- opens a TCPLS session (TCP handshake + TLS
1.3 handshake carrying the TCPLS Hello extension), transfers data on a
stream, and prints what happened.

Run:  python examples/quickstart.py
"""

from repro.core import TcplsClient, TcplsServer
from repro.net import Simulator, build_multipath
from repro.net.address import Endpoint
from repro.tcp import TcpStack

PSK = b"quickstart-psk"


def main():
    # 1. A simulated network: 2 disjoint paths, 25 Mbps / 10 ms each.
    sim = Simulator(seed=1)
    topo = build_multipath(sim, n_paths=2)
    client_stack = TcpStack(sim, topo.client)
    server_stack = TcpStack(sim, topo.server)

    # 2. A TCPLS server. The on_session callback wires application
    #    logic into each accepted session (here: a tiny echo service).
    server = TcplsServer(sim, server_stack, 443, psk=PSK)

    def on_session(session):
        def on_stream_data(stream):
            request = stream.recv()
            print("  [server] stream %d received %d bytes" % (
                stream.stream_id, len(request)))
            reply = session.create_stream(session.conns[0])
            reply.send(b"echo:" + request)
            reply.close()
        session.on_stream_data = on_stream_data

    server.on_session = on_session

    # 3. A TCPLS client: connect over the IPv4 path.
    client = TcplsClient(sim, client_stack, psk=PSK)
    path = topo.path(0)

    def on_ready(session):
        print("[client] session ready at t=%.3fs" % sim.now)
        print("  negotiated TCPLS: %s" % session.tcpls_enabled)
        print("  session id:       %s" % session.session_id.hex())
        print("  join cookies:     %d" % len(session.cookies))
        print("  server addresses: %s" %
              ", ".join(str(a) for a in session.peer_addresses))
        stream = client.create_stream(client.conns[0])
        stream.send(b"hello, tcpls!")

    def on_stream_data(stream):
        data = stream.recv()
        print("[client] got reply on stream %d: %r" % (
            stream.stream_id, data))

    client.on_ready = on_ready
    client.on_stream_data = on_stream_data
    client.connect(path.client_addr, Endpoint(path.server_addr, 443))

    # 4. Run the simulated world.
    sim.run(until=2.0)

    info = client.conns[0].tcp_info()
    print("[client] tcp_info: srtt=%.1fms cwnd=%d bytes ca=%s" % (
        info["srtt"] * 1000, info["cwnd_bytes"], info["ca_name"]))


if __name__ == "__main__":
    main()
