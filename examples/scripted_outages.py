#!/usr/bin/env python
"""Scripted adversity: one Scenario, four families of faults.

A TCPLS download rides through a timeline of scripted network
misbehaviour declared up front with the Scenario API:

  t = 1.0-2.0 s   hard flap of the primary path (failover kicks in)
  t = 3.0-5.0 s   Gilbert-Elliott bursty loss on the surviving path
  t = 6.0-7.0 s   +80 ms latency spike (bufferbloat episode)
  t = 8.0 s       spurious RST injected on the (recovered) primary

Because every fault decision flows through the simulator seed, running
this script twice prints byte-identical timelines — that determinism is
what the adversarial conformance suite (`pytest -m faults`) pins down.

Run:  python examples/scripted_outages.py
"""

from repro.core import TcplsClient, TcplsServer
from repro.net import Scenario, Simulator, build_faulty_multipath
from repro.net.address import Endpoint
from repro.tcp import TcpStack

PSK = b"scenario-psk"
SIZE = 24 << 20   # 24 MiB download


def run():
    sim = Simulator(seed=11)
    scenario = Scenario("four families of adversity")
    topo = build_faulty_multipath(sim, n_paths=2, scenario=scenario)
    p0, p1 = topo.path(0), topo.path(1)

    # --- the scripted timeline, declared before anything runs --------
    scenario.at(1.0).flap(p0, duration=1.0)              # hard outage
    ge_faults = scenario.between(3.0, 5.0).gilbert(      # bursty loss
        p1.s2c, p_gb=0.03, p_bg=0.3)
    scenario.between(6.0, 7.0).spike(p1, extra=0.080)    # latency step
    rst = topo.rst_path(0, at=8.0, direction="s2c")      # spurious RST

    # --- a plain resilient download on top -------------------------
    cstack = TcpStack(sim, topo.client)
    sstack = TcpStack(sim, topo.server)
    server = TcplsServer(sim, sstack, 443, psk=PSK)
    client = TcplsClient(sim, cstack, psk=PSK)
    client.auto_user_timeout = 0.25
    received = bytearray()
    finished = []

    def on_session(sess):
        sess.enable_failover()

        def on_stream_data(stream):
            if stream.recv().startswith(b"GET"):
                out = sess.create_stream(sess.conns[0])
                out.send(b"A" * SIZE)
                out.close()
        sess.on_stream_data = on_stream_data

    server.on_session = on_session

    def on_client_stream(stream):
        received.extend(stream.recv())
        if len(received) >= SIZE and not finished:
            finished.append(sim.now)

    client.on_stream_data = on_client_stream
    client.on_ready = lambda s: (
        client.enable_failover(),
        client.join(p1.client_addr),
        client.create_stream(client.conns[0]).send(b"GET /file"),
    )
    client.on_conn_failed = lambda conn, reason: print(
        "[client] t=%.2fs path %d failed (%s)"
        % (sim.now, conn.index, reason))

    client.connect(p0.client_addr, Endpoint(p0.server_addr, 443))
    sim.run(until=40)

    assert finished, "download did not complete"
    assert len(received) == SIZE
    print("[done]   t=%.2fs  %d MiB delivered exactly once" %
          (finished[0], SIZE >> 20))
    print("[faults] flap drops=%d  burst drops=%d  rst injected=%d" % (
        p0.c2s.stats.dropped_by("flap") + p0.s2c.stats.dropped_by("flap"),
        sum(f.dropped for f in ge_faults),
        rst.injected))
    print("[log]    scenario fired: %s" % ", ".join(
        "%.1fs:%s" % (t, label) for t, label in scenario.log))
    return finished[0], bytes(received)


def main():
    first = run()
    second = run()
    print("[repro]  identical runs: %s" % (first == second,))


if __name__ == "__main__":
    main()
