#!/usr/bin/env python
"""Rolling out a congestion controller over the wire (Sec. 4.4).

A server notices a client session using a timid delay-based controller
and upgrades it *remotely*: it assembles a CUBIC implementation to eBPF
bytecode, ships it in encrypted TCPLS records, and the client verifies
and attaches it to the live TCP connection -- no kernel module, no
restart, mid-transfer.

Run:  python examples/ebpf_cc_rollout.py
"""

from repro.core import TcplsClient, TcplsServer
from repro.ebpf import assemble, verify
from repro.ebpf.programs import CUBIC_ASM, cubic_bytecode
from repro.net import Simulator, build_multipath
from repro.net.address import Endpoint
from repro.tcp import TcpStack
from repro.tcp.congestion import make_congestion_control

PSK = b"rollout-psk"
UPLOAD = b"\x5a" * (24 << 20)


def main():
    # Show the toolchain first: assemble + verify the controller.
    program = assemble(CUBIC_ASM)
    verify(program)
    bytecode = cubic_bytecode()
    print("CUBIC controller: %d instructions, %d bytes of bytecode, "
          "verifier OK" % (len(program), len(bytecode)))

    sim = Simulator(seed=7)
    topo = build_multipath(sim, n_paths=1, families=[4],
                           rates=[50_000_000], delays=[0.020])
    client_stack = TcpStack(sim, topo.client)
    server_stack = TcpStack(sim, topo.server)

    server = TcplsServer(sim, server_stack, 443, psk=PSK)
    sessions = []
    received = [0]

    def on_session(session):
        sessions.append(session)
        session.on_stream_data = (
            lambda stream: received.__setitem__(
                0, received[0] + len(stream.recv())))

    server.on_session = on_session

    client = TcplsClient(sim, client_stack, psk=PSK)

    def on_ready(_session):
        tcp = client.conns[0].tcp
        tcp.cc = make_congestion_control("vegas", tcp.mss)
        print("[client] t=%.2fs uploading with %s" % (sim.now,
                                                      tcp.cc.name))
        stream = client.create_stream(client.conns[0])
        stream.send(UPLOAD)
        stream.close()

    client.on_ready = on_ready
    client.on_ebpf_attached = lambda conn, program_id: print(
        "[client] t=%.2fs verified and attached program %d; controller "
        "is now %s" % (sim.now, program_id, conn.tcp.cc.name))

    path = topo.path(0)
    client.connect(path.client_addr, Endpoint(path.server_addr, 443))

    def push_controller():
        print("[server] t=%.2fs shipping CUBIC bytecode over the "
              "session" % sim.now)
        sessions[0].send_ebpf_program(sessions[0].conns[0], bytecode,
                                      program_id=1)

    sim.at(2.0, push_controller)

    # Also demonstrate the trust boundary: garbage never attaches.
    def push_garbage():
        sessions[0].send_ebpf_program(sessions[0].conns[0],
                                      b"\xde\xad\xbe\xef" * 16,
                                      program_id=9)

    sim.at(2.5, push_garbage)
    sim.run(until=60)

    tcp = client.conns[0].tcp
    assert tcp.cc.name == "ebpf:prog1", tcp.cc.name
    assert received[0] == len(UPLOAD)
    print("[client] VM ran %d times; upload of %d MiB completed "
          "under the shipped controller" % (tcp.cc.invocations,
                                            received[0] >> 20))
    print("done: remote congestion-control upgrade, garbage rejected")


if __name__ == "__main__":
    main()
