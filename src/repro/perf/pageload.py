"""Deterministic page-load experiment cells (the bench_pageload core).

One *cell* is a full browsing burst: ``pages`` synthetic pages, ramped
in waves (the same :func:`~repro.perf.loadgen.build_wave_schedule`
that drives the C1M harness), loaded over one transport stack under
one scheduling policy on one loss grid.  The result dict carries the
page-load-time distribution (every sample plus p50/p95), per-object
counts and the pool's reuse accounting -- all derived from simulator
time and deterministic counters, so a fixed configuration is
byte-identical on every run (the ``bench_pageload`` determinism gate).

Every runner here is a plain top-level function, so
:func:`repro.perf.sweep.run_sweep` can pickle it by reference into
spawn workers.
"""

from repro.net import Simulator, build_faulty_multipath
from repro.perf.loadgen import build_wave_schedule

#: the stacks a cell can drive (fetcher per stack)
PAGELOAD_STACKS = ("tcpls", "quic", "mptcp")
#: the policies a cell can schedule with
PAGELOAD_POLICIES = ("round-robin", "lowest-rtt", "predictive",
                     "weighted", "redundant")
#: the loss grids (fault-DSL recipes) a cell can run under
PAGELOAD_GRIDS = ("clean", "ge-light", "ge-burst")

__all__ = [
    "PAGELOAD_GRIDS",
    "PAGELOAD_POLICIES",
    "PAGELOAD_STACKS",
    "make_policy",
    "pageload_sweep_point",
    "run_pageload_cell",
]


def make_policy(name, rate_cap_bps=None):
    """Instantiate a scheduling policy by its bus name."""
    from repro.core.engine.policy import (
        LowestRttScheduler,
        PredictivePolicy,
        RedundantScheduler,
        RoundRobinScheduler,
        WeightedScheduler,
    )

    if name == "round-robin":
        return RoundRobinScheduler()
    if name == "lowest-rtt":
        return LowestRttScheduler()
    if name == "predictive":
        return PredictivePolicy(rate_cap_bps=rate_cap_bps)
    if name == "weighted":
        return WeightedScheduler([3, 1])
    if name == "redundant":
        return RedundantScheduler()
    raise ValueError("unknown policy %r" % (name,))


def _apply_grid(topo, grid, seed):
    """Install one named Gilbert-Elliott loss recipe on the topology.

    ``ge-light``: occasional short loss bursts on path 0 only -- the
    recoverable case where steering objects onto path 1 pays off.
    ``ge-burst``: heavy bursts on path 0 plus light bursts on path 1 --
    nowhere is clean, policies must keep adapting.
    """
    if grid == "clean":
        return
    if grid == "ge-light":
        topo.burst_loss(0, p_gb=0.005, p_bg=0.30, loss_bad=1.0,
                        seed=seed + 1)
        return
    if grid == "ge-burst":
        topo.burst_loss(0, p_gb=0.01, p_bg=0.20, loss_bad=0.6,
                        seed=seed + 1)
        if len(topo.paths) > 1:
            topo.burst_loss(1, p_gb=0.003, p_bg=0.30, loss_bad=0.5,
                            seed=seed + 2)
        return
    raise ValueError("unknown grid %r" % (grid,))


def _make_fetcher(stack, sim, topo, n_paths):
    from repro.workload.fetchers import (
        MptcpPageFetcher,
        QuicPageFetcher,
        TcplsPageFetcher,
    )

    if stack == "tcpls":
        return TcplsPageFetcher(sim, topo, n_paths=n_paths)
    if stack == "quic":
        return QuicPageFetcher(sim, topo)
    if stack == "mptcp":
        return MptcpPageFetcher(sim, topo, n_paths=n_paths)
    raise ValueError("unknown stack %r" % (stack,))


def _percentile(ordered, fraction):
    if not ordered:
        return None
    index = int(fraction * (len(ordered) - 1))
    return round(ordered[index], 9)


def run_pageload_cell(stack="tcpls", policy="round-robin", grid="clean",
                      pages=6, waves=3, wave_interval=0.25,
                      n_objects=30, seed=42, n_paths=2,
                      rate_bps=25_000_000, delay=0.010, horizon=120.0):
    """Run one (stack, policy, grid) cell; returns the metrics dict.

    Pages ramp in ``waves`` waves (so later pages contend with earlier
    ones for the pool -- reuse accounting only means something under
    overlap); page ``i`` uses the synthetic spec seeded ``seed + i``,
    identical across every stack and policy of the same sweep.
    """
    from repro.workload.pages import synthetic_page
    from repro.workload.transfers import TransferManager

    sim = Simulator(seed=seed)
    topo = build_faulty_multipath(sim, n_paths=n_paths, rate_bps=rate_bps,
                                  delay=delay)
    _apply_grid(topo, grid, seed)
    fetcher = _make_fetcher(stack, sim, topo, n_paths)
    pool = fetcher.pool(bus=sim.bus)
    chooser = make_policy(policy, rate_cap_bps=rate_bps)
    schedule = build_wave_schedule(pages, waves, wave_interval)
    managers = []

    def start_pages():
        for offset, index in schedule:
            page = synthetic_page(seed=seed + index, n_objects=n_objects)
            manager = TransferManager(page, pool, chooser, sim,
                                      fetcher.fetch, bus=sim.bus)
            managers.append(manager)
            sim.schedule(offset, manager.start)

    fetcher.connect(start_pages)
    sim.run(until=horizon)

    plts = sorted(m.plt for m in managers if m.plt is not None)
    objects_done = sum(len(m._completed) for m in managers)
    objects_total = sum(len(m.transfers) for m in managers)
    return {
        "stack": stack,
        "policy": policy,
        "grid": grid,
        "pages": pages,
        "pages_completed": len(plts),
        "objects": objects_total,
        "objects_completed": objects_done,
        "bytes": sum(m.page.total_bytes for m in managers),
        "plt_samples": [round(v, 9) for v in plts],
        "plt_p50": _percentile(plts, 0.50),
        "plt_p95": _percentile(plts, 0.95),
        "plt_max": round(plts[-1], 9) if plts else None,
        "pool": pool.stats(),
    }


def pageload_sweep_point(stack="tcpls", policy="round-robin",
                         grid="ge-light"):
    """Scaled-down page-load cell for the JOBS determinism gate (the
    full policy x stack x grid matrix lives in ``bench_pageload.py``)."""
    return run_pageload_cell(stack=stack, policy=policy, grid=grid,
                             pages=3, waves=2, n_objects=12,
                             horizon=60.0)
