"""Declarative experiment matrices with resumable, cached execution.

The paper's evaluation is a grid -- scenario x topology x cipher x
scheduler x seed -- and :mod:`repro.perf.sweep` already runs point
lists deterministically in parallel.  This module adds the fleet
layer on top:

- :class:`MatrixSpec` expands named :class:`Axis` values into
  :class:`MatrixPoint`\\ s (a :class:`~repro.perf.sweep.SweepPoint`
  that remembers its axis assignment), dropping combinations a
  validity predicate rejects;
- :func:`filter_points` applies the runner's substring (default) or
  ``--exact`` name filters;
- :func:`run_matrix` executes a point list with a content-addressed
  :class:`~repro.perf.cache.ResultCache` (unchanged points are skipped
  entirely) and a :class:`ShardJournal` (per-shard JSONL files written
  as points complete), supporting ``resume`` (re-run only
  missing/failed entries) and ``rerun_failed`` (force re-execution of
  exactly the error-tagged entries).

The merged result list is ordered by the canonical point order, so the
serialised JSON is byte-identical for any jobs/shard split, any
interrupt/resume history, and any cache hit/miss pattern.
"""

import itertools
import json
import os

from repro.perf.sweep import SweepPoint, _check_picklable, _execute


class Axis:
    """One named dimension: ``Axis("mtu", (1500, 9000))``."""

    __slots__ = ("name", "values")

    def __init__(self, name, values):
        self.name = name
        self.values = tuple(values)
        if not self.values:
            raise ValueError("axis %r has no values" % name)

    def __repr__(self):
        return "Axis(%r, %r)" % (self.name, self.values)


class MatrixPoint(SweepPoint):
    """A sweep point carrying its axis assignment (for trend grouping)."""

    __slots__ = ("axes",)

    def __init__(self, name, fn, kwargs=None, axes=None):
        super().__init__(name, fn, kwargs)
        self.axes = dict(axes) if axes else {}


class MatrixSpec:
    """One point family: a callable crossed over named axes.

    ``valid`` (optional) receives the combo dict and returns False to
    drop a combination; ``to_kwargs`` (optional) maps the combo dict to
    the callable's kwargs (default: the combo itself); ``fixed`` kwargs
    are merged into every point.  Point names are
    ``family/axis=value/...`` in axis order, so name filters can select
    whole families (``fig8``) or single axis values (``cipher=chacha20``).
    """

    def __init__(self, family, fn, axes, valid=None, to_kwargs=None,
                 fixed=None):
        self.family = family
        self.fn = fn
        self.axes = list(axes)
        self.valid = valid
        self.to_kwargs = to_kwargs
        self.fixed = dict(fixed) if fixed else {}

    def point_name(self, combo):
        parts = [self.family]
        for axis in self.axes:
            parts.append("%s=%s" % (axis.name, combo[axis.name]))
        return "/".join(parts)

    def expand(self):
        """All valid combinations, in deterministic axis-value order."""
        points = []
        names = [axis.name for axis in self.axes]
        for values in itertools.product(*(a.values for a in self.axes)):
            combo = dict(zip(names, values))
            if self.valid is not None and not self.valid(combo):
                continue
            kwargs = dict(self.fixed)
            kwargs.update(self.to_kwargs(combo) if self.to_kwargs
                          else combo)
            points.append(MatrixPoint(self.point_name(combo), self.fn,
                                      kwargs, axes=combo))
        return points


def expand_matrix(specs):
    """Expand every spec, rejecting duplicate point names up front."""
    points = []
    seen = set()
    for spec in specs:
        for point in spec.expand():
            if point.name in seen:
                raise ValueError("duplicate matrix point %r" % point.name)
            seen.add(point.name)
            points.append(point)
    return points


def filter_points(points, patterns, exact=False):
    """Name filters: substring match by default, whole-name with exact."""
    if not patterns:
        return list(points)
    if exact:
        wanted = set(patterns)
        return [p for p in points if p.name in wanted]
    return [p for p in points
            if any(pattern in p.name for pattern in patterns)]


class ShardJournal:
    """Per-shard JSONL journals of completed point results.

    Shard ``k`` appends to ``<dir>/shard-<k>.jsonl`` as its points
    complete, so an interrupted run leaves a complete record of
    everything that finished.  ``load`` merges every shard file into a
    name -> entry dict (last write wins, so resumed runs may append
    fresh entries for names an older line also carries).
    """

    def __init__(self, directory):
        self.directory = directory

    def _path(self, shard):
        return os.path.join(self.directory, "shard-%d.jsonl" % shard)

    def append(self, shard, entry):
        os.makedirs(self.directory, exist_ok=True)
        with open(self._path(shard), "a") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")

    def load(self):
        entries = {}
        if not os.path.isdir(self.directory):
            return entries
        for filename in sorted(os.listdir(self.directory)):
            if not (filename.startswith("shard-")
                    and filename.endswith(".jsonl")):
                continue
            with open(os.path.join(self.directory, filename)) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                    except ValueError:
                        continue    # torn tail line from an interrupt
                    if isinstance(entry, dict) and "name" in entry:
                        entries[entry["name"]] = entry
        return entries


class MatrixStats:
    """Where each point's result came from, plus wall bookkeeping."""

    def __init__(self):
        self.cache_hits = 0
        self.journal_reused = 0
        self.executed = 0
        self.errors = 0
        self.stored = 0

    @property
    def skipped(self):
        """Points that never executed this run (cache or journal)."""
        return self.cache_hits + self.journal_reused

    def to_dict(self):
        return {
            "cache_hits": self.cache_hits,
            "journal_reused": self.journal_reused,
            "executed": self.executed,
            "errors": self.errors,
            "stored": self.stored,
            "skipped": self.skipped,
        }

    def summary(self):
        return ("%d hits / %d misses / %d skipped "
                "(%d journal-reused, %d errors, %d stored)"
                % (self.cache_hits, self.executed, self.skipped,
                   self.journal_reused, self.errors, self.stored))


def _entry_for(point, result):
    """The merged-JSON entry shape: result plus the axis assignment."""
    entry = dict(result)
    axes = getattr(point, "axes", None)
    if axes:
        entry["axes"] = dict(axes)
    return entry


def _execute_indexed(job):
    index, point = job
    return index, _execute(point)


def run_matrix(points, jobs=1, cache=None, journal=None, resume=False,
               rerun_failed=False):
    """Run a matrix point list; returns ``(results, stats)``.

    ``results`` is in canonical (input) order whatever the shard split,
    completion order or resume history.  Resolution order per point:

    1. with ``resume``/``rerun_failed``: a successful journal entry is
       reused (error entries are always re-run);
    2. a cache hit (skipped when ``rerun_failed`` names this point as
       previously failed -- a forced fresh execution);
    3. live execution in a spawn worker; the result is journalled under
       the worker's shard and stored to the cache on success.
    """
    points = list(points)
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    stats = MatrixStats()
    results = [None] * len(points)

    prior_failed = set()
    if journal is not None and (resume or rerun_failed):
        prior = journal.load()
        for index, point in enumerate(points):
            entry = prior.get(point.name)
            if entry is None:
                continue
            if "error" in entry:
                prior_failed.add(point.name)
                continue
            results[index] = entry
            stats.journal_reused += 1

    todo = []
    for index, point in enumerate(points):
        if results[index] is not None:
            continue
        force = rerun_failed and point.name in prior_failed
        if cache is not None and not force:
            hit = cache.get(point)
            if hit is not None:
                entry = _entry_for(point, hit)
                results[index] = entry
                stats.cache_hits += 1
                if journal is not None:
                    journal.append(index % jobs, entry)
                continue
        todo.append((index, point))

    if todo:
        # Every remaining point pays for a fresh spawn interpreter; when
        # the cache resolved the whole matrix no pool is created at all.
        _check_picklable([point for _, point in todo])
        import multiprocessing

        ctx = multiprocessing.get_context("spawn")
        workers = min(jobs, len(todo))
        with ctx.Pool(processes=workers, maxtasksperchild=1) as pool:
            for index, result in pool.imap_unordered(
                    _execute_indexed, todo):
                point = points[index]
                entry = _entry_for(point, result)
                results[index] = entry
                stats.executed += 1
                if "error" in result:
                    stats.errors += 1
                elif cache is not None:
                    cache.put(point, result)
                    stats.stored += 1
                if journal is not None:
                    journal.append(index % jobs, entry)

    return results, stats
