"""Mechanistic CPU accounting for batched I/O (``perf`` bus events).

The batching layers added for segmentation offload each announce their
work on the observability bus: the TCP output path emits
``segment_train`` once per coalesced burst, and the session pump emits
``pump_batch`` once per multi-record seal pass.  This module turns
those announcements into modeled CPU time using the same
:class:`~repro.perf.costmodel.CpuProfile` primitives the Fig. 7
analytic models use, charging *per-train* rather than per-segment
costs:

- one syscall per train (the batched ``sendmsg``/TSO handoff),
- one DMA-descriptor cost per wire packet inside it,
- memcpy per byte,
- and, for pump batches, AEAD per byte plus one AEAD setup per record.

The resulting totals make the benefit of coalescing visible as a
first-class metric: dividing a transfer's bytes by the accounted CPU
time gives the modeled single-core throughput of the batched stack,
comparable against the analytic Fig. 7 numbers.
"""

from repro.perf.costmodel import CpuProfile


class TrainCostAccountant:
    """Bus sink that integrates modeled CPU nanoseconds per train.

    Attach with :func:`attach_train_accounting` (or manually via
    ``sim.bus.subscribe``).  Only ``perf`` events are inspected;
    unknown event names are ignored so the accountant can share the
    category with heap-compaction and crypto-total events.
    """

    def __init__(self, profile=None):
        self.profile = profile if profile is not None else CpuProfile()
        #: nanoseconds charged to the TCP transmit path (trains).
        self.tx_ns = 0.0
        #: nanoseconds charged to record sealing (pump batches).
        self.seal_ns = 0.0
        self.trains = 0
        self.segments = 0
        self.train_bytes = 0
        self.batches = 0
        self.records = 0
        self.record_bytes = 0

    # -- bus interface ---------------------------------------------------

    def on_event(self, event):
        if event.category != "perf":
            return
        if event.name == "segment_train":
            self._on_train(event.data)
        elif event.name == "pump_batch":
            self._on_batch(event.data)

    # -- charging --------------------------------------------------------

    def _on_train(self, data):
        p = self.profile
        segments = data["segments"]
        nbytes = data["bytes"]
        self.trains += 1
        self.segments += segments
        self.train_bytes += nbytes
        self.tx_ns += (p.syscall_ns
                       + segments * p.tcp_tx_ns_per_wire_packet
                       + nbytes * p.memcpy_ns_per_byte)

    def _on_batch(self, data):
        p = self.profile
        records = data["records"]
        nbytes = data["bytes"]
        self.batches += 1
        self.records += records
        self.record_bytes += nbytes
        self.seal_ns += (records * p.aead_ns_per_op
                         + nbytes * p.aead_seal_ns_per_byte)

    # -- results ---------------------------------------------------------

    @property
    def total_ns(self):
        return self.tx_ns + self.seal_ns

    def modeled_goodput_gbps(self):
        """Modeled single-core throughput over the accounted work."""
        if self.total_ns <= 0:
            return 0.0
        return (self.train_bytes * 8.0) / self.total_ns

    def summary(self):
        """Plain-dict snapshot (stable keys, JSON-friendly)."""
        return {
            "trains": self.trains,
            "segments": self.segments,
            "train_bytes": self.train_bytes,
            "batches": self.batches,
            "records": self.records,
            "record_bytes": self.record_bytes,
            "tx_ns": self.tx_ns,
            "seal_ns": self.seal_ns,
            "total_ns": self.total_ns,
        }


def attach_train_accounting(sim, profile=None):
    """Subscribe a :class:`TrainCostAccountant` to ``sim``'s bus.

    Returns the accountant; read its counters (or :meth:`summary`)
    after the run.  Subscribing enables ``perf``-category emission, so
    attach it only when the accounting is wanted.
    """
    accountant = TrainCostAccountant(profile)
    sim.bus.subscribe(accountant, categories=("perf",))
    return accountant
