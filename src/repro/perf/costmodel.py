"""Mechanistic single-core throughput model.

Each transport stack is modelled as a sender pipeline and a receiver
pipeline; the per-byte CPU time of each is the sum of

- AEAD time per byte (the paper measured its AES-128-GCM at
  13.62 Gbps sealing / 24.59 Gbps opening on 16 KiB records in memory);
- per-encryption-unit overhead (nonce derivation, framing, tag) --
  amortised over the unit size, which is what makes 16 KiB TLS records
  cheaper than ~1.5 KiB QUIC packets;
- memcpy per byte (buffer management; zero-copy paths pay it once);
- syscall cost amortised over the bytes moved per call (TSO moves
  64 KiB+ per write; non-GSO UDP moves one datagram per sendmsg);
- kernel network-stack work per wire packet (segmentation/receive
  offload leaves only DMA and completion work per packet for TCP;
  software GSO leaves most per-packet work in place for UDP);
- transport ACK handling: in-kernel and amortised for TCP, user-space
  per-packet work for QUIC;
- per-record services: TCPLS failover's record ACKs + replay buffer
  bookkeeping, multipath's trailing sequence number + reordering heap.

Throughput = min(link, 1/sender_time, 1/receiver_time).
"""

SECONDS_PER_NS = 1e-9


class CpuProfile:
    """Primitive operation costs (nanoseconds), single core.

    Defaults are calibrated to the paper's testbed: the AEAD rates are
    the paper's own in-memory measurements; syscall/kernel constants
    are typical for the Linux 5.x era and tuned so the TLS/TCP baseline
    lands near its measured 10.3 / 12.6 Gbps.
    """

    def __init__(self,
                 aead_seal_ns_per_byte=8 / 13.62,     # 13.62 Gbps sealing
                 aead_open_ns_per_byte=8 / 24.59,     # 24.59 Gbps opening
                 aead_ns_per_op=250.0,
                 memcpy_ns_per_byte=0.01,
                 syscall_ns=1800.0,
                 tcp_tx_ns_per_wire_packet=25.0,      # TSO: DMA descriptors
                 tcp_rx_ns_per_wire_packet=60.0,      # GRO residue
                 tcp_ack_rx_ns=350.0,                 # kernel ACK processing
                 tcp_acks_per_packets=2,              # delayed ACK ratio
                 udp_ns_per_packet=500.0,
                 recvmmsg_batch=16,                   # receive-side batching
                 quic_max_datagram=1472,              # default max UDP payload
                 jumbo_udp_penalty=1.6,               # driver jumbo path
                 tso_batch_bytes=65536,
                 link_gbps=40.0):
        self.aead_seal_ns_per_byte = aead_seal_ns_per_byte
        self.aead_open_ns_per_byte = aead_open_ns_per_byte
        self.aead_ns_per_op = aead_ns_per_op
        self.memcpy_ns_per_byte = memcpy_ns_per_byte
        self.syscall_ns = syscall_ns
        self.tcp_tx_ns_per_wire_packet = tcp_tx_ns_per_wire_packet
        self.tcp_rx_ns_per_wire_packet = tcp_rx_ns_per_wire_packet
        self.tcp_ack_rx_ns = tcp_ack_rx_ns
        self.tcp_acks_per_packets = tcp_acks_per_packets
        self.udp_ns_per_packet = udp_ns_per_packet
        self.recvmmsg_batch = recvmmsg_batch
        self.quic_max_datagram = quic_max_datagram
        self.jumbo_udp_penalty = jumbo_udp_penalty
        self.tso_batch_bytes = tso_batch_bytes
        self.link_gbps = link_gbps


def _mss(mtu):
    return mtu - 40  # IPv4 + TCP headers


class TlsTcpModel:
    """TLS over kernel TCP (picotls baseline, tuned buffers)."""

    name = "tls-tcp"

    def __init__(self, cpu, mtu=1500, record_size=16384,
                 extra_copies=0):
        self.cpu = cpu
        self.mtu = mtu
        self.record_size = record_size
        #: untuned receive paths re-copy fragmented records; the paper's
        #: buffer fix removed this (~40% client throughput gain).
        self.extra_copies = extra_copies

    def sender_ns_per_byte(self):
        cpu = self.cpu
        mss = _mss(self.mtu)
        t = cpu.aead_seal_ns_per_byte
        t += cpu.memcpy_ns_per_byte
        t += cpu.aead_ns_per_op / self.record_size
        t += cpu.syscall_ns / cpu.tso_batch_bytes
        t += cpu.tcp_tx_ns_per_wire_packet / mss
        # Inbound ACK processing (kernel, per delayed ACK).
        t += cpu.tcp_ack_rx_ns / (cpu.tcp_acks_per_packets * mss)
        return t

    def receiver_ns_per_byte(self):
        cpu = self.cpu
        mss = _mss(self.mtu)
        t = cpu.aead_open_ns_per_byte
        t += cpu.memcpy_ns_per_byte * (1 + self.extra_copies)
        t += cpu.aead_ns_per_op / self.record_size
        t += cpu.syscall_ns / cpu.tso_batch_bytes
        t += cpu.tcp_rx_ns_per_wire_packet / mss
        return t


class TcplsVariant:
    BASE = "base"
    FAILOVER = "failover"
    MULTIPATH = "multipath"


class TcplsModel(TlsTcpModel):
    """TCPLS: TLS/TCP data path plus the enabled transport services."""

    name = "tcpls"

    #: bookkeeping for the replay buffer + generating/processing one
    #: record-level ACK every ``ack_interval`` records (Sec. 4.2)
    FAILOVER_NS_PER_RECORD = 1000.0
    ACK_RECORD_NS = 4000.0
    #: trailing sequence number + reordering-heap push/pop (Sec. 4.3)
    MULTIPATH_NS_PER_RECORD = 900.0

    def __init__(self, cpu, mtu=1500, record_size=16384,
                 variant=TcplsVariant.BASE, ack_interval=16, n_paths=2):
        super().__init__(cpu, mtu, record_size, extra_copies=0)
        self.variant = variant
        self.ack_interval = ack_interval
        self.n_paths = n_paths
        self.name = "tcpls-%s" % variant

    def _service_ns_per_byte(self):
        extra = 0.0
        if self.variant in (TcplsVariant.FAILOVER, TcplsVariant.MULTIPATH):
            extra += self.FAILOVER_NS_PER_RECORD / self.record_size
            extra += (self.ACK_RECORD_NS / self.ack_interval /
                      self.record_size)
        if self.variant == TcplsVariant.MULTIPATH:
            extra += self.MULTIPATH_NS_PER_RECORD / self.record_size
            # A second TCP connection halves syscall batching efficiency
            # and adds scheduler work per record.
            extra += (self.cpu.syscall_ns * (self.n_paths - 1)
                      / self.cpu.tso_batch_bytes)
        return extra

    def sender_ns_per_byte(self):
        # The TCPLS send path avoids one buffer copy relative to the
        # picotls client (records are sealed in place, Sec. 5.1).
        t = super().sender_ns_per_byte()
        t -= 0.025  # in-place record sealing vs the baseline's staging copy
        return t + self._service_ns_per_byte()

    def receiver_ns_per_byte(self):
        t = super().receiver_ns_per_byte()
        return t + self._service_ns_per_byte()


class QuicSenderModel:
    """QUIC sender/receiver pipelines from an implementation profile."""

    def __init__(self, cpu, profile, mtu=1500):
        self.cpu = cpu
        self.profile = profile
        self.mtu = mtu
        # QUIC datagrams are capped at the implementations' default max
        # UDP payload (~1472) regardless of jumbo frames -- no PMTUD in
        # the benchmark setups -- so jumbo MTUs do not grow the
        # encryption unit; they only exercise the slower driver path.
        datagram = min(mtu - 28, cpu.quic_max_datagram)
        self.packet_payload = datagram - 32  # QUIC header + expansion
        # Software GSO batches at most 64 KiB per sendmsg.
        self.gso_batch = max(
            1, min(profile.gso_batch, 65536 // datagram)
        )
        self._udp_ns = cpu.udp_ns_per_packet * (
            cpu.jumbo_udp_penalty if mtu > 1500 else 1.0
        )

    def sender_ns_per_byte(self):
        cpu = self.cpu
        p = self.profile
        size = self.packet_payload
        t = cpu.aead_seal_ns_per_byte / p.crypto_efficiency
        t += cpu.memcpy_ns_per_byte
        t += cpu.aead_ns_per_op / size
        t += cpu.syscall_ns / (size * self.gso_batch)
        t += self._udp_ns / size
        t += p.extra_per_packet_ns / size
        t += p.pacing_overhead_ns / size
        # User-space ACK processing for inbound ACK packets (one per two
        # data packets), read in recvmmsg batches.
        per_ack = (cpu.syscall_ns / cpu.recvmmsg_batch + self._udp_ns
                   + p.ack_processing_ns)
        t += per_ack / (2 * size)
        return t

    def receiver_ns_per_byte(self):
        cpu = self.cpu
        p = self.profile
        size = self.packet_payload
        t = cpu.aead_open_ns_per_byte / p.crypto_efficiency
        t += cpu.memcpy_ns_per_byte
        t += cpu.aead_ns_per_op / size
        t += cpu.syscall_ns / (size * cpu.recvmmsg_batch)
        t += self._udp_ns / size
        t += p.extra_per_packet_ns / size
        # Generating one ACK per two packets (seal + sendmsg); outbound
        # ACK datagrams ride GSO batches where available.
        per_ack = (cpu.syscall_ns / self.gso_batch + self._udp_ns
                   + p.ack_processing_ns + cpu.aead_ns_per_op)
        t += per_ack / (2 * size)
        return t


#: alias kept for symmetry with the other model names
QuicModel = QuicSenderModel


def solve_throughput_gbps(model, link_gbps=None):
    """Sustainable goodput: the slowest pipeline side, capped by the link."""
    link = link_gbps if link_gbps is not None else model.cpu.link_gbps
    sender_gbps = 8.0 / model.sender_ns_per_byte()
    receiver_gbps = 8.0 / model.receiver_ns_per_byte()
    return min(link, sender_gbps, receiver_gbps)
