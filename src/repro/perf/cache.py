"""Content-addressed result cache for sweep/matrix points.

A point's result is a pure function of (a) its canonical spec -- name,
callable identity and kwargs -- and (b) the source code that executes
it (the simulation is deterministic by construction; nothing reads
wall-clock time or unseeded randomness).  So results can be cached
across *runs and PRs*: a point whose spec and source fingerprint both
match a stored entry is skipped entirely, and only code that actually
changed pays for its matrix rows.

Keying rules:

- kwargs are canonicalised with explicit type tags, so ``{"x": 1}``
  and ``{"x": 1.0}`` never share a key (a point could legitimately
  branch on the type);
- the callable contributes ``module:qualname`` -- a point moved to a
  different function is a different computation;
- the *fingerprint* is a sha256 over every ``.py`` file under the
  fingerprinted roots (``src/repro`` + the bench modules by default),
  so any source edit invalidates the whole cache.  Coarse but safe:
  a stale hit silently masks a behaviour change, a spurious miss only
  costs one re-run.

Entries are one JSON file per key under ``root/<k[:2]>/<k>.json``,
written atomically (tmp + rename).  Any unreadable, unparsable or
mismatching entry is treated as a miss -- a corrupted cache must never
poison a run, only slow it down.
"""

import hashlib
import json
import os
import tempfile

#: default cache directory (relative to the invoking process's cwd)
DEFAULT_CACHE_DIR = ".bench_cache"
#: environment override, itself overridden by an explicit --cache-dir
CACHE_ENV_VAR = "REPRO_BENCH_CACHE"


def resolve_cache_dir(cli_value=None):
    """Cache root precedence: CLI flag > $REPRO_BENCH_CACHE > default."""
    if cli_value:
        return cli_value
    return os.environ.get(CACHE_ENV_VAR) or DEFAULT_CACHE_DIR


def _canon(value):
    """Type-tagged canonical form (JSON-stable, type-sensitive)."""
    if value is None:
        return ["none"]
    if isinstance(value, bool):          # before int: bool is an int subclass
        return ["bool", value]
    if isinstance(value, int):
        return ["int", value]
    if isinstance(value, float):
        return ["float", repr(value)]
    if isinstance(value, str):
        return ["str", value]
    if isinstance(value, bytes):
        return ["bytes", value.hex()]
    if isinstance(value, (list, tuple)):
        return ["list", [_canon(item) for item in value]]
    if isinstance(value, dict):
        return ["dict", sorted(
            [str(key), _canon(item)] for key, item in value.items()
        )]
    raise TypeError("unkeyable kwarg value %r (%s)" % (value, type(value)))


def canonical_point_spec(point):
    """The deterministic JSON text identifying one sweep point."""
    fn = point.fn
    spec = {
        "name": point.name,
        "fn": "%s:%s" % (getattr(fn, "__module__", "?"),
                         getattr(fn, "__qualname__", repr(fn))),
        "kwargs": _canon(point.kwargs),
    }
    return json.dumps(spec, sort_keys=True, separators=(",", ":"))


def source_fingerprint(roots):
    """sha256 over every ``.py`` file under ``roots`` (files allowed).

    Paths are hashed relative to their root in sorted order, so the
    fingerprint is stable across machines and checkouts but changes
    when any fingerprinted source file changes, appears or disappears.
    """
    digest = hashlib.sha256()
    for root in roots:
        root = os.path.abspath(root)
        if os.path.isfile(root):
            files = [(os.path.basename(root), root)]
        else:
            files = []
            for dirpath, dirnames, filenames in os.walk(root):
                dirnames.sort()
                for filename in sorted(filenames):
                    if not filename.endswith(".py"):
                        continue
                    full = os.path.join(dirpath, filename)
                    files.append((os.path.relpath(full, root), full))
        for rel, full in sorted(files):
            digest.update(rel.encode())
            digest.update(b"\x00")
            with open(full, "rb") as handle:
                digest.update(handle.read())
            digest.update(b"\x00")
    return digest.hexdigest()


def default_fingerprint_roots():
    """``src/repro`` plus the ``benchmarks`` directory when present."""
    import repro

    roots = [os.path.dirname(os.path.abspath(repro.__file__))]
    repo = os.path.dirname(os.path.dirname(roots[0]))
    bench = os.path.join(repo, "benchmarks")
    if os.path.isdir(bench):
        roots.append(bench)
    return roots


class ResultCache:
    """Content-addressed store of successful point results.

    ``get`` returns the stored result dict (or ``None`` on any kind of
    miss); ``put`` stores a result -- error-tagged results are refused,
    a failed run must always re-execute.  Counters: ``hits``,
    ``misses``, ``stores``.
    """

    def __init__(self, root, fingerprint=""):
        self.root = root
        self.fingerprint = fingerprint
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def key(self, point):
        digest = hashlib.sha256()
        digest.update(canonical_point_spec(point).encode())
        digest.update(b"\x00")
        digest.update(self.fingerprint.encode())
        return digest.hexdigest()

    def _path(self, key):
        return os.path.join(self.root, key[:2], key + ".json")

    def get(self, point):
        key = self.key(point)
        try:
            with open(self._path(key)) as handle:
                entry = json.load(handle)
            if entry["key"] != key or \
                    entry["fingerprint"] != self.fingerprint or \
                    entry["spec"] != canonical_point_spec(point):
                raise ValueError("cache entry does not match point")
            result = entry["result"]
            if "metrics" not in result or "error" in result:
                raise ValueError("cached entry is not a success")
        except Exception:   # missing/corrupt/mismatched -> live run
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, point, result):
        if "error" in result or "metrics" not in result:
            return
        key = self.key(point)
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        entry = {
            "key": key,
            "spec": canonical_point_spec(point),
            "fingerprint": self.fingerprint,
            "result": result,
        }
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1

    @classmethod
    def open(cls, cli_dir=None, roots=None):
        """The standard construction: resolved root + source fingerprint."""
        root = resolve_cache_dir(cli_dir)
        fingerprint = source_fingerprint(
            roots if roots is not None else default_fingerprint_roots())
        return cls(root, fingerprint)
