"""CPU/NIC cost model for the raw-performance evaluation (Fig. 7).

The paper's Sec. 5.1 testbed (Xeon E5-2630 v3-class cores, 40 Gbps
NICs, single-threaded endpoints) is replaced by a mechanistic model:
each stack is described by *where its bytes spend CPU time* -- AEAD
per byte, syscalls per batch, kernel per-packet work, ACK processing,
segmentation offload -- and the sustainable throughput is the inverse
of the busiest side's per-byte time, capped by the link.  Orderings and
ratios between stacks are emergent from these architectural factors;
only the primitive costs are calibrated (see DESIGN.md).
"""

from repro.perf.costmodel import (
    CpuProfile,
    QuicSenderModel,
    TcplsVariant,
    TlsTcpModel,
    QuicModel,
    TcplsModel,
    solve_throughput_gbps,
)
from repro.perf.loadgen import (
    LoadgenHarness,
    merge_shards,
    run_shard,
    shard_points,
)
from repro.perf.pageload import (
    PAGELOAD_GRIDS,
    PAGELOAD_POLICIES,
    PAGELOAD_STACKS,
    make_policy,
    pageload_sweep_point,
    run_pageload_cell,
)
from repro.perf.cache import (
    ResultCache,
    resolve_cache_dir,
    source_fingerprint,
)
from repro.perf.matrix import (
    Axis,
    MatrixPoint,
    MatrixSpec,
    ShardJournal,
    expand_matrix,
    filter_points,
    run_matrix,
)
from repro.perf.sweep import SweepPoint, run_sweep, sweep_to_json
from repro.perf.traincost import TrainCostAccountant, attach_train_accounting

__all__ = [
    "Axis",
    "CpuProfile",
    "MatrixPoint",
    "MatrixSpec",
    "ResultCache",
    "ShardJournal",
    "expand_matrix",
    "filter_points",
    "resolve_cache_dir",
    "run_matrix",
    "source_fingerprint",
    "LoadgenHarness",
    "PAGELOAD_GRIDS",
    "PAGELOAD_POLICIES",
    "PAGELOAD_STACKS",
    "QuicModel",
    "QuicSenderModel",
    "SweepPoint",
    "TcplsModel",
    "TcplsVariant",
    "TlsTcpModel",
    "TrainCostAccountant",
    "attach_train_accounting",
    "make_policy",
    "merge_shards",
    "pageload_sweep_point",
    "run_pageload_cell",
    "run_shard",
    "run_sweep",
    "shard_points",
    "solve_throughput_gbps",
    "sweep_to_json",
]
