"""Scripted mass-session load generator (the C1M harness).

Drives thousands of client TCPLS sessions against one
:class:`~repro.core.drivers.multi.MultiSessionServer` inside a single
discrete-event simulation, with scripted churn:

- **connect waves**: sessions ramp up in evenly spaced waves;
- **transfers**: each session runs a request/response exchange of
  ``transfer_bytes`` (psk_ke handshakes by default, so per-session
  cost stays flat at scale);
- **MPJOINs**: a deterministic fraction of sessions joins a second
  path shortly after becoming ready;
- **failovers**: a dedicated session group keeps its primary on a
  sacrificial path that the fault DSL takes down mid-transfer, forcing
  UTO-triggered failover onto the joined path (the Fig. 9 machinery at
  herd scale);
- **close/reconnect churn**: a fraction of the first generation closes
  and is replaced by a second generation of sessions.

Every metric is derived from simulator time and deterministic
counters; a fixed configuration yields byte-identical results on every
run -- the property the churn/soak test and the ``bench_c1m``
determinism gate assert.  ``run_shard`` is a top-level function so
:func:`repro.perf.sweep.run_sweep` can pickle it by reference into
spawn workers for the listener-per-shard layout
(:class:`~repro.core.drivers.multi.ShardLayout`).
"""

from repro.core.client import TcplsClient
from repro.core.drivers.multi import MultiSessionServer
from repro.core.drivers.sim import SimDriver
from repro.net import Simulator, build_faulty_multipath
from repro.net.address import Endpoint
from repro.tcp import TcpStack

_PSK = b"c1m-loadgen-psk"


def _percentile(sorted_values, fraction):
    if not sorted_values:
        return None
    index = int(fraction * (len(sorted_values) - 1))
    return round(sorted_values[index], 9)


def _latency_stats(samples):
    ordered = sorted(samples)
    return {
        "count": len(ordered),
        "p50": _percentile(ordered, 0.50),
        "p99": _percentile(ordered, 0.99),
        "max": round(ordered[-1], 9) if ordered else None,
    }


class _ClientScript:
    """One scripted client session: connect, transfer, maybe join,
    maybe fail over, close on cue."""

    def __init__(self, harness, index, generation=0):
        self.harness = harness
        self.index = index
        self.generation = generation
        self.is_joiner = False
        self.is_failover = False
        self.t_connect = None
        self.t_ready = None
        self.t_request = None
        self.received = 0
        self.expected = 0
        self.client = None
        self.closed = False

    # -- lifecycle -------------------------------------------------------

    def connect(self):
        if self.closed:
            return
        h = self.harness
        self.t_connect = h.sim.now
        client = TcplsClient(
            h.sim, h.cstack, psk=_PSK, key_exchange=h.key_exchange,
        )
        if self.is_failover:
            client.auto_user_timeout = h.uto
        client.on_ready = self._on_ready
        client.on_stream_data = self._on_stream_data
        self.client = client
        path = h.failover_path if self.is_failover else 0
        p = h.topo.path(path)
        client.connect(p.client_addr, Endpoint(p.server_addr, h.port))
        h.counters["started"] += 1

    def _on_ready(self, _session):
        h = self.harness
        self.t_ready = h.sim.now
        h.handshake_latencies.append(self.t_ready - self.t_connect)
        h.counters["ready"] += 1
        # Trim handshake state like the server mux does (the client
        # side would otherwise dominate a 10k-session run's memory).
        h.sim.schedule(0.0, self._release_handshakes)
        if self.is_failover:
            # Join the stable path now; a second, larger transfer is
            # launched so the response is mid-flight when the scripted
            # outage kills the primary path -- the peer's UTO then
            # drives failover onto the joined connection.
            h.sim.schedule(h.join_delay, self._join, 0)
            h.sim.schedule(max(h.t_fail - 0.01 - h.sim.now, 2 * h.join_delay),
                           self._start_transfer, h.failover_bytes)
        elif self.is_joiner:
            h.sim.schedule(h.join_delay, self._join, 1)
        self._start_transfer(h.transfer_bytes)

    def _release_handshakes(self):
        for conn in self.client.conns:
            conn.release_handshake()

    def _join(self, path):
        if self.closed or not self.client.ready:
            return
        h = self.harness
        if not (self.client.cookies or self.client.tokens):
            return
        p = h.topo.path(path)
        self.client.on_join = (self._on_failover_join if self.is_failover
                               else self._on_join)
        try:
            self.client.join(p.client_addr,
                             remote=Endpoint(p.server_addr, h.port))
        except Exception:
            return
        h.counters["joins_attempted"] += 1

    def _on_join(self, _conn):
        self.harness.counters["joins_completed"] += 1
        self.harness.sim.schedule(0.0, self._release_handshakes)

    def _on_failover_join(self, _conn):
        self._on_join(_conn)
        self.client.enable_failover()

    def _start_transfer(self, nbytes):
        if self.closed or not self.client.ready:
            return
        conn = next((c for c in self.client.conns if c.usable()), None)
        if conn is None:
            return
        self.t_request = self.harness.sim.now
        self.expected += nbytes
        stream = self.client.create_stream(conn)
        # 32-byte sized request: "R" + zero-padded response length.
        stream.send(b"R%031d" % nbytes)
        # Half-close: a stream left open would read as an unfinished
        # transfer and trip the peer's user-timeout while idle.
        stream.close()

    def _on_stream_data(self, stream):
        h = self.harness
        chunk = stream.recv()
        self.received += len(chunk)
        h.counters["bytes"] += len(chunk)
        if self.t_request is not None and self.received >= self.expected:
            h.transfer_latencies.append(h.sim.now - self.t_request)
            h.counters["transfers"] += 1
            self.t_request = None

    def close(self):
        if self.closed:
            return
        self.closed = True
        if self.client is not None:
            self.client.close()
            self.harness.counters["closed"] += 1


class LoadgenHarness:
    """One shard's simulation: server mux + N scripted clients."""

    def __init__(self, sessions=1000, seed=42, shard=0,
                 waves=20, wave_interval=0.05,
                 transfer_bytes=4096, join_fraction=0.05,
                 failover_sessions=16, failover_bytes=262144,
                 churn_fraction=0.25,
                 budget_bytes=256 * 1024, key_exchange="psk",
                 rate_bps=10_000_000_000, delay=0.002,
                 uto=0.25, horizon=60.0, port=4443):
        self.sessions = sessions
        self.seed = seed
        self.shard = shard
        self.waves = waves
        self.wave_interval = wave_interval
        self.transfer_bytes = transfer_bytes
        self.failover_bytes = failover_bytes
        self.join_fraction = join_fraction
        self.failover_sessions = min(failover_sessions, sessions)
        self.churn_fraction = churn_fraction
        self.key_exchange = key_exchange
        self.uto = uto
        self.horizon = horizon
        self.port = port
        self.join_delay = 0.05
        self.failover_path = 2

        self.sim = Simulator(seed=seed + shard)
        self.topo = build_faulty_multipath(
            self.sim, n_paths=3, rate_bps=rate_bps, delay=delay)
        self.cstack = TcpStack(self.sim, self.topo.client)
        self.sstack = TcpStack(self.sim, self.topo.server)
        self.driver = SimDriver(self.sim, self.sstack)
        self.mux = MultiSessionServer(
            self.driver, port, _PSK, budget_bytes=budget_bytes,
            auto_retire=True,
        )
        self.mux.on_session = self._serve

        self.handshake_latencies = []
        self.transfer_latencies = []
        self.counters = {
            "started": 0, "ready": 0, "transfers": 0, "bytes": 0,
            "joins_attempted": 0, "joins_completed": 0, "closed": 0,
            "server_failovers": 0,
        }
        self.peak_sessions = 0
        self.scripts = []

        # Scripted timeline.
        ramp = waves * wave_interval
        self.t_hold = ramp + 0.6
        self.t_fail = self.t_hold + 0.2
        self.t_churn = self.t_fail + 1.0
        self.t_close = self.t_churn + 1.2

    # -- server side -----------------------------------------------------

    def _serve(self, session):
        requests = {}

        def on_stream_data(stream):
            data = stream.recv()
            buf = requests.get(stream.stream_id, b"")
            if buf is None:
                return
            buf += data
            if len(buf) >= 32:
                requests[stream.stream_id] = None    # answered
                stream.send(b"\x00" * int(buf[1:32]))
                stream.close()
            else:
                requests[stream.stream_id] = buf

        def on_failover(_old, _new):
            self.counters["server_failovers"] += 1

        session.on_stream_data = on_stream_data
        session.on_failover = on_failover

    # -- script ----------------------------------------------------------

    def _sample(self):
        self.peak_sessions = max(self.peak_sessions,
                                 self.mux.session_count())

    def _schedule_generation(self, count, start, generation):
        per_wave = max(1, -(-count // self.waves))
        index = 0
        wave = 0
        while index < count:
            t = start + wave * self.wave_interval
            for _ in range(min(per_wave, count - index)):
                script = _ClientScript(self, index, generation)
                if generation == 0:
                    if index < self.failover_sessions:
                        script.is_failover = True
                    elif self.join_fraction and index % max(
                            1, int(1 / self.join_fraction)) == 0:
                        script.is_joiner = True
                self.scripts.append(script)
                self.sim.schedule(t, script.connect)
                index += 1
            self.sim.schedule(t + self.wave_interval, self._sample)
            wave += 1

    def run(self):
        self._schedule_generation(self.sessions, 0.0, 0)
        gen1 = list(self.scripts)

        # Outage: the failover group's primary path dies mid-transfer.
        self.sim.schedule(self.t_fail, self.topo.set_path_down,
                          self.failover_path, True)
        self.sim.schedule(self.t_hold, self._sample)

        # Churn: close a fraction of generation 1, replace with
        # generation 2.
        churn_count = int(self.sessions * self.churn_fraction)

        def close_churned():
            victims = [s for s in gen1
                       if not s.is_failover][:churn_count]
            for script in victims:
                script.close()

        self.sim.schedule(self.t_churn, close_churned)
        if churn_count:
            self._schedule_generation(churn_count, self.t_churn + 0.1, 1)

        def close_rest():
            for script in self.scripts:
                script.close()

        self.sim.schedule(self.t_close, close_rest)
        self.sim.schedule(self.t_close - 0.01, self._sample)
        # One second past the scripted close is enough for every FIN
        # exchange and retire to drain; the cap keeps degenerate
        # configurations bounded.
        self.sim.run(until=min(self.horizon, self.t_close + 1.0))
        return self.metrics()

    # -- results ---------------------------------------------------------

    def metrics(self):
        c = dict(self.counters)
        failovers = c["server_failovers"] + sum(
            s.client.stats["failovers"]
            for s in self.scripts if s.client is not None)
        elapsed = round(self.sim.now, 9)
        done = self.t_close
        table = self.mux.table
        metrics = {
            "shard": self.shard,
            "sessions": self.sessions,
            "started": c["started"],
            "ready": c["ready"],
            "transfers_completed": c["transfers"],
            "joins_completed": c["joins_completed"],
            "failovers": failovers,
            "closed": c["closed"],
            "peak_concurrent_sessions": self.peak_sessions,
            "table_peak": table.peak,
            "table_end": len(table),
            "sessions_end": self.mux.session_count(),
            "accepts": table.accepts,
            "attaches": table.attaches,
            "teardowns": table.teardowns,
            "budget_pauses": self.mux.pauses,
            "retired": self.mux.retired,
            "bytes_delivered": c["bytes"],
            "handshake_latency": _latency_stats(self.handshake_latencies),
            "transfer_latency": _latency_stats(self.transfer_latencies),
            # Sim-time rates: deterministic, unlike wall-clock ones.
            "sessions_per_sec": round(c["ready"] / done, 3),
            "bytes_per_sec": round(c["bytes"] / done, 3),
            "sim_elapsed": elapsed,
        }
        return metrics


def run_shard(**kwargs):
    """Run one loadgen shard; returns its deterministic metrics dict.

    Top-level (picklable) so sweep workers can run shards in parallel:
    shard ``i`` of ``n`` serves ``sessions`` sessions on
    ``ShardLayout(n, base_port).port_for(i)`` in its own process, and
    the merged JSON is byte-identical for any worker count.
    """
    return LoadgenHarness(**kwargs).run()


def shard_points(total_sessions, n_shards, base_port=4443, **kwargs):
    """Sweep points for a sharded run (listener-per-shard layout)."""
    from repro.core.drivers.multi import ShardLayout
    from repro.perf.sweep import SweepPoint

    layout = ShardLayout(n_shards, base_port)
    per_shard = total_sessions // n_shards
    points = []
    for shard in range(n_shards):
        count = per_shard + (1 if shard < total_sessions % n_shards else 0)
        cfg = dict(kwargs)
        cfg.update(sessions=count, shard=shard,
                   port=layout.port_for(shard))
        points.append(SweepPoint("c1m/shard%d" % shard, run_shard, cfg))
    return points


def merge_shards(results):
    """Aggregate per-shard metrics into one deterministic summary."""
    total = {
        "shards": len(results),
        "started": 0, "ready": 0, "transfers_completed": 0,
        "joins_completed": 0, "failovers": 0,
        "peak_concurrent_sessions": 0, "table_peak": 0,
        "table_end": 0, "sessions_end": 0, "bytes_delivered": 0,
        "budget_pauses": 0, "retired": 0,
    }
    hs_p99 = []
    tr_p99 = []
    rate = 0.0
    bytes_rate = 0.0
    for result in results:
        for key in ("started", "ready", "transfers_completed",
                    "joins_completed", "failovers", "table_end",
                    "sessions_end", "bytes_delivered", "budget_pauses",
                    "retired"):
            total[key] += result[key]
        for key in ("peak_concurrent_sessions", "table_peak"):
            total[key] += result[key]
        if result["handshake_latency"]["p99"] is not None:
            hs_p99.append(result["handshake_latency"]["p99"])
        if result["transfer_latency"]["p99"] is not None:
            tr_p99.append(result["transfer_latency"]["p99"])
        rate += result["sessions_per_sec"]
        bytes_rate += result["bytes_per_sec"]
    total["p99_handshake_s"] = max(hs_p99) if hs_p99 else None
    total["p99_transfer_s"] = max(tr_p99) if tr_p99 else None
    total["sessions_per_sec"] = round(rate, 3)
    # One shard == one core in the layout, so the per-core figure is
    # the mean shard rate.
    total["bytes_per_core_per_s"] = round(
        bytes_rate / max(len(results), 1), 3)
    return total


__all__ = ["LoadgenHarness", "merge_shards", "run_shard", "shard_points"]
