"""Scripted mass-session load generator (the C1M harness).

Drives thousands of client TCPLS sessions against one
:class:`~repro.core.drivers.multi.MultiSessionServer` inside a single
discrete-event simulation, with scripted churn:

- **connect waves**: sessions ramp up in evenly spaced waves;
- **transfers**: each session runs a request/response exchange of
  ``transfer_bytes`` (psk_ke handshakes by default, so per-session
  cost stays flat at scale);
- **MPJOINs**: a deterministic fraction of sessions joins a second
  path shortly after becoming ready;
- **failovers**: a dedicated session group keeps its primary on a
  sacrificial path that the fault DSL takes down mid-transfer, forcing
  UTO-triggered failover onto the joined path (the Fig. 9 machinery at
  herd scale);
- **close/reconnect churn**: a fraction of the first generation closes
  and is replaced by a second generation of sessions.

Every metric is derived from simulator time and deterministic
counters; a fixed configuration yields byte-identical results on every
run -- the property the churn/soak test and the ``bench_c1m``
determinism gate assert.  ``run_shard`` is a top-level function so
:func:`repro.perf.sweep.run_sweep` can pickle it by reference into
spawn workers for the listener-per-shard layout
(:class:`~repro.core.drivers.multi.ShardLayout`).
"""

from repro.core.client import TcplsClient
from repro.core.drivers.multi import MultiSessionServer
from repro.core.drivers.sim import SimDriver
from repro.net import Simulator, build_dumbbell, build_faulty_multipath
from repro.net.fluid import FluidCohort, FluidEngine
from repro.tcp import TcpStack
from repro.net.address import Endpoint

_PSK = b"c1m-loadgen-psk"


def build_wave_schedule(count, waves, wave_interval, start=0.0):
    """Deterministic connect schedule shared by the packet (C1M) and
    fluid population harnesses: ``count`` sessions ramp up in ``waves``
    evenly spaced waves of ``ceil(count / waves)``.

    Returns a list of ``(time, index)`` pairs in firing order; the last
    wave may be short.  Both :class:`LoadgenHarness` and
    :class:`FluidScenarioHarness` drive their ramps off this one
    builder, so a fluid run and a packet run of the same population use
    byte-identical start times.
    """
    per_wave = max(1, -(-count // max(1, waves)))
    schedule = []
    index = 0
    wave = 0
    while index < count:
        t = start + wave * wave_interval
        for _ in range(min(per_wave, count - index)):
            schedule.append((t, index))
            index += 1
        wave += 1
    return schedule


def _percentile(sorted_values, fraction):
    if not sorted_values:
        return None
    index = int(fraction * (len(sorted_values) - 1))
    return round(sorted_values[index], 9)


def _latency_stats(samples):
    ordered = sorted(samples)
    return {
        "count": len(ordered),
        "p50": _percentile(ordered, 0.50),
        "p99": _percentile(ordered, 0.99),
        "max": round(ordered[-1], 9) if ordered else None,
    }


class _ClientScript:
    """One scripted client session: connect, transfer, maybe join,
    maybe fail over, close on cue."""

    def __init__(self, harness, index, generation=0):
        self.harness = harness
        self.index = index
        self.generation = generation
        self.is_joiner = False
        self.is_failover = False
        self.t_connect = None
        self.t_ready = None
        self.t_request = None
        self.received = 0
        self.expected = 0
        self.client = None
        self.closed = False

    # -- lifecycle -------------------------------------------------------

    def connect(self):
        if self.closed:
            return
        h = self.harness
        self.t_connect = h.sim.now
        client = TcplsClient(
            h.sim, h.cstack, psk=_PSK, key_exchange=h.key_exchange,
        )
        if self.is_failover:
            client.auto_user_timeout = h.uto
        client.on_ready = self._on_ready
        client.on_stream_data = self._on_stream_data
        self.client = client
        path = h.failover_path if self.is_failover else 0
        p = h.topo.path(path)
        client.connect(p.client_addr, Endpoint(p.server_addr, h.port))
        h.counters["started"] += 1

    def _on_ready(self, _session):
        h = self.harness
        self.t_ready = h.sim.now
        h.handshake_latencies.append(self.t_ready - self.t_connect)
        h.counters["ready"] += 1
        # Trim handshake state like the server mux does (the client
        # side would otherwise dominate a 10k-session run's memory).
        h.sim.schedule(0.0, self._release_handshakes)
        if self.is_failover:
            # Join the stable path now; a second, larger transfer is
            # launched so the response is mid-flight when the scripted
            # outage kills the primary path -- the peer's UTO then
            # drives failover onto the joined connection.
            h.sim.schedule(h.join_delay, self._join, 0)
            h.sim.schedule(max(h.t_fail - 0.01 - h.sim.now, 2 * h.join_delay),
                           self._start_transfer, h.failover_bytes)
        elif self.is_joiner:
            h.sim.schedule(h.join_delay, self._join, 1)
        self._start_transfer(h.transfer_bytes)

    def _release_handshakes(self):
        for conn in self.client.conns:
            conn.release_handshake()

    def _join(self, path):
        if self.closed or not self.client.ready:
            return
        h = self.harness
        if not (self.client.cookies or self.client.tokens):
            return
        p = h.topo.path(path)
        self.client.on_join = (self._on_failover_join if self.is_failover
                               else self._on_join)
        try:
            self.client.join(p.client_addr,
                             remote=Endpoint(p.server_addr, h.port))
        except Exception:
            return
        h.counters["joins_attempted"] += 1

    def _on_join(self, _conn):
        self.harness.counters["joins_completed"] += 1
        self.harness.sim.schedule(0.0, self._release_handshakes)

    def _on_failover_join(self, _conn):
        self._on_join(_conn)
        self.client.enable_failover()

    def _start_transfer(self, nbytes):
        if self.closed or not self.client.ready:
            return
        conn = next((c for c in self.client.conns if c.usable()), None)
        if conn is None:
            return
        self.t_request = self.harness.sim.now
        self.expected += nbytes
        stream = self.client.create_stream(conn)
        # 32-byte sized request: "R" + zero-padded response length.
        stream.send(b"R%031d" % nbytes)
        # Half-close: a stream left open would read as an unfinished
        # transfer and trip the peer's user-timeout while idle.
        stream.close()

    def _on_stream_data(self, stream):
        h = self.harness
        chunk = stream.recv()
        self.received += len(chunk)
        h.counters["bytes"] += len(chunk)
        if self.t_request is not None and self.received >= self.expected:
            h.transfer_latencies.append(h.sim.now - self.t_request)
            h.counters["transfers"] += 1
            self.t_request = None

    def close(self):
        if self.closed:
            return
        self.closed = True
        if self.client is not None:
            self.client.close()
            self.harness.counters["closed"] += 1


class LoadgenHarness:
    """One shard's simulation: server mux + N scripted clients."""

    def __init__(self, sessions=1000, seed=42, shard=0,
                 waves=20, wave_interval=0.05,
                 transfer_bytes=4096, join_fraction=0.05,
                 failover_sessions=16, failover_bytes=262144,
                 churn_fraction=0.25,
                 budget_bytes=256 * 1024, key_exchange="psk",
                 rate_bps=10_000_000_000, delay=0.002,
                 uto=0.25, horizon=60.0, port=4443):
        self.sessions = sessions
        self.seed = seed
        self.shard = shard
        self.waves = waves
        self.wave_interval = wave_interval
        self.transfer_bytes = transfer_bytes
        self.failover_bytes = failover_bytes
        self.join_fraction = join_fraction
        self.failover_sessions = min(failover_sessions, sessions)
        self.churn_fraction = churn_fraction
        self.key_exchange = key_exchange
        self.uto = uto
        self.horizon = horizon
        self.port = port
        self.join_delay = 0.05
        self.failover_path = 2

        self.sim = Simulator(seed=seed + shard)
        self.topo = build_faulty_multipath(
            self.sim, n_paths=3, rate_bps=rate_bps, delay=delay)
        self.cstack = TcpStack(self.sim, self.topo.client)
        self.sstack = TcpStack(self.sim, self.topo.server)
        self.driver = SimDriver(self.sim, self.sstack)
        self.mux = MultiSessionServer(
            self.driver, port, _PSK, budget_bytes=budget_bytes,
            auto_retire=True,
        )
        self.mux.on_session = self._serve

        self.handshake_latencies = []
        self.transfer_latencies = []
        self.counters = {
            "started": 0, "ready": 0, "transfers": 0, "bytes": 0,
            "joins_attempted": 0, "joins_completed": 0, "closed": 0,
            "server_failovers": 0,
        }
        self.peak_sessions = 0
        self.scripts = []

        # Scripted timeline.
        ramp = waves * wave_interval
        self.t_hold = ramp + 0.6
        self.t_fail = self.t_hold + 0.2
        self.t_churn = self.t_fail + 1.0
        self.t_close = self.t_churn + 1.2

    # -- server side -----------------------------------------------------

    def _serve(self, session):
        requests = {}

        def on_stream_data(stream):
            data = stream.recv()
            buf = requests.get(stream.stream_id, b"")
            if buf is None:
                return
            buf += data
            if len(buf) >= 32:
                requests[stream.stream_id] = None    # answered
                stream.send(b"\x00" * int(buf[1:32]))
                stream.close()
            else:
                requests[stream.stream_id] = buf

        def on_failover(_old, _new):
            self.counters["server_failovers"] += 1

        session.on_stream_data = on_stream_data
        session.on_failover = on_failover

    # -- script ----------------------------------------------------------

    def _sample(self):
        self.peak_sessions = max(self.peak_sessions,
                                 self.mux.session_count())

    def _schedule_generation(self, count, start, generation):
        last_t = None
        for t, index in build_wave_schedule(
                count, self.waves, self.wave_interval, start):
            if last_t is not None and t != last_t:
                self.sim.schedule(last_t + self.wave_interval, self._sample)
            last_t = t
            script = _ClientScript(self, index, generation)
            if generation == 0:
                if index < self.failover_sessions:
                    script.is_failover = True
                elif self.join_fraction and index % max(
                        1, int(1 / self.join_fraction)) == 0:
                    script.is_joiner = True
            self.scripts.append(script)
            self.sim.schedule(t, script.connect)
        if last_t is not None:
            self.sim.schedule(last_t + self.wave_interval, self._sample)

    def run(self):
        self._schedule_generation(self.sessions, 0.0, 0)
        gen1 = list(self.scripts)

        # Outage: the failover group's primary path dies mid-transfer.
        self.sim.schedule(self.t_fail, self.topo.set_path_down,
                          self.failover_path, True)
        self.sim.schedule(self.t_hold, self._sample)

        # Churn: close a fraction of generation 1, replace with
        # generation 2.
        churn_count = int(self.sessions * self.churn_fraction)

        def close_churned():
            victims = [s for s in gen1
                       if not s.is_failover][:churn_count]
            for script in victims:
                script.close()

        self.sim.schedule(self.t_churn, close_churned)
        if churn_count:
            self._schedule_generation(churn_count, self.t_churn + 0.1, 1)

        def close_rest():
            for script in self.scripts:
                script.close()

        self.sim.schedule(self.t_close, close_rest)
        self.sim.schedule(self.t_close - 0.01, self._sample)
        # One second past the scripted close is enough for every FIN
        # exchange and retire to drain; the cap keeps degenerate
        # configurations bounded.
        self.sim.run(until=min(self.horizon, self.t_close + 1.0))
        return self.metrics()

    # -- results ---------------------------------------------------------

    def metrics(self):
        c = dict(self.counters)
        failovers = c["server_failovers"] + sum(
            s.client.stats["failovers"]
            for s in self.scripts if s.client is not None)
        elapsed = round(self.sim.now, 9)
        done = self.t_close
        table = self.mux.table
        metrics = {
            "shard": self.shard,
            "sessions": self.sessions,
            "started": c["started"],
            "ready": c["ready"],
            "transfers_completed": c["transfers"],
            "joins_completed": c["joins_completed"],
            "failovers": failovers,
            "closed": c["closed"],
            "peak_concurrent_sessions": self.peak_sessions,
            "table_peak": table.peak,
            "table_end": len(table),
            "sessions_end": self.mux.session_count(),
            "accepts": table.accepts,
            "attaches": table.attaches,
            "teardowns": table.teardowns,
            "budget_pauses": self.mux.pauses,
            "retired": self.mux.retired,
            "bytes_delivered": c["bytes"],
            "handshake_latency": _latency_stats(self.handshake_latencies),
            "transfer_latency": _latency_stats(self.transfer_latencies),
            # Sim-time rates: deterministic, unlike wall-clock ones.
            "sessions_per_sec": round(c["ready"] / done, 3),
            "bytes_per_sec": round(c["bytes"] / done, 3),
            "sim_elapsed": elapsed,
            # Simulator internals (heap hygiene + fast-forward), mirrored
            # into the bench ``--json`` envelopes.
            "heap_compactions": self.sim.compactions,
            "train_peels": self.sim.train_peels,
            "trains_scheduled": self.sim.trains_scheduled,
            "fluid_leaps": self.sim.fluid_leaps,
            "fluid_leapt_time": round(self.sim.fluid_leapt_time, 9),
        }
        return metrics


def _jain(values):
    """Jain's fairness index: 1.0 = perfectly equal."""
    values = [v for v in values if v is not None]
    if not values:
        return None
    square_of_sum = sum(values) ** 2
    sum_of_squares = sum(v * v for v in values)
    if sum_of_squares <= 0.0:
        return None
    return round(square_of_sum / (len(values) * sum_of_squares), 6)


class FluidScenarioHarness:
    """Pure-fluid population scenarios at 100k-flow scale.

    Unlike :class:`LoadgenHarness` (real TCPLS sessions, one event per
    packet), these scenarios drive
    :class:`~repro.net.fluid.FluidCohort` populations over a host-less
    dumbbell.  Each (wave, leaf) pair is one cohort, so a run costs
    O(waves x leaves) share recomputations plus one engine event per
    distinct completion time -- which is what lets 100_000 flows finish
    in seconds of wall clock where the packet simulator would need
    hundreds of millions of events.

    The connect ramp comes from :func:`build_wave_schedule`, the same
    builder the packet C1M harness uses, so fluid and packet
    populations share one deterministic schedule.

    Scenarios
    ---------
    ``fairness``
        Flow groups with per-leaf one-way delays ``delay .. leaves x
        delay`` share the core.  The probe records converged per-flow
        rates; with 1/rtt weights the product ``rate x rtt`` should be
        equal across groups (reported as a Jain index).
    ``incast``
        Every group fans into one receiver access link that is the
        bottleneck; the probe reports its utilization.
    ``failover_storm``
        All groups cross the primary core; at ``fail_at`` it is forced
        down, every cohort stalls at once, and after ``detect_delay``
        (the user-timeout analogue) each restarts -- in slow start --
        on the backup core.
    """

    SCENARIOS = ("fairness", "incast", "failover_storm")

    def __init__(self, scenario="fairness", flows=100_000, seed=42,
                 flow_bytes=1_000_000, waves=20, wave_interval=0.05,
                 leaves=8, leaf_rate_bps=1_000_000_000,
                 core_rate_bps=10_000_000_000, delay=0.005,
                 detect_delay=0.2, fail_at=None, horizon=3600.0):
        if scenario not in self.SCENARIOS:
            raise ValueError("unknown fluid scenario %r" % scenario)
        self.scenario = scenario
        self.flows = flows
        self.flow_bytes = float(flow_bytes)
        self.waves = waves
        self.wave_interval = wave_interval
        self.leaves = leaves
        self.detect_delay = detect_delay
        ramp = waves * wave_interval
        self.fail_at = fail_at if fail_at is not None else ramp + 0.4
        self.t_probe = ramp + 0.3
        self.horizon = horizon

        self.sim = Simulator(seed=seed)
        leaf_delays = None
        n_leaves = leaves
        if scenario == "fairness":
            leaf_delays = [delay * (i + 1) for i in range(leaves)]
            # RTT weighting is only observable when the *shared* core
            # binds; uncapped access links keep the leaves out of the
            # allocation.
            leaf_rate_bps = core_rate_bps
        elif scenario == "incast":
            n_leaves = leaves + 1          # last leaf = receiver access
        self.topo = build_dumbbell(
            self.sim, n_leaves=n_leaves, leaf_rate_bps=leaf_rate_bps,
            core_rate_bps=core_rate_bps, delay=delay,
            leaf_delays=leaf_delays, backup=(scenario == "failover_storm"))
        self.engine = FluidEngine(self.sim)

        self.cohorts_started = 0
        self.flows_completed = 0
        self.last_completion = None
        self.migrations = 0
        self.probe_result = None
        self._iw = 10 * 1500.0     # modelled initial window (IW10)

    # -- population -------------------------------------------------------

    def _path(self, leaf):
        if self.scenario == "incast":
            return [self.topo.leaves[leaf], self.topo.core,
                    self.topo.leaves[-1]]
        return self.topo.path(leaf)

    def _rtt(self, links):
        return 2.0 * sum(link.delay for link in links)

    def _wire(self, cohort):
        cohort.on_flow_complete = self._on_flow_complete
        if self.scenario == "failover_storm":
            cohort.on_stall = self._on_stall

    def _start_cohort(self, leaf, count):
        links = self._path(leaf)
        cohort = FluidCohort(
            links, [self.flow_bytes] * count, rtt=self._rtt(links),
            cwnd=self._iw, label="leaf%d-w%d" % (leaf, self.cohorts_started))
        cohort.leaf = leaf
        self._wire(cohort)
        self.cohorts_started += 1
        self.engine.add_cohort(cohort)

    def _on_flow_complete(self, _cohort, newly):
        self.flows_completed += newly
        self.last_completion = self.sim.now

    # -- failover storm ---------------------------------------------------

    def _on_stall(self, cohort):
        # The outage-detection delay models the user timeout the packet
        # stack would need before declaring the path dead.
        self.sim.schedule(self.detect_delay, self._migrate, cohort)

    def _migrate(self, cohort):
        if cohort.done or cohort.stalled_at is None:
            return
        if cohort not in self.engine.cohorts:
            return
        self.engine.remove_cohort(cohort)
        remaining = [s - cohort.served
                     for s in cohort.sizes[cohort.completed:]]
        if not remaining:
            return
        links = [self.topo.leaves[cohort.leaf], self.topo.backup]
        moved = FluidCohort(links, remaining, rtt=self._rtt(links),
                            cwnd=self._iw, label=cohort.label + "-bk")
        moved.leaf = cohort.leaf
        self._wire(moved)
        self.migrations += 1
        self.engine.add_cohort(moved)

    # -- probe ------------------------------------------------------------

    def _probe(self):
        core = self.topo.core
        util = 0.0
        rate_rtt = []
        bottleneck = (self.topo.leaves[-1] if self.scenario == "incast"
                      else core)
        for cohort in self.engine.cohorts:
            if cohort.done:
                continue
            if bottleneck in cohort.links:
                util += cohort.rate * cohort.active_flows * 8.0
            rate_rtt.append(cohort.rate * cohort.rtt)
        capacity = float(bottleneck.rate_bps or 0.0)
        self.probe_result = {
            "time": round(self.sim.now, 9),
            "active_cohorts": sum(1 for c in self.engine.cohorts
                                  if not c.done),
            "bottleneck_utilization": (round(util / capacity, 6)
                                       if capacity else None),
            "jain_rate_x_rtt": _jain(rate_rtt),
        }

    # -- driver -----------------------------------------------------------

    def run(self):
        schedule = build_wave_schedule(
            self.flows, self.waves, self.wave_interval)
        # Group the per-flow schedule into one cohort per (wave, leaf).
        groups = {}
        for t, index in schedule:
            key = (t, index % self.leaves)
            groups[key] = groups.get(key, 0) + 1
        for (t, leaf), count in sorted(groups.items()):
            self.sim.schedule(t, self._start_cohort, leaf, count)
        self.sim.schedule(self.t_probe, self._probe)
        if self.scenario == "failover_storm":
            self.sim.schedule(self.fail_at, self.topo.core.set_up, False)
        self.sim.run(until=self.horizon)
        return self.metrics()

    def metrics(self):
        engine = self.engine
        links = {link.name: {"tx_bytes": link.stats.tx_bytes,
                             "tx_packets": link.stats.tx_packets}
                 for link in self.topo.links()}
        return {
            "scenario": self.scenario,
            "flows": self.flows,
            "flows_completed": self.flows_completed,
            "cohorts": self.cohorts_started,
            "migrations": self.migrations,
            "stalls": engine.stalls,
            "last_completion": (round(self.last_completion, 9)
                                if self.last_completion is not None
                                else None),
            "sim_elapsed": round(self.sim.now, 9),
            "bytes_total": int(self.flows_completed * self.flow_bytes),
            "probe": self.probe_result,
            "fluid_leaps": engine.leaps,
            "fluid_leapt_time": round(engine.leapt_time, 9),
            "fluid_solves": engine.solves,
            "fluid_events": engine.events,
            "heap_compactions": self.sim.compactions,
            "train_peels": self.sim.train_peels,
            "links": links,
        }


def run_fluid_scenario(**kwargs):
    """Run one fluid population scenario; returns its metrics dict.

    Top-level (picklable) so sweep workers can fan scenarios out in
    parallel next to the packet C1M shards.
    """
    return FluidScenarioHarness(**kwargs).run()


def fluid_scenario_points(flows=100_000, **kwargs):
    """One sweep point per fluid scenario at ``flows`` scale."""
    from repro.perf.sweep import SweepPoint

    points = []
    for scenario in FluidScenarioHarness.SCENARIOS:
        cfg = dict(kwargs)
        cfg.update(scenario=scenario, flows=flows)
        points.append(SweepPoint(
            "fluid/%s" % scenario, run_fluid_scenario, cfg))
    return points


def run_shard(**kwargs):
    """Run one loadgen shard; returns its deterministic metrics dict.

    Top-level (picklable) so sweep workers can run shards in parallel:
    shard ``i`` of ``n`` serves ``sessions`` sessions on
    ``ShardLayout(n, base_port).port_for(i)`` in its own process, and
    the merged JSON is byte-identical for any worker count.
    """
    return LoadgenHarness(**kwargs).run()


def shard_points(total_sessions, n_shards, base_port=4443, **kwargs):
    """Sweep points for a sharded run (listener-per-shard layout)."""
    from repro.core.drivers.multi import ShardLayout
    from repro.perf.sweep import SweepPoint

    layout = ShardLayout(n_shards, base_port)
    per_shard = total_sessions // n_shards
    points = []
    for shard in range(n_shards):
        count = per_shard + (1 if shard < total_sessions % n_shards else 0)
        cfg = dict(kwargs)
        cfg.update(sessions=count, shard=shard,
                   port=layout.port_for(shard))
        points.append(SweepPoint("c1m/shard%d" % shard, run_shard, cfg))
    return points


def merge_shards(results):
    """Aggregate per-shard metrics into one deterministic summary."""
    total = {
        "shards": len(results),
        "started": 0, "ready": 0, "transfers_completed": 0,
        "joins_completed": 0, "failovers": 0,
        "peak_concurrent_sessions": 0, "table_peak": 0,
        "table_end": 0, "sessions_end": 0, "bytes_delivered": 0,
        "budget_pauses": 0, "retired": 0,
        "heap_compactions": 0, "train_peels": 0, "fluid_leaps": 0,
    }
    hs_p99 = []
    tr_p99 = []
    rate = 0.0
    bytes_rate = 0.0
    for result in results:
        for key in ("started", "ready", "transfers_completed",
                    "joins_completed", "failovers", "table_end",
                    "sessions_end", "bytes_delivered", "budget_pauses",
                    "retired"):
            total[key] += result[key]
        for key in ("heap_compactions", "train_peels", "fluid_leaps"):
            total[key] += result.get(key, 0)
        for key in ("peak_concurrent_sessions", "table_peak"):
            total[key] += result[key]
        if result["handshake_latency"]["p99"] is not None:
            hs_p99.append(result["handshake_latency"]["p99"])
        if result["transfer_latency"]["p99"] is not None:
            tr_p99.append(result["transfer_latency"]["p99"])
        rate += result["sessions_per_sec"]
        bytes_rate += result["bytes_per_sec"]
    total["p99_handshake_s"] = max(hs_p99) if hs_p99 else None
    total["p99_transfer_s"] = max(tr_p99) if tr_p99 else None
    total["sessions_per_sec"] = round(rate, 3)
    # One shard == one core in the layout, so the per-core figure is
    # the mean shard rate.
    total["bytes_per_core_per_s"] = round(
        bytes_rate / max(len(results), 1), 3)
    return total


__all__ = [
    "FluidScenarioHarness",
    "LoadgenHarness",
    "build_wave_schedule",
    "fluid_scenario_points",
    "merge_shards",
    "run_fluid_scenario",
    "run_shard",
    "shard_points",
]
