"""Deterministic parallel execution of bench/scenario sweeps.

A *sweep* is a list of named points, each a ``(callable, kwargs)``
pair returning a JSON-serialisable metrics dict.  :func:`run_sweep`
shards the points across worker processes and merges the results in
input order, so the output is byte-identical no matter how many
workers ran (``--jobs 1`` and ``--jobs 8`` produce the same file).

Determinism rules:

- **spawn** start method: workers never inherit parent state by fork,
  so a point's result cannot depend on what the parent imported or ran
  first.
- ``maxtasksperchild=1``: every point runs in a fresh interpreter.
  Simulation code keeps module/class-level counters (connection ids
  seed the ISS, links number themselves for observability); a reused
  worker would leak those from whatever point it ran previously.
- ordered ``imap``: results come back in submission order regardless
  of completion order.

Points must be importable top-level callables (pickled by reference);
closures and lambdas are rejected up front with a clear error rather
than a multiprocessing pickle backtrace.
"""

import json
import pickle


class SweepPoint:
    """One named sweep point: ``fn(**kwargs)`` -> metrics dict."""

    __slots__ = ("name", "fn", "kwargs")

    def __init__(self, name, fn, kwargs=None):
        self.name = name
        self.fn = fn
        self.kwargs = dict(kwargs) if kwargs else {}

    def run(self):
        return self.fn(**self.kwargs)

    def __repr__(self):
        return "SweepPoint(%r)" % (self.name,)


def _execute(point):
    """Worker entry: run one point, tagging failures instead of
    crashing the pool (a broken point must not hide the others)."""
    try:
        metrics = point.run()
    except Exception as exc:  # noqa: BLE001 - reported in the result
        return {"name": point.name, "error": "%s: %s"
                % (type(exc).__name__, exc)}
    return {"name": point.name, "metrics": metrics}


def _check_picklable(points):
    # Many points share one callable (a matrix family crosses a single
    # fn over hundreds of axis combinations); pickle each distinct fn
    # once, not once per point.
    checked = set()
    for point in points:
        if id(point.fn) in checked:
            continue
        checked.add(id(point.fn))
        try:
            pickle.dumps(point.fn)
        except Exception as exc:
            raise ValueError(
                "sweep point %r is not picklable (%s): points must be "
                "importable top-level functions, not closures/lambdas"
                % (point.name, exc)
            ) from exc


def run_sweep(points, jobs=1, cache=None):
    """Run every point; returns results in input order.

    ``jobs=1`` runs in-process-pool with a single worker -- still one
    fresh interpreter per point, so serial and parallel runs see
    identical interpreter state and produce identical results.

    With a :class:`~repro.perf.cache.ResultCache`, points whose key
    resolves are answered from the cache without executing; fresh
    successes are stored back.  When *every* point resolves from the
    cache (or the list is empty) no worker pool is spawned at all --
    the whole sweep costs a handful of file reads.
    """
    points = list(points)
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if not points:
        return []

    results = [None] * len(points)
    if cache is not None:
        todo = []
        for index, point in enumerate(points):
            hit = cache.get(point)
            if hit is not None:
                results[index] = hit
            else:
                todo.append((index, point))
    else:
        todo = list(enumerate(points))

    if todo:
        import multiprocessing

        _check_picklable([point for _, point in todo])
        ctx = multiprocessing.get_context("spawn")
        workers = min(jobs, len(todo))
        with ctx.Pool(processes=workers, maxtasksperchild=1) as pool:
            fresh = pool.imap(_execute, [point for _, point in todo])
            for (index, point), result in zip(todo, fresh):
                results[index] = result
                if cache is not None:
                    cache.put(point, result)
    return results


def sweep_to_json(results, path=None):
    """Serialise results deterministically (sorted keys, fixed indent).

    Returns the JSON text; writes it to ``path`` when given.
    """
    text = json.dumps({"results": results}, sort_keys=True, indent=2) + "\n"
    if path is not None:
        with open(path, "w") as fh:
            fh.write(text)
    return text
