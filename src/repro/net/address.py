"""IPv4/IPv6 addresses and transport endpoints.

TCPLS experiments are dual-stack (the paper joins an IPv6 connection to
a session opened over IPv4), so addresses carry an explicit family and
compare/hash by their canonical text form.
"""

import ipaddress


class IPAddress:
    """An IPv4 or IPv6 address with a stable canonical form."""

    __slots__ = ("_addr", "_text", "family")

    def __init__(self, text):
        if isinstance(text, IPAddress):
            self._addr = text._addr
            self._text = text._text
        else:
            self._addr = ipaddress.ip_address(text)
            self._text = None
        #: 4 or 6.  A plain attribute, not a property: the per-packet
        #: header-size lookup reads it on every wire_size() call.
        self.family = self._addr.version

    @property
    def is_v4(self):
        return self._addr.version == 4

    @property
    def is_v6(self):
        return self._addr.version == 6

    def packed(self):
        """Network-order byte representation (4 or 16 bytes)."""
        return self._addr.packed

    @classmethod
    def from_packed(cls, data):
        """Inverse of :meth:`packed`."""
        if len(data) not in (4, 16):
            raise ValueError("packed address must be 4 or 16 bytes")
        return cls(str(ipaddress.ip_address(data)))

    def __eq__(self, other):
        if isinstance(other, str):
            other = IPAddress(other)
        if not isinstance(other, IPAddress):
            return NotImplemented
        return self._addr == other._addr

    def __hash__(self):
        return hash(self._addr)

    def __str__(self):
        # The canonical text form is the demultiplexer's dict key, hit
        # once per packet -- cache it (ipaddress re-renders every time,
        # which for IPv6 means hextet compression per call).
        text = self._text
        if text is None:
            text = self._text = str(self._addr)
        return text

    def __repr__(self):
        return "IPAddress(%r)" % str(self)


class Endpoint:
    """A transport endpoint: (IP address, port)."""

    __slots__ = ("addr", "port")

    def __init__(self, addr, port):
        self.addr = addr if isinstance(addr, IPAddress) else IPAddress(addr)
        if not 0 <= port <= 0xFFFF:
            raise ValueError("port out of range: %r" % port)
        self.port = port

    @property
    def family(self):
        return self.addr.family

    def __eq__(self, other):
        if not isinstance(other, Endpoint):
            return NotImplemented
        return self.addr == other.addr and self.port == other.port

    def __hash__(self):
        return hash((self.addr, self.port))

    def __str__(self):
        if self.addr.is_v6:
            return "[%s]:%d" % (self.addr, self.port)
        return "%s:%d" % (self.addr, self.port)

    def __repr__(self):
        return "Endpoint(%r, %d)" % (str(self.addr), self.port)


def ip_header_size(family):
    """Bytes of IP header for the given family (no options)."""
    return 20 if family == 4 else 40
