"""Fluid-model fast-forward: leap steady-state flows analytically.

Per-packet simulation is exact but costs one event per segment; at
100k flows the interpreter, not the model, dominates wall-clock.  This
module adds the hybrid mode the ROADMAP calls for (in the style of
dt-simulator's ``eventSimulator``): once a flow is in
congestion-avoidance steady state its throughput is computed *in
closed form* — weighted max-min fair shares over the links it crosses
— and simulated time leaps directly to the next **discrete** event:

* a scheduled fault boundary (flap window opening/closing, a blackhole
  activating, a path forced down),
* an application write / close / new flow joining a link,
* a slow-start exit (one event per RTT while a flow still doubles),
* a bulk-transfer completion.

Between those events no per-packet work happens at all: per-flow
delivered-byte counters, the modelled cwnd, and ``LinkStats`` advance
arithmetically over the leapt interval.  Around transitions — loss,
failover, handshakes — flows leave the fluid engine and the packet
simulator regains full fidelity (see :class:`SessionFluidAdapter`).

The unit of bookkeeping is the :class:`FluidCohort`: ``n`` flows that
share a path, a weight and a start time, and therefore always have
*identical* rates.  Advancing a cohort is O(1) regardless of ``n``
(served-bytes-per-flow accumulates once; completions pop off a
pre-sorted size list), which is what makes 100k-flow populations cost
~one event per flow completion instead of millions of packets.

Shares are weighted max-min (water-filling): each flow's weight
defaults to ``1/rtt``, reproducing TCP's RTT bias, and a cohort in
slow start contributes a rate *cap* of ``cwnd/rtt`` instead of a
greedy demand.  :func:`max_min_shares` is a pure function so the
hypothesis suite can hammer it with random populations and assert
per-link conservation and bottleneck saturation.
"""

EPS = 1e-9

#: phases of a cohort's modelled congestion state
SLOW_START = "slow-start"
STEADY = "steady"
STALLED = "stalled"


def link_capacity_bps(link, now):
    """Fluid-visible capacity of a link at ``now`` in bits/s.

    Zero while the link is administratively down, any attached
    flap-style fault is inside an outage window (or forced down), or an
    attached blackhole middlebox is active.  ``rate_bps=None`` means
    uncapped (``inf``).
    """
    if not link.up:
        return 0.0
    for fault in link.faults:
        down_at = getattr(fault, "down_at", None)
        if down_at is not None and down_at(now):
            return 0.0
    for box in link.middleboxes:
        if getattr(box, "active", False) and hasattr(box, "activate"):
            if type(box).__name__ == "Blackhole":
                return 0.0
    if link.rate_bps is None:
        return float("inf")
    return float(link.rate_bps)


def link_next_change(link, now):
    """Earliest scheduled capacity boundary strictly after ``now``.

    Scans flap-style fault windows (the only *passively* scheduled
    outages: forced flaps, blackhole middleboxes and ``set_up`` run as
    simulator events and notify the engine directly via
    :meth:`FluidEngine.touch`).  Returns ``None`` when nothing is
    scheduled.
    """
    best = None
    for fault in link.faults:
        windows = getattr(fault, "windows", None)
        if windows is None:
            continue
        for start, end in windows:
            for edge in (start, end):
                if edge is not None and edge > now + EPS:
                    if best is None or edge < best:
                        best = edge
    return best


def max_min_shares(entries, capacity_of):
    """Weighted max-min fair (water-filling) rate allocation.

    Parameters
    ----------
    entries:
        List of ``(key, links, n, weight, cap)`` tuples: ``n`` flows of
        ``weight`` each crossing every link in ``links``; ``cap`` is an
        optional per-flow rate ceiling (slow-start demand limit),
        ``None`` = greedy.
    capacity_of:
        ``capacity_of(link) -> bits/s`` (may be ``inf``).

    Returns ``{key: per_flow_rate}`` in the same units as the
    capacities.  The classic progressive-filling invariants hold: no
    link carries more than its capacity, and every flow is limited
    either by its cap or by at least one saturated link.
    """
    residual = {}
    members = {}
    for key, links, n, weight, cap in entries:
        for link in links:
            if link not in residual:
                residual[link] = capacity_of(link)
                members[link] = []
            members[link].append(key)
    info = {key: (links, n, weight, cap)
            for key, links, n, weight, cap in entries}
    rate = {}
    # Insertion-ordered on purpose: keys are cohort objects, and a set
    # would iterate in id() order, making the float accumulation order
    # (and hence the last-ulp of the water level) vary run to run.
    unfrozen = dict.fromkeys(info)

    def freeze(key, per_flow):
        links, n, weight, _cap = info[key]
        rate[key] = per_flow
        unfrozen.pop(key, None)
        for link in links:
            if residual[link] != float("inf"):
                residual[link] = max(residual[link] - n * per_flow, 0.0)

    # Flows crossing a dead link get nothing, immediately.
    for key in list(unfrozen):
        links, _n, _w, _cap = info[key]
        if any(residual[link] <= EPS and residual[link] != float("inf")
               for link in links):
            freeze(key, 0.0)

    while unfrozen:
        # Fill level per saturating link: residual / unfrozen weight.
        level = None
        for link, keys in members.items():
            weight_sum = sum(
                info[k][1] * info[k][2] for k in keys if k in unfrozen)
            if weight_sum <= 0.0 or residual[link] == float("inf"):
                continue
            candidate = residual[link] / weight_sum
            if level is None or candidate < level:
                level = candidate
        # Capped flows that hit their ceiling before the water level.
        capped = [
            (info[k][3] / info[k][2], k) for k in unfrozen
            if info[k][3] is not None
        ]
        capped.sort(key=lambda item: item[0])
        if capped and (level is None or capped[0][0] < level - EPS):
            threshold = capped[0][0]
            for normalized, key in capped:
                if normalized > threshold + EPS:
                    break
                freeze(key, info[key][3])
            continue
        if level is None:
            # Only uncapped flows over infinite links remain; they are
            # unconstrained -- report their (infinite) fair rate.
            for key in list(unfrozen):
                freeze(key, float("inf"))
            break
        # Freeze every flow crossing an argmin (saturated) link.
        saturated = [
            link for link, keys in members.items()
            if residual[link] != float("inf")
            and any(k in unfrozen for k in keys)
            and abs(residual[link]
                    - level * _unfrozen_weight(link, members, unfrozen,
                                               info))
            <= 1e-6 * max(1.0, residual[link])
        ]
        frozen_any = False
        for link in saturated:
            for key in list(members[link]):
                if key in unfrozen:
                    freeze(key, level * info[key][2])
                    frozen_any = True
        if not frozen_any:  # numeric safety valve
            for key in list(unfrozen):
                freeze(key, level * info[key][2])
    return rate


def _unfrozen_weight(link, members, unfrozen, info):
    return sum(info[k][1] * info[k][2]
               for k in members[link] if k in unfrozen)


class FluidCohort:
    """``n`` flows sharing a path, a weight and a start time.

    All members always have the same rate, so one served-bytes-per-flow
    accumulator (:attr:`served`) advances the whole cohort in O(1);
    per-flow completions pop off :attr:`sizes` (sorted ascending).
    Sizes and rates are in *application* bytes; :attr:`overhead`
    converts to link (wire) bytes for share computation and
    ``LinkStats`` advance.
    """

    _next_id = 0

    def __init__(self, links, sizes, rtt, weight=None, cwnd=None,
                 overhead=1.0, pkt_bytes=1500.0, label="",
                 delivery_interval=None):
        FluidCohort._next_id += 1
        self.cohort_id = FluidCohort._next_id
        self.label = label or ("cohort-%d" % self.cohort_id)
        self.links = tuple(links)
        self.sizes = sorted(float(s) for s in sizes)
        self.n = len(self.sizes)
        self.completed = 0
        # Running totals keep :meth:`total_remaining` O(1) -- the
        # closed-form advance touches it once per cohort per leap, and
        # an O(n) sum there would put the flow count back into the
        # per-event cost.
        self._size_total = float(sum(self.sizes))
        self._completed_total = 0.0
        self.rtt = max(float(rtt), 1e-6)
        self.weight = weight if weight is not None else 1.0 / self.rtt
        #: modelled congestion window in application bytes; ``None``
        #: skips slow start entirely (already-converged flows).
        self.cwnd = cwnd
        self.phase = SLOW_START if cwnd is not None else STEADY
        self.overhead = float(overhead)      # link bytes per app byte
        self.pkt_bytes = float(pkt_bytes)    # link bytes per packet
        self.delivery_interval = delivery_interval
        self.served = 0.0        # app bytes served per member flow
        self.rate = 0.0          # current per-flow app bytes/s
        self.stalled_at = None
        self.next_double = None
        self._stat_residual = 0.0   # fractional packets not yet booked
        # Callbacks (all optional).
        self.on_flow_complete = None   # (cohort, newly_completed)
        self.on_all_done = None        # (cohort)
        self.on_stall = None           # (cohort)
        self.on_resume = None          # (cohort)
        self.on_advance = None         # (cohort, app_bytes_per_flow)

    @property
    def active_flows(self):
        return self.n - self.completed

    @property
    def done(self):
        return self.completed >= self.n

    def remaining_head(self):
        """App bytes until the next member flow completes."""
        if self.done:
            return None
        return max(self.sizes[self.completed] - self.served, 0.0)

    def total_remaining(self):
        """App bytes left across all member flows (O(1))."""
        return max(self._size_total - self._completed_total
                   - self.active_flows * self.served, 0.0)

    def add_bytes(self, nbytes):
        """Grow a single-flow cohort's transfer (late application
        write).  Only meaningful for ``n == 1`` cohorts."""
        if self.n != 1:
            raise ValueError("add_bytes requires a single-flow cohort")
        self.sizes[0] += float(nbytes)
        self._size_total += float(nbytes)
        if self.completed:
            self.completed = 0
            self._completed_total = 0.0

    def cap_rate(self):
        """Per-flow demand ceiling in app bytes/s (``None`` = greedy)."""
        if self.phase == SLOW_START and self.cwnd is not None:
            return self.cwnd / self.rtt
        return None

    def __repr__(self):
        return "FluidCohort(%s, n=%d, %s)" % (self.label, self.n,
                                              self.phase)


class FluidEngine:
    """The fast-forward layer on a :class:`~repro.net.simulator.Simulator`.

    Keeps exactly one armed simulator event for its next internal
    transition; everything between two engine events advances in closed
    form (:meth:`_advance_to`), which *is* the leap — fluid flows never
    schedule per-packet events in the first place.

    External changes (a flow added or removed, a fault forced, a link
    hot-plugged) must call :meth:`touch`; the link/fault layers do so
    automatically once :meth:`~repro.net.simulator.Simulator.attach_fluid`
    has installed the engine on the simulator.
    """

    def __init__(self, sim):
        self.sim = sim
        self.cohorts = []
        self._t = sim.now
        self._event = None
        # Counters (mirrored into bench envelopes).
        self.leaps = 0            # closed-form advances with dt > 0
        self.leapt_time = 0.0     # simulated seconds covered by leaps
        self.solves = 0           # share recomputations
        self.events = 0           # engine event firings
        self.flows_completed = 0
        self.stalls = 0
        sim.attach_fluid(self)

    # -- population management ------------------------------------------

    def add_cohort(self, cohort):
        """Register a cohort; flows start flowing immediately."""
        self._advance_to(self.sim.now)
        self.cohorts.append(cohort)
        if cohort.phase == SLOW_START:
            cohort.next_double = self.sim.now + cohort.rtt
        self._resolve()
        return cohort

    def remove_cohort(self, cohort):
        """Deregister (bytes already served stay served)."""
        self._advance_to(self.sim.now)
        if cohort in self.cohorts:
            self.cohorts.remove(cohort)
            self._resolve()

    def touch(self):
        """Topology / population changed: re-advance and re-solve."""
        self._advance_to(self.sim.now)
        self._process_transitions()
        self._resolve()

    def progress_time(self, cohort):
        """Timestamp of the cohort's last forward progress.

        ``now`` while it is being served (progress is continuous
        between events), the stall time while a dead link starves it.
        Wired into :attr:`TcpConnection.fluid_progress
        <repro.tcp.connection.TcpConnection>` so user timeouts fire on
        real stalls but never on leapt (eventless) healthy intervals.
        """
        if cohort.stalled_at is not None:
            return cohort.stalled_at
        return self.sim.now

    # -- closed-form advance --------------------------------------------

    def _advance_to(self, now):
        dt = now - self._t
        if dt <= EPS:
            self._t = max(self._t, now)
            return
        for cohort in self.cohorts:
            if cohort.rate <= 0.0 or cohort.done:
                continue
            delta = cohort.rate * dt
            # ``served`` is per-flow: never advance past the largest
            # member transfer (events fire at each head completion, so
            # this only binds numerically).
            head = max(cohort.sizes[-1] - cohort.served, 0.0)
            if delta > head:
                delta = head
            cohort.served += delta
            self._book_link_stats(cohort, delta)
            if cohort.on_advance is not None and delta > 0.0:
                cohort.on_advance(cohort, delta)
        self._t = now
        self.leaps += 1
        self.leapt_time += dt

    def _book_link_stats(self, cohort, per_flow_app_bytes):
        wire = per_flow_app_bytes * cohort.active_flows * cohort.overhead
        packets = wire / cohort.pkt_bytes + cohort._stat_residual
        whole_packets = int(packets)
        cohort._stat_residual = packets - whole_packets
        whole_bytes = int(wire)
        for link in cohort.links:
            link.fluid_advance(whole_bytes, whole_packets)

    # -- transitions -----------------------------------------------------

    def _process_transitions(self):
        now = self.sim.now
        finished = []
        for cohort in list(self.cohorts):
            # Completions: pop every size the served counter has
            # passed.  The tolerance is *relative*: served accumulates
            # float error proportional to the transfer size, so an
            # absolute epsilon would strand sub-representable residues
            # and re-arm a zero-length leap forever.
            newly = 0
            while (cohort.completed < cohort.n
                   and cohort.sizes[cohort.completed] <= cohort.served
                   + max(EPS, 1e-9 * cohort.sizes[cohort.completed])):
                cohort._completed_total += cohort.sizes[cohort.completed]
                cohort.completed += 1
                newly += 1
            if newly:
                self.flows_completed += newly
                if cohort.on_flow_complete is not None:
                    cohort.on_flow_complete(cohort, newly)
            if cohort.done:
                finished.append(cohort)
                continue
            # Slow-start doubling, one per RTT.
            if (cohort.phase == SLOW_START
                    and cohort.next_double is not None
                    and cohort.next_double <= now + EPS):
                cohort.cwnd *= 2
                cohort.next_double = now + cohort.rtt
        for cohort in finished:
            self.cohorts.remove(cohort)
            if cohort.on_all_done is not None:
                cohort.on_all_done(cohort)

    def _resolve(self):
        """Recompute shares and re-arm the next engine event."""
        now = self.sim.now
        if self._apply_shares(now):
            # A resume collapsed a cwnd mid-solve: the new slow-start
            # cap must bind *now*, not one engine event later.
            self._apply_shares(now)
        self._arm()

    def _apply_shares(self, now):
        """One share computation; returns True if a cohort resumed
        (its cap changed and the shares must be recomputed)."""
        self.solves += 1
        resumed_any = False
        entries = []
        for cohort in self.cohorts:
            if cohort.done:
                continue
            cap = cohort.cap_rate()
            entries.append((
                cohort, cohort.links, cohort.active_flows, cohort.weight,
                None if cap is None else cap * cohort.overhead,
            ))
        if entries:
            shares = max_min_shares(
                entries, lambda link: link_capacity_bps(link, now) / 8.0)
        else:
            shares = {}
        for cohort in self.cohorts:
            if cohort.done:
                continue
            wire_rate = shares.get(cohort, 0.0)
            rate = (wire_rate / cohort.overhead
                    if wire_rate != float("inf") else float("inf"))
            was_stalled = cohort.stalled_at is not None
            cohort.rate = rate
            if rate <= EPS:
                if not was_stalled:
                    cohort.stalled_at = now
                    cohort.rate = 0.0
                    self.stalls += 1
                    if cohort.on_stall is not None:
                        cohort.on_stall(cohort)
            else:
                if was_stalled:
                    cohort.stalled_at = None
                    # Loss-of-state restart: resuming after an outage
                    # re-enters slow start from the initial window (the
                    # packet-level stack would have hit RTO and
                    # collapsed its cwnd).
                    if cohort.cwnd is not None:
                        cohort.phase = SLOW_START
                        cohort.cwnd = min(
                            cohort.cwnd,
                            10.0 * cohort.pkt_bytes / cohort.overhead)
                        cohort.next_double = now + cohort.rtt
                        resumed_any = True
                    if cohort.on_resume is not None:
                        cohort.on_resume(cohort)
                # Slow-start exit: cap no longer binds.
                if cohort.phase == SLOW_START:
                    cap = cohort.cap_rate()
                    if cap is None or rate < cap - EPS or rate == float("inf"):
                        cohort.phase = STEADY
                        cohort.next_double = None
        return resumed_any

    def _next_event_time(self):
        now = self.sim.now
        best = None

        def consider(t):
            nonlocal best
            if t is not None and (best is None or t < best):
                best = t

        links_seen = set()
        for cohort in self.cohorts:
            if cohort.done:
                continue
            if cohort.rate > EPS and cohort.rate != float("inf"):
                head = cohort.remaining_head()
                if head is not None:
                    consider(now + head / cohort.rate)
                if cohort.delivery_interval:
                    consider(now + cohort.delivery_interval)
            elif cohort.rate == float("inf"):
                consider(now)  # degenerate: complete immediately
            if cohort.phase == SLOW_START and cohort.stalled_at is None:
                consider(cohort.next_double)
            for link in cohort.links:
                if link not in links_seen:
                    links_seen.add(link)
                    consider(link_next_change(link, now))
        return best

    def _arm(self):
        if self._event is not None:
            self._event.cancel()
            self._event = None
        when = self._next_event_time()
        if when is None:
            return
        when = max(when, self.sim.now)
        self._event = self.sim.at(when, self._on_event)

    def _on_event(self):
        self._event = None
        self.events += 1
        self._advance_to(self.sim.now)
        self._process_transitions()
        self._resolve()


class SessionFluidAdapter:
    """Hybrid bridge: bulk TCPLS stream bytes ride the fluid engine.

    Installed on the *sending* session (``session.fluid``); the pump
    offers it any stream whose backlog crosses ``threshold`` while its
    connection is in congestion-avoidance steady state.  Accepted bytes
    leave ``stream.pending`` and become a single-flow
    :class:`FluidCohort` on the connection's path links; delivery goes
    straight into the peer session's stream buffer.  Everything
    *discrete* — handshakes, control records, the FIN record, user
    timeouts, SYNC/failover — stays packet-level, so both endpoints run
    the exact same state machines as in pure packet mode:

    * a stall (dead link) freezes :meth:`FluidEngine.progress_time`,
      the untouched UTO machinery fires, and the session's normal
      failover path runs;
    * on connection failure the unserved bytes return to the *front* of
      ``stream.pending`` and re-enter fluid service on the failover
      target (fresh slow start, matching the new connection);
    * at completion the modelled cwnd resyncs into the TCP connection
      and the pump seals the FIN record packet-level.
    """

    def __init__(self, engine, session, peer, links_for,
                 threshold=64 * 1024, delivery_interval=None):
        self.engine = engine
        self.session = session
        self.peer = peer
        self.links_for = links_for
        self.threshold = threshold
        self.delivery_interval = delivery_interval
        self.flows = {}     # stream_id -> _AdapterFlow
        self.handoffs = 0
        self.bytes_handed = 0
        session.fluid = self

    # -- pump-facing hook -------------------------------------------------

    def offer(self, session, stream, conn):
        """Take over ``stream``'s backlog if it qualifies; returns
        ``True`` when the fluid engine now owns the bytes."""
        if stream.stream_id in self.flows:
            return True
        if len(stream.pending) < self.threshold:
            return False
        tcp = conn.tcp
        if not tcp.is_steady_state():
            return False
        links = self.links_for(conn)
        if not links:
            return False
        data = bytes(stream.pending)
        del stream.pending[:]
        rtt = tcp.rtt.srtt
        if not rtt:
            rtt = 2.0 * sum(link.delay for link in links) or 0.001
        overhead, pkt_bytes = self._overhead(session, stream, tcp)
        cohort = FluidCohort(
            links=links, sizes=[len(data)], rtt=rtt,
            cwnd=max(float(tcp.cc.cwnd) / overhead, float(tcp.mss)),
            overhead=overhead, pkt_bytes=pkt_bytes,
            label="stream-%d" % stream.stream_id,
            delivery_interval=self.delivery_interval,
        )
        flow = _AdapterFlow(self, stream, conn, cohort, data)
        cohort.on_advance = flow.advanced
        cohort.on_all_done = flow.completed
        cohort.on_stall = flow.stalled
        self.flows[stream.stream_id] = flow
        stream.fluid_active = True
        self.handoffs += 1
        self.bytes_handed += len(data)
        session.stats["bytes_fluid"] = (
            session.stats.get("bytes_fluid", 0) + len(data))
        tcp.fluid_progress = lambda: self.engine.progress_time(cohort)
        peer_conn = self._peer_conn(flow)
        if peer_conn is not None:
            peer_conn.tcp.fluid_progress = (
                lambda: self.engine.progress_time(cohort))
        session._emit("perf", "fluid_handoff", {
            "stream": stream.stream_id, "conn": conn.conn_id,
            "bytes": len(data),
        })
        self.engine.add_cohort(cohort)
        return True

    def _overhead(self, session, stream, tcp):
        """Link bytes per application byte, and link bytes per packet.

        One full record carries ``record_payload - len(control) - 2``
        app bytes in ``record_payload + 5 + tag`` wire bytes; TCP packs
        the wire byte stream into MSS segments of ``mss + 40`` link
        bytes each.
        """
        from repro.core import record as rec

        control = rec.encode_stream_control(0)
        app_per_record = session.record_payload - len(control) - 2
        tag = stream.ctx_send.cipher.tag_size
        wire_per_record = session.record_payload + 5 + tag
        mss = float(tcp.mss)
        tcp_per_app = wire_per_record / float(app_per_record)
        link_per_tcp = (mss + 40.0) / mss
        return tcp_per_app * link_per_tcp, mss + 40.0

    def _peer_conn(self, flow):
        peer_stream = self.peer.streams.get(flow.stream.stream_id)
        if peer_stream is not None and peer_stream.connection is not None:
            return peer_stream.connection
        return None

    # -- session-facing hooks ---------------------------------------------

    def conn_failed_hook(self, conn):
        """A session connection died: pull unserved bytes back into the
        stream so the ordinary failover machinery owns them again."""
        for stream_id, flow in list(self.flows.items()):
            if flow.conn is not conn:
                continue
            self.engine.remove_cohort(flow.cohort)
            flow.flush()
            remaining = flow.unserved()
            del self.flows[stream_id]
            flow.detach()
            if remaining:
                flow.stream.pending[:0] = remaining

    def has_flow(self, conn):
        return any(flow.conn is conn for flow in self.flows.values())


class _AdapterFlow:
    """Book-keeping for one handed-off stream transfer."""

    def __init__(self, adapter, stream, conn, cohort, data):
        self.adapter = adapter
        self.stream = stream
        self.conn = conn
        self.cohort = cohort
        self.data = data
        self.pushed = 0          # bytes delivered into the peer stream
        self.stream_id = stream.stream_id

    def unserved(self):
        served = int(min(self.cohort.served, len(self.data)))
        return self.data[served:]

    def advanced(self, cohort, _delta):
        # Deliveries materialise lazily at engine events; nothing to do
        # here beyond (optionally) flushing on a delivery interval.
        if cohort.delivery_interval:
            self.flush()

    def flush(self):
        """Push served-but-undelivered bytes into the peer stream."""
        if self.cohort.done:
            # Completion may fire within the relative tolerance of the
            # last byte; delivery is byte-exact by construction.
            served = len(self.data)
        else:
            served = int(min(self.cohort.served, len(self.data)))
        if served <= self.pushed:
            return
        peer_stream = self.adapter.peer.streams.get(self.stream_id)
        if peer_stream is None:
            return  # STREAM_ATTACH still in flight; retry next event
        chunk = self.data[self.pushed:served]
        sim_now = self.adapter.engine.sim.now
        self.pushed = served
        peer_stream.fluid_active = True
        peer_stream.recv_buffer += chunk
        peer_stream.last_delivery = sim_now
        self.conn.tcp.fluid_advance_send(len(chunk))
        peer_conn = peer_stream.connection
        if peer_conn is not None:
            peer_conn.tcp.fluid_advance_recv(len(chunk))
        if self.adapter.peer.on_stream_data is not None:
            self.adapter.peer.on_stream_data(peer_stream)

    def stalled(self, _cohort):
        # Nothing to do: progress_time freezes, the armed user timeout
        # notices, and the session failover machinery takes over via
        # conn_failed_hook.
        pass

    def completed(self, cohort):
        self.flush()
        adapter = self.adapter
        adapter.flows.pop(self.stream_id, None)
        self.detach(resync=True)
        # The FIN record (and any late application bytes) go out
        # packet-level, after every fluid byte was delivered.
        adapter.session._pump()

    def detach(self, resync=False):
        stream = self.stream
        stream.fluid_active = False
        peer_stream = self.adapter.peer.streams.get(self.stream_id)
        if peer_stream is not None:
            peer_stream.fluid_active = False
            peer_conn = peer_stream.connection
            if peer_conn is not None:
                peer_conn.tcp.fluid_progress = None
        tcp = self.conn.tcp
        tcp.fluid_progress = None
        if resync:
            tcp.fluid_resync(self.cohort)


def multipath_links_for(topo, sender="server"):
    """``links_for`` resolver for :class:`SessionFluidAdapter` over a
    :class:`~repro.net.topology.MultipathTopology`: maps a session
    connection to the one directed link its data crosses."""
    def links_for(conn):
        local = conn.tcp.local.addr
        for path in topo.paths:
            if sender == "server" and path.server_addr == local:
                return [path.s2c]
            if sender == "client" and path.client_addr == local:
                return [path.c2s]
        return []
    return links_for


def attach_download_fluid(sim, topo, server_session, client_session,
                          threshold=64 * 1024, delivery_interval=None):
    """Wire a server-push download (the fig7/fig8/fig9 shape) into
    fluid mode; returns the (engine, adapter) pair."""
    engine = sim.fluid or FluidEngine(sim)
    adapter = SessionFluidAdapter(
        engine, server_session, client_session,
        multipath_links_for(topo, sender="server"),
        threshold=threshold, delivery_interval=delivery_interval,
    )
    return engine, adapter


__all__ = [
    "FluidCohort",
    "FluidEngine",
    "SessionFluidAdapter",
    "attach_download_fluid",
    "link_capacity_bps",
    "link_next_change",
    "max_min_shares",
    "multipath_links_for",
]
