"""On-path middleboxes.

These model the interference classes of Sec. 2 of the paper: NATs that
rewrite addresses/ports, firewalls that strip unknown TCP options or
drop flows without state, boxes that inject RSTs or blackhole traffic,
and high-speed adapters that resegment large packets.  Middleboxes are
attached to links and run between serialization and delivery.

Middleboxes operate on real segment objects and real payload bytes, so
anything conveyed in the TCP payload (TLS records, hence everything
TCPLS does) is invisible to them unless they terminate the connection.
That property is exactly what the paper exploits.
"""


class Middlebox:
    """Base class: ``process`` may return the packet (possibly mutated),
    a replacement packet, or None to drop."""

    def __init__(self, name=""):
        self.name = name
        self.link = None
        self.processed = 0
        self.dropped = 0

    def attach(self, link):
        self.link = link

    def process(self, packet):
        self.processed += 1
        return packet

    def __repr__(self):
        return "%s(%s)" % (type(self).__name__, self.name)


class Blackhole(Middlebox):
    """Silently drops everything while active.

    Used for the outage experiments (Figs. 8 and 9): a path failure that
    produces no explicit signal, only silence.
    """

    def __init__(self, name="", active=False):
        super().__init__(name)
        self.active = active

    def activate(self):
        self.active = True
        if self.link is not None:
            self.link._fluid_touch()

    def deactivate(self):
        self.active = False
        if self.link is not None:
            self.link._fluid_touch()

    def schedule_outage(self, sim, start, end=None):
        """Blackhole the link during ``[start, end)`` simulated seconds."""
        sim.at(start, self.activate)
        if end is not None:
            sim.at(end, self.deactivate)

    def process(self, packet):
        self.processed += 1
        if self.active:
            self.dropped += 1
            return None
        return packet


class RstInjector(Middlebox):
    """Drops matching packets and injects a spurious TCP RST downstream.

    Models the "firewall introducing TCP RST" outage of Fig. 8: the
    receiver sees an explicit RST for the connection and can react
    immediately, unlike a blackhole.
    """

    def __init__(self, name="", active=False, match=None):
        super().__init__(name)
        self.active = active
        self.match = match
        self.injected = 0

    def activate(self):
        self.active = True

    def deactivate(self):
        self.active = False

    def schedule_rst(self, sim, at_time):
        """Inject an RST into the first matching packet after ``at_time``."""
        sim.at(at_time, self.activate)

    def process(self, packet):
        self.processed += 1
        if not self.active or packet.proto != "tcp":
            return packet
        seg = packet.payload
        if self.match is not None and not self.match(packet):
            return packet
        from repro.tcp.segment import Segment

        rst = Segment(
            src_port=seg.src_port,
            dst_port=seg.dst_port,
            seq=seg.seq,
            ack=0,
            flags=frozenset({"RST"}),
            window=0,
        )
        packet.payload = rst
        self.injected += 1
        self.active = False  # one-shot; re-arm via schedule_rst
        return packet


class OptionStrippingFirewall(Middlebox):
    """Removes TCP options whose kind is not in the allowlist.

    This is interference class (iii)/(iv) of Sec. 2 and the reason MPTCP
    needs fallback machinery: its control channel lives in options.
    TCPLS control data lives in the payload and sails through.
    """

    #: kinds every middlebox predates: EOL, NOP, MSS, WScale, SACKperm, TS
    DEFAULT_ALLOWED = frozenset({0, 1, 2, 3, 4, 5, 8})

    def __init__(self, name="", allowed_kinds=None):
        super().__init__(name)
        self.allowed_kinds = (
            frozenset(allowed_kinds) if allowed_kinds is not None
            else self.DEFAULT_ALLOWED
        )
        self.stripped = 0

    def process(self, packet):
        self.processed += 1
        if packet.proto != "tcp":
            return packet
        seg = packet.payload
        kept = [o for o in seg.options if o.kind in self.allowed_kinds]
        if len(kept) != len(seg.options):
            self.stripped += len(seg.options) - len(kept)
            packet.payload = seg.replace(options=tuple(kept))
        return packet


class StatefulFirewall(Middlebox):
    """Allows flows that start with a SYN; drops out-of-state packets.

    Optionally injects RSTs into flows idle longer than ``idle_timeout``
    (the paper's motivating example for Failover on long-lived
    connections).
    """

    def __init__(self, name="", idle_timeout=None, sim=None):
        super().__init__(name)
        self.idle_timeout = idle_timeout
        self.sim = sim
        self._flows = {}

    def _key(self, packet):
        seg = packet.payload
        return (str(packet.src), seg.src_port, str(packet.dst), seg.dst_port)

    def process(self, packet):
        self.processed += 1
        if packet.proto != "tcp":
            return packet
        seg = packet.payload
        key = self._key(packet)
        rkey = (key[2], key[3], key[0], key[1])
        now = self.sim.now if self.sim is not None else 0.0
        if "SYN" in seg.flags:
            self._flows[key] = now
            self._flows[rkey] = now
            return packet
        last = self._flows.get(key)
        if last is None:
            self.dropped += 1
            return None
        if self.idle_timeout is not None and now - last > self.idle_timeout:
            del self._flows[key]
            self._flows.pop(rkey, None)
            from repro.tcp.segment import Segment

            packet.payload = Segment(
                src_port=seg.src_port,
                dst_port=seg.dst_port,
                seq=seg.seq,
                ack=0,
                flags=frozenset({"RST"}),
                window=0,
            )
            return packet
        self._flows[key] = now
        self._flows[rkey] = now
        return packet


class NAT:
    """Source NAT: rewrites (addr, port) on the way out and back.

    Instantiate once, then attach :attr:`outbound` to the
    client-to-server link and :attr:`inbound` to the reverse link; the
    two halves share the translation table.
    """

    def __init__(self, public_address, name="nat", port_base=40000):
        self.public_address = public_address
        self.name = name
        self._next_port = port_base
        self._out_map = {}
        self._in_map = {}
        self.outbound = _NatHalf(self, outbound=True, name=name + "-out")
        self.inbound = _NatHalf(self, outbound=False, name=name + "-in")

    def translate_out(self, packet):
        seg = packet.payload
        key = (packet.src, seg.src_port)
        if key not in self._out_map:
            public = (self.public_address, self._next_port)
            self._next_port += 1
            self._out_map[key] = public
            self._in_map[public] = key
        pub_addr, pub_port = self._out_map[key]
        packet.src = pub_addr
        packet.payload = seg.replace(src_port=pub_port)
        return packet

    def translate_in(self, packet):
        seg = packet.payload
        key = (packet.dst, seg.dst_port)
        orig = self._in_map.get(key)
        if orig is None:
            return None  # unsolicited inbound: drop, like any NAT
        packet.dst = orig[0]
        packet.payload = seg.replace(dst_port=orig[1])
        return packet


class _NatHalf(Middlebox):
    def __init__(self, nat, outbound, name):
        super().__init__(name)
        self.nat = nat
        self.outbound = outbound

    def process(self, packet):
        self.processed += 1
        if packet.proto != "tcp":
            return packet
        if self.outbound:
            return self.nat.translate_out(packet)
        result = self.nat.translate_in(packet)
        if result is None:
            self.dropped += 1
        return result


class Resegmenter(Middlebox):
    """Splits large TCP payloads into ``chunk`` -byte segments.

    Models interference class (vi): offload engines that fragment and
    reassemble TCP packets, which breaks protocols assuming segment
    boundaries survive the path.  TCPLS records are reassembled from the
    bytestream, so they are immune; the middlebox tests assert that.
    """

    def __init__(self, name="", chunk=536):
        super().__init__(name)
        self.chunk = chunk
        self.split = 0

    def process(self, packet):
        self.processed += 1
        if packet.proto != "tcp":
            return packet
        seg = packet.payload
        if len(seg.payload) <= self.chunk:
            return packet
        self.split += 1
        offset = self.chunk
        while offset < len(seg.payload):
            piece = seg.replace(
                seq=(seg.seq + offset) & 0xFFFFFFFF,
                payload=seg.payload[offset:offset + self.chunk],
                flags=seg.flags - {"FIN"} if offset + self.chunk < len(
                    seg.payload) else seg.flags,
            )
            extra = packet.copy()
            extra.payload = piece
            self.link.inject(extra)
            offset += self.chunk
        packet.payload = seg.replace(payload=seg.payload[: self.chunk],
                                     flags=seg.flags - {"FIN"})
        return packet


class PacketLogger(Middlebox):
    """Records (time, packet repr, size) for debugging and traces."""

    def __init__(self, sim, name=""):
        super().__init__(name)
        self.sim = sim
        self.records = []

    def process(self, packet):
        self.processed += 1
        self.records.append((self.sim.now, repr(packet), packet.wire_size()))
        return packet
