"""Multihomed end hosts.

A :class:`Host` owns one or more :class:`Interface` objects (e.g. a
Wi-Fi IPv4 interface and an LTE IPv6 interface), a routing table, and a
registry of transport stacks (TCP, UDP) that packets are demultiplexed
to.  This mirrors what the TCPLS prototype sees from the OS: several
local addresses, each reaching the peer over a disjoint path.
"""


class Interface:
    """A network interface: one address, one attached transmit link."""

    def __init__(self, name, address, tx_link=None):
        self.name = name
        self.address = address
        self.tx_link = tx_link
        self.up = True

    def set_up(self, up):
        """Administratively toggle the interface."""
        self.up = up

    def __repr__(self):
        state = "up" if self.up else "down"
        return "Interface(%s, %s, %s)" % (self.name, self.address, state)


class Host:
    """An end host with interfaces, routes and transport stacks."""

    def __init__(self, sim, name):
        self.sim = sim
        self.name = name
        self.interfaces = []
        self._routes = {}
        self._default_routes = {}
        self._stacks = {}
        self.rx_packets = 0
        self.tx_packets = 0
        #: memoised route() results keyed by (dst, src); address
        #: comparisons go through the ipaddress module and dominate the
        #: per-packet send cost otherwise.  Invalidated by every
        #: topology mutation (interfaces and addresses are immutable
        #: once attached, and up/down is checked after routing).
        self._route_cache = {}

    # -- configuration -------------------------------------------------

    def add_interface(self, name, address, tx_link=None):
        """Attach a new interface and return it."""
        iface = Interface(name, address, tx_link)
        self.interfaces.append(iface)
        self._route_cache.clear()
        return iface

    def interface_for_address(self, address):
        """Find the interface owning a local address, or None."""
        for iface in self.interfaces:
            if iface.address == address:
                return iface
        return None

    def addresses(self, family=None):
        """All local addresses, optionally filtered by family."""
        return [
            i.address
            for i in self.interfaces
            if family is None or i.address.family == family
        ]

    def add_route(self, dst_address, interface):
        """Route an exact destination address through an interface."""
        self._routes[dst_address] = interface
        self._route_cache.clear()

    def add_default_route(self, family, interface):
        """Per-family fallback route."""
        self._default_routes[family] = interface
        self._route_cache.clear()

    def register_stack(self, proto, stack):
        """Register the transport stack handling ``proto`` packets."""
        self._stacks[proto] = stack

    def stack(self, proto):
        return self._stacks.get(proto)

    # -- data path -----------------------------------------------------

    def route(self, dst_address, src_address=None):
        """Pick the egress interface for a destination.

        Source-address routing takes precedence: a transport that bound
        a specific local address (how TCPLS pins connections to paths)
        always leaves through the owning interface.
        """
        cache = self._route_cache
        key = (dst_address, src_address)
        try:
            return cache[key]
        except KeyError:
            pass
        iface = None
        if src_address is not None:
            iface = self.interface_for_address(src_address)
        if iface is None:
            iface = self._routes.get(dst_address)
        if iface is None:
            iface = self._default_routes.get(dst_address.family)
        cache[key] = iface
        return iface

    def send(self, packet):
        """Transmit a packet out of the interface routing selects.

        Returns True if the packet was handed to a link, False if no
        usable route exists (down interface or missing route) -- the
        caller sees that as a silent blackhole, exactly like an OS
        dropping on a dead interface.
        """
        iface = self.route(packet.dst, packet.src)
        if iface is None or not iface.up or iface.tx_link is None:
            return False
        self.tx_packets += 1
        iface.tx_link.send(packet)
        return True

    def send_train(self, packets):
        """Transmit a burst of same-flow packets as one link train.

        All packets must share ``(src, dst)`` -- the caller (the TCP
        segmentation-offload path) guarantees it, so routing runs once
        for the whole train.  Same silent-blackhole semantics as
        :meth:`send`.
        """
        iface = self.route(packets[0].dst, packets[0].src)
        if iface is None or not iface.up or iface.tx_link is None:
            return False
        self.tx_packets += len(packets)
        iface.tx_link.send_train(packets)
        return True

    def receive(self, packet):
        """Link delivery entry point; demux to the transport stack."""
        self.rx_packets += 1
        if not self._local_address(packet.dst):
            return  # not for us; hosts do not forward
        stack = self._stacks.get(packet.proto)
        if stack is not None:
            stack.receive(packet)

    def _local_address(self, address):
        return any(i.address == address for i in self.interfaces)

    def __repr__(self):
        return "Host(%s, %d ifaces)" % (self.name, len(self.interfaces))
