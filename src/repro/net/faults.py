"""Deterministic fault injection for links.

Faults are the third interposition layer of the simulator, next to the
administrative ``Link.up`` flag and the middlebox chain:

* the **fault layer** (this module) models the *network* misbehaving —
  link flaps, bursty (Gilbert–Elliott) loss, one-way blackholes, bit
  corruption, latency spikes;
* **middleboxes** (:mod:`repro.net.middlebox`) model *equipment* that
  parses and rewrites packets (NATs, firewalls, resegmenters).

Faults attach to a :class:`~repro.net.link.Link` via
:meth:`~repro.net.link.Link.add_fault` and are consulted twice: at
``send()`` (before the drop-tail queue, so a faulted packet never
occupies queue space) and again at delivery (so an outage also kills
packets that were already in flight, exactly like the ``Blackhole``
middlebox).  Every fault decision is drawn either from scheduled time
windows or from a dedicated ``random.Random`` seeded from the
simulator RNG at attach time, so identical seeds produce bit-for-bit
identical drop sequences.

The verdict protocol of :meth:`Fault.filter` /
:meth:`Fault.at_delivery`:

* ``None``      — pass the packet untouched,
* :data:`DROP`  — drop it (the link books the drop under the fault's
  :attr:`~Fault.kind` in ``LinkStats.drop_reasons``),
* a ``float``   — extra one-way delay in seconds (latency faults).

Mutating faults (bit corruption in ``deliver`` mode) rewrite
``packet.payload`` in place and return ``None``.

Scheduling fault *activity* over time is the job of
:mod:`repro.net.scenario`; this module only defines the per-packet
machinery.
"""

import random

#: Sentinel verdict: the fault consumed (dropped) the packet.
DROP = object()


class Fault:
    """Base class for per-packet fault models.

    Parameters
    ----------
    name:
        Optional label used in reprs; defaults to :attr:`kind`.
    start, end:
        Activity window in simulated seconds.  Outside ``[start, end)``
        the fault passes every packet.  ``end=None`` means forever.
    """

    #: Short identifier used as the drop-reason key in ``LinkStats``.
    kind = "fault"

    def __init__(self, name="", start=0.0, end=None):
        self.name = name or self.kind
        self.start = start
        self.end = end
        self.link = None
        self.processed = 0
        self.dropped = 0

    def attach(self, link):
        """Called by :meth:`Link.add_fault`; binds the fault to a link."""
        self.link = link

    def window_active(self, now):
        """Whether ``now`` falls inside the fault's activity window."""
        return now >= self.start and (self.end is None or now < self.end)

    def filter(self, packet, now):
        """Send-time verdict: ``None`` / :data:`DROP` / extra delay."""
        return None

    def at_delivery(self, packet, now):
        """Delivery-time verdict for in-flight packets.

        Only outage-style faults override this; stochastic faults must
        decide once, at send time, or the drop sequence would depend on
        queueing delays.
        """
        return None

    def _seeded_rng(self, seed):
        """A private generator: explicit seed, or derived from the
        simulator RNG at attach time (still fully deterministic)."""
        if seed is not None:
            return random.Random(seed)
        if self.link is None:
            raise RuntimeError(
                "%s needs seed= when used before attach()" % type(self).__name__
            )
        return random.Random(self.link.sim.rng.getrandbits(32))

    def __repr__(self):
        return "%s(%s)" % (type(self).__name__, self.name)


class LinkFlap(Fault):
    """Hard outage: drops 100%% of packets while *down*, 0%% otherwise.

    The link is down when :attr:`forced_down` is set (manual control,
    used by rotating-outage schedules) or when the current time falls
    inside any of the configured ``(start, end)`` windows (``end=None``
    = down forever).  Because a :class:`~repro.net.link.Link` is
    unidirectional, a flap on a single link *is* a one-way blackhole;
    flap both links of a path for a symmetric outage.

    In-flight packets are also dropped at delivery time while down,
    matching the behaviour of the ``Blackhole`` middlebox the outage
    benchmarks historically used.
    """

    kind = "flap"

    def __init__(self, windows=(), name=""):
        super().__init__(name)
        self.windows = [tuple(w) for w in windows]
        self.forced_down = False

    def add_window(self, start, end=None):
        """Schedule an outage during ``[start, end)``; returns self."""
        self.windows.append((start, end))
        return self

    def flap_every(self, period, down_for, start=0.0, until=None):
        """Periodic flapping: down for ``down_for`` s every ``period`` s,
        from ``start`` until ``until`` (required — the window list is
        materialised up front to stay inspectable)."""
        if until is None:
            raise ValueError("flap_every requires until=")
        if down_for >= period:
            raise ValueError("down_for must be shorter than period")
        t = start
        while t < until:
            self.windows.append((t, min(t + down_for, until)))
            t += period
        return self

    def force(self, down):
        """Manually hold the link down (or release it)."""
        self.forced_down = down
        if self.link is not None:
            self.link._fluid_touch()

    def reopen(self, now):
        """Bring the link back up *now*: clears the forced flag and
        closes any window that is currently open."""
        self.forced_down = False
        self.windows = [
            (s, now if (e is None or e > now) and s <= now else e)
            for s, e in self.windows
        ]

    def down_at(self, now):
        if self.forced_down:
            return True
        for s, e in self.windows:
            if now >= s and (e is None or now < e):
                return True
        return False

    def filter(self, packet, now):
        self.processed += 1
        if self.down_at(now):
            self.dropped += 1
            return DROP
        return None

    def at_delivery(self, packet, now):
        if self.down_at(now):
            self.dropped += 1
            return DROP
        return None


class BlackholeFault(LinkFlap):
    """A one-way blackhole: silence starting at ``start`` (until ``end``).

    Sugar over :class:`LinkFlap` with a single window and its own
    drop-reason key, so outage counters stay distinguishable from
    scripted flapping.
    """

    kind = "blackhole"

    def __init__(self, start, end=None, name=""):
        super().__init__(windows=[(start, end)], name=name)


class GilbertElliott(Fault):
    """Two-state bursty loss (the Gilbert–Elliott channel).

    The chain advances once per packet while the activity window is
    open: in the *good* state packets drop with ``loss_good``, in the
    *bad* state with ``loss_bad``; after emitting the verdict the state
    flips good→bad with probability ``p_gb`` and bad→good with
    ``p_bg``.  Mean bad-state burst length is ``1/p_bg`` packets and
    the stationary bad-state share is ``p_gb / (p_gb + p_bg)``.

    All draws come from a private RNG (``seed=`` or derived from the
    simulator RNG at attach), so a fixed seed yields an identical drop
    sequence regardless of what else the simulation randomises.
    """

    kind = "burst-loss"

    GOOD, BAD = "good", "bad"

    def __init__(self, p_gb, p_bg, loss_good=0.0, loss_bad=1.0,
                 seed=None, start=0.0, end=None, name=""):
        super().__init__(name, start=start, end=end)
        if not (0.0 <= p_gb <= 1.0 and 0.0 < p_bg <= 1.0):
            raise ValueError("transition probabilities must be in (0, 1]")
        self.p_gb = p_gb
        self.p_bg = p_bg
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self._seed = seed
        self.rng = None
        self.state = self.GOOD
        self.bursts = 0           # completed bad-state runs
        self.burst_lengths = []   # packets spent in each completed run
        self._run = 0

    def attach(self, link):
        super().attach(link)
        if self.rng is None:
            self.rng = self._seeded_rng(self._seed)

    def filter(self, packet, now):
        if not self.window_active(now):
            return None
        if self.rng is None:                      # direct (unit-test) use
            self.rng = self._seeded_rng(self._seed)
        self.processed += 1
        loss = self.loss_bad if self.state == self.BAD else self.loss_good
        drop = loss > 0.0 and self.rng.random() < loss
        if self.state == self.BAD:
            self._run += 1
            if self.rng.random() < self.p_bg:
                self.state = self.GOOD
                self.bursts += 1
                self.burst_lengths.append(self._run)
                self._run = 0
        else:
            if self.rng.random() < self.p_gb:
                self.state = self.BAD
        if drop:
            self.dropped += 1
            return DROP
        return None

    def mean_burst_length(self):
        """Average packets per completed bad-state run."""
        if not self.burst_lengths:
            return 0.0
        return sum(self.burst_lengths) / len(self.burst_lengths)


class BitCorruption(Fault):
    """On-path bit corruption at a per-packet ``rate``.

    ``mode="drop"`` (default) models an end host whose checksum catches
    the damage: the packet is discarded, which from the transport's view
    is loss with a distinct counter.  ``mode="deliver"`` actually flips
    one random bit of the transport payload and delivers the packet —
    the middlebox-interference case of Nowlan et al., useful for
    asserting that authenticated records detect the damage.  Packets
    without a mutable payload (pure ACKs, non-TCP PDUs) are dropped in
    either mode, standing in for header corruption.
    """

    kind = "corruption"

    def __init__(self, rate, mode="drop", seed=None, start=0.0, end=None,
                 name=""):
        super().__init__(name, start=start, end=end)
        if mode not in ("drop", "deliver"):
            raise ValueError("mode must be 'drop' or 'deliver'")
        self.rate = rate
        self.mode = mode
        self._seed = seed
        self.rng = None
        self.corrupted = 0

    def attach(self, link):
        super().attach(link)
        if self.rng is None:
            self.rng = self._seeded_rng(self._seed)

    def filter(self, packet, now):
        if not self.window_active(now):
            return None
        if self.rng is None:
            self.rng = self._seeded_rng(self._seed)
        self.processed += 1
        if self.rate <= 0.0 or self.rng.random() >= self.rate:
            return None
        self.corrupted += 1
        seg = packet.payload
        data = getattr(seg, "payload", b"")
        if self.mode == "drop" or not data or not hasattr(seg, "replace"):
            self.dropped += 1
            return DROP
        data = bytes(data)  # payloads may be zero-copy memoryviews
        i = self.rng.randrange(len(data))
        flipped = data[i] ^ (1 << self.rng.randrange(8))
        packet.payload = seg.replace(
            payload=data[:i] + bytes((flipped,)) + data[i + 1:])
        return None


class LatencySpike(Fault):
    """Adds ``extra`` seconds of one-way delay while active.

    Models bufferbloat episodes and route changes.  On rate-limited
    links the FIFO clamp in :class:`~repro.net.link.Link` keeps
    delivery order intact even when the spike window closes; on
    infinite-rate links a closing spike can reorder, just like jitter.
    ``extra`` may be a callable ``extra(rng) -> seconds`` for randomised
    spikes drawn from the fault's private RNG.
    """

    kind = "latency"

    def __init__(self, extra, start=0.0, end=None, seed=None, name=""):
        super().__init__(name, start=start, end=end)
        self.extra = extra
        self._seed = seed
        self.rng = None
        self.delayed = 0

    def attach(self, link):
        super().attach(link)
        if self.rng is None and callable(self.extra):
            self.rng = self._seeded_rng(self._seed)

    def filter(self, packet, now):
        if not self.window_active(now):
            return None
        self.processed += 1
        self.delayed += 1
        if callable(self.extra):
            if self.rng is None:
                self.rng = self._seeded_rng(self._seed)
            return float(self.extra(self.rng))
        return float(self.extra)
