"""Deterministic discrete-event simulator core.

Every other component in the repository (TCP stack, TCPLS sessions,
MPTCP and QUIC baselines) runs on top of this event loop.  Time is a
float in seconds.  Events with equal timestamps fire in the order they
were scheduled, which keeps every experiment reproducible bit-for-bit.

Cancellation is lazy: a cancelled event stays in the heap and is
skipped when popped.  The TCP retransmission timer cancels and re-arms
on every ACK, so under bulk transfer most of the heap can end up being
dead timers; the simulator therefore counts cancellations and compacts
the heap (filter + heapify) once cancelled entries dominate.
Compaction cannot change firing order -- the heap order is total over
``(time, seq)`` -- so traces are bit-identical with or without it.

Packet trains (:meth:`Simulator.at_train`) batch a sequence of
already-ordered deliveries behind a single heap entry.  Each delivery
still fires at its own timestamp with its own sequence number -- the
numbers it would have drawn had it been scheduled individually -- so
firing order is bit-identical to per-packet scheduling.  The win is
*peeling*: after one delivery fires, the next one in the train runs
without a heap push/pop whenever no other queued event sorts before
it, which under bulk transfer is nearly always.
"""

import heapq
import itertools
import random

#: default heap-compaction threshold: never compact below this many
#: cancelled entries (tiny heaps are cheaper to pop through than to
#: rebuild).  Per-instance override: ``Simulator(min_compact=N)``.
MIN_COMPACT = 64

#: backwards-compatible alias (pre-fluid name).
_COMPACT_MIN_CANCELLED = MIN_COMPACT


class Event:
    """A scheduled callback.

    Returned by :meth:`Simulator.schedule` / :meth:`Simulator.at` so the
    caller can cancel a pending timer (e.g. a retransmission timeout
    that was satisfied by an ACK).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim")

    def __init__(self, time, seq, fn, args, sim=None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self):
        """Prevent the event from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            sim._note_cancelled()

    def __lt__(self, other):
        return (self.time, self.seq) < (other.time, other.seq)


class TrainEvent:
    """A batch of ordered deliveries behind one heap entry.

    ``entries`` is a list of ``(time, seq, payload)`` with
    non-decreasing ``(time, seq)``; ``index`` points at the next entry
    to fire.  ``time``/``seq`` mirror the head entry so the event sorts
    in the heap exactly where the head would have sorted on its own.
    """

    __slots__ = ("time", "seq", "entries", "index", "fn", "cancelled",
                 "_sim", "_in_queue")

    def __init__(self, entries, fn, sim):
        self.entries = entries
        self.index = 0
        self.fn = fn
        self.cancelled = False
        self._sim = sim
        self._in_queue = False
        self.time, self.seq = entries[0][0], entries[0][1]

    def cancel(self):
        """Drop every not-yet-fired delivery.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is None:
            return
        remaining = len(self.entries) - self.index
        if self._in_queue:
            # The head occupies a queue slot; the rest were counted in
            # the simulator's train-pending tally.
            sim._train_pending -= remaining - 1
            sim._note_cancelled()
        else:
            # Mid-execution cancel (a delivery callback cancelled us):
            # every unfired entry is still in the pending tally.
            sim._train_pending -= remaining

    def remaining(self):
        return len(self.entries) - self.index

    def __lt__(self, other):
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """Single-threaded discrete-event loop with deterministic ordering.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned random generator.  All stochastic
        behaviour (link loss, jitter) must draw from :attr:`rng` so runs
        are reproducible.
    min_compact:
        Heap-compaction threshold for this instance (defaults to
        :data:`MIN_COMPACT`): lazy-cancelled entries are only swept once
        at least this many have accumulated *and* they dominate the
        heap.
    """

    def __init__(self, seed=0, min_compact=None):
        from repro.obs.bus import EventBus

        self.now = 0.0
        self.rng = random.Random(seed)
        self.min_compact = MIN_COMPACT if min_compact is None \
            else int(min_compact)
        self._queue = []
        self._seq = itertools.count()
        self._running = False
        #: cancelled-but-still-queued event count; keeps
        #: :attr:`pending_events` O(1) and drives compaction.
        self._cancelled = 0
        #: number of heap compactions performed (perf observability).
        self.compactions = 0
        #: deliveries queued inside train events beyond each train's
        #: head (keeps :attr:`pending_events` truthful and O(1)).
        self._train_pending = 0
        #: train deliveries that fired without a heap push/pop.
        self.train_peels = 0
        #: train events pushed (each covers >= 1 deliveries).
        self.trains_scheduled = 0
        #: the simulation-wide observability bus (see :mod:`repro.obs`);
        #: emission is a near-no-op until something subscribes.
        self.bus = EventBus(self)
        #: the attached fluid fast-forward engine, if any (see
        #: :mod:`repro.net.fluid`).  Links and faults notify it of
        #: immediate topology changes through this hook.
        self.fluid = None

    def attach_fluid(self, engine):
        """Install a :class:`~repro.net.fluid.FluidEngine` as this
        simulation's fast-forward layer (done by its constructor)."""
        self.fluid = engine
        return engine

    @property
    def fluid_leaps(self):
        """Closed-form fast-forward advances performed (0 without an
        attached fluid engine)."""
        return self.fluid.leaps if self.fluid is not None else 0

    @property
    def fluid_leapt_time(self):
        """Simulated seconds covered by fluid leaps."""
        return self.fluid.leapt_time if self.fluid is not None else 0.0

    def schedule(self, delay, fn, *args):
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("cannot schedule into the past: delay=%r" % delay)
        return self.at(self.now + delay, fn, *args)

    def at(self, time, fn, *args):
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise ValueError(
                "cannot schedule into the past: time=%r < now=%r" % (time, self.now)
            )
        event = Event(time, next(self._seq), fn, args, self)
        heapq.heappush(self._queue, event)
        return event

    def at_train(self, entries, fn):
        """Schedule ``fn(payload)`` at ``time`` for each ``(time,
        payload)`` entry, batched behind as few heap entries as
        possible.

        Every entry draws its own sequence number -- the same numbers
        individual :meth:`at` calls would have drawn -- so firing order
        is bit-identical to scheduling each entry separately.  Entries
        whose times run backwards split the train (each pushed run must
        be internally ordered); the heap restores global order.

        Returns the :class:`TrainEvent` list (usually length 1).
        """
        events = []
        run = []
        last = None
        for time, payload in entries:
            if time < self.now:
                raise ValueError(
                    "cannot schedule into the past: time=%r < now=%r"
                    % (time, self.now)
                )
            if last is not None and time < last:
                events.append(self._push_train(run, fn))
                run = []
            run.append((time, next(self._seq), payload))
            last = time
        if run:
            events.append(self._push_train(run, fn))
        return events

    def _push_train(self, stamped, fn):
        event = TrainEvent(stamped, fn, self)
        event._in_queue = True
        heapq.heappush(self._queue, event)
        self._train_pending += len(stamped) - 1
        self.trains_scheduled += 1
        return event

    def _note_cancelled(self):
        """An in-queue event was cancelled; compact if dead entries
        dominate the heap."""
        self._cancelled += 1
        if (self._cancelled >= self.min_compact
                and self._cancelled * 2 >= len(self._queue)):
            self._compact()

    def _compact(self):
        """Drop cancelled entries and re-heapify.

        Heap order is total over ``(time, seq)``, so rebuilding the heap
        from the survivors pops in exactly the same order the lazy path
        would have produced.
        """
        before = len(self._queue)
        self._queue = [e for e in self._queue if not e.cancelled]
        heapq.heapify(self._queue)
        self._cancelled = 0
        self.compactions += 1
        if self.bus.wants("perf"):
            self.bus.emit("perf", "heap_compaction", {
                "before": before,
                "after": len(self._queue),
                "compactions": self.compactions,
            })

    def run(self, until=None, max_events=None):
        """Drain the event queue.

        Parameters
        ----------
        until:
            Stop once simulated time would exceed this value.  Events at
            exactly ``until`` still run.
        max_events:
            Safety valve for tests; raise ``RuntimeError`` if more than
            this many events fire.
        """
        self._running = True
        fired = 0
        try:
            while self._queue:
                event = self._queue[0]
                if until is not None and event.time > until:
                    self.now = until
                    break
                heapq.heappop(self._queue)
                if type(event) is TrainEvent:
                    event._in_queue = False
                    if event.cancelled:
                        self._cancelled -= 1
                        continue
                    fired = self._fire_train(event, until, max_events,
                                             fired)
                    continue
                # Detach so a cancel() after firing (or after this pop)
                # cannot skew the in-queue cancelled count.
                event._sim = None
                if event.cancelled:
                    self._cancelled -= 1
                    continue
                self.now = event.time
                event.fn(*event.args)
                fired += 1
                if max_events is not None and fired > max_events:
                    raise RuntimeError("simulation exceeded %d events" % max_events)
            else:
                if until is not None and until > self.now:
                    self.now = until
        finally:
            self._running = False
        return fired

    def _fire_train(self, event, until, max_events, fired):
        """Fire train deliveries, peeling consecutive ones inline.

        After each delivery, the next entry runs without touching the
        heap iff nothing queued sorts before it -- exactly the entry
        the per-packet scheduler would pop next.  Otherwise the train
        re-enters the heap keyed by its next ``(time, seq)``.
        """
        entries = event.entries
        n = len(entries)
        queue = self._queue
        while True:
            time, _seq, payload = entries[event.index]
            self.now = time
            event.index += 1
            event.fn(payload)
            fired += 1
            if max_events is not None and fired > max_events:
                raise RuntimeError(
                    "simulation exceeded %d events" % max_events)
            if event.index >= n:
                event._sim = None
                return fired
            if event.cancelled:
                # cancel() already settled the pending tally.
                return fired
            next_time = entries[event.index][0]
            next_seq = entries[event.index][1]
            park = until is not None and next_time > until
            if not park and queue:
                head = queue[0]
                park = (head.time, head.seq) < (next_time, next_seq)
            if park:
                event.time, event.seq = next_time, next_seq
                event._in_queue = True
                self._train_pending -= 1
                heapq.heappush(queue, event)
                return fired
            self._train_pending -= 1
            self.train_peels += 1

    def run_until(self, predicate, check_interval=0.01, timeout=600.0):
        """Run until ``predicate()`` is true or ``timeout`` sim-seconds pass.

        Returns True if the predicate became true, False on timeout.
        The predicate is evaluated every ``check_interval`` seconds of
        simulated time, interleaved with normal event processing.
        """
        deadline = self.now + timeout
        satisfied = [False]

        def probe():
            if predicate():
                satisfied[0] = True
                return
            if self.now < deadline:
                self.schedule(check_interval, probe)

        probe()
        while self._queue and not satisfied[0] and self.now <= deadline:
            self.run(until=min(deadline, self.now + check_interval))
            if satisfied[0]:
                break
        return satisfied[0] or predicate()

    @property
    def pending_events(self):
        """Number of not-yet-cancelled events in the queue, counting
        every delivery still inside a train (O(1))."""
        return len(self._queue) - self._cancelled + self._train_pending
