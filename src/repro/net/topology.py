"""Topology builders for the evaluation scenarios.

All of the paper's emulated experiments (Secs. 5.3-5.6) run on the same
shape of network: a dual-stack (or n-path) client and server joined by
fully disjoint paths, each path with its own bandwidth and latency.
:func:`build_multipath` constructs that network and pre-attaches a
:class:`~repro.net.middlebox.Blackhole` on every path so outages can be
scripted directly.
"""

from repro.net.address import IPAddress
from repro.net.host import Host
from repro.net.link import Link, duplex_link
from repro.net.middlebox import Blackhole
from repro.net.scenario import Scenario


class PathInfo:
    """One disjoint path between the client and server."""

    __slots__ = (
        "index",
        "family",
        "client_addr",
        "server_addr",
        "c2s",
        "s2c",
        "blackhole_c2s",
        "blackhole_s2c",
    )

    def __init__(self, index, family, client_addr, server_addr, c2s, s2c,
                 blackhole_c2s, blackhole_s2c):
        self.index = index
        self.family = family
        self.client_addr = client_addr
        self.server_addr = server_addr
        self.c2s = c2s
        self.s2c = s2c
        self.blackhole_c2s = blackhole_c2s
        self.blackhole_s2c = blackhole_s2c

    def blackhole(self, sim, start, end=None):
        """Blackhole both directions during ``[start, end)``."""
        self.blackhole_c2s.schedule_outage(sim, start, end)
        self.blackhole_s2c.schedule_outage(sim, start, end)

    def set_blackholed(self, active):
        """Immediately (de)activate the blackhole in both directions."""
        for hole in (self.blackhole_c2s, self.blackhole_s2c):
            if active:
                hole.activate()
            else:
                hole.deactivate()


class MultipathTopology:
    """A client and server joined by ``n`` disjoint paths."""

    def __init__(self, sim, client, server, paths):
        self.sim = sim
        self.client = client
        self.server = server
        self.paths = paths

    def path(self, index):
        return self.paths[index]

    def client_endpoint_pairs(self):
        """(client_addr, server_addr) per path, in path order."""
        return [(p.client_addr, p.server_addr) for p in self.paths]


class FaultyTopology(MultipathTopology):
    """A multipath topology with a :class:`Scenario` pre-installed.

    Adds per-path verbs for the adversity families of the evaluation:
    hard outages (flaps / blackholes), rotating outages (Fig. 9),
    spurious RSTs (Fig. 8), bursty loss and corruption.  All of them
    delegate to the scenario, so every scripted fault is replayed
    identically under the same simulator seed.
    """

    def __init__(self, sim, client, server, paths, scenario=None):
        super().__init__(sim, client, server, paths)
        self.scenario = (scenario or Scenario()).install(sim)

    def path_links(self, index, direction="both"):
        """Links of path ``index``: ``"c2s"``, ``"s2c"`` or ``"both"``."""
        path = self.paths[index]
        if direction == "both":
            return [path.c2s, path.s2c]
        return [getattr(path, direction)]

    def flap_path(self, index, at, duration=None, direction="both"):
        """Scripted outage on path ``index`` starting at ``at`` for
        ``duration`` seconds (``None`` = forever)."""
        end = None if duration is None else at + duration
        for link in self.path_links(index, direction):
            self.scenario.flap_fault(link).add_window(at, end)
        return self

    def set_path_down(self, index, down=True, direction="both"):
        """Immediately force path ``index`` down (or back up)."""
        for link in self.path_links(index, direction):
            self.scenario.flap_fault(link).force(down)
        return self

    def rotate_working(self, period, start=0.0, order=None, until=None):
        """Fig. 9's adversity: exactly one *working* path at a time,
        advancing through ``order`` (default: path order) every
        ``period`` seconds starting at ``start``."""
        order = list(order) if order is not None else [
            p.index for p in self.paths]
        state = {"step": 0}

        def advance():
            working = order[state["step"] % len(order)]
            for path in self.paths:
                self.set_path_down(path.index, path.index != working)
            state["step"] += 1

        self.scenario.at(start).call(advance)
        self.scenario.every(period, start=start + period,
                            until=until).call(advance)
        return self

    def rst_path(self, index, at, direction="s2c", match=None):
        """Arm a one-shot spurious RST on path ``index`` at ``at``;
        returns the injector middlebox."""
        (link,) = self.path_links(index, direction)
        return self.scenario.at(at).rst(link, match=match)

    def burst_loss(self, index, p_gb, p_bg, t0=0.0, t1=None,
                   loss_good=0.0, loss_bad=1.0, seed=None,
                   direction="both"):
        """Gilbert–Elliott bursty loss on path ``index`` during
        ``[t0, t1)``; returns the attached fault objects."""
        faults = []
        for link in self.path_links(index, direction):
            faults.extend(
                self.scenario.between(t0, t1).gilbert(
                    link, p_gb, p_bg, loss_good=loss_good,
                    loss_bad=loss_bad, seed=seed))
        return faults

    def corrupt_path(self, index, rate, t0=0.0, t1=None, mode="drop",
                     seed=None, direction="both"):
        """Bit corruption on path ``index`` during ``[t0, t1)``."""
        faults = []
        for link in self.path_links(index, direction):
            faults.extend(
                self.scenario.between(t0, t1).corrupt(
                    link, rate, mode=mode, seed=seed))
        return faults

    def fault_drops(self, index=None):
        """Total fault-layer drops, per path or across the topology."""
        paths = self.paths if index is None else [self.paths[index]]
        total = 0
        for path in paths:
            for link in (path.c2s, path.s2c):
                for reason, n in link.stats.drop_reasons.items():
                    if reason in ("flap", "blackhole", "burst-loss",
                                  "corruption"):
                        total += n
        return total


def build_faulty_multipath(sim, scenario=None, **kwargs):
    """:func:`build_multipath`, wrapped in a :class:`FaultyTopology`
    with ``scenario`` (a fresh one by default) installed on ``sim``."""
    topo = build_multipath(sim, **kwargs)
    return FaultyTopology(sim, topo.client, topo.server, topo.paths,
                          scenario=scenario)


class DumbbellTopology:
    """Leaf links feeding shared core links — the fluid population shape.

    ``leaves[i]`` is the access link of flow group ``i``; ``core`` is
    the shared bottleneck every group crosses; ``backup`` (optional) is
    a second core used by failover scenarios after the primary dies.
    The links carry no hosts or sinks: fluid cohorts only consume
    capacities, fault schedules and :class:`~repro.net.link.LinkStats`,
    never packets.
    """

    def __init__(self, sim, leaves, core, backup=None):
        self.sim = sim
        self.leaves = leaves
        self.core = core
        self.backup = backup

    def links(self):
        out = list(self.leaves) + [self.core]
        if self.backup is not None:
            out.append(self.backup)
        return out

    def path(self, leaf_index, via_backup=False):
        """The link list a flow in group ``leaf_index`` crosses."""
        core = self.backup if via_backup else self.core
        return [self.leaves[leaf_index], core]


def build_dumbbell(sim, n_leaves=8, leaf_rate_bps=1_000_000_000,
                   core_rate_bps=10_000_000_000, delay=0.005,
                   leaf_delays=None, backup=False):
    """Build the shared-bottleneck dumbbell used by the 100k-flow fluid
    scenarios (fairness / incast / failover-storm).

    ``leaf_delays`` optionally varies per-leaf one-way delay so RTT
    weighting is observable; ``backup=True`` adds a second core link for
    failover storms.
    """
    leaves = [
        Link(sim, rate_bps=leaf_rate_bps,
             delay=(leaf_delays[i] if leaf_delays else delay),
             name="leaf%d" % i)
        for i in range(n_leaves)
    ]
    core = Link(sim, rate_bps=core_rate_bps, delay=delay, name="core")
    backup_link = None
    if backup:
        backup_link = Link(sim, rate_bps=core_rate_bps, delay=delay,
                           name="core-backup")
    return DumbbellTopology(sim, leaves, core, backup_link)


def build_multipath(sim, n_paths=2, rate_bps=25_000_000, delay=0.010,
                    mtu=1500, queue_bytes=None, families=None,
                    rates=None, delays=None):
    """Build the paper's Mininet-style disjoint-path network.

    Defaults match Sec. 5: each path offers 25 Mbps with 10 ms one-way
    latency.  Path families alternate IPv4 / IPv6 like the paper's
    dual-stack hosts unless ``families`` overrides them.

    Parameters
    ----------
    rates, delays:
        Optional per-path overrides (lists of length ``n_paths``).

    Returns a :class:`MultipathTopology`.
    """
    client = Host(sim, "client")
    server = Host(sim, "server")
    paths = []
    for i in range(n_paths):
        family = families[i] if families else (4 if i % 2 == 0 else 6)
        if family == 4:
            c_addr = IPAddress("10.%d.0.1" % i)
            s_addr = IPAddress("10.%d.0.2" % i)
        else:
            c_addr = IPAddress("fd%02x::1" % i)
            s_addr = IPAddress("fd%02x::2" % i)
        rate = rates[i] if rates else rate_bps
        dly = delays[i] if delays else delay
        c2s, s2c = duplex_link(
            sim, client, server, rate_bps=rate, delay=dly,
            queue_bytes=queue_bytes, mtu=mtu, name="path%d" % i,
        )
        c_iface = client.add_interface("c%d" % i, c_addr, tx_link=c2s)
        s_iface = server.add_interface("s%d" % i, s_addr, tx_link=s2c)
        client.add_route(s_addr, c_iface)
        server.add_route(c_addr, s_iface)
        hole_c2s = Blackhole(name="bh-c2s-%d" % i)
        hole_s2c = Blackhole(name="bh-s2c-%d" % i)
        c2s.add_middlebox(hole_c2s)
        s2c.add_middlebox(hole_s2c)
        paths.append(
            PathInfo(i, family, c_addr, s_addr, c2s, s2c, hole_c2s, hole_s2c)
        )
    return MultipathTopology(sim, client, server, paths)
