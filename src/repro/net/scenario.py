"""Scripted fault scenarios: *when* things go wrong.

:mod:`repro.net.faults` defines per-packet fault models; a
:class:`Scenario` declares the timeline on which they (and middleboxes,
link parameters, arbitrary callbacks) act, as a small fluent script:

.. code-block:: python

    scenario = (
        Scenario("rotating outage demo")
        .at(3.0).flap(topo.path(0), duration=2.0)       # hard outage
        .between(8.0, 12.0).loss(topo.path(1).c2s, 0.05)
        .between(15.0, 20.0).gilbert(topo.path(0).c2s,
                                     p_gb=0.02, p_bg=0.3)
        .every(5.0, start=25.0).call(rotate_paths)
        .install(sim)
    )

Directives added before :meth:`Scenario.install` are queued; directives
added afterwards schedule immediately, so a scenario can also be driven
live from test code.  Everything a scenario does flows through the
owning :class:`~repro.net.simulator.Simulator`'s event loop and RNG, so
two runs with the same seed replay the exact same fault sequence.

Targets: every verb accepts either a single
:class:`~repro.net.link.Link` (one-way faults) or any object with
``c2s``/``s2c`` attributes — e.g. a
:class:`~repro.net.topology.PathInfo` — in which case the fault is
applied to both directions.
"""

from repro.net.faults import (
    BitCorruption,
    GilbertElliott,
    LatencySpike,
    LinkFlap,
)


def _links_of(target):
    """Normalise a scenario target to a list of unidirectional links."""
    if hasattr(target, "send") and hasattr(target, "connect"):
        return [target]
    if hasattr(target, "c2s") and hasattr(target, "s2c"):
        return [target.c2s, target.s2c]
    raise TypeError(
        "scenario target must be a Link or expose .c2s/.s2c, got %r"
        % (target,)
    )


class Scenario:
    """A deterministic, replayable schedule of fault directives."""

    def __init__(self, name="scenario"):
        self.name = name
        self.sim = None
        self._pending = []      # (time, period, until, fn, label)
        self._flaps = {}        # link -> LinkFlap managed by this scenario
        self.log = []           # (time, label) of fired directives

    # -- fluent entry points ------------------------------------------------

    def at(self, time):
        """One-shot directives firing at absolute sim time ``time``."""
        return Moment(self, time)

    def between(self, t0, t1):
        """Directives active during the window ``[t0, t1)``."""
        if t1 is not None and t1 <= t0:
            raise ValueError("empty scenario window [%r, %r)" % (t0, t1))
        return Window(self, t0, t1)

    def every(self, period, start=None, until=None):
        """Recurring directives: first at ``start`` (default one period
        in), then every ``period`` seconds until ``until``."""
        if period <= 0:
            raise ValueError("period must be positive")
        return Periodic(self, period,
                        period if start is None else start, until)

    # -- installation / scheduling -----------------------------------------

    def install(self, sim):
        """Bind to a simulator and schedule all queued directives."""
        if self.sim is not None:
            if self.sim is not sim:
                raise RuntimeError("scenario already installed on another sim")
            return self
        self.sim = sim
        pending, self._pending = self._pending, []
        for directive in pending:
            self._schedule(directive)
        return self

    def _add(self, time, fn, label, period=None, until=None):
        directive = (time, period, until, fn, label)
        if self.sim is None:
            self._pending.append(directive)
        else:
            self._schedule(directive)
        return self

    def _schedule(self, directive):
        time, period, until, fn, label = directive

        def fire():
            self.log.append((self.sim.now, label))
            fn()
            if period is not None:
                nxt = self.sim.now + period
                if until is None or nxt <= until:
                    self.sim.at(nxt, fire)

        self.sim.at(max(time, self.sim.now), fire)

    # -- managed per-link flap faults --------------------------------------

    def flap_fault(self, link):
        """The scenario-owned :class:`LinkFlap` for ``link``, attaching
        one on first use (a link needs only one; windows accumulate)."""
        fault = self._flaps.get(link)
        if fault is None:
            fault = LinkFlap(name="scenario-flap:%s" % (link.name or "link"))
            link.add_fault(fault)
            self._flaps[link] = fault
        return fault

    def set_down(self, target, down=True):
        """Immediately force the target's links down (or back up)."""
        for link in _links_of(target):
            self.flap_fault(link).force(down)

    def __repr__(self):
        where = "installed" if self.sim is not None else (
            "%d pending" % len(self._pending))
        return "Scenario(%r, %s)" % (self.name, where)


class Moment:
    """One-shot directives at a fixed time (see :meth:`Scenario.at`)."""

    def __init__(self, scenario, time):
        self.scenario = scenario
        self.time = time

    def flap(self, target, duration=None):
        """Take the target down at ``t`` for ``duration`` seconds
        (``None`` = forever).  Windowed — needs no event-loop help, so
        it is also exactly reproducible under event reordering."""
        end = None if duration is None else self.time + duration
        for link in _links_of(target):
            self.scenario.flap_fault(link).add_window(self.time, end)
        return self.scenario

    def down(self, target):
        """Open-ended outage starting at ``t``."""
        return self.flap(target, duration=None)

    def up(self, target):
        """Bring the target back up at ``t``: releases forced-down
        state and closes any open outage window."""
        def reopen():
            for link in _links_of(target):
                self.scenario.flap_fault(link).reopen(self.scenario.sim.now)
        return self.scenario._add(self.time, reopen, "up")

    def rst(self, link, match=None):
        """Arm a one-shot TCP RST injection on ``link`` at ``t``
        (attaches a fresh :class:`RstInjector` middlebox).  Returns the
        injector so callers can inspect ``injected``."""
        from repro.net.middlebox import RstInjector

        injector = RstInjector(name="scenario-rst", match=match)
        link.add_middlebox(injector)
        self.scenario._add(self.time, injector.activate, "rst")
        return injector

    def enable(self, middlebox):
        """Activate a middlebox at ``t`` (``activate()`` or ``.active``)."""
        return self._toggle(middlebox, True, "enable")

    def disable(self, middlebox):
        """Deactivate a middlebox at ``t``."""
        return self._toggle(middlebox, False, "disable")

    def _toggle(self, middlebox, on, label):
        def flip():
            method = getattr(middlebox, "activate" if on else "deactivate",
                             None)
            if method is not None:
                method()
            else:
                middlebox.active = on
        return self.scenario._add(self.time, flip, label)

    def set_delay(self, target, delay):
        """Step-change the propagation delay at ``t`` (route change)."""
        def apply():
            for link in _links_of(target):
                link.delay = delay
        return self.scenario._add(self.time, apply, "set_delay")

    def set_rate(self, target, rate_bps):
        """Step-change the serialization rate at ``t``."""
        def apply():
            for link in _links_of(target):
                link.rate_bps = rate_bps
        return self.scenario._add(self.time, apply, "set_rate")

    def set_loss(self, target, p):
        """Set the i.i.d. loss rate at ``t`` (no automatic restore —
        use :meth:`Window.loss` for a bounded episode)."""
        def apply():
            for link in _links_of(target):
                link.loss_rate = p
        return self.scenario._add(self.time, apply, "set_loss")

    def call(self, fn, *args):
        """Escape hatch: run ``fn(*args)`` at ``t``."""
        return self.scenario._add(
            self.time, lambda: fn(*args), getattr(fn, "__name__", "call"))


class Window:
    """Directives active during ``[t0, t1)`` (see
    :meth:`Scenario.between`)."""

    def __init__(self, scenario, t0, t1):
        self.scenario = scenario
        self.t0 = t0
        self.t1 = t1

    def outage(self, target):
        """Hard outage for the whole window."""
        for link in _links_of(target):
            self.scenario.flap_fault(link).add_window(self.t0, self.t1)
        return self.scenario

    def loss(self, target, p):
        """Raise the i.i.d. loss rate to ``p`` inside the window, then
        restore whatever rate the link had when the window opened."""
        for link in _links_of(target):
            saved = []

            def begin(link=link, saved=saved):
                saved.append(link.loss_rate)
                link.loss_rate = p

            def finish(link=link, saved=saved):
                if saved:
                    link.loss_rate = saved.pop()

            self.scenario._add(self.t0, begin, "loss-on")
            if self.t1 is not None:
                self.scenario._add(self.t1, finish, "loss-off")
        return self.scenario

    def gilbert(self, target, p_gb, p_bg, loss_good=0.0, loss_bad=1.0,
                seed=None):
        """Gilbert–Elliott bursty loss confined to the window.  Returns
        the attached fault objects for stats inspection."""
        faults = []
        for link in _links_of(target):
            fault = GilbertElliott(p_gb, p_bg, loss_good=loss_good,
                                   loss_bad=loss_bad, seed=seed,
                                   start=self.t0, end=self.t1)
            link.add_fault(fault)
            faults.append(fault)
        return faults

    def corrupt(self, target, rate, mode="drop", seed=None):
        """Bit corruption at ``rate`` inside the window; returns the
        attached :class:`BitCorruption` faults."""
        faults = []
        for link in _links_of(target):
            fault = BitCorruption(rate, mode=mode, seed=seed,
                                  start=self.t0, end=self.t1)
            link.add_fault(fault)
            faults.append(fault)
        return faults

    def spike(self, target, extra, seed=None):
        """Add ``extra`` seconds of one-way latency inside the window."""
        faults = []
        for link in _links_of(target):
            fault = LatencySpike(extra, start=self.t0, end=self.t1,
                                 seed=seed)
            link.add_fault(fault)
            faults.append(fault)
        return faults


class Periodic:
    """Recurring directives (see :meth:`Scenario.every`)."""

    def __init__(self, scenario, period, start, until):
        self.scenario = scenario
        self.period = period
        self.start = start
        self.until = until

    def call(self, fn, *args):
        """Run ``fn(*args)`` at ``start``, then every ``period`` s."""
        return self.scenario._add(
            self.start, lambda: fn(*args),
            getattr(fn, "__name__", "periodic"),
            period=self.period, until=self.until)
