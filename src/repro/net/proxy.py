"""Transparent TLS-terminating proxy (the mitmproxy of Sec. 5.2).

A middlebox *host* that terminates both the TCP connection and the TLS
session: toward the client it acts as a TLS server (with the
enterprise-deployed PSK, the analogue of an installed interception CA),
toward the origin it opens its own TLS connection.  Application data is
relayed in both directions; anything TCPLS put into handshake
extensions disappears, because the proxy answers the ClientHello
itself -- which is exactly why a TCPLS client behind such a proxy falls
back to plain TLS ("transparent TLS proxy successfully triggered TCPLS
fallback", Sec. 5.2).
"""

from repro.net.address import Endpoint
from repro.tls.endpoint import TlsClient, TlsError, TlsServer
from repro.tls.record import TlsRecordError


class TlsTerminatingProxy:
    """Accepts TLS on ``listen_port`` and relays to ``origin``.

    Parameters
    ----------
    stack:
        The proxy host's :class:`~repro.tcp.TcpStack`.
    origin:
        ``Endpoint`` of the real server.
    psk:
        The PSK the proxy authenticates with on both legs.
    """

    def __init__(self, sim, stack, listen_port, origin, psk,
                 cipher_names=("null-tag",)):
        self.sim = sim
        self.stack = stack
        self.origin = origin
        self.psk = psk
        self.cipher_names = tuple(cipher_names)
        self.relayed_client_to_origin = 0
        self.relayed_origin_to_client = 0
        self.sessions = 0
        stack.listen(listen_port, self._on_accept)

    def _on_accept(self, client_tcp):
        self.sessions += 1
        upstream_iface = self.stack.host.route(self.origin.addr)
        if upstream_iface is None:
            client_tcp.abort()
            return
        origin_tcp = self.stack.connect(upstream_iface.address, self.origin)
        leg = _ProxySession(self, client_tcp, origin_tcp)
        leg.start()


class _ProxySession:
    """One intercepted session: client<->proxy and proxy<->origin legs."""

    def __init__(self, proxy, client_tcp, origin_tcp):
        self.proxy = proxy
        self.client_tcp = client_tcp
        self.origin_tcp = origin_tcp
        # Toward the client: a plain TLS server (no TCPLS answers).
        self.downstream = TlsServer(proxy.psk, proxy.sim.rng,
                                    cipher_names=proxy.cipher_names)
        # Toward the origin: a plain TLS client (extensions stripped).
        self.upstream = TlsClient(proxy.psk, proxy.sim.rng,
                                  cipher_names=proxy.cipher_names)
        self._client_backlog = []
        self._origin_backlog = []

    def start(self):
        self.downstream.on_application_data = self._from_client
        self.upstream.on_application_data = self._from_origin
        self.downstream.on_handshake_complete = (
            lambda _e: self._flush(self._client_backlog, self.downstream,
                                   self.client_tcp))
        self.upstream.on_handshake_complete = (
            lambda _e: self._flush(self._origin_backlog, self.upstream,
                                   self.origin_tcp))
        self.client_tcp.on_data = lambda _c: self._feed(
            self.downstream, self.client_tcp)
        self.origin_tcp.on_data = lambda _c: self._feed(
            self.upstream, self.origin_tcp)
        self.origin_tcp.on_established = lambda _c: self._start_upstream()

    def _start_upstream(self):
        self.upstream.start()
        self._pump(self.upstream, self.origin_tcp)

    def _feed(self, endpoint, tcp):
        data = tcp.recv()
        if not data:
            return
        try:
            endpoint.feed(data)
        except (TlsError, TlsRecordError):
            self.client_tcp.abort()
            self.origin_tcp.abort()
            return
        self._pump_both()

    def _pump(self, endpoint, tcp):
        out = endpoint.data_to_send()
        if out and tcp.is_open() or out and tcp.state in ("SYN_SENT",
                                                          "SYN_RCVD"):
            tcp.send(out)

    def _pump_both(self):
        self._pump(self.downstream, self.client_tcp)
        self._pump(self.upstream, self.origin_tcp)

    def _from_client(self, _endpoint, data):
        """Client application bytes -> re-encrypt toward the origin."""
        self.proxy.relayed_client_to_origin += len(data)
        if self.upstream.handshake_complete:
            self.upstream.send_application_data(data)
            self._pump(self.upstream, self.origin_tcp)
        else:
            self._origin_backlog.append(data)

    def _from_origin(self, _endpoint, data):
        """Origin application bytes -> re-encrypt toward the client."""
        self.proxy.relayed_origin_to_client += len(data)
        if self.downstream.handshake_complete:
            self.downstream.send_application_data(data)
            self._pump(self.downstream, self.client_tcp)
        else:
            self._client_backlog.append(data)

    def _flush(self, backlog, endpoint, tcp):
        while backlog:
            endpoint.send_application_data(backlog.pop(0))
        self._pump(endpoint, tcp)
