"""Discrete-event network simulator substrate.

This package provides the emulated network that replaces the paper's
Mininet testbed: an event loop, links with bandwidth/latency/drop-tail
queues, multihomed hosts, routers, and programmable middleboxes.

The simulator is fully deterministic: events scheduled at equal times
fire in scheduling order, and all randomness flows through a seeded
``random.Random`` owned by the :class:`Simulator`.
"""

from repro.net.address import Endpoint, IPAddress
from repro.net.link import Link, duplex_link
from repro.net.host import Host, Interface
from repro.net.packet import Packet
from repro.net.router import Router
from repro.net.simulator import Simulator
from repro.net.middlebox import (
    Blackhole,
    Middlebox,
    NAT,
    OptionStrippingFirewall,
    RstInjector,
    Resegmenter,
    StatefulFirewall,
)
from repro.net.faults import (
    BitCorruption,
    BlackholeFault,
    Fault,
    GilbertElliott,
    LatencySpike,
    LinkFlap,
)
from repro.net.scenario import Scenario
from repro.net.fluid import (
    FluidCohort,
    FluidEngine,
    SessionFluidAdapter,
    max_min_shares,
)
from repro.net.topology import (
    DumbbellTopology,
    FaultyTopology,
    MultipathTopology,
    build_dumbbell,
    build_faulty_multipath,
    build_multipath,
)

__all__ = [
    "BitCorruption",
    "Blackhole",
    "BlackholeFault",
    "DumbbellTopology",
    "Endpoint",
    "Fault",
    "FaultyTopology",
    "FluidCohort",
    "FluidEngine",
    "GilbertElliott",
    "Host",
    "IPAddress",
    "Interface",
    "LatencySpike",
    "Link",
    "LinkFlap",
    "Middlebox",
    "MultipathTopology",
    "NAT",
    "OptionStrippingFirewall",
    "Packet",
    "Resegmenter",
    "Router",
    "RstInjector",
    "Scenario",
    "SessionFluidAdapter",
    "Simulator",
    "StatefulFirewall",
    "build_dumbbell",
    "build_faulty_multipath",
    "build_multipath",
    "duplex_link",
    "max_min_shares",
]
