"""Packet-forwarding routers.

Routers connect links and forward by destination address.  The
evaluation topologies are small (a client, a server, and one router or
middlebox per path), so routing is exact-match with per-family
defaults, populated by the topology builders.
"""


class Router:
    """Forwards packets between attached links by destination address."""

    def __init__(self, sim, name):
        self.sim = sim
        self.name = name
        self._routes = {}
        self._default_routes = {}
        self.forwarded = 0

    def add_route(self, dst_address, tx_link):
        """Send packets for ``dst_address`` out of ``tx_link``."""
        self._routes[dst_address] = tx_link

    def add_default_route(self, family, tx_link):
        self._default_routes[family] = tx_link

    def receive(self, packet):
        """Link delivery entry point: decrement TTL and forward."""
        packet.ttl -= 1
        if packet.ttl <= 0:
            return
        link = self._routes.get(packet.dst)
        if link is None:
            link = self._default_routes.get(packet.dst.family)
        if link is not None:
            self.forwarded += 1
            link.send(packet)

    def __repr__(self):
        return "Router(%s)" % self.name
