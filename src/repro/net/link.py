"""Point-to-point links with rate, delay and a drop-tail queue.

A :class:`Link` is unidirectional; :func:`duplex_link` wires a pair.
The model is the classic store-and-forward pipe: packets serialize at
``rate`` bits per second (back-to-back packets queue behind the
transmitter), then propagate for ``delay`` seconds.  The queue is
drop-tail with a byte capacity, which is what gives TCP its loss signal
in the congestion experiments.

Middleboxes (see :mod:`repro.net.middlebox`) are attached to links and
get a chance to drop, mutate, or inject packets between serialization
and delivery.  Faults (see :mod:`repro.net.faults`) are consulted at
send time and again at delivery, and model the network itself
misbehaving: flaps, bursty loss, corruption, latency spikes.

Every packet that dies on a link — administrative down, fault, random
loss, full queue, or middlebox — is booked in
``LinkStats.dropped_packets``/``dropped_bytes`` and itemised by reason
in ``LinkStats.drop_reasons``, so goodput probes and loss accounting
stay truthful no matter which layer killed the packet.
"""

from repro.net import faults as _faults


class LinkStats:
    """Counters exported by every link, used by goodput probes.

    ``drop_reasons`` itemises ``dropped_packets`` by cause: ``"down"``
    (administrative), ``"loss"`` (i.i.d. random loss), ``"queue"``
    (drop-tail overflow), ``"middlebox"``, or a fault's ``kind``
    (``"flap"``, ``"blackhole"``, ``"burst-loss"``, ``"corruption"``).
    """

    __slots__ = ("tx_packets", "tx_bytes", "dropped_packets",
                 "dropped_bytes", "drop_reasons")

    def __init__(self):
        self.tx_packets = 0
        self.tx_bytes = 0
        self.dropped_packets = 0
        self.dropped_bytes = 0
        self.drop_reasons = {}

    def dropped_by(self, reason):
        """Packets dropped for ``reason`` (0 if none were)."""
        return self.drop_reasons.get(reason, 0)


class Link:
    """Unidirectional link.

    Parameters
    ----------
    sim:
        The owning :class:`~repro.net.simulator.Simulator`.
    rate_bps:
        Serialization rate in bits per second (``None`` = infinite).
    delay:
        One-way propagation delay in seconds.
    queue_bytes:
        Drop-tail buffer capacity in bytes (counts queued, not
        in-flight, packets).  Default sized at 2x the bandwidth-delay
        product when a rate is given, else unbounded.
    loss_rate:
        Independent random drop probability applied per packet,
        drawn from the simulator RNG.
    mtu:
        Maximum packet size accepted; larger packets raise, because the
        sending TCP stack is responsible for segmentation.
    """

    _next_obs_id = 0

    def __init__(self, sim, rate_bps=None, delay=0.0, queue_bytes=None,
                 loss_rate=0.0, mtu=1500, name="", jitter=0.0):
        self.sim = sim
        Link._next_obs_id += 1
        #: stable identifier carried in observability events ("link"
        #: field); the human name when given, else a unique ordinal.
        self.obs_name = name or ("link-%d" % Link._next_obs_id)
        self.rate_bps = rate_bps
        self.delay = delay
        #: uniform per-packet extra delay (order-preserving).  Zero by
        #: default; competition experiments enable it to break the
        #: drop-tail phase lockout a perfectly deterministic simulator
        #: otherwise exhibits (ns-2 style randomisation).
        self.jitter = jitter
        self._last_arrival = 0.0
        if queue_bytes is None and rate_bps:
            bdp = rate_bps / 8.0 * max(delay * 2, 0.002)
            queue_bytes = max(int(bdp * 2), 16 * mtu)
        self.queue_bytes = queue_bytes
        self.loss_rate = loss_rate
        self.mtu = mtu
        self.name = name
        self.stats = LinkStats()
        self.middleboxes = []
        self.faults = []
        self.up = True
        self._sink = None
        self._queued_bytes = 0
        self._busy_until = 0.0

    def connect(self, sink):
        """Set the receiving side: any callable ``sink(packet)``."""
        self._sink = sink

    def add_middlebox(self, box):
        """Attach an on-path middlebox (processed in attachment order)."""
        self.middleboxes.append(box)
        box.attach(self)

    def add_fault(self, fault):
        """Attach a fault model (see :mod:`repro.net.faults`).

        Faults run in attachment order at ``send()``; outage-style
        faults are re-checked at delivery so they also kill in-flight
        packets.
        """
        self.faults.append(fault)
        fault.attach(self)
        return fault

    def set_up(self, up):
        """Administratively enable/disable the link (interface hotplug)."""
        self.up = up
        self._fluid_touch()

    def _fluid_touch(self):
        """Notify an attached fluid engine of an immediate capacity
        change (administrative up/down, forced flap, blackhole toggle)
        so it can re-solve shares; a no-op in pure packet mode."""
        engine = self.sim.fluid
        if engine is not None:
            engine.touch()

    def fluid_advance(self, nbytes, npackets):
        """Advance delivery counters in closed form (fluid mode books
        leapt traffic here instead of per-packet ``_deliver`` calls)."""
        self.stats.tx_bytes += nbytes
        self.stats.tx_packets += npackets

    def send(self, packet):
        """Entry point for the transmitting node."""
        arrival = self._admit(packet)
        if arrival is not None:
            self.sim.at(arrival, self._deliver, packet)

    def send_train(self, packets):
        """Entry point for a segment train (TSO/GSO-style burst).

        Admission control -- faults, random loss, queue occupancy,
        serialization spacing -- runs per packet with the exact
        arithmetic (and RNG draw order) of ``len(packets)`` consecutive
        :meth:`send` calls, but all surviving deliveries are enqueued
        behind a single simulator train event (see
        :meth:`~repro.net.simulator.Simulator.at_train`), which the
        event loop peels through without per-packet heap traffic.
        """
        if len(packets) == 1:
            self.send(packets[0])
            return
        entries = []
        try:
            for packet in packets:
                arrival = self._admit(packet)
                if arrival is not None:
                    entries.append((arrival, packet))
        finally:
            if entries:
                self.sim.at_train(entries, self._deliver)

    def _admit(self, packet):
        """Run send-side checks; returns the delivery time, or None if
        the packet died on admission (already booked as a drop)."""
        self._observe("enqueue", packet)
        if not self.up:
            self._drop(packet, "down")
            return None
        size = packet.wire_size()
        if size > self.mtu + 40:
            # Allow jumbo IP headroom; transports must respect the MTU.
            raise ValueError(
                "packet of %d B exceeds link MTU %d on %s"
                % (size, self.mtu, self.name or "link")
            )
        fault_delay = 0.0
        if self.faults:
            now = self.sim.now
            for fault in self.faults:
                verdict = fault.filter(packet, now)
                if verdict is None:
                    continue
                if verdict is _faults.DROP:
                    self._drop(packet, fault.kind)
                    return None
                fault_delay += verdict
            size = packet.wire_size()  # corruption may have resized it
        if self.loss_rate and self.sim.rng.random() < self.loss_rate:
            self._drop(packet, "loss")
            return None
        if self.rate_bps is None:
            return (self.sim.now + self.delay + fault_delay
                    + self._jitter_sample())
        now = self.sim.now
        backlog = max(self._busy_until - now, 0.0)
        queued = backlog * self.rate_bps / 8.0
        if self.queue_bytes is not None and queued + size > self.queue_bytes:
            self._drop(packet, "queue")
            return None
        serialization = size * 8.0 / self.rate_bps
        self._busy_until = max(self._busy_until, now) + serialization
        arrival = (self._busy_until + self.delay + fault_delay
                   + self._jitter_sample())
        # Jitter must not reorder the FIFO pipe; schedule at an absolute
        # time (re-deriving it from a delay loses ULPs and can land one
        # tick before the previous packet).
        arrival = max(arrival, self._last_arrival)
        self._last_arrival = arrival
        return arrival

    def _jitter_sample(self):
        if not self.jitter:
            return 0.0
        return self.sim.rng.random() * self.jitter

    def _drop(self, packet, reason="loss"):
        self.stats.dropped_packets += 1
        self.stats.dropped_bytes += packet.wire_size()
        reasons = self.stats.drop_reasons
        reasons[reason] = reasons.get(reason, 0) + 1
        self._observe("drop", packet, reason=reason)

    def _observe(self, name, packet, reason=None):
        """Emit one link event (skipped entirely when nobody listens)."""
        bus = self.sim.bus
        if not bus.wants("link"):
            return
        data = {"link": self.obs_name, "bytes": packet.wire_size()}
        if reason is not None:
            data["reason"] = reason
        bus.emit("link", name, data)

    def _deliver(self, packet):
        if not self.up:
            self._drop(packet, "down")
            return
        if self.faults:
            now = self.sim.now
            for fault in self.faults:
                if fault.at_delivery(packet, now) is _faults.DROP:
                    self._drop(packet, fault.kind)
                    return
        for box in self.middleboxes:
            processed = box.process(packet)
            if processed is None:
                self._drop(packet, "middlebox")
                return
            packet = processed
        self.stats.tx_packets += 1
        self.stats.tx_bytes += packet.wire_size()
        self._observe("deliver", packet)
        if self._sink is not None:
            self._sink(packet)

    def inject(self, packet):
        """Deliver a packet created on-path (used by RST-injecting boxes)."""
        if self._sink is not None:
            self.sim.schedule(0.0, self._sink, packet)


def duplex_link(sim, a, b, rate_bps=None, delay=0.0, queue_bytes=None,
                loss_rate=0.0, mtu=1500, name=""):
    """Create a bidirectional pipe between nodes ``a`` and ``b``.

    Each node must expose ``receive(packet)``.  Returns the
    ``(a_to_b, b_to_a)`` pair of :class:`Link` objects.
    """
    fwd = Link(sim, rate_bps, delay, queue_bytes, loss_rate, mtu,
               name=name + ">" if name else "")
    rev = Link(sim, rate_bps, delay, queue_bytes, loss_rate, mtu,
               name=name + "<" if name else "")
    fwd.connect(b.receive)
    rev.connect(a.receive)
    return fwd, rev
