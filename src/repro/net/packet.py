"""Network-layer packets.

A :class:`Packet` carries one transport PDU (a TCP segment or a UDP
datagram) between hosts.  Payloads are real byte strings produced by
the transport codecs, so middleboxes can parse and mutate them exactly
as on-path equipment would.
"""

PROTO_TCP = "tcp"
PROTO_UDP = "udp"


class Packet:
    """One IP packet in flight.

    Parameters
    ----------
    src, dst:
        Source/destination :class:`~repro.net.address.IPAddress`.
    proto:
        ``"tcp"`` or ``"udp"``.
    payload:
        Transport PDU.  For TCP this is a :class:`repro.tcp.segment.Segment`;
        for UDP a :class:`repro.baselines.quic.udp.Datagram`-like object.
        The payload must expose ``wire_size()`` returning its byte length
        on the wire (headers + data).
    """

    __slots__ = ("src", "dst", "proto", "payload", "ttl", "meta")

    def __init__(self, src, dst, proto, payload, ttl=64):
        self.src = src
        self.dst = dst
        self.proto = proto
        self.payload = payload
        self.ttl = ttl
        self.meta = {}

    def wire_size(self):
        """Total bytes on the wire: IP header + transport PDU."""
        # Inlined ip_header_size(): this runs a few times per simulated
        # packet (admission, delivery stats, observability).
        return (20 if self.src.family == 4 else 40) + \
            self.payload.wire_size()

    @property
    def family(self):
        return self.src.family

    def copy(self):
        """Shallow copy (payload shared) used by duplicating middleboxes."""
        pkt = Packet(self.src, self.dst, self.proto, self.payload, self.ttl)
        pkt.meta = dict(self.meta)
        return pkt

    def __repr__(self):
        return "Packet(%s -> %s, %s, %d B)" % (
            self.src,
            self.dst,
            self.proto,
            self.wire_size(),
        )
