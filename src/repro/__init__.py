"""TCPLS: Modern Transport Services with TCP and TLS -- reproduction.

A from-scratch Python implementation of the CoNEXT 2021 paper by
Rochet, Assogba, Piraux, Edeline, Donnet and Bonaventure, together with
every substrate its evaluation depends on:

- :mod:`repro.net` -- deterministic discrete-event network simulator
  (links, multihomed hosts, middleboxes);
- :mod:`repro.tcp` -- user-space TCP with SACK loss recovery and
  pluggable congestion control (Reno / CUBIC / Vegas / eBPF);
- :mod:`repro.crypto` -- HKDF, ChaCha20-Poly1305, AES-128-GCM, FFDHE;
- :mod:`repro.tls` -- TLS 1.3 handshake + record layer;
- :mod:`repro.core` -- **TCPLS itself**: encrypted record types, stream
  multiplexing with per-stream crypto contexts, SESSID/cookie joins,
  failover, app-triggered migration, coupled streams, eBPF transfer;
- :mod:`repro.ebpf` -- eBPF-subset VM, assembler, verifier, congestion
  controllers as bytecode;
- :mod:`repro.baselines` -- MPTCP and QUIC comparison points;
- :mod:`repro.perf` -- CPU cost model for the raw-throughput figures;
- :mod:`repro.qlog` -- qlog-style tracing.

See DESIGN.md for the per-experiment index and EXPERIMENTS.md for the
paper-vs-measured results.
"""

__version__ = "1.0.0"
