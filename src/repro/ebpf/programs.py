"""Congestion controllers as eBPF assembly.

These are the programs the Fig. 12 experiment ships over a TCPLS
session: bytecode twins of NewReno and CUBIC against the context ABI of
:mod:`repro.ebpf.cc_hooks`.  The CUBIC program uses the ``cbrt`` helper
the VM exposes, the same way Linux exposes ``cubic_root`` to BPF
congestion controllers.  The bytecode CUBIC omits the TCP-friendly
region and HyStart of the native implementation -- it is the cubic
window curve plus multiplicative decrease, which is what the fairness
experiment exercises.
"""

from repro.ebpf.assembler import assemble
from repro.ebpf.isa import encode_program

# Scratch slot assignments (ctx offsets):
#   [72]  w_max            (cubic) / ack accumulator (reno)
#   [80]  epoch_start_us   (cubic)
#   [88]  k_ms             (cubic)
#   [96]  byte accumulator (cubic)

RENO_ASM = """
; NewReno over the cc_hooks context ABI.
    ldxdw r2, [r1+0]
    jeq   r2, 1, ack
    jeq   r2, 2, loss
    jeq   r2, 3, rto
    exit                      ; init: defaults are fine

ack:
    ldxdw r3, [r1+56]         ; cwnd
    ldxdw r4, [r1+64]         ; ssthresh
    ldxdw r5, [r1+48]         ; mss
    ldxdw r6, [r1+16]         ; acked bytes
    jge   r3, r4, avoid
    add   r3, r6              ; slow start: cwnd += acked
    jle   r3, r4, store_cwnd
    mov   r3, r4
    ja    store_cwnd
avoid:
    ldxdw r7, [r1+72]         ; acc
    add   r7, r6
    jge   r7, r3, bump
    stxdw [r1+72], r7
    exit
bump:
    sub   r7, r3
    stxdw [r1+72], r7
    add   r3, r5              ; cwnd += mss per cwnd acked
store_cwnd:
    stxdw [r1+56], r3
    exit

loss:
    ldxdw r3, [r1+56]
    ldxdw r5, [r1+48]
    div   r3, 2
    mov   r8, r5
    mul   r8, 2
    jge   r3, r8, loss_ok
    mov   r3, r8
loss_ok:
    stxdw [r1+64], r3
    stxdw [r1+56], r3
    stdw  [r1+72], 0
    exit

rto:
    ldxdw r3, [r1+56]
    ldxdw r5, [r1+48]
    div   r3, 2
    mov   r8, r5
    mul   r8, 2
    jge   r3, r8, rto_ok
    mov   r3, r8
rto_ok:
    stxdw [r1+64], r3
    stxdw [r1+56], r5
    stdw  [r1+72], 0
    exit
"""

CUBIC_ASM = """
; CUBIC over the cc_hooks context ABI (fixed-point, milliseconds).
; W(t) = w_max + 0.4 * mss * (t - K)^3, K = cbrt((w_max-cwnd)/(0.4*mss)).
; In integer ms: K_ms = cbrt((w_max - cwnd) * 2500000000 / mss),
;                delta = mss * d^3 / 2500000000   with d = t_ms - K_ms.
    ldxdw r2, [r1+0]
    jeq   r2, 1, ack
    jeq   r2, 2, loss
    jeq   r2, 3, rto
    exit

ack:
    ldxdw r3, [r1+56]         ; cwnd
    ldxdw r4, [r1+64]         ; ssthresh
    ldxdw r5, [r1+48]         ; mss
    ldxdw r6, [r1+16]         ; acked bytes
    jge   r3, r4, avoid
    add   r3, r6              ; slow start
    jle   r3, r4, ss_store
    mov   r3, r4
ss_store:
    stxdw [r1+56], r3
    exit

avoid:
    ldxdw r7, [r1+80]         ; epoch_start_us
    jne   r7, 0, have_epoch
    ldxdw r7, [r1+8]          ; now_us
    stxdw [r1+80], r7
    ldxdw r8, [r1+72]         ; w_max
    jgt   r8, r3, calc_k
    stxdw [r1+72], r3         ; w_max = cwnd (no recorded plateau)
    stdw  [r1+88], 0
    ja    have_epoch
calc_k:
    mov   r9, r8
    sub   r9, r3              ; w_max - cwnd
    lddw  r2, 2500000000
    mul   r9, r2
    div   r9, r5
    stxdw [r10-8], r1         ; save ctx across the helper call
    mov   r1, r9
    call  cbrt
    ldxdw r1, [r10-8]
    stxdw [r1+88], r0         ; K in ms

have_epoch:
    ldxdw r7, [r1+8]          ; now_us
    ldxdw r8, [r1+80]
    sub   r7, r8
    div   r7, 1000            ; t in ms
    jle   r7, 40000, t_ok
    mov   r7, 40000           ; clamp to keep d^3 in range
t_ok:
    ldxdw r8, [r1+88]         ; K_ms
    sub   r7, r8              ; d = t - K (signed)
    mov   r8, r7
    mov   r2, r7
    mul   r2, r8
    mul   r2, r7              ; d^3 (two's complement)
    mul   r2, r5              ; * mss
    lddw  r9, 2500000000
    jsge  r2, 0, pos_div
    neg   r2
    div   r2, r9
    neg   r2
    ja    div_done
pos_div:
    div   r2, r9
div_done:
    ldxdw r8, [r1+72]         ; w_max
    add   r8, r2              ; target
    jsge  r8, 0, t_clamped
    mov   r8, 0
t_clamped:
    jgt   r8, r3, grow
    mov   r2, r3              ; target <= cwnd: crawl (cnt = 100*cwnd/mss)
    mul   r2, 100
    div   r2, r5
    ja    have_cnt
grow:
    mov   r2, r8
    sub   r2, r3              ; target - cwnd
    mov   r9, r3
    div   r9, r2
    mov   r2, r9              ; cnt = cwnd / (target - cwnd)
    jge   r2, 2, have_cnt
    mov   r2, 2               ; at most +0.5 MSS per acked MSS
have_cnt:
    ldxdw r9, [r1+96]         ; byte accumulator
    add   r9, r6
    mov   r7, r9
    div   r7, r2              ; increment = acc / cnt
    mov   r8, r7
    mul   r8, r2
    sub   r9, r8
    stxdw [r1+96], r9
    add   r3, r7
    stxdw [r1+56], r3
    exit

loss:
    ldxdw r3, [r1+56]
    ldxdw r5, [r1+48]
    stxdw [r1+72], r3         ; w_max = cwnd
    mov   r7, r3
    mul   r7, 7
    div   r7, 10              ; beta = 0.7
    mov   r8, r5
    mul   r8, 2
    jge   r7, r8, loss_ok
    mov   r7, r8
loss_ok:
    stxdw [r1+64], r7
    stxdw [r1+56], r7
    stdw  [r1+80], 0          ; restart the epoch
    stdw  [r1+96], 0
    exit

rto:
    ldxdw r3, [r1+56]
    ldxdw r5, [r1+48]
    stxdw [r1+72], r3
    mov   r7, r3
    mul   r7, 7
    div   r7, 10
    mov   r8, r5
    mul   r8, 2
    jge   r7, r8, rto_ok
    mov   r7, r8
rto_ok:
    stxdw [r1+64], r7
    stxdw [r1+56], r5         ; collapse to one MSS
    stdw  [r1+80], 0
    stdw  [r1+96], 0
    exit
"""


def reno_bytecode():
    """NewReno as wire bytecode."""
    return encode_program(assemble(RENO_ASM))


def cubic_bytecode():
    """CUBIC as wire bytecode."""
    return encode_program(assemble(CUBIC_ASM))
