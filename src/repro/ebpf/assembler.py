"""Two-pass assembler for the eBPF subset.

Syntax (one instruction per line, ``;`` or ``#`` comments)::

    start:
        mov   r0, 0          ; register <- immediate
        lddw  r2, 0x1_0000_0000  ; 64-bit immediate
        add   r0, r1         ; register <- register
        ldxdw r3, [r1+16]    ; load u64 from ctx
        stxdw [r1+56], r3    ; store u64
        jgt   r3, r4, done   ; conditional jump to label
        call  cbrt           ; helper by name or id
        ja    start
    done:
        exit

Jump offsets are resolved label-relative in *instruction* units (a
simplification relative to the kernel's slot units; the matching VM in
:mod:`repro.ebpf.vm` uses the same convention).
"""

import re

from repro.ebpf import isa
from repro.ebpf.isa import Instruction

#: helper name -> id table (mirrors the kernel exposing cubic_root etc.)
HELPERS = {
    "cbrt": 1,
    "isqrt": 2,
    "trace": 3,
}


class AssemblyError(Exception):
    """Bad assembly source."""


_ALU_OPS = {
    "add": isa.ALU_ADD, "sub": isa.ALU_SUB, "mul": isa.ALU_MUL,
    "div": isa.ALU_DIV, "or": isa.ALU_OR, "and": isa.ALU_AND,
    "lsh": isa.ALU_LSH, "rsh": isa.ALU_RSH, "mod": isa.ALU_MOD,
    "xor": isa.ALU_XOR, "mov": isa.ALU_MOV, "arsh": isa.ALU_ARSH,
}

_JMP_OPS = {
    "jeq": isa.JMP_JEQ, "jne": isa.JMP_JNE, "jgt": isa.JMP_JGT,
    "jge": isa.JMP_JGE, "jlt": isa.JMP_JLT, "jle": isa.JMP_JLE,
    "jsgt": isa.JMP_JSGT, "jsge": isa.JMP_JSGE, "jslt": isa.JMP_JSLT,
    "jsle": isa.JMP_JSLE,
}

_MEM_RE = re.compile(r"^\[\s*(r\d+)\s*([+-]\s*\d+)?\s*\]$")


def _parse_reg(token):
    if not re.fullmatch(r"r(10|[0-9])", token):
        raise AssemblyError("bad register %r" % token)
    return int(token[1:])


def _parse_imm(token):
    try:
        return int(token.replace("_", ""), 0)
    except ValueError:
        raise AssemblyError("bad immediate %r" % token) from None


def _parse_mem(token):
    match = _MEM_RE.match(token)
    if not match:
        raise AssemblyError("bad memory operand %r" % token)
    reg = _parse_reg(match.group(1))
    offset = int(match.group(2).replace(" ", "")) if match.group(2) else 0
    return reg, offset


def _tokenize(line):
    mnemonic, _, rest = line.partition(" ")
    operands = [t.strip() for t in rest.split(",")] if rest.strip() else []
    return mnemonic.strip().lower(), operands


def assemble(source):
    """Assemble text into a list of :class:`Instruction`."""
    lines = []
    for raw in source.splitlines():
        line = re.split(r"[;#]", raw, 1)[0].strip()
        if line:
            lines.append(line)

    # Pass 1: label positions.
    labels = {}
    index = 0
    for line in lines:
        if line.endswith(":"):
            label = line[:-1].strip()
            if not re.fullmatch(r"[A-Za-z_][\w.]*", label):
                raise AssemblyError("bad label %r" % label)
            if label in labels:
                raise AssemblyError("duplicate label %r" % label)
            labels[label] = index
        else:
            index += 1

    # Pass 2: encode.
    instructions = []
    index = 0
    for line in lines:
        if line.endswith(":"):
            continue
        instructions.append(_encode_line(line, index, labels))
        index += 1
    return instructions


def _branch_offset(label, index, labels):
    if label not in labels:
        raise AssemblyError("unknown label %r" % label)
    return labels[label] - index - 1


def _encode_line(line, index, labels):
    mnemonic, ops = _tokenize(line)

    if mnemonic == "exit":
        return Instruction(isa.CLS_JMP | isa.JMP_EXIT)

    if mnemonic == "ja":
        if len(ops) != 1:
            raise AssemblyError("ja takes one label")
        return Instruction(isa.CLS_JMP | isa.JMP_JA,
                           offset=_branch_offset(ops[0], index, labels))

    if mnemonic == "call":
        if len(ops) != 1:
            raise AssemblyError("call takes one helper")
        helper = ops[0]
        helper_id = HELPERS.get(helper)
        if helper_id is None:
            helper_id = _parse_imm(helper)
        return Instruction(isa.CLS_JMP | isa.JMP_CALL, imm=helper_id)

    if mnemonic == "neg":
        if len(ops) != 1:
            raise AssemblyError("neg takes one register")
        return Instruction(isa.CLS_ALU64 | isa.ALU_NEG, dst=_parse_reg(ops[0]))

    if mnemonic == "lddw":
        if len(ops) != 2:
            raise AssemblyError("lddw rd, imm64")
        return Instruction(isa.OP_LDDW, dst=_parse_reg(ops[0]),
                           imm=_parse_imm(ops[1]))

    if mnemonic in _ALU_OPS:
        if len(ops) != 2:
            raise AssemblyError("%s rd, (rs|imm)" % mnemonic)
        dst = _parse_reg(ops[0])
        op = isa.CLS_ALU64 | _ALU_OPS[mnemonic]
        if re.fullmatch(r"r(10|[0-9])", ops[1]):
            return Instruction(op | isa.SRC_REG, dst=dst,
                               src=_parse_reg(ops[1]))
        return Instruction(op, dst=dst, imm=_parse_imm(ops[1]))

    if mnemonic in _JMP_OPS:
        if len(ops) != 3:
            raise AssemblyError("%s rd, (rs|imm), label" % mnemonic)
        dst = _parse_reg(ops[0])
        offset = _branch_offset(ops[2], index, labels)
        op = isa.CLS_JMP | _JMP_OPS[mnemonic]
        if re.fullmatch(r"r(10|[0-9])", ops[1]):
            return Instruction(op | isa.SRC_REG, dst=dst,
                               src=_parse_reg(ops[1]), offset=offset)
        return Instruction(op, dst=dst, imm=_parse_imm(ops[1]),
                           offset=offset)

    match = re.fullmatch(r"(ldx|stx|st)(b|h|w|dw)", mnemonic)
    if match:
        kind, size_name = match.groups()
        size = {"b": isa.SIZE_B, "h": isa.SIZE_H, "w": isa.SIZE_W,
                "dw": isa.SIZE_DW}[size_name]
        if kind == "ldx":
            if len(ops) != 2:
                raise AssemblyError("ldx rd, [rs+off]")
            dst = _parse_reg(ops[0])
            src, offset = _parse_mem(ops[1])
            return Instruction(isa.CLS_LDX | size | isa.MODE_MEM, dst=dst,
                               src=src, offset=offset)
        if kind == "stx":
            if len(ops) != 2:
                raise AssemblyError("stx [rd+off], rs")
            dst, offset = _parse_mem(ops[0])
            src = _parse_reg(ops[1])
            return Instruction(isa.CLS_STX | size | isa.MODE_MEM, dst=dst,
                               src=src, offset=offset)
        # st: immediate store
        if len(ops) != 2:
            raise AssemblyError("st [rd+off], imm")
        dst, offset = _parse_mem(ops[0])
        return Instruction(isa.CLS_ST | size | isa.MODE_MEM, dst=dst,
                           offset=offset, imm=_parse_imm(ops[1]))

    raise AssemblyError("unknown mnemonic %r in %r" % (mnemonic, line))
