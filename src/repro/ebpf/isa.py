"""eBPF instruction set subset and wire encoding.

Instructions use the kernel's 8-byte layout::

    opcode(8) | dst_reg(4) | src_reg(4) | offset(s16) | immediate(s32)

64-bit immediates (``lddw``) occupy two slots, exactly as in real eBPF,
so encoded programs are byte-compatible in structure with what a TCPLS
record would carry.
"""

import struct

# Instruction classes.
CLS_LD = 0x00
CLS_LDX = 0x01
CLS_ST = 0x02
CLS_STX = 0x03
CLS_ALU64 = 0x07
CLS_JMP = 0x05

# ALU / JMP source flag.
SRC_IMM = 0x00
SRC_REG = 0x08

# ALU operations (op << 4).
ALU_ADD = 0x00
ALU_SUB = 0x10
ALU_MUL = 0x20
ALU_DIV = 0x30
ALU_OR = 0x40
ALU_AND = 0x50
ALU_LSH = 0x60
ALU_RSH = 0x70
ALU_NEG = 0x80
ALU_MOD = 0x90
ALU_XOR = 0xA0
ALU_MOV = 0xB0
ALU_ARSH = 0xC0

# JMP operations.
JMP_JA = 0x00
JMP_JEQ = 0x10
JMP_JGT = 0x20
JMP_JGE = 0x30
JMP_JNE = 0x50
JMP_JSGT = 0x60
JMP_JSGE = 0x70
JMP_CALL = 0x80
JMP_EXIT = 0x90
JMP_JLT = 0xA0
JMP_JLE = 0xB0
JMP_JSLT = 0xC0
JMP_JSLE = 0xD0

# Size bits for memory ops.
SIZE_W = 0x00
SIZE_H = 0x08
SIZE_B = 0x10
SIZE_DW = 0x18

# Mode bits.
MODE_IMM = 0x00
MODE_MEM = 0x60

OP_LDDW = CLS_LD | SIZE_DW | MODE_IMM  # 0x18: load 64-bit immediate

SIZE_BYTES = {SIZE_B: 1, SIZE_H: 2, SIZE_W: 4, SIZE_DW: 8}

MASK64 = (1 << 64) - 1


class Instruction:
    """One decoded instruction."""

    __slots__ = ("opcode", "dst", "src", "offset", "imm")

    def __init__(self, opcode, dst=0, src=0, offset=0, imm=0):
        self.opcode = opcode
        self.dst = dst
        self.src = src
        self.offset = offset
        self.imm = imm

    @property
    def cls(self):
        return self.opcode & 0x07

    def __eq__(self, other):
        return isinstance(other, Instruction) and (
            self.opcode, self.dst, self.src, self.offset, self.imm
        ) == (other.opcode, other.dst, other.src, other.offset, other.imm)

    def __repr__(self):
        return "Instruction(op=0x%02x dst=r%d src=r%d off=%d imm=%d)" % (
            self.opcode, self.dst, self.src, self.offset, self.imm
        )


def encode_program(instructions):
    """Serialize to the 8-bytes-per-slot wire format.

    ``lddw`` encodes as two slots: the first carries the low 32 bits in
    ``imm``, the pseudo-slot carries the high 32 bits.
    """
    out = bytearray()
    for insn in instructions:
        if insn.opcode == OP_LDDW:
            low = insn.imm & 0xFFFFFFFF
            high = (insn.imm >> 32) & 0xFFFFFFFF
            out += struct.pack(
                "<BBhi", insn.opcode, (insn.src << 4) | insn.dst,
                insn.offset, _as_s32(low),
            )
            out += struct.pack("<BBhi", 0, 0, 0, _as_s32(high))
        else:
            out += struct.pack(
                "<BBhi", insn.opcode, (insn.src << 4) | insn.dst,
                insn.offset, _as_s32(insn.imm),
            )
    return bytes(out)


def decode_program(data):
    """Inverse of :func:`encode_program`."""
    if len(data) % 8:
        raise ValueError("program length not a multiple of 8")
    instructions = []
    i = 0
    while i < len(data):
        opcode, regs, offset, imm = struct.unpack_from("<BBhi", data, i)
        dst = regs & 0x0F
        src = regs >> 4
        i += 8
        if opcode == OP_LDDW:
            if i >= len(data):
                raise ValueError("truncated lddw")
            _, _, _, high = struct.unpack_from("<BBhi", data, i)
            i += 8
            imm64 = (imm & 0xFFFFFFFF) | ((high & 0xFFFFFFFF) << 32)
            instructions.append(Instruction(opcode, dst, src, offset, imm64))
        else:
            instructions.append(Instruction(opcode, dst, src, offset, imm))
    return instructions


def slot_count(instructions):
    """Wire slots used (lddw counts twice)."""
    return sum(2 if insn.opcode == OP_LDDW else 1 for insn in instructions)


def _as_s32(value):
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value >= (1 << 31) else value
