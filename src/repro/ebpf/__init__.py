"""eBPF-subset virtual machine for remotely-attached congestion control.

The paper's Sec. 4.4 ships an eBPF congestion controller from the
server to the client inside encrypted TCPLS records; the client
verifies and attaches it to the running TCP connection (Fig. 12).  This
package provides the whole chain:

- a register-machine ISA matching eBPF's encoding (64-bit instructions,
  registers r0-r10, a 512-byte stack, a context pointer in r1);
- a two-pass text assembler;
- a static verifier (register validity, jump bounds, stack discipline,
  termination) run before any received program is attached;
- an interpreter with a bounded instruction budget and a kernel-style
  helper table (including ``cbrt_u64``, mirroring how Linux exposes
  ``cubic_root`` to BPF congestion controllers);
- :class:`~repro.ebpf.cc_hooks.EbpfCongestionControl`, an adapter
  running a verified program behind the native
  :class:`~repro.tcp.congestion.CongestionControl` interface;
- ready-made bytecode twins of NewReno and CUBIC in
  :mod:`repro.ebpf.programs`.
"""

from repro.ebpf.isa import Instruction, decode_program, encode_program
from repro.ebpf.assembler import AssemblyError, assemble
from repro.ebpf.verifier import VerificationError, verify
from repro.ebpf.vm import EbpfVm, ExecutionError
from repro.ebpf.cc_hooks import EbpfCongestionControl
from repro.ebpf.programs import CUBIC_ASM, RENO_ASM, cubic_bytecode, reno_bytecode

__all__ = [
    "AssemblyError",
    "CUBIC_ASM",
    "EbpfCongestionControl",
    "EbpfVm",
    "ExecutionError",
    "Instruction",
    "RENO_ASM",
    "VerificationError",
    "assemble",
    "cubic_bytecode",
    "decode_program",
    "encode_program",
    "reno_bytecode",
    "verify",
]
