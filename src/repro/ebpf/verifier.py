"""Static verifier for received eBPF programs.

TCPLS attaches congestion controllers received over the network; the
verifier is the trust boundary (as in the kernel).  Checks performed:

- all opcodes belong to the supported subset;
- register numbers are in range, r10 (frame pointer) is read-only;
- every jump lands inside the program;
- division/modulo by a zero immediate is rejected;
- stack accesses through r10 stay within the 512-byte frame;
- the program can terminate (an ``exit`` is reachable) and does not
  exceed the instruction-count limit;
- back-edges (loops) are rejected unless ``allow_loops`` -- the runtime
  instruction budget then bounds execution instead.
"""

from repro.ebpf import isa

MAX_INSTRUCTIONS = 4096
STACK_SIZE = 512


class VerificationError(Exception):
    """Program rejected by the verifier."""


_ALU_OPS = {
    isa.ALU_ADD, isa.ALU_SUB, isa.ALU_MUL, isa.ALU_DIV, isa.ALU_OR,
    isa.ALU_AND, isa.ALU_LSH, isa.ALU_RSH, isa.ALU_NEG, isa.ALU_MOD,
    isa.ALU_XOR, isa.ALU_MOV, isa.ALU_ARSH,
}

_JMP_OPS = {
    isa.JMP_JA, isa.JMP_JEQ, isa.JMP_JGT, isa.JMP_JGE, isa.JMP_JNE,
    isa.JMP_JSGT, isa.JMP_JSGE, isa.JMP_CALL, isa.JMP_EXIT, isa.JMP_JLT,
    isa.JMP_JLE, isa.JMP_JSLT, isa.JMP_JSLE,
}


def _check_registers(idx, insn):
    if not 0 <= insn.dst <= 10 or not 0 <= insn.src <= 10:
        raise VerificationError("insn %d: register out of range" % idx)
    writes_dst = (
        insn.cls == isa.CLS_ALU64
        or insn.cls == isa.CLS_LDX
        or insn.opcode == isa.OP_LDDW
    )
    if writes_dst and insn.dst == 10:
        raise VerificationError(
            "insn %d: r10 (frame pointer) is read-only" % idx
        )


def verify(instructions, helpers=None, allow_loops=False):
    """Raise :class:`VerificationError` if the program is unsafe."""
    if not instructions:
        raise VerificationError("empty program")
    if len(instructions) > MAX_INSTRUCTIONS:
        raise VerificationError(
            "program too long: %d instructions" % len(instructions)
        )
    count = len(instructions)
    has_exit = False
    for idx, insn in enumerate(instructions):
        _check_registers(idx, insn)
        cls = insn.cls
        if cls == isa.CLS_ALU64:
            op = insn.opcode & 0xF0
            if op not in _ALU_OPS:
                raise VerificationError(
                    "insn %d: unknown ALU op 0x%02x" % (idx, insn.opcode)
                )
            if op in (isa.ALU_DIV, isa.ALU_MOD) and not (
                insn.opcode & isa.SRC_REG
            ) and insn.imm == 0:
                raise VerificationError("insn %d: division by zero" % idx)
            if op in (isa.ALU_LSH, isa.ALU_RSH, isa.ALU_ARSH) and not (
                insn.opcode & isa.SRC_REG
            ) and not 0 <= insn.imm < 64:
                raise VerificationError("insn %d: shift out of range" % idx)
        elif cls == isa.CLS_JMP:
            op = insn.opcode & 0xF0
            if op not in _JMP_OPS:
                raise VerificationError(
                    "insn %d: unknown JMP op 0x%02x" % (idx, insn.opcode)
                )
            if op == isa.JMP_EXIT:
                has_exit = True
                continue
            if op == isa.JMP_CALL:
                if helpers is not None and insn.imm not in helpers:
                    raise VerificationError(
                        "insn %d: unknown helper %d" % (idx, insn.imm)
                    )
                continue
            target = idx + 1 + insn.offset
            if not 0 <= target < count:
                raise VerificationError(
                    "insn %d: jump target %d out of bounds" % (idx, target)
                )
            if insn.offset < 0 and not allow_loops:
                raise VerificationError(
                    "insn %d: back-edge rejected (loops disallowed)" % idx
                )
        elif cls in (isa.CLS_LDX, isa.CLS_STX, isa.CLS_ST):
            size = insn.opcode & 0x18
            if size not in isa.SIZE_BYTES:
                raise VerificationError("insn %d: bad access size" % idx)
            pointer = insn.src if cls == isa.CLS_LDX else insn.dst
            if pointer == 10:
                width = isa.SIZE_BYTES[size]
                if not -STACK_SIZE <= insn.offset <= -width:
                    raise VerificationError(
                        "insn %d: stack access [r10%+d] out of frame"
                        % (idx, insn.offset)
                    )
        elif insn.opcode == isa.OP_LDDW:
            pass
        else:
            raise VerificationError(
                "insn %d: unsupported opcode 0x%02x" % (idx, insn.opcode)
            )
    if not has_exit:
        raise VerificationError("program has no exit instruction")
    # Fall-through off the end must be impossible: last insn must be an
    # exit or an unconditional jump.
    last = instructions[-1]
    last_op = last.opcode & 0xF0
    if not (last.cls == isa.CLS_JMP and last_op in (isa.JMP_EXIT, isa.JMP_JA)):
        raise VerificationError("program can fall off the end")
