"""Congestion control via eBPF programs.

The context ABI mirrors the spirit of the kernel's
``tcp_congestion_ops`` over ``struct bpf_sock_ops``: one flat struct of
u64 fields the program reads, plus writable ``cwnd`` / ``ssthresh``
slots and eight persistent scratch slots for per-connection algorithm
state (w_max, epoch start, ...).

Layout (little-endian u64 each)::

    0   event        0=init 1=ack 2=loss 3=rto
    8   now_us
    16  acked_bytes
    24  rtt_us       (0 = no sample)
    32  min_rtt_us
    40  in_flight
    48  mss
    56  cwnd         (rw)
    64  ssthresh     (rw; SSTHRESH_INF = unset)
    72  scratch[8]   (rw, persisted between invocations)
"""

import struct

from repro.ebpf.vm import DEFAULT_INSTRUCTION_BUDGET, EbpfVm
from repro.ebpf.verifier import verify
from repro.tcp.congestion.base import CongestionControl

EVENT_INIT = 0
EVENT_ACK = 1
EVENT_LOSS = 2
EVENT_RTO = 3

SSTHRESH_INF = 1 << 62

CTX_SIZE = 72 + 8 * 8


class EbpfCongestionControl(CongestionControl):
    """Adapter: runs a verified eBPF program behind the native CC API.

    This is what :meth:`repro.core.session.TcplsSession` attaches when
    the peer ships congestion-controller bytecode (Fig. 12).
    """

    name = "ebpf"

    def __init__(self, mss, instructions, program_name="ebpf",
                 instruction_budget=DEFAULT_INSTRUCTION_BUDGET):
        super().__init__(mss)
        verify(instructions)
        self.name = "ebpf:%s" % program_name
        self.vm = EbpfVm(instructions, instruction_budget=instruction_budget)
        self._scratch = [0] * 8
        self.invocations = 0
        self._run(EVENT_INIT, 0.0, 0, None, 0)

    @classmethod
    def from_bytecode(cls, mss, bytecode, program_name="ebpf"):
        """Decode, verify and instantiate from wire bytes (the form the
        program arrives in over a TCPLS record)."""
        from repro.ebpf.isa import decode_program

        return cls(mss, decode_program(bytecode), program_name=program_name)

    def _run(self, event, now, acked_bytes, rtt, in_flight):
        ssthresh = (
            SSTHRESH_INF if self.ssthresh == float("inf")
            else int(self.ssthresh)
        )
        ctx = bytearray(CTX_SIZE)
        struct.pack_into(
            "<9Q", ctx, 0,
            event,
            int(now * 1e6),
            int(acked_bytes),
            int((rtt or 0) * 1e6),
            0,
            int(in_flight),
            self.mss,
            int(self.cwnd),
            ssthresh,
        )
        struct.pack_into("<8Q", ctx, 72, *self._scratch)
        self.vm.run(ctx)
        self.invocations += 1
        cwnd, ssthresh = struct.unpack_from("<QQ", ctx, 56)
        self._scratch = list(struct.unpack_from("<8Q", ctx, 72))
        self.cwnd = max(cwnd, self.mss)
        self.ssthresh = (
            float("inf") if ssthresh >= SSTHRESH_INF else float(ssthresh)
        )

    # -- CongestionControl hooks -----------------------------------------

    def on_ack(self, acked_bytes, rtt, now, in_flight):
        self._run(EVENT_ACK, now, acked_bytes, rtt, in_flight)

    def on_loss(self, now):
        self._run(EVENT_LOSS, now, 0, None, 0)

    def on_rto(self, now):
        self._run(EVENT_RTO, now, 0, None, 0)
