"""eBPF interpreter.

Executes a verified program against a context buffer (passed in r1, as
the kernel passes ``struct bpf_sock_ops``-style contexts).  Memory
accesses are bounds-checked at runtime against the context and the
512-byte stack frame; execution is bounded by an instruction budget.
"""

from repro.ebpf import isa
from repro.ebpf.verifier import STACK_SIZE

MASK64 = (1 << 64) - 1

DEFAULT_INSTRUCTION_BUDGET = 100_000


class ExecutionError(Exception):
    """Runtime fault (bad memory access, budget exhausted, bad helper)."""


def _to_signed(value):
    return value - (1 << 64) if value >= (1 << 63) else value


def _cbrt_u64(x):
    """Integer cube root (the kernel's cubic_root equivalent)."""
    if x <= 0:
        return 0
    root = int(round(x ** (1.0 / 3.0)))
    for candidate in (root - 1, root, root + 1, root + 2):
        if candidate >= 0 and candidate ** 3 <= x < (candidate + 1) ** 3:
            return candidate
    while root ** 3 > x:
        root -= 1
    while (root + 1) ** 3 <= x:
        root += 1
    return root


def _isqrt_u64(x):
    if x < 0:
        return 0
    import math

    return math.isqrt(x)


class EbpfVm:
    """Interpreter instance (one per attached program)."""

    def __init__(self, instructions, helpers=None,
                 instruction_budget=DEFAULT_INSTRUCTION_BUDGET):
        self.instructions = list(instructions)
        self.instruction_budget = instruction_budget
        self.trace = []
        self.helpers = {
            1: lambda vm, a, b, c, d, e: _cbrt_u64(a),
            2: lambda vm, a, b, c, d, e: _isqrt_u64(a),
            3: self._helper_trace,
        }
        if helpers:
            self.helpers.update(helpers)

    def _helper_trace(self, vm, a, b, c, d, e):
        self.trace.append((a, b))
        return 0

    def run(self, ctx):
        """Execute with ``ctx`` (a bytearray) mapped at a virtual base.

        Returns r0.  The context is mutated in place by stores, which is
        how congestion-control programs publish their new cwnd.
        """
        # Virtual memory layout: ctx at CTX_BASE, stack below STACK_TOP.
        CTX_BASE = 0x1000
        STACK_TOP = 0x8000
        stack = bytearray(STACK_SIZE)
        regs = [0] * 11
        regs[1] = CTX_BASE
        regs[2] = len(ctx)
        regs[10] = STACK_TOP

        def load(address, width):
            if CTX_BASE <= address and address + width <= CTX_BASE + len(ctx):
                return int.from_bytes(
                    ctx[address - CTX_BASE:address - CTX_BASE + width],
                    "little",
                )
            if (STACK_TOP - STACK_SIZE <= address
                    and address + width <= STACK_TOP):
                base = address - (STACK_TOP - STACK_SIZE)
                return int.from_bytes(stack[base:base + width], "little")
            raise ExecutionError("load fault at 0x%x" % address)

        def store(address, width, value):
            data = (value & MASK64).to_bytes(8, "little")[:width]
            if CTX_BASE <= address and address + width <= CTX_BASE + len(ctx):
                ctx[address - CTX_BASE:address - CTX_BASE + width] = data
                return
            if (STACK_TOP - STACK_SIZE <= address
                    and address + width <= STACK_TOP):
                base = address - (STACK_TOP - STACK_SIZE)
                stack[base:base + width] = data
                return
            raise ExecutionError("store fault at 0x%x" % address)

        pc = 0
        executed = 0
        count = len(self.instructions)
        while True:
            if pc >= count:
                raise ExecutionError("fell off the end of the program")
            executed += 1
            if executed > self.instruction_budget:
                raise ExecutionError("instruction budget exhausted")
            insn = self.instructions[pc]
            opcode = insn.opcode
            cls = insn.cls
            if opcode == isa.OP_LDDW:
                regs[insn.dst] = insn.imm & MASK64
                pc += 1
                continue
            if cls == isa.CLS_ALU64:
                op = opcode & 0xF0
                src_val = (
                    regs[insn.src] if opcode & isa.SRC_REG
                    else insn.imm & MASK64
                )
                dst_val = regs[insn.dst]
                if op == isa.ALU_ADD:
                    result = dst_val + src_val
                elif op == isa.ALU_SUB:
                    result = dst_val - src_val
                elif op == isa.ALU_MUL:
                    result = dst_val * src_val
                elif op == isa.ALU_DIV:
                    if src_val == 0:
                        raise ExecutionError("division by zero")
                    result = dst_val // src_val
                elif op == isa.ALU_MOD:
                    if src_val == 0:
                        raise ExecutionError("modulo by zero")
                    result = dst_val % src_val
                elif op == isa.ALU_OR:
                    result = dst_val | src_val
                elif op == isa.ALU_AND:
                    result = dst_val & src_val
                elif op == isa.ALU_XOR:
                    result = dst_val ^ src_val
                elif op == isa.ALU_LSH:
                    result = dst_val << (src_val & 63)
                elif op == isa.ALU_RSH:
                    result = (dst_val & MASK64) >> (src_val & 63)
                elif op == isa.ALU_ARSH:
                    result = _to_signed(dst_val) >> (src_val & 63)
                elif op == isa.ALU_MOV:
                    result = src_val
                elif op == isa.ALU_NEG:
                    result = -dst_val
                else:
                    raise ExecutionError("bad ALU op 0x%02x" % opcode)
                regs[insn.dst] = result & MASK64
                pc += 1
                continue
            if cls == isa.CLS_JMP:
                op = opcode & 0xF0
                if op == isa.JMP_EXIT:
                    return regs[0]
                if op == isa.JMP_CALL:
                    helper = self.helpers.get(insn.imm)
                    if helper is None:
                        raise ExecutionError("unknown helper %d" % insn.imm)
                    regs[0] = helper(self, regs[1], regs[2], regs[3],
                                     regs[4], regs[5]) & MASK64
                    pc += 1
                    continue
                if op == isa.JMP_JA:
                    pc += 1 + insn.offset
                    continue
                src_val = (
                    regs[insn.src] if opcode & isa.SRC_REG
                    else insn.imm & MASK64
                )
                dst_val = regs[insn.dst]
                taken = {
                    isa.JMP_JEQ: dst_val == src_val,
                    isa.JMP_JNE: dst_val != src_val,
                    isa.JMP_JGT: dst_val > src_val,
                    isa.JMP_JGE: dst_val >= src_val,
                    isa.JMP_JLT: dst_val < src_val,
                    isa.JMP_JLE: dst_val <= src_val,
                    isa.JMP_JSGT: _to_signed(dst_val) > _to_signed(src_val),
                    isa.JMP_JSGE: _to_signed(dst_val) >= _to_signed(src_val),
                    isa.JMP_JSLT: _to_signed(dst_val) < _to_signed(src_val),
                    isa.JMP_JSLE: _to_signed(dst_val) <= _to_signed(src_val),
                }.get(op)
                if taken is None:
                    raise ExecutionError("bad JMP op 0x%02x" % opcode)
                pc += 1 + (insn.offset if taken else 0)
                continue
            if cls == isa.CLS_LDX:
                width = isa.SIZE_BYTES[opcode & 0x18]
                regs[insn.dst] = load(regs[insn.src] + insn.offset, width)
                pc += 1
                continue
            if cls == isa.CLS_STX:
                width = isa.SIZE_BYTES[opcode & 0x18]
                store(regs[insn.dst] + insn.offset, width, regs[insn.src])
                pc += 1
                continue
            if cls == isa.CLS_ST:
                width = isa.SIZE_BYTES[opcode & 0x18]
                store(regs[insn.dst] + insn.offset, width, insn.imm & MASK64)
                pc += 1
                continue
            raise ExecutionError("unsupported opcode 0x%02x" % opcode)
