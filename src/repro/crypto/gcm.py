"""Galois/Counter Mode (NIST SP 800-38D) over AES-128.

Hot-path layout: GHASH is table-driven -- key setup precomputes, per
byte position, a 256-entry table of GF(2^128) products, so hashing one
16-byte block costs 16 table lookups and XORs instead of the 127-round
per-bit loop.  The per-bit loop (:func:`_gf_mult`) and
:meth:`Ghash.digest_reference` are retained as the cross-validation
oracle (tests/crypto/test_fastpath_equivalence.py proves the two paths
byte-identical on random inputs).

CTR keystream generation is batched through
:meth:`~repro.crypto.aes.Aes128.ctr_keystream` and the plaintext XOR is
done as one wide integer operation instead of a per-byte generator.
"""

import struct

from repro.crypto.aes import Aes128

_R = 0xE1000000000000000000000000000000


def _gf_mult(x, y):
    """Carry-less multiplication in GF(2^128) with the GCM polynomial.

    Reference implementation (per-bit); the sealing path uses the
    precomputed tables below.
    """
    z = 0
    v = x
    for i in range(127, -1, -1):
        if (y >> i) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z


def _build_ghash_tables(h):
    """16 tables of 256 entries: ``tables[k][b] = (b << 8*(15-k)) * H``.

    GF(2^128) multiplication is linear over the input bits, so the
    product ``X * H`` is the XOR of per-byte contributions.  Single-bit
    multiples come from repeated multiplication by x (a shift with
    conditional reduction); byte tables build incrementally from their
    lowest set bit, so construction is ~4k XORs, not 4k field mults.
    """
    mult = [0] * 128          # mult[i] = (1 << i) * H, integer bit index
    v = h
    for i in range(127, -1, -1):
        mult[i] = v
        v = (v >> 1) ^ _R if v & 1 else v >> 1
    tables = []
    for k in range(16):       # byte position, 0 = most significant
        base = 8 * (15 - k)
        table = [0] * 256
        for b in range(1, 256):
            low = b & -b
            table[b] = table[b ^ low] ^ mult[base + low.bit_length() - 1]
        tables.append(table)
    return tables


class Ghash:
    """GHASH universal hash keyed by H = E_K(0^128)."""

    def __init__(self, h_key):
        self._h = int.from_bytes(h_key, "big")
        self._tables = _build_ghash_tables(self._h)

    def _mul_h(self, x):
        """Table-driven ``x * H``: one lookup per input byte."""
        y = 0
        shift = 120
        for table in self._tables:
            y ^= table[(x >> shift) & 0xFF]
            shift -= 8
        return y

    def _fold(self, y, data):
        """Absorb ``data`` block-by-block without materialising a padded
        block list; the tail is padded arithmetically (a left shift) in
        place of a scratch copy."""
        n = len(data)
        full = n - (n % 16)
        mul_h = self._mul_h
        for i in range(0, full, 16):
            y = mul_h(y ^ int.from_bytes(data[i:i + 16], "big"))
        if full != n:
            tail = int.from_bytes(data[full:], "big") << (8 * (16 - n + full))
            y = mul_h(y ^ tail)
        return y

    def digest(self, aad, ciphertext):
        y = self._fold(0, aad)
        y = self._fold(y, ciphertext)
        lengths = struct.pack("!QQ", len(aad) * 8, len(ciphertext) * 8)
        y = self._mul_h(y ^ int.from_bytes(lengths, "big"))
        return y.to_bytes(16, "big")

    def digest_reference(self, aad, ciphertext):
        """Per-bit reference GHASH (validation oracle for the tables)."""
        h = self._h
        y = 0
        for data in (aad, ciphertext):
            n = len(data)
            full = n - (n % 16)
            for i in range(0, full, 16):
                y = _gf_mult(y ^ int.from_bytes(data[i:i + 16], "big"), h)
            if full != n:
                tail = int.from_bytes(data[full:], "big") \
                    << (8 * (16 - n + full))
                y = _gf_mult(y ^ tail, h)
        lengths = struct.pack("!QQ", len(aad) * 8, len(ciphertext) * 8)
        y = _gf_mult(y ^ int.from_bytes(lengths, "big"), h)
        return y.to_bytes(16, "big")


def _xor_bytes(data, stream):
    """XOR ``data`` with a same-or-longer keystream as wide integers."""
    n = len(data)
    if not n:
        return b""
    if len(stream) != n:
        stream = stream[:n]
    return (int.from_bytes(data, "big")
            ^ int.from_bytes(stream, "big")).to_bytes(n, "big")


class AesGcm:
    """AES-128-GCM authenticated encryption with 12-byte nonces."""

    TAG_LENGTH = 16

    def __init__(self, key):
        self._aes = Aes128(key)
        self._ghash = Ghash(self._aes.encrypt_block(b"\x00" * 16))

    def _ctr_stream(self, j0, length):
        if not length:
            return b""
        counter = int.from_bytes(j0[12:], "big")
        return self._aes.ctr_keystream(
            j0[:12], counter + 1, (length + 15) // 16
        )

    def encrypt(self, nonce, plaintext, aad=b""):
        """Returns ciphertext || 16-byte tag."""
        if len(nonce) != 12:
            raise ValueError("GCM nonce must be 12 bytes")
        j0 = nonce + b"\x00\x00\x00\x01"
        ciphertext = _xor_bytes(plaintext, self._ctr_stream(j0,
                                                            len(plaintext)))
        s = self._ghash.digest(aad, ciphertext)
        tag = _xor_bytes(s, self._aes.encrypt_block(j0))
        return ciphertext + tag

    def decrypt(self, nonce, data, aad=b""):
        """Returns plaintext, or None if the tag does not verify."""
        if len(data) < self.TAG_LENGTH:
            return None
        view = memoryview(data)
        ciphertext, tag = view[:-self.TAG_LENGTH], view[-self.TAG_LENGTH:]
        j0 = nonce + b"\x00\x00\x00\x01"
        s = self._ghash.digest(aad, ciphertext)
        expected = _xor_bytes(s, self._aes.encrypt_block(j0))
        if expected != tag:
            return None
        return _xor_bytes(ciphertext, self._ctr_stream(j0, len(ciphertext)))

    def verify_tag(self, nonce, data, aad=b""):
        """Tag check without producing plaintext (Encrypt-then-MAC-style
        cheap trial used by TCPLS stream demux)."""
        if len(data) < self.TAG_LENGTH:
            return False
        view = memoryview(data)
        ciphertext, tag = view[:-self.TAG_LENGTH], view[-self.TAG_LENGTH:]
        j0 = nonce + b"\x00\x00\x00\x01"
        s = self._ghash.digest(aad, ciphertext)
        expected = _xor_bytes(s, self._aes.encrypt_block(j0))
        return expected == tag
