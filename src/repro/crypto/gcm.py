"""Galois/Counter Mode (NIST SP 800-38D) over AES-128."""

import struct

from repro.crypto.aes import Aes128

_R = 0xE1000000000000000000000000000000


def _gf_mult(x, y):
    """Carry-less multiplication in GF(2^128) with the GCM polynomial."""
    z = 0
    v = x
    for i in range(127, -1, -1):
        if (y >> i) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z


class Ghash:
    """GHASH universal hash keyed by H = E_K(0^128)."""

    def __init__(self, h_key):
        self._h = int.from_bytes(h_key, "big")

    def digest(self, aad, ciphertext):
        y = 0
        for block in self._blocks(aad) + self._blocks(ciphertext):
            y = _gf_mult(y ^ int.from_bytes(block, "big"), self._h)
        lengths = struct.pack("!QQ", len(aad) * 8, len(ciphertext) * 8)
        y = _gf_mult(y ^ int.from_bytes(lengths, "big"), self._h)
        return y.to_bytes(16, "big")

    @staticmethod
    def _blocks(data):
        blocks = []
        for i in range(0, len(data), 16):
            chunk = data[i:i + 16]
            if len(chunk) < 16:
                chunk = chunk + b"\x00" * (16 - len(chunk))
            blocks.append(chunk)
        return blocks


class AesGcm:
    """AES-128-GCM authenticated encryption with 12-byte nonces."""

    TAG_LENGTH = 16

    def __init__(self, key):
        self._aes = Aes128(key)
        self._ghash = Ghash(self._aes.encrypt_block(b"\x00" * 16))

    def _ctr_stream(self, j0, length):
        out = bytearray()
        counter = int.from_bytes(j0[12:], "big")
        prefix = j0[:12]
        for _ in range((length + 15) // 16):
            counter = (counter + 1) & 0xFFFFFFFF
            out += self._aes.encrypt_block(prefix + counter.to_bytes(4, "big"))
        return bytes(out[:length])

    def encrypt(self, nonce, plaintext, aad=b""):
        """Returns ciphertext || 16-byte tag."""
        if len(nonce) != 12:
            raise ValueError("GCM nonce must be 12 bytes")
        j0 = nonce + b"\x00\x00\x00\x01"
        stream = self._ctr_stream(j0, len(plaintext))
        ciphertext = bytes(a ^ b for a, b in zip(plaintext, stream))
        s = self._ghash.digest(aad, ciphertext)
        tag_stream = self._aes.encrypt_block(j0)
        tag = bytes(a ^ b for a, b in zip(s, tag_stream))
        return ciphertext + tag

    def decrypt(self, nonce, data, aad=b""):
        """Returns plaintext, or None if the tag does not verify."""
        if len(data) < self.TAG_LENGTH:
            return None
        ciphertext, tag = data[:-self.TAG_LENGTH], data[-self.TAG_LENGTH:]
        j0 = nonce + b"\x00\x00\x00\x01"
        s = self._ghash.digest(aad, ciphertext)
        tag_stream = self._aes.encrypt_block(j0)
        expected = bytes(a ^ b for a, b in zip(s, tag_stream))
        if expected != tag:
            return None
        stream = self._ctr_stream(j0, len(ciphertext))
        return bytes(a ^ b for a, b in zip(ciphertext, stream))

    def verify_tag(self, nonce, data, aad=b""):
        """Tag check without producing plaintext (Encrypt-then-MAC-style
        cheap trial used by TCPLS stream demux)."""
        if len(data) < self.TAG_LENGTH:
            return False
        ciphertext, tag = data[:-self.TAG_LENGTH], data[-self.TAG_LENGTH:]
        j0 = nonce + b"\x00\x00\x00\x01"
        s = self._ghash.digest(aad, ciphertext)
        expected = bytes(
            a ^ b for a, b in zip(s, self._aes.encrypt_block(j0))
        )
        return expected == tag
