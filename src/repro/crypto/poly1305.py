"""Poly1305 one-time authenticator (RFC 8439 section 2.5)."""

P1305 = (1 << 130) - 5


def poly1305_mac(key, message):
    """16-byte tag over ``message`` with a 32-byte one-time key."""
    if len(key) != 32:
        raise ValueError("Poly1305 key must be 32 bytes")
    r = int.from_bytes(key[:16], "little")
    r &= 0x0FFFFFFC0FFFFFFC0FFFFFFC0FFFFFFF  # clamp
    s = int.from_bytes(key[16:], "little")
    accumulator = 0
    for i in range(0, len(message), 16):
        chunk = message[i:i + 16]
        n = int.from_bytes(chunk + b"\x01", "little")
        accumulator = ((accumulator + n) * r) % P1305
    tag = (accumulator + s) & ((1 << 128) - 1)
    return tag.to_bytes(16, "little")
