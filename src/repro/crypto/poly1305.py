"""Poly1305 one-time authenticator (RFC 8439 section 2.5)."""

P1305 = (1 << 130) - 5


def poly1305_mac(key, message):
    """16-byte tag over ``message`` with a 32-byte one-time key.

    The per-chunk high bit is added arithmetically (``+ 2^(8*len)``)
    instead of concatenating ``b"\\x01"`` onto every 16-byte slice, so
    the loop allocates nothing beyond the chunk integers themselves.
    """
    if len(key) != 32:
        raise ValueError("Poly1305 key must be 32 bytes")
    r = int.from_bytes(key[:16], "little")
    r &= 0x0FFFFFFC0FFFFFFC0FFFFFFC0FFFFFFF  # clamp
    s = int.from_bytes(key[16:], "little")
    accumulator = 0
    n = len(message)
    full = n - (n % 16)
    high_bit = 1 << 128
    for i in range(0, full, 16):
        accumulator = (
            accumulator + high_bit
            + int.from_bytes(message[i:i + 16], "little")
        ) * r % P1305
    if full != n:
        tail = message[full:]
        accumulator = (
            accumulator + (1 << (8 * len(tail)))
            + int.from_bytes(tail, "little")
        ) * r % P1305
    tag = (accumulator + s) & ((1 << 128) - 1)
    return tag.to_bytes(16, "little")
