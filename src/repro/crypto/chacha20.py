"""ChaCha20 stream cipher (RFC 8439 section 2).

Pure-Python, word-exact against the RFC test vectors.  Used by the
CHACHA20_POLY1305_SHA256 suite; simulator-scale experiments prefer the
fast null-tag cipher (see :mod:`repro.crypto.aead`).

Hot-path layout: the 20 rounds run fully inlined over sixteen local
variables (:func:`_core`) -- no per-quarter-round function calls, no
state lists.  For a multi-block message the key/nonce words are
unpacked once and cached across the whole run of sequential counters
instead of being re-derived per 64-byte block, and the keystream XOR is
a single wide-integer operation.  The original quarter-round
implementation is retained as :func:`chacha20_block_reference`, the
cross-validation oracle for the fast path.
"""

import struct

MASK32 = 0xFFFFFFFF

_C0, _C1, _C2, _C3 = 0x61707865, 0x3320646E, 0x79622D32, 0x6B206574

_KEY_WORDS = struct.Struct("<8I")
_NONCE_WORDS = struct.Struct("<3I")
_OUT_WORDS = struct.Struct("<16I")


def _rotl32(v, c):
    return ((v << c) & MASK32) | (v >> (32 - c))


def _quarter_round(state, a, b, c, d):
    state[a] = (state[a] + state[b]) & MASK32
    state[d] = _rotl32(state[d] ^ state[a], 16)
    state[c] = (state[c] + state[d]) & MASK32
    state[b] = _rotl32(state[b] ^ state[c], 12)
    state[a] = (state[a] + state[b]) & MASK32
    state[d] = _rotl32(state[d] ^ state[a], 8)
    state[c] = (state[c] + state[d]) & MASK32
    state[b] = _rotl32(state[b] ^ state[c], 7)


def _core(k0, k1, k2, k3, k4, k5, k6, k7, counter, n0, n1, n2):
    """One 64-byte keystream block, rounds inlined over locals."""
    x0, x1, x2, x3 = _C0, _C1, _C2, _C3
    x4, x5, x6, x7 = k0, k1, k2, k3
    x8, x9, x10, x11 = k4, k5, k6, k7
    x12, x13, x14, x15 = counter, n0, n1, n2
    for _ in range(10):
        # column round
        x0 = (x0 + x4) & MASK32
        x12 ^= x0
        x12 = ((x12 << 16) & MASK32) | (x12 >> 16)
        x8 = (x8 + x12) & MASK32
        x4 ^= x8
        x4 = ((x4 << 12) & MASK32) | (x4 >> 20)
        x0 = (x0 + x4) & MASK32
        x12 ^= x0
        x12 = ((x12 << 8) & MASK32) | (x12 >> 24)
        x8 = (x8 + x12) & MASK32
        x4 ^= x8
        x4 = ((x4 << 7) & MASK32) | (x4 >> 25)

        x1 = (x1 + x5) & MASK32
        x13 ^= x1
        x13 = ((x13 << 16) & MASK32) | (x13 >> 16)
        x9 = (x9 + x13) & MASK32
        x5 ^= x9
        x5 = ((x5 << 12) & MASK32) | (x5 >> 20)
        x1 = (x1 + x5) & MASK32
        x13 ^= x1
        x13 = ((x13 << 8) & MASK32) | (x13 >> 24)
        x9 = (x9 + x13) & MASK32
        x5 ^= x9
        x5 = ((x5 << 7) & MASK32) | (x5 >> 25)

        x2 = (x2 + x6) & MASK32
        x14 ^= x2
        x14 = ((x14 << 16) & MASK32) | (x14 >> 16)
        x10 = (x10 + x14) & MASK32
        x6 ^= x10
        x6 = ((x6 << 12) & MASK32) | (x6 >> 20)
        x2 = (x2 + x6) & MASK32
        x14 ^= x2
        x14 = ((x14 << 8) & MASK32) | (x14 >> 24)
        x10 = (x10 + x14) & MASK32
        x6 ^= x10
        x6 = ((x6 << 7) & MASK32) | (x6 >> 25)

        x3 = (x3 + x7) & MASK32
        x15 ^= x3
        x15 = ((x15 << 16) & MASK32) | (x15 >> 16)
        x11 = (x11 + x15) & MASK32
        x7 ^= x11
        x7 = ((x7 << 12) & MASK32) | (x7 >> 20)
        x3 = (x3 + x7) & MASK32
        x15 ^= x3
        x15 = ((x15 << 8) & MASK32) | (x15 >> 24)
        x11 = (x11 + x15) & MASK32
        x7 ^= x11
        x7 = ((x7 << 7) & MASK32) | (x7 >> 25)

        # diagonal round
        x0 = (x0 + x5) & MASK32
        x15 ^= x0
        x15 = ((x15 << 16) & MASK32) | (x15 >> 16)
        x10 = (x10 + x15) & MASK32
        x5 ^= x10
        x5 = ((x5 << 12) & MASK32) | (x5 >> 20)
        x0 = (x0 + x5) & MASK32
        x15 ^= x0
        x15 = ((x15 << 8) & MASK32) | (x15 >> 24)
        x10 = (x10 + x15) & MASK32
        x5 ^= x10
        x5 = ((x5 << 7) & MASK32) | (x5 >> 25)

        x1 = (x1 + x6) & MASK32
        x12 ^= x1
        x12 = ((x12 << 16) & MASK32) | (x12 >> 16)
        x11 = (x11 + x12) & MASK32
        x6 ^= x11
        x6 = ((x6 << 12) & MASK32) | (x6 >> 20)
        x1 = (x1 + x6) & MASK32
        x12 ^= x1
        x12 = ((x12 << 8) & MASK32) | (x12 >> 24)
        x11 = (x11 + x12) & MASK32
        x6 ^= x11
        x6 = ((x6 << 7) & MASK32) | (x6 >> 25)

        x2 = (x2 + x7) & MASK32
        x13 ^= x2
        x13 = ((x13 << 16) & MASK32) | (x13 >> 16)
        x8 = (x8 + x13) & MASK32
        x7 ^= x8
        x7 = ((x7 << 12) & MASK32) | (x7 >> 20)
        x2 = (x2 + x7) & MASK32
        x13 ^= x2
        x13 = ((x13 << 8) & MASK32) | (x13 >> 24)
        x8 = (x8 + x13) & MASK32
        x7 ^= x8
        x7 = ((x7 << 7) & MASK32) | (x7 >> 25)

        x3 = (x3 + x4) & MASK32
        x14 ^= x3
        x14 = ((x14 << 16) & MASK32) | (x14 >> 16)
        x9 = (x9 + x14) & MASK32
        x4 ^= x9
        x4 = ((x4 << 12) & MASK32) | (x4 >> 20)
        x3 = (x3 + x4) & MASK32
        x14 ^= x3
        x14 = ((x14 << 8) & MASK32) | (x14 >> 24)
        x9 = (x9 + x14) & MASK32
        x4 ^= x9
        x4 = ((x4 << 7) & MASK32) | (x4 >> 25)

    return _OUT_WORDS.pack(
        (x0 + _C0) & MASK32, (x1 + _C1) & MASK32,
        (x2 + _C2) & MASK32, (x3 + _C3) & MASK32,
        (x4 + k0) & MASK32, (x5 + k1) & MASK32,
        (x6 + k2) & MASK32, (x7 + k3) & MASK32,
        (x8 + k4) & MASK32, (x9 + k5) & MASK32,
        (x10 + k6) & MASK32, (x11 + k7) & MASK32,
        (x12 + counter) & MASK32, (x13 + n0) & MASK32,
        (x14 + n1) & MASK32, (x15 + n2) & MASK32,
    )


def _check_sizes(key, nonce):
    if len(key) != 32:
        raise ValueError("ChaCha20 key must be 32 bytes")
    if len(nonce) != 12:
        raise ValueError("ChaCha20 nonce must be 12 bytes")


def chacha20_block(key, counter, nonce):
    """One 64-byte keystream block."""
    _check_sizes(key, nonce)
    k = _KEY_WORDS.unpack(key)
    n = _NONCE_WORDS.unpack(nonce)
    return _core(*k, counter & MASK32, *n)


def chacha20_block_reference(key, counter, nonce):
    """One 64-byte keystream block (original quarter-round path,
    retained as the cross-validation oracle for :func:`_core`)."""
    _check_sizes(key, nonce)
    constants = (_C0, _C1, _C2, _C3)
    state = list(constants)
    state.extend(struct.unpack("<8I", key))
    state.append(counter & MASK32)
    state.extend(struct.unpack("<3I", nonce))
    working = list(state)
    for _ in range(10):
        _quarter_round(working, 0, 4, 8, 12)
        _quarter_round(working, 1, 5, 9, 13)
        _quarter_round(working, 2, 6, 10, 14)
        _quarter_round(working, 3, 7, 11, 15)
        _quarter_round(working, 0, 5, 10, 15)
        _quarter_round(working, 1, 6, 11, 12)
        _quarter_round(working, 2, 7, 8, 13)
        _quarter_round(working, 3, 4, 9, 14)
    out = [(working[i] + state[i]) & MASK32 for i in range(16)]
    return struct.pack("<16I", *out)


# -- batched keystream: SWAR over wide integers -------------------------
#
# For a run of sequential counters the sixteen state words of every
# block evolve independently, so B blocks are computed at once by
# packing word i of all B blocks into one arbitrary-precision integer
# (64-bit lanes: a 32-bit value plus carry/garbage headroom).  Adds
# carry within a lane only, XORs are lane-local by nature, and each
# rotation re-masks its lanes, so dirty high bits never cross a lane
# boundary.  CPython big-int ops cost ~nanoseconds per 30-bit digit,
# which amortises the interpreter's per-op overhead across every block
# in the batch -- the same trick is impossible per 32-bit word.

_SWAR_MIN_BLOCKS = 4      # below this the scalar core is faster
_swar_masks = {}


def _swar_masks_for(nblocks):
    masks = _swar_masks.get(nblocks)
    if masks is None:
        if len(_swar_masks) > 256:
            _swar_masks.clear()
        rep = ((1 << (64 * nblocks)) - 1) // ((1 << 64) - 1)
        masks = {"rep": rep, "m32": MASK32 * rep}
        for c in (16, 12, 8, 7):
            masks["hi%d" % c] = (((MASK32 >> c) << c) & MASK32) * rep
            masks["lo%d" % c] = ((1 << c) - 1) * rep
        _swar_masks[nblocks] = masks
    return masks


def _keystream_swar(key_words, counter, nonce_words, nblocks):
    """``nblocks`` sequential keystream blocks, all lanes at once."""
    masks = _swar_masks_for(nblocks)
    rep = masks["rep"]
    m32 = masks["m32"]
    hi16, lo16 = masks["hi16"], masks["lo16"]
    hi12, lo12 = masks["hi12"], masks["lo12"]
    hi8, lo8 = masks["hi8"], masks["lo8"]
    hi7, lo7 = masks["hi7"], masks["lo7"]
    ctr = int.from_bytes(
        b"".join(((counter + i) & MASK32).to_bytes(8, "little")
                 for i in range(nblocks)),
        "little",
    )
    init = (
        [_C0 * rep, _C1 * rep, _C2 * rep, _C3 * rep]
        + [w * rep for w in key_words]
        + [ctr]
        + [w * rep for w in nonce_words]
    )
    (x0, x1, x2, x3, x4, x5, x6, x7,
     x8, x9, x10, x11, x12, x13, x14, x15) = init
    for _ in range(10):
        # column round
        x0 = x0 + x4
        t = x12 ^ x0
        x12 = ((t << 16) & hi16) | ((t >> 16) & lo16)
        x8 = x8 + x12
        t = x4 ^ x8
        x4 = ((t << 12) & hi12) | ((t >> 20) & lo12)
        x0 = x0 + x4
        t = x12 ^ x0
        x12 = ((t << 8) & hi8) | ((t >> 24) & lo8)
        x8 = x8 + x12
        t = x4 ^ x8
        x4 = ((t << 7) & hi7) | ((t >> 25) & lo7)

        x1 = x1 + x5
        t = x13 ^ x1
        x13 = ((t << 16) & hi16) | ((t >> 16) & lo16)
        x9 = x9 + x13
        t = x5 ^ x9
        x5 = ((t << 12) & hi12) | ((t >> 20) & lo12)
        x1 = x1 + x5
        t = x13 ^ x1
        x13 = ((t << 8) & hi8) | ((t >> 24) & lo8)
        x9 = x9 + x13
        t = x5 ^ x9
        x5 = ((t << 7) & hi7) | ((t >> 25) & lo7)

        x2 = x2 + x6
        t = x14 ^ x2
        x14 = ((t << 16) & hi16) | ((t >> 16) & lo16)
        x10 = x10 + x14
        t = x6 ^ x10
        x6 = ((t << 12) & hi12) | ((t >> 20) & lo12)
        x2 = x2 + x6
        t = x14 ^ x2
        x14 = ((t << 8) & hi8) | ((t >> 24) & lo8)
        x10 = x10 + x14
        t = x6 ^ x10
        x6 = ((t << 7) & hi7) | ((t >> 25) & lo7)

        x3 = x3 + x7
        t = x15 ^ x3
        x15 = ((t << 16) & hi16) | ((t >> 16) & lo16)
        x11 = x11 + x15
        t = x7 ^ x11
        x7 = ((t << 12) & hi12) | ((t >> 20) & lo12)
        x3 = x3 + x7
        t = x15 ^ x3
        x15 = ((t << 8) & hi8) | ((t >> 24) & lo8)
        x11 = x11 + x15
        t = x7 ^ x11
        x7 = ((t << 7) & hi7) | ((t >> 25) & lo7)

        # diagonal round
        x0 = x0 + x5
        t = x15 ^ x0
        x15 = ((t << 16) & hi16) | ((t >> 16) & lo16)
        x10 = x10 + x15
        t = x5 ^ x10
        x5 = ((t << 12) & hi12) | ((t >> 20) & lo12)
        x0 = x0 + x5
        t = x15 ^ x0
        x15 = ((t << 8) & hi8) | ((t >> 24) & lo8)
        x10 = x10 + x15
        t = x5 ^ x10
        x5 = ((t << 7) & hi7) | ((t >> 25) & lo7)

        x1 = x1 + x6
        t = x12 ^ x1
        x12 = ((t << 16) & hi16) | ((t >> 16) & lo16)
        x11 = x11 + x12
        t = x6 ^ x11
        x6 = ((t << 12) & hi12) | ((t >> 20) & lo12)
        x1 = x1 + x6
        t = x12 ^ x1
        x12 = ((t << 8) & hi8) | ((t >> 24) & lo8)
        x11 = x11 + x12
        t = x6 ^ x11
        x6 = ((t << 7) & hi7) | ((t >> 25) & lo7)

        x2 = x2 + x7
        t = x13 ^ x2
        x13 = ((t << 16) & hi16) | ((t >> 16) & lo16)
        x8 = x8 + x13
        t = x7 ^ x8
        x7 = ((t << 12) & hi12) | ((t >> 20) & lo12)
        x2 = x2 + x7
        t = x13 ^ x2
        x13 = ((t << 8) & hi8) | ((t >> 24) & lo8)
        x8 = x8 + x13
        t = x7 ^ x8
        x7 = ((t << 7) & hi7) | ((t >> 25) & lo7)

        x3 = x3 + x4
        t = x14 ^ x3
        x14 = ((t << 16) & hi16) | ((t >> 16) & lo16)
        x9 = x9 + x14
        t = x4 ^ x9
        x4 = ((t << 12) & hi12) | ((t >> 20) & lo12)
        x3 = x3 + x4
        t = x14 ^ x3
        x14 = ((t << 8) & hi8) | ((t >> 24) & lo8)
        x9 = x9 + x14
        t = x4 ^ x9
        x4 = ((t << 7) & hi7) | ((t >> 25) & lo7)

    state = (x0, x1, x2, x3, x4, x5, x6, x7,
             x8, x9, x10, x11, x12, x13, x14, x15)
    word_bytes = [
        ((x + init[i]) & m32).to_bytes(8 * nblocks, "little")
        for i, x in enumerate(state)
    ]
    # Lane b of word i sits at byte offset 8*b, already little-endian.
    return b"".join(
        b"".join(word_bytes[i][8 * b:8 * b + 4] for i in range(16))
        for b in range(nblocks)
    )


def chacha20_encrypt(key, counter, nonce, plaintext):
    """Encrypt/decrypt (XOR keystream starting at block ``counter``).

    Key and nonce words are unpacked once and shared by every block of
    the sequential counter run; multi-block messages generate their
    keystream through the SWAR batch path, and the XOR happens as one
    wide integer.
    """
    _check_sizes(key, nonce)
    n = len(plaintext)
    if not n:
        return b""
    key_words = _KEY_WORDS.unpack(key)
    nonce_words = _NONCE_WORDS.unpack(nonce)
    nblocks = (n + 63) // 64
    if nblocks >= _SWAR_MIN_BLOCKS:
        stream = _keystream_swar(key_words, counter, nonce_words, nblocks)
    else:
        stream = b"".join(
            _core(*key_words, (counter + block_index) & MASK32,
                  *nonce_words)
            for block_index in range(nblocks)
        )
    if len(stream) != n:
        stream = stream[:n]
    return (int.from_bytes(plaintext, "big")
            ^ int.from_bytes(stream, "big")).to_bytes(n, "big")
