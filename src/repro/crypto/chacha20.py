"""ChaCha20 stream cipher (RFC 8439 section 2).

Pure-Python, word-exact against the RFC test vectors.  Used by the
CHACHA20_POLY1305_SHA256 suite; simulator-scale experiments prefer the
fast null-tag cipher (see :mod:`repro.crypto.aead`).
"""

import struct

MASK32 = 0xFFFFFFFF


def _rotl32(v, c):
    return ((v << c) & MASK32) | (v >> (32 - c))


def _quarter_round(state, a, b, c, d):
    state[a] = (state[a] + state[b]) & MASK32
    state[d] = _rotl32(state[d] ^ state[a], 16)
    state[c] = (state[c] + state[d]) & MASK32
    state[b] = _rotl32(state[b] ^ state[c], 12)
    state[a] = (state[a] + state[b]) & MASK32
    state[d] = _rotl32(state[d] ^ state[a], 8)
    state[c] = (state[c] + state[d]) & MASK32
    state[b] = _rotl32(state[b] ^ state[c], 7)


def chacha20_block(key, counter, nonce):
    """One 64-byte keystream block."""
    if len(key) != 32:
        raise ValueError("ChaCha20 key must be 32 bytes")
    if len(nonce) != 12:
        raise ValueError("ChaCha20 nonce must be 12 bytes")
    constants = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)
    state = list(constants)
    state.extend(struct.unpack("<8I", key))
    state.append(counter & MASK32)
    state.extend(struct.unpack("<3I", nonce))
    working = list(state)
    for _ in range(10):
        _quarter_round(working, 0, 4, 8, 12)
        _quarter_round(working, 1, 5, 9, 13)
        _quarter_round(working, 2, 6, 10, 14)
        _quarter_round(working, 3, 7, 11, 15)
        _quarter_round(working, 0, 5, 10, 15)
        _quarter_round(working, 1, 6, 11, 12)
        _quarter_round(working, 2, 7, 8, 13)
        _quarter_round(working, 3, 4, 9, 14)
    out = [(working[i] + state[i]) & MASK32 for i in range(16)]
    return struct.pack("<16I", *out)


def chacha20_encrypt(key, counter, nonce, plaintext):
    """Encrypt/decrypt (XOR keystream starting at block ``counter``)."""
    out = bytearray(len(plaintext))
    for block_index in range((len(plaintext) + 63) // 64):
        keystream = chacha20_block(key, counter + block_index, nonce)
        offset = block_index * 64
        chunk = plaintext[offset:offset + 64]
        out[offset:offset + len(chunk)] = bytes(
            a ^ b for a, b in zip(chunk, keystream)
        )
    return bytes(out)
