"""Finite-field Diffie-Hellman over the RFC 7919 ffdhe2048 group.

Provides the ``(EC)DHE`` contribution to the TLS 1.3 handshake.  The
group is the standardised 2048-bit safe prime; exponentiation uses
Python's constant ``pow``.
"""

import hashlib

# RFC 7919 appendix A.1: ffdhe2048 prime.
_FFDHE2048_P_HEX = (
    "FFFFFFFFFFFFFFFFADF85458A2BB4A9AAFDC5620273D3CF1"
    "D8B9C583CE2D3695A9E13641146433FBCC939DCE249B3EF9"
    "7D2FE363630C75D8F681B202AEC4617AD3DF1ED5D5FD6561"
    "2433F51F5F066ED0856365553DED1AF3B557135E7F57C935"
    "984F0C70E0E68B77E2A689DAF3EFE8721DF158A136ADE735"
    "30ACCA4F483A797ABC0AB182B324FB61D108A94BB2C8E3FB"
    "B96ADAB760D7F4681D4F42A3DE394DF4AE56EDE76372BB19"
    "0B07A7C8EE0A6D709E02FCE1CDF7E2ECC03404CD28342F61"
    "9172FE9CE98583FF8E4F1232EEF28183C3FE3B1B4C6FAD73"
    "3BB5FCBC2EC22005C58EF1837D1683B2C6F34A26C1B2EFFA"
    "886B423861285C97FFFFFFFFFFFFFFFF"
)

FFDHE2048_P = int(_FFDHE2048_P_HEX, 16)
FFDHE2048_G = 2
FFDHE2048_LEN = 256  # bytes


class FFDHE2048:
    """The ffdhe2048 named group (TLS group id 0x0100)."""

    group_id = 0x0100
    p = FFDHE2048_P
    g = FFDHE2048_G
    key_length = FFDHE2048_LEN

    @classmethod
    def generate(cls, rng):
        """Generate a key pair from the given ``random.Random``."""
        private = rng.getrandbits(2048) % (cls.p - 2) + 1
        public = pow(cls.g, private, cls.p)
        return DHKeyPair(private, public)

    @classmethod
    def shared_secret(cls, private, peer_public):
        """Compute Z, left-padded to the group length (RFC 8446 7.4.1)."""
        if not 1 < peer_public < cls.p - 1:
            raise ValueError("peer public value out of range")
        z = pow(peer_public, private, cls.p)
        return z.to_bytes(cls.key_length, "big")


class DHKeyPair:
    """A private/public FFDHE key pair."""

    __slots__ = ("private", "public")

    def __init__(self, private, public):
        self.private = private
        self.public = public

    def public_bytes(self):
        return self.public.to_bytes(FFDHE2048_LEN, "big")

    @staticmethod
    def public_from_bytes(data):
        if len(data) != FFDHE2048_LEN:
            raise ValueError("ffdhe2048 public value must be 256 bytes")
        return int.from_bytes(data, "big")

    def fingerprint(self):
        """Short identifier for logs/tests."""
        return hashlib.sha256(self.public_bytes()).hexdigest()[:16]
