"""HKDF (RFC 5869) and the TLS 1.3 key-schedule helpers (RFC 8446)."""

import hashlib
import hmac
import struct


def hkdf_extract(salt, ikm, hash_name="sha256"):
    """HKDF-Extract: PRK = HMAC-Hash(salt, IKM)."""
    if not salt:
        salt = b"\x00" * hashlib.new(hash_name).digest_size
    return hmac.new(salt, ikm, hash_name).digest()


def hkdf_expand(prk, info, length, hash_name="sha256"):
    """HKDF-Expand: OKM of ``length`` bytes."""
    digest_size = hashlib.new(hash_name).digest_size
    if length > 255 * digest_size:
        raise ValueError("HKDF-Expand length too large")
    okm = b""
    block = b""
    counter = 1
    while len(okm) < length:
        block = hmac.new(prk, block + info + bytes([counter]), hash_name).digest()
        okm += block
        counter += 1
    return okm[:length]


def hkdf_expand_label(secret, label, context, length, hash_name="sha256"):
    """TLS 1.3 HKDF-Expand-Label (RFC 8446 section 7.1).

    HkdfLabel = length(2) || "tls13 " + label (length-prefixed) ||
                context (length-prefixed)
    """
    full_label = b"tls13 " + label
    hkdf_label = (
        struct.pack("!H", length)
        + bytes([len(full_label)])
        + full_label
        + bytes([len(context)])
        + context
    )
    return hkdf_expand(secret, hkdf_label, length, hash_name)


def derive_secret(secret, label, transcript_messages, hash_name="sha256"):
    """TLS 1.3 Derive-Secret: expand with Transcript-Hash as context."""
    transcript_hash = hashlib.new(hash_name, transcript_messages).digest()
    digest_size = hashlib.new(hash_name).digest_size
    return hkdf_expand_label(secret, label, transcript_hash, digest_size,
                             hash_name)
