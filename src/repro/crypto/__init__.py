"""Cryptographic core for the TLS 1.3 / TCPLS stack.

Everything is implemented from scratch on the standard library:

- HKDF (RFC 5869) and the TLS 1.3 ``HKDF-Expand-Label`` / ``Derive-Secret``
  constructions (RFC 8446 section 7.1);
- ChaCha20 and Poly1305 with the RFC 8439 AEAD composition;
- AES-128 and GCM (NIST SP 800-38D) for the AES_128_GCM_SHA256 suite the
  paper benchmarks;
- finite-field Diffie-Hellman over the RFC 7919 ffdhe2048 group for the
  (EC)DHE part of the handshake;
- a ``null-tag`` cipher: identity "encryption" with a keyed BLAKE2s
  authentication tag.  It preserves every structural property TCPLS
  relies on (16-byte tags, key/nonce-dependent authentication, hence
  working tag-trial stream demultiplexing) at hashlib speed, and is the
  default for simulator-scale experiments where pure-Python AES would
  dominate runtime.  The real ciphers are validated against published
  test vectors in the test suite.
"""

from repro.crypto.hkdf import (
    derive_secret,
    hkdf_expand,
    hkdf_expand_label,
    hkdf_extract,
)
from repro.crypto.aead import (
    Aead,
    AeadAuthenticationError,
    Aes128Gcm,
    Chacha20Poly1305,
    NullTagCipher,
    get_cipher,
)
from repro.crypto.ffdhe import FFDHE2048, DHKeyPair

__all__ = [
    "Aead",
    "AeadAuthenticationError",
    "Aes128Gcm",
    "Chacha20Poly1305",
    "DHKeyPair",
    "FFDHE2048",
    "NullTagCipher",
    "derive_secret",
    "get_cipher",
    "hkdf_expand",
    "hkdf_expand_label",
    "hkdf_extract",
]
