"""AES-128 block cipher (FIPS 197), pure Python.

Only what GCM needs: key expansion, single-block encryption, and a
batched CTR keystream generator.  Two encryption paths exist:

- :meth:`Aes128.encrypt_block` -- the table-driven fast path.  The
  SubBytes/ShiftRows/MixColumns round is collapsed into four 256-entry
  32-bit lookup tables (the classic "T-table" formulation), turning a
  round into 16 table lookups and a handful of XORs on machine words.
- :meth:`Aes128.encrypt_block_reference` -- the original byte-wise
  implementation, retained verbatim as the cross-validation oracle.

Both are validated against FIPS 197 / NIST vectors, and the fast path
is property-tested byte-identical to the reference on random inputs
(tests/crypto/test_fastpath_equivalence.py).
"""

import struct

_SBOX = [
    0x63, 0x7C, 0x77, 0x7B, 0xF2, 0x6B, 0x6F, 0xC5, 0x30, 0x01, 0x67, 0x2B,
    0xFE, 0xD7, 0xAB, 0x76, 0xCA, 0x82, 0xC9, 0x7D, 0xFA, 0x59, 0x47, 0xF0,
    0xAD, 0xD4, 0xA2, 0xAF, 0x9C, 0xA4, 0x72, 0xC0, 0xB7, 0xFD, 0x93, 0x26,
    0x36, 0x3F, 0xF7, 0xCC, 0x34, 0xA5, 0xE5, 0xF1, 0x71, 0xD8, 0x31, 0x15,
    0x04, 0xC7, 0x23, 0xC3, 0x18, 0x96, 0x05, 0x9A, 0x07, 0x12, 0x80, 0xE2,
    0xEB, 0x27, 0xB2, 0x75, 0x09, 0x83, 0x2C, 0x1A, 0x1B, 0x6E, 0x5A, 0xA0,
    0x52, 0x3B, 0xD6, 0xB3, 0x29, 0xE3, 0x2F, 0x84, 0x53, 0xD1, 0x00, 0xED,
    0x20, 0xFC, 0xB1, 0x5B, 0x6A, 0xCB, 0xBE, 0x39, 0x4A, 0x4C, 0x58, 0xCF,
    0xD0, 0xEF, 0xAA, 0xFB, 0x43, 0x4D, 0x33, 0x85, 0x45, 0xF9, 0x02, 0x7F,
    0x50, 0x3C, 0x9F, 0xA8, 0x51, 0xA3, 0x40, 0x8F, 0x92, 0x9D, 0x38, 0xF5,
    0xBC, 0xB6, 0xDA, 0x21, 0x10, 0xFF, 0xF3, 0xD2, 0xCD, 0x0C, 0x13, 0xEC,
    0x5F, 0x97, 0x44, 0x17, 0xC4, 0xA7, 0x7E, 0x3D, 0x64, 0x5D, 0x19, 0x73,
    0x60, 0x81, 0x4F, 0xDC, 0x22, 0x2A, 0x90, 0x88, 0x46, 0xEE, 0xB8, 0x14,
    0xDE, 0x5E, 0x0B, 0xDB, 0xE0, 0x32, 0x3A, 0x0A, 0x49, 0x06, 0x24, 0x5C,
    0xC2, 0xD3, 0xAC, 0x62, 0x91, 0x95, 0xE4, 0x79, 0xE7, 0xC8, 0x37, 0x6D,
    0x8D, 0xD5, 0x4E, 0xA9, 0x6C, 0x56, 0xF4, 0xEA, 0x65, 0x7A, 0xAE, 0x08,
    0xBA, 0x78, 0x25, 0x2E, 0x1C, 0xA6, 0xB4, 0xC6, 0xE8, 0xDD, 0x74, 0x1F,
    0x4B, 0xBD, 0x8B, 0x8A, 0x70, 0x3E, 0xB5, 0x66, 0x48, 0x03, 0xF6, 0x0E,
    0x61, 0x35, 0x57, 0xB9, 0x86, 0xC1, 0x1D, 0x9E, 0xE1, 0xF8, 0x98, 0x11,
    0x69, 0xD9, 0x8E, 0x94, 0x9B, 0x1E, 0x87, 0xE9, 0xCE, 0x55, 0x28, 0xDF,
    0x8C, 0xA1, 0x89, 0x0D, 0xBF, 0xE6, 0x42, 0x68, 0x41, 0x99, 0x2D, 0x0F,
    0xB0, 0x54, 0xBB, 0x16,
]

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def _xtime(a):
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _build_t_tables():
    """T-tables: per state byte, its 32-bit MixColumns column
    contribution after SubBytes (row 0 in the most significant byte)."""
    t0, t1, t2, t3 = [0] * 256, [0] * 256, [0] * 256, [0] * 256
    for x in range(256):
        s = _SBOX[x]
        s2 = _xtime(s)
        s3 = s2 ^ s
        t0[x] = (s2 << 24) | (s << 16) | (s << 8) | s3
        t1[x] = (s3 << 24) | (s2 << 16) | (s << 8) | s
        t2[x] = (s << 24) | (s3 << 16) | (s2 << 8) | s
        t3[x] = (s << 24) | (s << 16) | (s3 << 8) | s2
    return t0, t1, t2, t3


_T0, _T1, _T2, _T3 = _build_t_tables()

_MASK32 = 0xFFFFFFFF
_UNPACK4 = struct.Struct(">4I")
_UNPACK3 = struct.Struct(">3I")

# Optional vectorised CTR batch path: every counter block is independent,
# so the T-table lookups become numpy gathers across the whole batch.
# Gated -- the scalar loop below is the fallback (and the oracle the
# numpy path is property-tested against).
try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the image
    _np = None

if _np is not None:
    _T0_NP = _np.array(_T0, dtype=_np.uint32)
    _T1_NP = _np.array(_T1, dtype=_np.uint32)
    _T2_NP = _np.array(_T2, dtype=_np.uint32)
    _T3_NP = _np.array(_T3, dtype=_np.uint32)
    _SBOX_NP = _np.array(_SBOX, dtype=_np.uint32)

_NP_MIN_BLOCKS = 8  # below this, per-call numpy overhead loses


class Aes128:
    """AES-128 with a precomputed key schedule."""

    def __init__(self, key):
        if len(key) != 16:
            raise ValueError("AES-128 key must be 16 bytes")
        self._round_keys = self._expand_key(key)
        # Round keys as 44 big-endian 32-bit column words (fast path).
        self._rk = [
            int.from_bytes(bytes(rk[i:i + 4]), "big")
            for rk in self._round_keys for i in range(0, 16, 4)
        ]

    @staticmethod
    def _expand_key(key):
        words = [list(key[i:i + 4]) for i in range(0, 16, 4)]
        for i in range(4, 44):
            temp = list(words[i - 1])
            if i % 4 == 0:
                temp = temp[1:] + temp[:1]
                temp = [_SBOX[b] for b in temp]
                temp[0] ^= _RCON[i // 4 - 1]
            words.append([a ^ b for a, b in zip(words[i - 4], temp)])
        return [sum((words[4 * r + c] for c in range(4)), [])
                for r in range(11)]

    def _encrypt_words(self, s0, s1, s2, s3):
        """Ten T-table rounds over the four column words."""
        rk = self._rk
        t0, t1, t2, t3 = _T0, _T1, _T2, _T3
        s0 ^= rk[0]
        s1 ^= rk[1]
        s2 ^= rk[2]
        s3 ^= rk[3]
        k = 4
        for _ in range(9):
            u0 = (t0[s0 >> 24] ^ t1[(s1 >> 16) & 0xFF]
                  ^ t2[(s2 >> 8) & 0xFF] ^ t3[s3 & 0xFF] ^ rk[k])
            u1 = (t0[s1 >> 24] ^ t1[(s2 >> 16) & 0xFF]
                  ^ t2[(s3 >> 8) & 0xFF] ^ t3[s0 & 0xFF] ^ rk[k + 1])
            u2 = (t0[s2 >> 24] ^ t1[(s3 >> 16) & 0xFF]
                  ^ t2[(s0 >> 8) & 0xFF] ^ t3[s1 & 0xFF] ^ rk[k + 2])
            u3 = (t0[s3 >> 24] ^ t1[(s0 >> 16) & 0xFF]
                  ^ t2[(s1 >> 8) & 0xFF] ^ t3[s2 & 0xFF] ^ rk[k + 3])
            s0, s1, s2, s3 = u0, u1, u2, u3
            k += 4
        sb = _SBOX
        r0 = ((sb[s0 >> 24] << 24) | (sb[(s1 >> 16) & 0xFF] << 16)
              | (sb[(s2 >> 8) & 0xFF] << 8) | sb[s3 & 0xFF]) ^ rk[40]
        r1 = ((sb[s1 >> 24] << 24) | (sb[(s2 >> 16) & 0xFF] << 16)
              | (sb[(s3 >> 8) & 0xFF] << 8) | sb[s0 & 0xFF]) ^ rk[41]
        r2 = ((sb[s2 >> 24] << 24) | (sb[(s3 >> 16) & 0xFF] << 16)
              | (sb[(s0 >> 8) & 0xFF] << 8) | sb[s1 & 0xFF]) ^ rk[42]
        r3 = ((sb[s3 >> 24] << 24) | (sb[(s0 >> 16) & 0xFF] << 16)
              | (sb[(s1 >> 8) & 0xFF] << 8) | sb[s2 & 0xFF]) ^ rk[43]
        return r0, r1, r2, r3

    def encrypt_block(self, block):
        """Encrypt one 16-byte block (table-driven fast path)."""
        s0, s1, s2, s3 = _UNPACK4.unpack(block)
        return _UNPACK4.pack(*self._encrypt_words(s0, s1, s2, s3))

    def ctr_keystream(self, prefix, counter, nblocks):
        """Concatenated keystream E_K(prefix || (counter + i) mod 2^32)
        for i in 0..nblocks-1.

        ``prefix`` is the 12-byte nonce part of the counter block; only
        the trailing 32-bit word varies, so the three fixed words are
        unpacked once for the whole batch.  Large batches go through the
        numpy-gather path when numpy is available.
        """
        if _np is not None and nblocks >= _NP_MIN_BLOCKS:
            return self._ctr_keystream_np(prefix, counter, nblocks)
        p0, p1, p2 = _UNPACK3.unpack(prefix)
        out = bytearray(16 * nblocks)
        pack_into = _UNPACK4.pack_into
        encrypt = self._encrypt_words
        for i in range(nblocks):
            words = encrypt(p0, p1, p2, (counter + i) & _MASK32)
            pack_into(out, 16 * i, *words)
        return bytes(out)

    def _ctr_keystream_np(self, prefix, counter, nblocks):
        """CTR batch with the T-table lookups as numpy gathers."""
        rk = self._rk
        p0, p1, p2 = _UNPACK3.unpack(prefix)
        t0, t1, t2, t3 = _T0_NP, _T1_NP, _T2_NP, _T3_NP
        s0 = _np.full(nblocks, (p0 ^ rk[0]) & _MASK32, dtype=_np.uint32)
        s1 = _np.full(nblocks, (p1 ^ rk[1]) & _MASK32, dtype=_np.uint32)
        s2 = _np.full(nblocks, (p2 ^ rk[2]) & _MASK32, dtype=_np.uint32)
        s3 = (_np.arange(counter, counter + nblocks, dtype=_np.uint64)
              .astype(_np.uint32)) ^ _np.uint32(rk[3])
        k = 4
        for _ in range(9):
            u0 = (t0[s0 >> 24] ^ t1[(s1 >> 16) & 0xFF]
                  ^ t2[(s2 >> 8) & 0xFF] ^ t3[s3 & 0xFF]
                  ^ _np.uint32(rk[k]))
            u1 = (t0[s1 >> 24] ^ t1[(s2 >> 16) & 0xFF]
                  ^ t2[(s3 >> 8) & 0xFF] ^ t3[s0 & 0xFF]
                  ^ _np.uint32(rk[k + 1]))
            u2 = (t0[s2 >> 24] ^ t1[(s3 >> 16) & 0xFF]
                  ^ t2[(s0 >> 8) & 0xFF] ^ t3[s1 & 0xFF]
                  ^ _np.uint32(rk[k + 2]))
            u3 = (t0[s3 >> 24] ^ t1[(s0 >> 16) & 0xFF]
                  ^ t2[(s1 >> 8) & 0xFF] ^ t3[s2 & 0xFF]
                  ^ _np.uint32(rk[k + 3]))
            s0, s1, s2, s3 = u0, u1, u2, u3
            k += 4
        sb = _SBOX_NP
        out = _np.empty((nblocks, 4), dtype=_np.uint32)
        out[:, 0] = ((sb[s0 >> 24] << 24) | (sb[(s1 >> 16) & 0xFF] << 16)
                     | (sb[(s2 >> 8) & 0xFF] << 8) | sb[s3 & 0xFF]) \
            ^ _np.uint32(rk[40])
        out[:, 1] = ((sb[s1 >> 24] << 24) | (sb[(s2 >> 16) & 0xFF] << 16)
                     | (sb[(s3 >> 8) & 0xFF] << 8) | sb[s0 & 0xFF]) \
            ^ _np.uint32(rk[41])
        out[:, 2] = ((sb[s2 >> 24] << 24) | (sb[(s3 >> 16) & 0xFF] << 16)
                     | (sb[(s0 >> 8) & 0xFF] << 8) | sb[s1 & 0xFF]) \
            ^ _np.uint32(rk[42])
        out[:, 3] = ((sb[s3 >> 24] << 24) | (sb[(s0 >> 16) & 0xFF] << 16)
                     | (sb[(s1 >> 8) & 0xFF] << 8) | sb[s2 & 0xFF]) \
            ^ _np.uint32(rk[43])
        return out.astype(">u4").tobytes()

    # -- reference implementation (cross-validation oracle) --------------

    def encrypt_block_reference(self, block):
        """Encrypt one 16-byte block (original byte-wise path)."""
        state = [block[i] ^ self._round_keys[0][i] for i in range(16)]
        for round_index in range(1, 10):
            state = self._round(state, self._round_keys[round_index],
                                mix=True)
        state = self._round(state, self._round_keys[10], mix=False)
        return bytes(state)

    @staticmethod
    def _round(state, round_key, mix):
        # SubBytes + ShiftRows (state is column-major byte list).
        shifted = [0] * 16
        for col in range(4):
            for row in range(4):
                shifted[col * 4 + row] = _SBOX[state[((col + row) % 4) * 4 + row]]
        if mix:
            mixed = [0] * 16
            for col in range(4):
                a = shifted[col * 4:col * 4 + 4]
                mixed[col * 4 + 0] = _xtime(a[0]) ^ _xtime(a[1]) ^ a[1] ^ a[2] ^ a[3]
                mixed[col * 4 + 1] = a[0] ^ _xtime(a[1]) ^ _xtime(a[2]) ^ a[2] ^ a[3]
                mixed[col * 4 + 2] = a[0] ^ a[1] ^ _xtime(a[2]) ^ _xtime(a[3]) ^ a[3]
                mixed[col * 4 + 3] = _xtime(a[0]) ^ a[0] ^ a[1] ^ a[2] ^ _xtime(a[3])
            shifted = mixed
        return [shifted[i] ^ round_key[i] for i in range(16)]
