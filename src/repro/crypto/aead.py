"""AEAD cipher suite registry.

All ciphers share one interface so the TLS record layer and the TCPLS
per-stream contexts are cipher-agnostic:

- ``seal(nonce, plaintext, aad) -> ciphertext||tag``
- ``open(nonce, data, aad) -> plaintext`` (raises on bad tag)
- ``verify_tag(nonce, data, aad) -> bool`` -- cheap authentication
  check *without* full decryption, the operation TCPLS uses to find the
  right stream context by trial (Sec. 3.3.1 of the paper).
"""

import hashlib
import hmac

from repro.crypto.chacha20 import chacha20_block, chacha20_encrypt
from repro.crypto.gcm import AesGcm
from repro.crypto.poly1305 import poly1305_mac


class AeadAuthenticationError(Exception):
    """Tag verification failed (treated as a forgery attempt)."""


class Aead:
    """Base AEAD: subclasses define key/nonce sizes and the primitives."""

    key_size = 32
    nonce_size = 12
    tag_size = 16
    name = "base"

    def __init__(self, key):
        if len(key) != self.key_size:
            raise ValueError(
                "%s key must be %d bytes" % (self.name, self.key_size)
            )
        self.key = key

    def seal(self, nonce, plaintext, aad=b""):
        raise NotImplementedError

    def open(self, nonce, data, aad=b""):
        raise NotImplementedError

    def verify_tag(self, nonce, data, aad=b""):
        """Default: attempt full open (subclasses optimise)."""
        try:
            self.open(nonce, data, aad)
        except AeadAuthenticationError:
            return False
        return True


class Chacha20Poly1305(Aead):
    """RFC 8439 AEAD_CHACHA20_POLY1305.

    The Poly1305 one-time key (ChaCha20 block 0) is cached per nonce:
    the TCPLS demux pattern verifies a tag and then opens the same
    record, and sealing authenticates right after encrypting, so the
    counter-0 block would otherwise be derived twice per record.
    """

    key_size = 32
    name = "chacha20poly1305"

    def __init__(self, key):
        super().__init__(key)
        self._poly_cache = (None, None)

    def _poly_key(self, nonce):
        cached_nonce, cached_key = self._poly_cache
        if cached_nonce == nonce:
            return cached_key
        poly_key = chacha20_block(self.key, 0, nonce)[:32]
        self._poly_cache = (bytes(nonce), poly_key)
        return poly_key

    def _auth(self, nonce, ciphertext, aad):
        mac_data = b"".join((
            aad, b"\x00" * ((-len(aad)) % 16),
            ciphertext, b"\x00" * ((-len(ciphertext)) % 16),
            len(aad).to_bytes(8, "little"),
            len(ciphertext).to_bytes(8, "little"),
        ))
        return poly1305_mac(self._poly_key(nonce), mac_data)

    def seal(self, nonce, plaintext, aad=b""):
        ciphertext = chacha20_encrypt(self.key, 1, nonce, plaintext)
        return ciphertext + self._auth(nonce, ciphertext, aad)

    def open(self, nonce, data, aad=b""):
        if len(data) < self.tag_size:
            raise AeadAuthenticationError("record shorter than tag")
        view = memoryview(data)
        ciphertext, tag = view[:-self.tag_size], view[-self.tag_size:]
        expected = self._auth(nonce, ciphertext, aad)
        if not hmac.compare_digest(expected, tag):
            raise AeadAuthenticationError("Poly1305 tag mismatch")
        return chacha20_encrypt(self.key, 1, nonce, ciphertext)

    def verify_tag(self, nonce, data, aad=b""):
        if len(data) < self.tag_size:
            return False
        view = memoryview(data)
        ciphertext, tag = view[:-self.tag_size], view[-self.tag_size:]
        return hmac.compare_digest(self._auth(nonce, ciphertext, aad), tag)


class Aes128Gcm(Aead):
    """TLS_AES_128_GCM_SHA256's AEAD."""

    key_size = 16
    name = "aes128gcm"

    def __init__(self, key):
        super().__init__(key)
        self._gcm = AesGcm(key)

    def seal(self, nonce, plaintext, aad=b""):
        return self._gcm.encrypt(nonce, plaintext, aad)

    def open(self, nonce, data, aad=b""):
        plaintext = self._gcm.decrypt(nonce, data, aad)
        if plaintext is None:
            raise AeadAuthenticationError("GCM tag mismatch")
        return plaintext

    def verify_tag(self, nonce, data, aad=b""):
        return self._gcm.verify_tag(nonce, data, aad)


class NullTagCipher(Aead):
    """Identity "encryption" with a keyed BLAKE2s tag.

    **Simulation substitute** (documented in DESIGN.md): pure-Python
    AES/ChaCha20 cannot sustain megabytes of emulated traffic, so
    simulator-scale experiments use this cipher.  It preserves the
    properties TCPLS depends on -- a 16-byte tag bound to (key, nonce,
    AAD, payload), failing verification under any other stream's key or
    nonce -- while "encrypting" at memcpy speed.  It offers **no
    confidentiality** and must never be used outside the simulator.
    """

    key_size = 32
    name = "null-tag"

    def _tag(self, nonce, ciphertext, aad):
        mac = hashlib.blake2s(
            b"".join((nonce, len(aad).to_bytes(8, "little"), aad,
                      ciphertext)),
            key=self.key,
            digest_size=self.tag_size,
        )
        return mac.digest()

    def seal(self, nonce, plaintext, aad=b""):
        return bytes(plaintext) + self._tag(nonce, plaintext, aad)

    def open(self, nonce, data, aad=b""):
        if len(data) < self.tag_size:
            raise AeadAuthenticationError("record shorter than tag")
        view = memoryview(data)
        plaintext, tag = view[:-self.tag_size], view[-self.tag_size:]
        if not hmac.compare_digest(self._tag(nonce, plaintext, aad), tag):
            raise AeadAuthenticationError("null-tag mismatch")
        return bytes(plaintext)

    def verify_tag(self, nonce, data, aad=b""):
        if len(data) < self.tag_size:
            return False
        view = memoryview(data)
        plaintext, tag = view[:-self.tag_size], view[-self.tag_size:]
        return hmac.compare_digest(self._tag(nonce, plaintext, aad), tag)


_CIPHERS = {
    Chacha20Poly1305.name: Chacha20Poly1305,
    Aes128Gcm.name: Aes128Gcm,
    NullTagCipher.name: NullTagCipher,
}


def get_cipher(name):
    """Look up an AEAD class by registry name."""
    try:
        return _CIPHERS[name]
    except KeyError:
        raise ValueError(
            "unknown cipher %r (have: %s)" % (name, ", ".join(sorted(_CIPHERS)))
        ) from None
