"""Web-workload replay: page graphs, pools, transfers, fetchers.

Real pages are dependency graphs of sized objects, and the page-load
time a user sees depends on how the transport's scheduling policy maps
the ready frontier of that graph onto connections.  This package
replays such workloads deterministically inside the simulator:

- :mod:`repro.workload.pages` -- :class:`PageSpec` dependency graphs
  (synthetic generators + HAR-lite JSON loader);
- :mod:`repro.workload.pool` -- per-host connection pooling with
  idle-timeout and reuse/new/shared accounting;
- :mod:`repro.workload.transfers` -- the :class:`TransferManager`
  "browser" releasing objects as dependencies complete and consulting
  :meth:`~repro.core.engine.policy.Policy.assign_transfer` per object;
- :mod:`repro.workload.fetchers` -- TCPLS / QUIC / MPTCP backends
  speaking the repo's sized-request protocol.

Everything emits on the obs bus under the ``workload`` category, so a
single capture yields per-object waterfalls and page-load times.
"""

from repro.workload.fetchers import (
    MptcpPageFetcher,
    QuicPageFetcher,
    TcplsPageFetcher,
    WORKLOAD_PSK,
)
from repro.workload.pages import (
    PageObject,
    PageSpec,
    load_page,
    page_from_dict,
    synthetic_page,
)
from repro.workload.pool import (
    Candidate,
    ConnectionPool,
    PooledConnection,
    PoolView,
)
from repro.workload.transfers import Transfer, TransferManager

__all__ = [
    "Candidate",
    "ConnectionPool",
    "MptcpPageFetcher",
    "PageObject",
    "PageSpec",
    "PoolView",
    "PooledConnection",
    "QuicPageFetcher",
    "TcplsPageFetcher",
    "Transfer",
    "TransferManager",
    "WORKLOAD_PSK",
    "load_page",
    "page_from_dict",
    "synthetic_page",
]
