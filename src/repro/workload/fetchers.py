"""Stack-specific page fetchers: TCPLS, QUIC and MPTCP backends.

A fetcher adapts one transport stack to the workload layer's two
contact points: a pool ``factory(host) -> handle`` producing
connections the :class:`~repro.workload.pool.ConnectionPool` manages,
and a ``fetch(entry, transfer, done)`` callable the
:class:`~repro.workload.transfers.TransferManager` invokes per object.
All three speak the repo's sized-request protocol (a 32-byte
``R``-padded request; the peer answers with that many zero bytes), so
page loads across stacks move byte-identical application payloads:

- **TCPLS** (:class:`TcplsPageFetcher`): ONE session spanning
  ``n_paths`` TCP connections (MPJOIN); each pooled handle is one of
  the session's connections, each transfer rides its own TCPLS stream,
  so ``assign_transfer`` literally picks the *path* per object -- the
  paper's application-level stream steering (Sec. 3.3.3).
- **QUIC** (:class:`QuicPageFetcher`): a browser-style pool of
  independent single-path QUIC connections; responses come back on
  server-initiated streams tagged with the request's stream id.
- **MPTCP** (:class:`MptcpPageFetcher`): one byte stream per
  connection (HTTP/1.1-style, capacity 1), multipath below the
  application but serial above it -- the reuse-vs-new pool accounting
  does the most work here.

Handles expose ``srtt()`` / ``cwnd()`` / ``backlog_bytes()`` off their
live transport state, which is exactly what
:class:`~repro.core.engine.policy.PredictivePolicy` feeds its
forked-clock estimator.
"""

import struct

from repro.net.address import Endpoint
from repro.tcp import TcpStack
from repro.workload.pool import ConnectionPool

__all__ = [
    "MptcpPageFetcher",
    "QuicPageFetcher",
    "TcplsPageFetcher",
    "WORKLOAD_PSK",
]

WORKLOAD_PSK = b"workload-psk"

#: response header on QUIC server streams: (request stream id, size)
_QUIC_RSP = struct.Struct("!II")


def _request(nbytes):
    """The repo-wide sized request: 'R' + zero-padded response size."""
    return b"R%031d" % nbytes


class _BaseFetcher:
    """Common surface: ``connect(on_ready)`` then ``pool(...)``."""

    #: per-connection concurrent-transfer capacity (overridden)
    capacity = 1
    #: per-host connection limit handed to the pool
    max_per_host = 6

    def __init__(self, sim):
        self.sim = sim

    def connect(self, on_ready):
        """Prepare the stack; ``on_ready`` fires when page loading may
        start.  Default: nothing to pre-establish."""
        self.sim.schedule(0.0, on_ready)

    def pool(self, bus=None, idle_timeout=30.0):
        """Build the ConnectionPool wired to this fetcher's factory."""
        return ConnectionPool(
            self.sim, self._factory, max_per_host=self.max_per_host,
            capacity=self.capacity, idle_timeout=idle_timeout, bus=bus,
        )

    def _factory(self, host):
        raise NotImplementedError

    def fetch(self, entry, transfer, done):
        raise NotImplementedError


# -- TCPLS -----------------------------------------------------------------


class _TcplsPathHandle:
    """One TCPLS connection (= one network path) of the shared session."""

    __slots__ = ("conn",)

    def __init__(self, conn):
        self.conn = conn

    def srtt(self):
        value = self.conn.tcp.tcp_info().get("srtt")
        return value if value is not None else float("inf")

    def cwnd(self):
        return float(self.conn.tcp.congestion_window())

    def backlog_bytes(self):
        tcp = self.conn.tcp
        return float(tcp.unsent_bytes() + tcp.bytes_in_flight())


class TcplsPageFetcher:
    """Pages over one TCPLS session joined across ``n_paths`` paths.

    The pool's connections ARE the session's TCP connections, so the
    policy's ``assign_transfer`` decision steers each object onto a
    path; each transfer is its own TCPLS stream on that path.
    """

    capacity = 8          # streams multiplex on one connection

    def __init__(self, sim, topo, n_paths=2, psk=WORKLOAD_PSK, port=443,
                 record_payload=4096, capacity=None):
        self.sim = sim
        self.topo = topo
        self.n_paths = n_paths
        self.port = port
        if capacity is not None:
            self.capacity = capacity
        self.max_per_host = n_paths
        from repro.core import TcplsClient, TcplsServer

        self._cstack = TcpStack(sim, topo.client)
        self._sstack = TcpStack(sim, topo.server)
        self.server = TcplsServer(sim, self._sstack, port, psk=psk,
                                  record_payload=record_payload)
        self.server.on_session = self._serve
        self.client = TcplsClient(sim, self._cstack, psk=psk,
                                  record_payload=record_payload)
        self.client.on_stream_data = self._on_stream_data
        self._pending = {}     # stream_id -> [transfer, done, received]
        self._available = []   # established conns not yet handed out

    # -- establishment ---------------------------------------------------

    def connect(self, on_ready):
        """Connect path 0, MPJOIN the rest; ``on_ready`` fires once the
        whole session is up (page-load clocks start *after* session
        establishment, like a browser with a warm connection)."""
        joined = {"count": 1}

        def maybe_ready():
            if joined["count"] == self.n_paths:
                self._available = list(self.client.conns)
                on_ready()

        def on_join(_conn):
            joined["count"] += 1
            maybe_ready()

        def on_client_ready(_session):
            self.client.on_join = on_join
            for i in range(1, self.n_paths):
                self.client.join(self.topo.path(i).client_addr)
            maybe_ready()

        self.client.on_ready = on_client_ready
        p0 = self.topo.path(0)
        self.client.connect(p0.client_addr, Endpoint(p0.server_addr,
                                                     self.port))

    # -- pool factory ----------------------------------------------------

    def pool(self, bus=None, idle_timeout=30.0):
        return ConnectionPool(
            self.sim, self._factory, max_per_host=self.max_per_host,
            capacity=self.capacity, idle_timeout=idle_timeout, bus=bus,
        )

    def _factory(self, _host):
        if not self._available:
            raise ValueError("all session connections already pooled")
        return _TcplsPathHandle(self._available.pop(0))

    # -- transfers -------------------------------------------------------

    def fetch(self, entry, transfer, done):
        stream = self.client.create_stream(entry.handle.conn)
        self._pending[stream.stream_id] = [transfer, done, 0]
        stream.send(_request(transfer.size))
        stream.close()

    def _on_stream_data(self, stream):
        record = self._pending.get(stream.stream_id)
        if record is None:
            return
        record[2] += len(stream.recv())
        if record[2] >= record[0].size:
            del self._pending[stream.stream_id]
            record[1]()

    # -- server side -----------------------------------------------------

    def _serve(self, session):
        requests = {}

        def on_stream_data(stream):
            buf = requests.get(stream.stream_id, b"")
            if buf is None:
                return
            buf += stream.recv()
            if len(buf) >= 32:
                requests[stream.stream_id] = None     # answered
                stream.send(b"\x00" * int(buf[1:32]))
                stream.close()
            else:
                requests[stream.stream_id] = buf

        session.on_stream_data = on_stream_data


# -- QUIC ------------------------------------------------------------------


class _QuicHandle:
    """One pooled QUIC connection; queues transfers until established."""

    __slots__ = ("conn", "pending", "queue")

    def __init__(self, conn):
        self.conn = conn
        self.pending = {}      # request stream id -> (transfer, done)
        self.queue = []        # transfers parked behind the handshake
        conn.on_established = self._flush
        conn.on_stream_data = self._on_stream_data
        conn.start()

    def fetch(self, transfer, done):
        if not self.conn.established:
            self.queue.append((transfer, done))
            return
        self._send(transfer, done)

    def _flush(self, _conn):
        while self.queue:
            transfer, done = self.queue.pop(0)
            self._send(transfer, done)

    def _send(self, transfer, done):
        sid = self.conn.open_stream()
        self.pending[sid] = (transfer, done)
        self.conn.stream_send(sid, _request(transfer.size), fin=True)

    def _on_stream_data(self, _conn, _sid, recv_stream):
        buf = recv_stream.buffer
        if len(buf) < _QUIC_RSP.size:
            return
        request_sid, size = _QUIC_RSP.unpack(bytes(buf[:_QUIC_RSP.size]))
        if len(buf) < _QUIC_RSP.size + size:
            return
        record = self.pending.pop(request_sid, None)
        if record is not None:
            record[1]()

    # transport stats for predictive policies
    def srtt(self):
        value = self.conn.rtt.srtt
        return value if value is not None else float("inf")

    def cwnd(self):
        return float(self.conn.cc.cwnd)

    def backlog_bytes(self):
        fresh = sum(s.pending_fresh() for s in
                    self.conn.send_streams.values())
        return float(self.conn._bytes_in_flight() + fresh)


class QuicPageFetcher:
    """Pages over a browser-style pool of single-path QUIC connections.

    Responses arrive on server-initiated streams carrying an 8-byte
    ``(request stream id, size)`` header so concurrent transfers on one
    connection demultiplex cleanly.
    """

    capacity = 8          # streams multiplex on one connection
    max_per_host = 4

    def __init__(self, sim, topo, psk=WORKLOAD_PSK, port=4433,
                 max_per_host=None, **conn_kwargs):
        self.sim = sim
        self.topo = topo
        self.psk = psk
        self.port = port
        self.conn_kwargs = conn_kwargs
        if max_per_host is not None:
            self.max_per_host = max_per_host
        from repro.baselines.quic import QuicServer, UdpStack

        self._c_udp = UdpStack(sim, topo.client)
        self._s_udp = UdpStack(sim, topo.server)
        p0 = topo.path(0)
        self.server = QuicServer(sim, self._s_udp, p0.server_addr, port,
                                 psk=psk, **conn_kwargs)
        self.server.on_connection = self._serve

    def connect(self, on_ready):
        self.sim.schedule(0.0, on_ready)

    def pool(self, bus=None, idle_timeout=30.0):
        return ConnectionPool(
            self.sim, self._factory, max_per_host=self.max_per_host,
            capacity=self.capacity, idle_timeout=idle_timeout, bus=bus,
        )

    def _factory(self, _host):
        from repro.baselines.quic import QuicClient

        p0 = self.topo.path(0)
        conn = QuicClient(self.sim, self._c_udp, p0.client_addr,
                          Endpoint(p0.server_addr, self.port),
                          psk=self.psk, **self.conn_kwargs)
        return _QuicHandle(conn)

    def fetch(self, entry, transfer, done):
        entry.handle.fetch(transfer, done)

    # -- server side -----------------------------------------------------

    def _serve(self, conn):
        answered = set()

        def on_stream_data(c, sid, recv_stream):
            if sid in answered or len(recv_stream.buffer) < 32:
                return
            answered.add(sid)
            size = int(bytes(recv_stream.buffer[1:32]))
            rsp = c.open_stream()
            c.stream_send(rsp, _QUIC_RSP.pack(sid, size) + b"\x00" * size,
                          fin=True)

        conn.on_stream_data = on_stream_data


# -- MPTCP -----------------------------------------------------------------


class _MptcpHandle:
    """One pooled MPTCP connection: a single serial byte stream."""

    __slots__ = ("conn", "current", "queue", "_received")

    def __init__(self, conn):
        self.conn = conn
        self.current = None    # (transfer, done)
        self.queue = []
        self._received = 0
        conn.on_established = self._flush
        conn.on_data = self._on_data

    def fetch(self, transfer, done):
        self.queue.append((transfer, done))
        if self.current is None and self.conn._established_fired:
            self._next()

    def _flush(self, _conn):
        if self.current is None:
            self._next()

    def _next(self):
        if not self.queue:
            return
        self.current = self.queue.pop(0)
        self._received = 0
        self.conn.send(_request(self.current[0].size))

    def _on_data(self, conn):
        self._received += len(conn.recv())
        # The stream is serial: responses arrive strictly in request
        # order, so a byte count against the head transfer suffices.
        while self.current is not None and \
                self._received >= self.current[0].size:
            self._received -= self.current[0].size
            done = self.current[1]
            self.current = None
            done()
            self._next()

    def srtt(self):
        live = [sf.srtt() for sf in self.conn.subflows if sf.established]
        finite = [s for s in live if s != float("inf")]
        return min(finite) if finite else float("inf")

    def cwnd(self):
        return float(sum(sf.tcp.congestion_window()
                         for sf in self.conn.subflows if sf.established)
                     or 1500.0 * 10)

    def backlog_bytes(self):
        conn = self.conn
        return float(len(conn.pending)
                     + sum(len(chunk) for chunk, _sf
                           in conn.unacked.values()))


class MptcpPageFetcher:
    """Pages over a pool of MPTCP connections (one serial byte stream
    each, multipath underneath) -- browsers never got stream
    multiplexing out of MPTCP, so capacity stays 1 and the pool's
    reuse-vs-new accounting carries the load."""

    capacity = 1
    max_per_host = 6

    def __init__(self, sim, topo, n_paths=2, port=443,
                 path_manager="fullmesh", max_per_host=None):
        self.sim = sim
        self.topo = topo
        self.n_paths = n_paths
        self.port = port
        self.path_manager = path_manager
        if max_per_host is not None:
            self.max_per_host = max_per_host
        from repro.baselines.mptcp import MptcpServer

        self._cstack = TcpStack(sim, topo.client)
        self._sstack = TcpStack(sim, topo.server)
        self.server = MptcpServer(sim, self._sstack, port)
        self.server.on_connection = self._serve

    def connect(self, on_ready):
        self.sim.schedule(0.0, on_ready)

    def pool(self, bus=None, idle_timeout=30.0):
        return ConnectionPool(
            self.sim, self._factory, max_per_host=self.max_per_host,
            capacity=self.capacity, idle_timeout=idle_timeout, bus=bus,
        )

    def _factory(self, _host):
        from repro.baselines.mptcp import MptcpClient

        client = MptcpClient(self.sim, self._cstack,
                             path_manager=self.path_manager)
        pairs = [(p.client_addr, p.server_addr)
                 for p in self.topo.paths[:self.n_paths]]
        client.connect(pairs, self.port)
        return _MptcpHandle(client)

    def fetch(self, entry, transfer, done):
        entry.handle.fetch(transfer, done)

    # -- server side -----------------------------------------------------

    def _serve(self, conn):
        state = {"buf": b""}

        def on_data(c):
            state["buf"] += c.recv()
            while len(state["buf"]) >= 32:
                request, state["buf"] = state["buf"][:32], state["buf"][32:]
                c.send(b"\x00" * int(request[1:32]))

        conn.on_data = on_data
