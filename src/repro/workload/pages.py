"""Web-page specifications: dependency graphs of sized objects.

A page load is not one transfer -- it is a *graph* of them.  The HTML
arrives first; parsing it reveals stylesheets and scripts; those in
turn reveal fonts and images.  The transport stack only sees the
transfers it has been handed, so the page-load time (PLT) an end user
observes depends on how the scheduling policy maps the ready frontier
of that graph onto the available connections.

:class:`PageSpec` captures exactly that structure and nothing more:
objects with byte sizes and dependency edges.  Two constructors cover
the common cases -- :func:`synthetic_page` grows a deterministic
HTML -> CSS/JS -> image tree from a seed, and :func:`load_page` reads a
HAR-lite JSON file (a strict subset of the HTTP Archive format: just
names, sizes and dependencies).
"""

import json

__all__ = [
    "PageObject",
    "PageSpec",
    "load_page",
    "page_from_dict",
    "synthetic_page",
]


class PageObject:
    """One fetchable object of a page.

    Attributes
    ----------
    name:
        Unique object name within the page (e.g. ``"css-2"``).
    size:
        Response body size in bytes.
    depends_on:
        Tuple of object names that must *complete* before this object
        becomes fetchable (the parser discovers it only then).
    kind:
        Free-form content class (``"html"``, ``"css"``, ``"js"``,
        ``"img"``, ...); informational only.
    """

    __slots__ = ("name", "size", "depends_on", "kind")

    def __init__(self, name, size, depends_on=(), kind="object"):
        if size <= 0:
            raise ValueError("object size must be positive: %r" % (name,))
        self.name = name
        self.size = int(size)
        self.depends_on = tuple(depends_on)
        self.kind = kind

    def to_dict(self):
        return {
            "name": self.name,
            "size": self.size,
            "depends_on": list(self.depends_on),
            "kind": self.kind,
        }

    def __repr__(self):
        return "PageObject(%r, %d, deps=%r)" % (
            self.name, self.size, list(self.depends_on)
        )


class PageSpec:
    """A validated dependency graph of :class:`PageObject` entries.

    Construction checks that names are unique, every dependency names a
    declared object, and the graph is acyclic (a topological order is
    computed eagerly and reused by the transfer manager).
    """

    def __init__(self, name, objects):
        self.name = name
        self.objects = {}
        for obj in objects:
            if obj.name in self.objects:
                raise ValueError("duplicate object name: %r" % (obj.name,))
            self.objects[obj.name] = obj
        for obj in self.objects.values():
            for dep in obj.depends_on:
                if dep not in self.objects:
                    raise ValueError(
                        "%r depends on undeclared object %r" % (obj.name, dep)
                    )
        self.order = self._toposort()

    def _toposort(self):
        """Kahn's algorithm; raises on cycles.  Deterministic: ready
        names are processed in insertion order."""
        remaining = {
            name: set(obj.depends_on) for name, obj in self.objects.items()
        }
        order = []
        while remaining:
            ready = [name for name, deps in remaining.items() if not deps]
            if not ready:
                raise ValueError(
                    "dependency cycle among %r" % (sorted(remaining),)
                )
            for name in ready:
                order.append(name)
                del remaining[name]
            for deps in remaining.values():
                deps.difference_update(ready)
        return order

    @property
    def total_bytes(self):
        return sum(obj.size for obj in self.objects.values())

    def __len__(self):
        return len(self.objects)

    def roots(self):
        """Objects with no dependencies (fetchable immediately)."""
        return [
            self.objects[name] for name in self.order
            if not self.objects[name].depends_on
        ]

    def dependents(self, name):
        """Objects that list ``name`` as a dependency."""
        return [
            obj for obj in self.objects.values() if name in obj.depends_on
        ]

    def critical_path_bytes(self):
        """Max cumulative bytes along any dependency chain -- a lower
        bound on serialised work regardless of parallelism."""
        best = {}
        for name in self.order:
            obj = self.objects[name]
            upstream = max(
                (best[d] for d in obj.depends_on), default=0
            )
            best[name] = upstream + obj.size
        return max(best.values()) if best else 0

    def to_dict(self):
        return {
            "name": self.name,
            "objects": [self.objects[n].to_dict() for n in self.order],
        }

    def __repr__(self):
        return "PageSpec(%r, %d objects, %d bytes)" % (
            self.name, len(self), self.total_bytes
        )


def _lcg(seed):
    """Tiny deterministic generator (no ``random`` module state, so
    pages are reproducible across processes and Python versions)."""
    state = (seed * 2654435761 + 1) & 0xFFFFFFFF

    def step(lo, hi):
        nonlocal state
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        return lo + state % (hi - lo + 1)

    return step


def synthetic_page(seed=0, n_objects=30, fanout=4, depth=3,
                   html_bytes=24_000, min_object=2_000, max_object=80_000):
    """Generate a deterministic synthetic page.

    The shape mirrors a typical page: one HTML root, a first tier of
    CSS/JS discovered by parsing it, then ``depth - 1`` further tiers
    of images/fonts hanging off earlier tiers, at most ``fanout``
    children per parent.  Sizes come from a seeded LCG, so the same
    ``seed`` always yields byte-identical specs.
    """
    if n_objects < 1:
        raise ValueError("n_objects must be >= 1")
    step = _lcg(seed)
    objects = [PageObject("html", html_bytes, (), kind="html")]
    tiers = [["html"]]
    kinds = ["css", "js", "img", "font"]
    remaining = n_objects - 1
    tier_index = 0
    while remaining > 0:
        tier_index += 1
        parents = tiers[-1]
        tier = []
        # Each parent fathers up to `fanout` children until the budget
        # for this tier runs out; the last tier absorbs any remainder.
        budget = min(remaining, max(1, len(parents) * fanout))
        if tier_index >= depth:
            budget = remaining
        for i in range(budget):
            parent = parents[i % len(parents)]
            kind = kinds[min(tier_index - 1, len(kinds) - 1)] \
                if tier_index <= 2 else kinds[2 + (i % 2)]
            name = "%s-%d" % (kind, len(objects))
            size = step(min_object, max_object)
            objects.append(PageObject(name, size, (parent,), kind=kind))
            tier.append(name)
        tiers.append(tier)
        remaining -= budget
    return PageSpec("synthetic-%d" % seed, objects)


def page_from_dict(data):
    """Build a :class:`PageSpec` from a HAR-lite dict (see
    :func:`load_page`)."""
    objects = [
        PageObject(
            entry["name"],
            entry["size"],
            tuple(entry.get("depends_on", ())),
            kind=entry.get("kind", "object"),
        )
        for entry in data["objects"]
    ]
    return PageSpec(data.get("name", "page"), objects)


def load_page(path):
    """Load a page spec from a HAR-lite JSON file.

    The format is ``{"name": ..., "objects": [{"name", "size",
    "depends_on", "kind"}, ...]}`` -- exactly what
    :meth:`PageSpec.to_dict` emits, so specs round-trip.
    """
    with open(path, "r", encoding="utf-8") as fh:
        return page_from_dict(json.load(fh))
