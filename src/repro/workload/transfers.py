"""Transfer management: walking a page's dependency graph.

The :class:`TransferManager` is the "browser" of the workload layer.
It releases objects as their dependencies complete, asks the
scheduling policy where each released transfer should run
(:meth:`~repro.core.engine.policy.Policy.assign_transfer` over the
pool's candidate snapshot), checks the choice out of the pool, and
hands the transfer to a stack-specific ``fetch`` callable
(:mod:`repro.workload.fetchers`).  Completions cascade: finishing the
HTML releases the CSS/JS tier, finishing those releases the images.

Every lifecycle edge is emitted on the obs bus in the ``workload``
category (``object_ready`` / ``object_start`` / ``object_done`` /
``page_load``), so a single capture of the bus yields both the
per-object waterfall and the page-load time without instrumenting any
transport code.
"""

from repro.obs.events import CAT_WORKLOAD
from repro.workload.pool import _clock_now

__all__ = ["Transfer", "TransferManager"]


class Transfer:
    """One page object's journey through the workload layer."""

    __slots__ = ("spec", "status", "t_ready", "t_start", "t_done",
                 "entry", "placement")

    def __init__(self, spec):
        self.spec = spec
        #: "blocked" -> "ready" -> "running" -> "done"
        self.status = "blocked"
        self.t_ready = None
        self.t_start = None
        self.t_done = None
        #: the PooledConnection carrying this transfer (while running)
        self.entry = None
        #: how the pool satisfied it: "reuse" / "share" / "new"
        self.placement = None

    @property
    def name(self):
        return self.spec.name

    @property
    def size(self):
        return self.spec.size

    def __repr__(self):
        return "Transfer(%r, %s)" % (self.name, self.status)


class TransferManager:
    """Drive one page load over a pool under a policy.

    Parameters
    ----------
    page:
        The :class:`~repro.workload.pages.PageSpec` to load.
    pool:
        A :class:`~repro.workload.pool.ConnectionPool`.
    policy:
        Any :class:`~repro.core.engine.policy.Policy` (its
        ``assign_transfer`` decision point is consulted per transfer).
    clock:
        Time source shared with the pool and the simulator.
    fetch:
        ``fetch(entry, transfer, done)`` -- start the transfer on the
        pooled connection and call ``done()`` (no arguments) when the
        last byte arrives.  The manager never blocks: the simulator
        drives fetches, completions re-enter through ``done``.
    host:
        Pool host key the page's objects are fetched from.
    bus:
        Optional obs bus for ``workload`` events.
    on_page_done:
        Optional zero-argument callable invoked once every object of
        the page has completed.
    """

    def __init__(self, page, pool, policy, clock, fetch, host="server",
                 bus=None, on_page_done=None):
        self.page = page
        self.pool = pool
        self.policy = policy
        self.clock = clock
        self.fetch = fetch
        self.host = host
        self.bus = bus
        self.on_page_done = on_page_done
        self.transfers = {
            name: Transfer(obj) for name, obj in page.objects.items()
        }
        self._completed = set()
        self._queue = []
        self.t_begin = None
        #: page-load time in seconds, set when the last object lands
        self.plt = None
        # Another manager's release may be what frees our capacity when
        # several pages share one pool.
        pool.add_capacity_listener(self._drain_queue)

    # -- driving -----------------------------------------------------------

    def start(self):
        """Release the page's root objects (call once; the rest of the
        page unfolds from completion callbacks)."""
        self.t_begin = _clock_now(self.clock)
        for obj in self.page.roots():
            self._mark_ready(self.transfers[obj.name])

    @property
    def done(self):
        return len(self._completed) == len(self.transfers)

    def _mark_ready(self, transfer):
        transfer.status = "ready"
        transfer.t_ready = _clock_now(self.clock)
        self._emit("object_ready", transfer, {
            "size": transfer.size, "kind": transfer.spec.kind,
        })
        self._launch(transfer)

    def _launch(self, transfer):
        view = self.pool.view(self.host)
        if not view.candidates():
            # Pool saturated: park the transfer; the next release
            # re-opens capacity and drains the queue in ready order.
            self._queue.append(transfer)
            return
        candidate = self.policy.assign_transfer(transfer, view)
        entry = self.pool.checkout(candidate)
        transfer.entry = entry
        transfer.placement = candidate.kind
        transfer.status = "running"
        transfer.t_start = _clock_now(self.clock)
        self._emit("object_start", transfer, {
            "size": transfer.size,
            "placement": candidate.kind,
            "conn": entry.index,
            "policy": getattr(self.policy, "name", "custom"),
        })
        self.fetch(entry, transfer, lambda: self._on_done(transfer))

    def _on_done(self, transfer):
        transfer.status = "done"
        transfer.t_done = _clock_now(self.clock)
        self.pool.release(transfer.entry)
        self._completed.add(transfer.name)
        self._emit("object_done", transfer, {
            "size": transfer.size,
            "conn": transfer.entry.index,
            "elapsed": transfer.t_done - transfer.t_start,
        })
        if self.done:
            self.plt = transfer.t_done - self.t_begin
            self._emit("page_load", transfer, {
                "page": self.page.name,
                "objects": len(self.transfers),
                "bytes": self.page.total_bytes,
                "plt": self.plt,
            })
            if self.on_page_done is not None:
                self.on_page_done()
            return
        # Freed capacity first (a parked transfer beats a newly ready
        # one -- it has been waiting longer), then newly released deps.
        self._drain_queue()
        for dependent in self.page.dependents(transfer.name):
            waiting = self.transfers[dependent.name]
            if waiting.status != "blocked":
                continue
            if all(d in self._completed for d in dependent.depends_on):
                self._mark_ready(waiting)

    def _drain_queue(self):
        while self._queue and self.pool.view(self.host).candidates():
            self._launch(self._queue.pop(0))

    # -- results -----------------------------------------------------------

    def waterfall(self):
        """Per-object timeline rows, in completion order (running or
        blocked objects sort last)."""
        rows = []
        for name in self.page.order:
            t = self.transfers[name]
            rows.append({
                "name": name,
                "kind": t.spec.kind,
                "size": t.size,
                "status": t.status,
                "t_ready": t.t_ready,
                "t_start": t.t_start,
                "t_done": t.t_done,
                "placement": t.placement,
                "conn": t.entry.index if t.entry is not None else None,
            })
        rows.sort(key=lambda r: (
            r["t_done"] if r["t_done"] is not None else float("inf"),
            r["name"],
        ))
        return rows

    def _emit(self, name, transfer, extra):
        bus = self.bus
        if bus is None or not bus.wants(CAT_WORKLOAD):
            return
        data = {"page": self.page.name, "object": transfer.name}
        data.update(extra)
        bus.emit(CAT_WORKLOAD, name, data)
