"""Connection pooling for the web-workload layer.

Browsers do not open one connection per object: they keep a small pool
per host, reuse idle connections, and only open new ones while a
per-host limit allows.  Which transfer lands on which pooled connection
is *the* decision that differentiates scheduling policies at page
granularity, so the pool exposes its state as a read-only snapshot
(:class:`PoolView` of :class:`Candidate` entries) that
:meth:`~repro.core.engine.policy.Policy.assign_transfer` chooses from,
and keeps honest books -- reuse vs. new vs. shared placements, idle
expiries -- so experiments can report how a policy actually used the
pool.

The pool is transport-agnostic: a ``factory(host)`` callable produces
*handles* (a TCPLS session path, a QUIC connection, an MPTCP flow --
see :mod:`repro.workload.fetchers`).  Handles may optionally expose
``srtt()`` / ``cwnd()`` / ``backlog_bytes()`` for policies that model
the transport, and ``close()`` for idle expiry.
"""

from repro.obs.events import CAT_WORKLOAD

__all__ = ["Candidate", "ConnectionPool", "PoolView", "PooledConnection"]

#: cold initial window modelled for connections with no measured cwnd
_DEFAULT_CWND = 10 * 1500.0


def _clock_now(clock):
    """Read the current time off any clock-ish object (`.now` attribute
    on the simulator and ManualClock, ``now()`` method elsewhere)."""
    now = getattr(clock, "now", 0.0)
    return now() if callable(now) else now


class PooledConnection:
    """One live pooled connection and its accounting state."""

    __slots__ = ("host", "handle", "index", "capacity", "active",
                 "opened_at", "last_idle", "transfers_carried")

    def __init__(self, host, handle, index, capacity, opened_at):
        self.host = host
        self.handle = handle
        self.index = index
        #: concurrent transfers this connection can carry (1 for a
        #: serial HTTP/1.1-style flow, >1 for multiplexed transports)
        self.capacity = capacity
        self.active = 0
        self.opened_at = opened_at
        self.last_idle = opened_at
        self.transfers_carried = 0

    def _stat(self, name, default):
        fn = getattr(self.handle, name, None)
        if fn is None:
            return default
        value = fn()
        return default if value is None else value

    def srtt(self):
        return self._stat("srtt", float("inf"))

    def cwnd(self):
        return self._stat("cwnd", _DEFAULT_CWND)

    def backlog_bytes(self):
        return self._stat("backlog_bytes", 0.0)

    def __repr__(self):
        return "PooledConnection(%s#%d, active=%d/%d)" % (
            self.host, self.index, self.active, self.capacity
        )


class Candidate:
    """One assignable placement, as shown to a policy.

    ``kind`` says what accepting this candidate means:

    - ``"reuse"`` -- an idle pooled connection picks the transfer up;
    - ``"share"`` -- a busy multiplexed connection carries it alongside
      its current transfers;
    - ``"new"`` -- the pool opens a fresh connection (``entry`` is
      None until checkout).
    """

    __slots__ = ("kind", "host", "index", "active", "entry")

    def __init__(self, kind, host, index, active, entry=None):
        self.kind = kind
        self.host = host
        self.index = index
        self.active = active
        self.entry = entry

    def srtt(self):
        return self.entry.srtt() if self.entry is not None else float("inf")

    def cwnd(self):
        return self.entry.cwnd() if self.entry is not None else _DEFAULT_CWND

    def backlog_bytes(self):
        return self.entry.backlog_bytes() if self.entry is not None else 0.0

    def __repr__(self):
        return "Candidate(%s %s#%d, active=%d)" % (
            self.kind, self.host, self.index, self.active
        )


class PoolView:
    """Read-only snapshot of one host's placements at decision time."""

    __slots__ = ("host", "_candidates")

    def __init__(self, host, candidates):
        self.host = host
        self._candidates = candidates

    def candidates(self):
        return list(self._candidates)

    def typical_srtt(self):
        """Median measured SRTT across this host's open connections
        (None when nothing has been measured yet) -- what a policy
        should assume a *new* connection will see."""
        measured = sorted(
            c.srtt() for c in self._candidates
            if c.entry is not None and c.srtt() != float("inf")
        )
        if not measured:
            return None
        return measured[len(measured) // 2]

    def __repr__(self):
        return "PoolView(%s, %d candidates)" % (
            self.host, len(self._candidates)
        )


class ConnectionPool:
    """Per-host connection pool with idle-timeout and reuse accounting.

    Parameters
    ----------
    clock:
        Time source (``.now`` attribute or ``now()`` method); drives
        idle-expiry and the opened/idle timestamps.
    factory:
        ``factory(host) -> handle``; invoked on checkout of a ``"new"``
        candidate.
    max_per_host:
        Connection limit per host (browser-style, default 6).
    capacity:
        Concurrent transfers per connection (1 = serial; pass >1 for
        multiplexed transports so ``"share"`` candidates appear).
    idle_timeout:
        Seconds a connection may sit idle before :meth:`sweep` closes
        it.
    bus:
        Optional obs :class:`~repro.obs.bus.EventBus`; pool decisions
        are emitted in the ``workload`` category.
    """

    def __init__(self, clock, factory, max_per_host=6, capacity=1,
                 idle_timeout=30.0, bus=None):
        self.clock = clock
        self.factory = factory
        self.max_per_host = max_per_host
        self.capacity = capacity
        self.idle_timeout = idle_timeout
        self.bus = bus
        self._entries = {}
        self._next_index = {}
        self._capacity_listeners = []
        #: accounting: how placements were satisfied
        self.reused = 0
        self.opened = 0
        self.shared = 0
        self.expired = 0

    # -- snapshots ---------------------------------------------------------

    def entries(self, host):
        return list(self._entries.get(host, ()))

    def view(self, host):
        """Build the candidate snapshot a policy chooses from."""
        candidates = []
        entries = self._entries.get(host, ())
        for entry in entries:
            if entry.active == 0:
                candidates.append(Candidate(
                    "reuse", host, entry.index, 0, entry))
            elif entry.active < entry.capacity:
                candidates.append(Candidate(
                    "share", host, entry.index, entry.active, entry))
        if len(entries) < self.max_per_host:
            candidates.append(Candidate(
                "new", host, self._next_index.get(host, 0), 0, None))
        return PoolView(host, candidates)

    # -- placement ---------------------------------------------------------

    def checkout(self, candidate):
        """Commit a policy's candidate choice; returns the
        :class:`PooledConnection` now carrying the transfer."""
        now = _clock_now(self.clock)
        if candidate.kind == "new":
            host = candidate.host
            if len(self._entries.get(host, ())) >= self.max_per_host:
                raise ValueError("per-host limit reached for %r" % (host,))
            handle = self.factory(host)
            index = self._next_index.get(host, 0)
            self._next_index[host] = index + 1
            entry = PooledConnection(host, handle, index, self.capacity, now)
            self._entries.setdefault(host, []).append(entry)
            self.opened += 1
            self._emit("pool_open", host, entry)
        else:
            entry = candidate.entry
            if entry is None or entry not in self._entries.get(entry.host, ()):
                raise ValueError("stale pool candidate: %r" % (candidate,))
            if entry.active >= entry.capacity:
                raise ValueError("connection full: %r" % (entry,))
            if candidate.kind == "reuse":
                self.reused += 1
                self._emit("pool_reuse", entry.host, entry)
            else:
                self.shared += 1
                self._emit("pool_share", entry.host, entry)
        entry.active += 1
        entry.transfers_carried += 1
        return entry

    def add_capacity_listener(self, callback):
        """Register a zero-argument callback fired whenever a release
        frees capacity -- transfer managers parked on a saturated pool
        use it to resume (several managers may share one pool)."""
        self._capacity_listeners.append(callback)

    def release(self, entry):
        """A transfer finished on ``entry``; idle time starts now."""
        if entry.active <= 0:
            raise ValueError("release of idle connection: %r" % (entry,))
        entry.active -= 1
        if entry.active == 0:
            entry.last_idle = _clock_now(self.clock)
        for callback in list(self._capacity_listeners):
            callback()

    # -- lifecycle ---------------------------------------------------------

    def sweep(self):
        """Close connections idle past the timeout; returns how many."""
        now = _clock_now(self.clock)
        closed = 0
        for host, entries in list(self._entries.items()):
            keep = []
            for entry in entries:
                if entry.active == 0 and \
                        now - entry.last_idle >= self.idle_timeout:
                    self._close(entry)
                    self.expired += 1
                    closed += 1
                    self._emit("pool_expire", host, entry)
                else:
                    keep.append(entry)
            if keep:
                self._entries[host] = keep
            else:
                del self._entries[host]
        return closed

    def close_all(self):
        for entries in self._entries.values():
            for entry in entries:
                self._close(entry)
        self._entries.clear()

    @staticmethod
    def _close(entry):
        close = getattr(entry.handle, "close", None)
        if close is not None:
            close()

    # -- accounting --------------------------------------------------------

    def stats(self):
        return {
            "opened": self.opened,
            "reused": self.reused,
            "shared": self.shared,
            "expired": self.expired,
            "live": sum(len(v) for v in self._entries.values()),
        }

    def _emit(self, name, host, entry):
        bus = self.bus
        if bus is None or not bus.wants(CAT_WORKLOAD):
            return
        bus.emit(CAT_WORKLOAD, name, {
            "host": host,
            "conn": entry.index,
            "active": entry.active,
            "carried": entry.transfers_carried,
        })
