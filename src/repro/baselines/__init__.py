"""Baseline transports the paper evaluates TCPLS against.

- :mod:`repro.baselines.mptcp` -- a Multipath TCP model (subflows, DSS
  reassembly, data-level ACKs and reinjection, fullmesh/backup path
  managers) used by the Fig. 8/9/11 comparisons.
- :mod:`repro.baselines.quic` -- a QUIC model (UDP datagrams,
  per-packet AEAD, user-space ACK machinery, GSO batching) plus the
  implementation cost profiles (quicly / msquic / mvfst) used by the
  Fig. 7 throughput comparison.
"""
