"""Functional QUIC endpoint.

Implements the transport behaviours the paper contrasts with TCPLS:
every packet is individually AEAD-sealed (small encryption units), all
acknowledgment and loss-recovery work happens in user space, and
congestion control is per-connection (shared implementations with the
TCP stack).  The handshake is a 1-RTT FFDHE exchange in CRYPTO frames
with PSK-keyed Initial protection -- structurally QUIC, minus
certificates (same substitution as the TLS stack, see DESIGN.md).

Loss detection follows RFC 9002's packet threshold (3) plus a probe
timeout; lost STREAM data is retransmitted from the per-stream send
buffer by offset.
"""

from repro.baselines.quic import packet as qp
from repro.baselines.quic.udp import UDP_HEADER_BYTES
from repro.crypto.aead import AeadAuthenticationError, get_cipher
from repro.crypto.ffdhe import DHKeyPair, FFDHE2048
from repro.crypto.hkdf import hkdf_expand_label, hkdf_extract
from repro.net.address import ip_header_size
from repro.tcp.congestion import make_congestion_control
from repro.tcp.rtt import RttEstimator

PACKET_THRESHOLD = 3
ACK_EVERY = 2


def _initial_secret(dcid):
    return hkdf_extract(b"quic-initial-salt", dcid.to_bytes(8, "big"))


def _traffic_keys(secret, cipher_cls, label):
    key = hkdf_expand_label(secret, label + b" key", b"",
                            cipher_cls.key_size)
    iv = hkdf_expand_label(secret, label + b" iv", b"", 12)
    return cipher_cls(key), iv


def _nonce(iv, packet_number):
    pn_bytes = packet_number.to_bytes(12, "big")
    return bytes(a ^ b for a, b in zip(iv, pn_bytes))


class _SendStream:
    def __init__(self, stream_id):
        self.stream_id = stream_id
        self.buffer = bytearray()
        self.base_offset = 0      # absolute offset of buffer[0]
        self.next_offset = 0      # next offset to send fresh
        self.fin = False
        self.fin_offset = None
        self.retransmit = []      # [(offset, length)]

    def pending_fresh(self):
        return self.base_offset + len(self.buffer) - self.next_offset


class _RecvStream:
    def __init__(self, stream_id):
        self.stream_id = stream_id
        self.next_offset = 0
        self.segments = {}
        self.buffer = bytearray()
        self.fin_offset = None

    def offer(self, offset, data, fin):
        if fin:
            self.fin_offset = offset + len(data)
        end = offset + len(data)
        if end <= self.next_offset:
            return 0
        if offset < self.next_offset:
            data = data[self.next_offset - offset:]
            offset = self.next_offset
        if offset > self.next_offset:
            existing = self.segments.get(offset)
            if existing is None or len(existing) < len(data):
                self.segments[offset] = data
            return 0
        delivered = len(data)
        self.buffer += data
        self.next_offset = end
        while True:
            follow = None
            for seg_offset in self.segments:
                if seg_offset <= self.next_offset:
                    follow = seg_offset
                    break
            if follow is None:
                break
            data2 = self.segments.pop(follow)
            if follow + len(data2) <= self.next_offset:
                continue
            data2 = data2[self.next_offset - follow:]
            self.buffer += data2
            self.next_offset += len(data2)
            delivered += len(data2)
        return delivered

    @property
    def finished(self):
        return (self.fin_offset is not None
                and self.next_offset >= self.fin_offset)


class QuicConnection:
    """One QUIC connection endpoint."""

    def __init__(self, sim, socket, remote, dcid, is_client, psk,
                 cipher="null-tag", cc="cubic", mtu=1200, gso_batch=1):
        self.sim = sim
        self.socket = socket
        self.remote = remote
        self.dcid = dcid
        self.is_client = is_client
        self.psk = psk
        self.cipher_cls = get_cipher(cipher)
        self.mtu = mtu
        self.gso_batch = gso_batch
        overhead = (ip_header_size(remote.family) + UDP_HEADER_BYTES
                    + qp.HEADER.size + self.cipher_cls.tag_size)
        self.max_frames_bytes = mtu - overhead

        self.established = False
        self.closed = False
        self.rtt = RttEstimator()
        self.cc = make_congestion_control(cc, self.max_frames_bytes)

        # Initial (handshake) keys are derived from the DCID like real
        # QUIC; 1-RTT keys additionally mix the PSK and DHE secret.
        initial = _initial_secret(dcid)
        self._init_seal, self._init_seal_iv = _traffic_keys(
            initial, self.cipher_cls,
            b"client" if is_client else b"server")
        self._init_open, self._init_open_iv = _traffic_keys(
            initial, self.cipher_cls,
            b"server" if is_client else b"client")
        self._seal = None
        self._seal_iv = None
        self._open = None
        self._open_iv = None
        self._dh = FFDHE2048.generate(sim.rng)

        self._next_pn = 0
        self._sent = {}           # pn -> (time, size, [(sid, off, len, fin)])
        self._received = set()
        self._recvd_unacked = 0
        self._largest_acked = -1
        self._pto_event = None

        self.send_streams = {}
        self.recv_streams = {}
        self._next_stream_id = 0 if is_client else 1

        # Stats for the perf narrative.
        self.packets_sent = 0
        self.packets_received = 0
        self.sendmsg_calls = 0
        self.acks_sent = 0
        self.bytes_delivered = 0

        self.on_established = None
        self.on_stream_data = None   # (conn, stream_id, recv_stream)

        socket.on_datagram = self._on_datagram

    # -- handshake -----------------------------------------------------------

    def start(self):
        """Client: fire the Initial flight."""
        frame = qp.CryptoFrame(0, self._dh.public_bytes())
        self._send_packet(qp.PKT_INITIAL, [frame], handshake=True)
        self._arm_pto()

    def _derive_one_rtt(self, peer_public):
        shared = FFDHE2048.shared_secret(self._dh.private, peer_public)
        secret = hkdf_extract(self.psk, shared)
        client_secret = hkdf_expand_label(secret, b"quic client", b"", 32)
        server_secret = hkdf_expand_label(secret, b"quic server", b"", 32)
        mine, theirs = (
            (client_secret, server_secret) if self.is_client
            else (server_secret, client_secret)
        )
        self._seal, self._seal_iv = _traffic_keys(mine, self.cipher_cls,
                                                  b"1rtt")
        self._open, self._open_iv = _traffic_keys(theirs, self.cipher_cls,
                                                  b"1rtt")

    # -- streams ---------------------------------------------------------------

    def open_stream(self):
        stream_id = self._next_stream_id
        self._next_stream_id += 2
        self.send_streams[stream_id] = _SendStream(stream_id)
        return stream_id

    def stream_send(self, stream_id, data, fin=False):
        stream = self.send_streams[stream_id]
        stream.buffer += data
        if fin:
            stream.fin = True
            stream.fin_offset = stream.base_offset + len(stream.buffer)
        self._pump()
        return len(data)

    # -- output ------------------------------------------------------------------

    def _bytes_in_flight(self):
        return sum(size for _t, size, _f in self._sent.values())

    def _pump(self):
        if not self.established:
            return
        batch = []
        while self._bytes_in_flight() < self.cc.cwnd:
            frames, refs = self._fill_frames()
            if not frames:
                break
            datagram = self._seal_packet(qp.PKT_ONE_RTT, frames)
            self._record_sent(datagram, refs)
            batch.append(datagram)
            if len(batch) >= self.gso_batch:
                self._flush_batch(batch)
                batch = []
        if batch:
            self._flush_batch(batch)

    def _flush_batch(self, batch):
        self.sendmsg_calls += 1
        for datagram in batch:
            self.socket.sendto(datagram, self.remote)
            self.packets_sent += 1
        self._arm_pto()

    def _fill_frames(self):
        """One packet's worth of stream frames (retransmissions first)."""
        frames = []
        refs = []
        room = self.max_frames_bytes
        for stream in self.send_streams.values():
            while stream.retransmit and room > 24:
                offset, length = stream.retransmit.pop(0)
                take = min(length, room - 18)
                if take <= 0:
                    stream.retransmit.insert(0, (offset, length))
                    break
                if take < length:
                    stream.retransmit.insert(0, (offset + take,
                                                 length - take))
                start = offset - stream.base_offset
                data = bytes(stream.buffer[start:start + take])
                fin = (stream.fin_offset is not None
                       and offset + take == stream.fin_offset)
                frames.append(qp.StreamFrame(stream.stream_id, offset,
                                             data, fin))
                refs.append((stream.stream_id, offset, take, fin))
                room -= 18 + take
            fresh = stream.pending_fresh()
            if fresh > 0 and room > 24:
                take = min(fresh, room - 18)
                start = stream.next_offset - stream.base_offset
                data = bytes(stream.buffer[start:start + take])
                offset = stream.next_offset
                stream.next_offset += take
                fin = (stream.fin
                       and stream.next_offset == stream.fin_offset)
                frames.append(qp.StreamFrame(stream.stream_id, offset,
                                             data, fin))
                refs.append((stream.stream_id, offset, take, fin))
                room -= 18 + take
            if room <= 24:
                break
        return frames, refs

    def _seal_packet(self, packet_type, frames, handshake=False):
        pn = self._next_pn
        self._next_pn += 1
        header = qp.encode_packet_header(packet_type, self.dcid, pn)
        payload = b"".join(f.encode() for f in frames)
        if handshake:
            sealer, iv = self._init_seal, self._init_seal_iv
        else:
            sealer, iv = self._seal, self._seal_iv
        return header + sealer.seal(_nonce(iv, pn), payload, aad=header)

    def _send_packet(self, packet_type, frames, handshake=False,
                     track=True):
        datagram = self._seal_packet(packet_type, frames, handshake)
        if track:
            self._record_sent(datagram, [])
        self.sendmsg_calls += 1
        self.packets_sent += 1
        self.socket.sendto(datagram, self.remote)

    def _record_sent(self, datagram, refs):
        pn = self._next_pn - 1
        self._sent[pn] = (self.sim.now, len(datagram), refs)

    # -- input --------------------------------------------------------------------

    def _on_datagram(self, payload, src):
        flags, dcid, pn, header_size = qp.decode_packet_header(payload)
        header = payload[:header_size]
        body = payload[header_size:]
        handshake_pkt = flags in (qp.PKT_INITIAL, qp.PKT_HANDSHAKE)
        opener, iv = (
            (self._init_open, self._init_open_iv) if handshake_pkt
            else (self._open, self._open_iv)
        )
        if opener is None:
            return
        try:
            plaintext = opener.open(_nonce(iv, pn), body, aad=header)
        except AeadAuthenticationError:
            return
        self.packets_received += 1
        self._received.add(pn)
        ack_eliciting = False
        for frame in qp.decode_frames(plaintext):
            if isinstance(frame, qp.CryptoFrame):
                ack_eliciting = True
                self._on_crypto(frame)
            elif isinstance(frame, qp.StreamFrame):
                ack_eliciting = True
                self._on_stream_frame(frame)
            elif isinstance(frame, qp.AckFrame):
                self._on_ack(frame)
            elif isinstance(frame, qp.HandshakeDoneFrame):
                self._complete()
            elif isinstance(frame, qp.PingFrame):
                ack_eliciting = True
            elif isinstance(frame, qp.ConnectionCloseFrame):
                self.closed = True
        if ack_eliciting:
            self._recvd_unacked += 1
            if self._recvd_unacked >= ACK_EVERY:
                self._send_ack()

    def _on_crypto(self, frame):
        peer_public = DHKeyPair.public_from_bytes(frame.data)
        self._derive_one_rtt(peer_public)
        if not self.is_client:
            reply = qp.CryptoFrame(0, self._dh.public_bytes())
            self._send_packet(qp.PKT_HANDSHAKE, [reply], handshake=True,
                              track=False)
            self._send_packet(qp.PKT_ONE_RTT, [qp.HandshakeDoneFrame()],
                              track=False)
            self._complete()
        else:
            self._complete()

    def _complete(self):
        if self.established:
            return
        self.established = True
        if self.on_established is not None:
            self.on_established(self)
        self._pump()

    def _on_stream_frame(self, frame):
        stream = self.recv_streams.get(frame.stream_id)
        if stream is None:
            stream = _RecvStream(frame.stream_id)
            self.recv_streams[frame.stream_id] = stream
        delivered = stream.offer(frame.offset, frame.data, frame.fin)
        self.bytes_delivered += delivered
        if (delivered or stream.finished) and self.on_stream_data is not None:
            self.on_stream_data(self, frame.stream_id, stream)

    def _send_ack(self):
        self._recvd_unacked = 0
        recent = sorted(self._received)[-256:]
        ack = qp.AckFrame.from_received(set(recent))
        self._send_packet(qp.PKT_ONE_RTT, [ack], track=False)
        self.acks_sent += 1

    # -- loss recovery (user-space, RFC 9002 style) ---------------------------------

    def _on_ack(self, frame):
        acked = frame.acked_packet_numbers()
        newly = [pn for pn in acked if pn in self._sent]
        if not newly:
            return
        largest = max(newly)
        sent_time, _size, _refs = self._sent[largest]
        acked_bytes = 0
        for pn in newly:
            _t, size, _refs2 = self._sent.pop(pn)
            acked_bytes += size
        rtt_sample = self.sim.now - sent_time
        self.rtt.on_sample(rtt_sample)
        self._largest_acked = max(self._largest_acked, largest)
        self.cc.on_ack(acked_bytes, rtt_sample, self.sim.now,
                       self._bytes_in_flight())
        self._detect_losses()
        self._arm_pto()
        self._pump()

    def _detect_losses(self):
        lost = [
            pn for pn in self._sent
            if pn + PACKET_THRESHOLD <= self._largest_acked
        ]
        if not lost:
            return
        self.cc.on_loss(self.sim.now)
        for pn in lost:
            _t, _size, refs = self._sent.pop(pn)
            self._queue_retransmits(refs)

    def _queue_retransmits(self, refs):
        for stream_id, offset, length, _fin in refs:
            stream = self.send_streams.get(stream_id)
            if stream is not None:
                stream.retransmit.append((offset, length))

    def _arm_pto(self):
        if self._pto_event is not None:
            self._pto_event.cancel()
        pto = self.rtt.rto
        self._pto_event = self.sim.schedule(pto, self._on_pto)

    def _on_pto(self):
        self._pto_event = None
        if self.closed:
            return
        if not self.established and self.is_client:
            frame = qp.CryptoFrame(0, self._dh.public_bytes())
            self._send_packet(qp.PKT_INITIAL, [frame], handshake=True,
                              track=False)
            self._arm_pto()
            return
        if self._sent:
            self.cc.on_rto(self.sim.now)
            for pn in sorted(self._sent):
                _t, _size, refs = self._sent.pop(pn)
                self._queue_retransmits(refs)
                break
            self._pump()
            self._arm_pto()


class QuicClient(QuicConnection):
    _next_dcid = 100

    def __init__(self, sim, udp_stack, local_addr, remote, psk, **kwargs):
        QuicClient._next_dcid += 1
        socket = udp_stack.bind(local_addr)
        super().__init__(sim, socket, remote, QuicClient._next_dcid,
                         is_client=True, psk=psk, **kwargs)


class QuicServer:
    """Accepts connections by DCID on one UDP port."""

    def __init__(self, sim, udp_stack, local_addr, port, psk, **conn_kwargs):
        self.sim = sim
        self.udp_stack = udp_stack
        self.psk = psk
        self.conn_kwargs = conn_kwargs
        self.socket = udp_stack.bind(local_addr, port)
        self.socket.on_datagram = self._on_datagram
        self.connections = {}
        self.on_connection = None

    def _on_datagram(self, payload, src):
        _flags, dcid, _pn, _hs = qp.decode_packet_header(payload)
        conn = self.connections.get(dcid)
        if conn is None:
            conn = QuicConnection(self.sim, self.socket, src, dcid,
                                  is_client=False, psk=self.psk,
                                  **self.conn_kwargs)
            # The server socket stays shared; restore our demux hook.
            self.socket.on_datagram = self._on_datagram
            self.connections[dcid] = conn
            if self.on_connection is not None:
                self.on_connection(conn)
        conn._on_datagram(payload, src)
