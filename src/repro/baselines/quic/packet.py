"""QUIC packet and frame codecs (RFC 9000 subset).

Packets are AEAD-sealed individually (the per-packet encryption unit
whose CPU cost Fig. 7 compares against 16 KiB TLS records).  Header:
``flags(1) || dcid(8) || packet_number(4)``; the handshake uses long
"Initial"/"Handshake" packet types carrying CRYPTO frames, 1-RTT
packets carry STREAM/ACK/control frames.
"""

import struct

# Packet types (flags byte).
PKT_INITIAL = 0xC0
PKT_HANDSHAKE = 0xE0
PKT_ONE_RTT = 0x40

HEADER = struct.Struct("!BQI")   # flags, dcid, packet number

# Frame types.
FRAME_PADDING = 0x00
FRAME_PING = 0x01
FRAME_ACK = 0x02
FRAME_CRYPTO = 0x06
FRAME_STREAM = 0x08          # with explicit offset+length+fin encoding
FRAME_CONNECTION_CLOSE = 0x1C
FRAME_HANDSHAKE_DONE = 0x1E

_STREAM_HDR = struct.Struct("!BIQIB")   # type, stream id, offset, len, fin
_CRYPTO_HDR = struct.Struct("!BQI")     # type, offset, length
_ACK_HDR = struct.Struct("!BIB")        # type, largest acked, range count
_ACK_RANGE = struct.Struct("!II")       # gap, length
_CLOSE_HDR = struct.Struct("!BH")       # type, error code


class StreamFrame:
    __slots__ = ("stream_id", "offset", "data", "fin")

    def __init__(self, stream_id, offset, data, fin=False):
        self.stream_id = stream_id
        self.offset = offset
        self.data = data
        self.fin = fin

    def encode(self):
        return _STREAM_HDR.pack(FRAME_STREAM, self.stream_id, self.offset,
                                len(self.data), int(self.fin)) + self.data

    def wire_size(self):
        return _STREAM_HDR.size + len(self.data)


class CryptoFrame:
    __slots__ = ("offset", "data")

    def __init__(self, offset, data):
        self.offset = offset
        self.data = data

    def encode(self):
        return _CRYPTO_HDR.pack(FRAME_CRYPTO, self.offset,
                                len(self.data)) + self.data


class AckFrame:
    """Largest-acked + (gap, length) ranges, RFC 9000 style."""

    __slots__ = ("largest", "ranges")

    def __init__(self, largest, ranges):
        self.largest = largest
        self.ranges = list(ranges)   # [(gap, length), ...]

    def encode(self):
        out = _ACK_HDR.pack(FRAME_ACK, self.largest, len(self.ranges))
        for gap, length in self.ranges:
            out += _ACK_RANGE.pack(gap, length)
        return out

    def acked_packet_numbers(self):
        """Expand into the set of acknowledged packet numbers."""
        acked = set()
        cursor = self.largest
        first = True
        for gap, length in self.ranges:
            if not first:
                cursor -= gap - 1
            for _ in range(length):
                if cursor < 0:
                    break
                acked.add(cursor)
                cursor -= 1
            first = False
        return acked

    @classmethod
    def from_received(cls, received, limit=32):
        """Build from a sorted set of received packet numbers."""
        if not received:
            return cls(0, [])
        numbers = sorted(received, reverse=True)
        largest = numbers[0]
        ranges = []
        run_len = 1
        previous = largest
        for pn in numbers[1:]:
            if pn == previous - 1:
                run_len += 1
            else:
                ranges.append(run_len)
                ranges.append(previous - pn)  # gap marker interleaved
                run_len = 1
            previous = pn
            if len(ranges) // 2 >= limit:
                break
        ranges.append(run_len)
        # Convert interleaved [len, gap, len, gap, ...] to [(gap,len)].
        out = [(0, ranges[0])]
        for i in range(1, len(ranges) - 1, 2):
            out.append((ranges[i], ranges[i + 1]))
        return cls(largest, out)


class PingFrame:
    def encode(self):
        return bytes([FRAME_PING])


class HandshakeDoneFrame:
    def encode(self):
        return bytes([FRAME_HANDSHAKE_DONE])


class ConnectionCloseFrame:
    __slots__ = ("error_code",)

    def __init__(self, error_code=0):
        self.error_code = error_code

    def encode(self):
        return _CLOSE_HDR.pack(FRAME_CONNECTION_CLOSE, self.error_code)


def decode_frames(payload):
    """Parse a decrypted packet payload into frame objects."""
    frames = []
    offset = 0
    while offset < len(payload):
        frame_type = payload[offset]
        if frame_type == FRAME_PADDING:
            offset += 1
        elif frame_type == FRAME_PING:
            frames.append(PingFrame())
            offset += 1
        elif frame_type == FRAME_HANDSHAKE_DONE:
            frames.append(HandshakeDoneFrame())
            offset += 1
        elif frame_type == FRAME_STREAM:
            _, stream_id, stream_offset, length, fin = _STREAM_HDR.unpack_from(
                payload, offset)
            start = offset + _STREAM_HDR.size
            frames.append(StreamFrame(stream_id, stream_offset,
                                      payload[start:start + length],
                                      bool(fin)))
            offset = start + length
        elif frame_type == FRAME_CRYPTO:
            _, crypto_offset, length = _CRYPTO_HDR.unpack_from(payload,
                                                               offset)
            start = offset + _CRYPTO_HDR.size
            frames.append(CryptoFrame(crypto_offset,
                                      payload[start:start + length]))
            offset = start + length
        elif frame_type == FRAME_ACK:
            _, largest, count = _ACK_HDR.unpack_from(payload, offset)
            offset += _ACK_HDR.size
            ranges = []
            for _ in range(count):
                gap, length = _ACK_RANGE.unpack_from(payload, offset)
                ranges.append((gap, length))
                offset += _ACK_RANGE.size
            frames.append(AckFrame(largest, ranges))
        elif frame_type == FRAME_CONNECTION_CLOSE:
            _, error_code = _CLOSE_HDR.unpack_from(payload, offset)
            frames.append(ConnectionCloseFrame(error_code))
            offset += _CLOSE_HDR.size
        else:
            raise ValueError("unknown frame type 0x%02x" % frame_type)
    return frames


def encode_packet_header(packet_type, dcid, packet_number):
    return HEADER.pack(packet_type, dcid, packet_number)


def decode_packet_header(data):
    flags, dcid, packet_number = HEADER.unpack_from(data, 0)
    return flags, dcid, packet_number, HEADER.size
