"""Minimal UDP over :mod:`repro.net`."""

from repro.net.address import Endpoint
from repro.net.packet import Packet

UDP_HEADER_BYTES = 8


class Datagram:
    """One UDP datagram (ports + opaque payload bytes)."""

    __slots__ = ("src_port", "dst_port", "payload")

    def __init__(self, src_port, dst_port, payload):
        self.src_port = src_port
        self.dst_port = dst_port
        self.payload = bytes(payload)

    def wire_size(self):
        return UDP_HEADER_BYTES + len(self.payload)

    def __repr__(self):
        return "Datagram(%d->%d, %d B)" % (
            self.src_port, self.dst_port, len(self.payload)
        )


class UdpSocket:
    """A bound UDP port."""

    def __init__(self, stack, local):
        self.stack = stack
        self.local = local
        self.on_datagram = None   # (payload, src Endpoint)

    def sendto(self, payload, remote):
        datagram = Datagram(self.local.port, remote.port, payload)
        packet = Packet(self.local.addr, remote.addr, "udp", datagram)
        return self.stack.host.send(packet)

    def close(self):
        self.stack._sockets.pop((str(self.local.addr), self.local.port),
                                None)


class UdpStack:
    """Per-host UDP demultiplexer."""

    def __init__(self, sim, host):
        self.sim = sim
        self.host = host
        self._sockets = {}
        self._next_port = 50000
        host.register_stack("udp", self)

    def bind(self, local_addr, port=None):
        if port is None:
            port = self._next_port
            self._next_port += 1
        local = Endpoint(local_addr, port)
        key = (str(local.addr), port)
        if key in self._sockets:
            raise ValueError("port %d already bound on %s" % (port,
                                                              local.addr))
        socket = UdpSocket(self, local)
        self._sockets[key] = socket
        return socket

    def receive(self, packet):
        datagram = packet.payload
        socket = self._sockets.get((str(packet.dst), datagram.dst_port))
        if socket is not None and socket.on_datagram is not None:
            socket.on_datagram(datagram.payload,
                               Endpoint(packet.src, datagram.src_port))
