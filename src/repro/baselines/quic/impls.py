"""Cost profiles of the QUIC implementations benchmarked in Fig. 7.

The paper explains QUIC's lower bulk throughput by implementation and
interface factors: (i) one packet per sendmsg/recvmsg unless GSO,
(ii) GSO executed in kernel software rather than NIC hardware,
(iii) user-space pacing, (iv) user-space ACK processing, (v) packet-
sized encryption units.  A profile quantifies how each implementation
sits on those axes; :mod:`repro.perf` turns profiles into throughput.
"""


class QuicImplProfile:
    """Performance-relevant traits of one QUIC implementation."""

    def __init__(self, name, gso_batch, extra_per_packet_ns,
                 ack_processing_ns, pacing_overhead_ns, crypto_efficiency):
        #: implementation name as benchmarked
        self.name = name
        #: datagrams per sendmsg (1 = no GSO)
        self.gso_batch = gso_batch
        #: implementation-specific per-packet bookkeeping cost
        self.extra_per_packet_ns = extra_per_packet_ns
        #: user-space ACK generation/processing per packet
        self.ack_processing_ns = ack_processing_ns
        #: user-space pacing cost per packet
        self.pacing_overhead_ns = pacing_overhead_ns
        #: fraction of the raw AEAD rate achieved on packet-sized units
        #: (per-packet key schedule + header protection overheads)
        self.crypto_efficiency = crypto_efficiency

    def __repr__(self):
        return "QuicImplProfile(%s)" % self.name


#: Profiles reflecting the three implementations' documented traits:
#: quicly and mvfst ship GSO, msquic (at the benchmarked version) did
#: not; mvfst carries the heaviest per-packet bookkeeping of the three.
IMPL_PROFILES = {
    "quicly": QuicImplProfile(
        "quicly", gso_batch=16, extra_per_packet_ns=150,
        ack_processing_ns=150, pacing_overhead_ns=100,
        crypto_efficiency=0.90,
    ),
    "quicly-nogso": QuicImplProfile(
        "quicly-nogso", gso_batch=1, extra_per_packet_ns=150,
        ack_processing_ns=150, pacing_overhead_ns=100,
        crypto_efficiency=0.90,
    ),
    "msquic": QuicImplProfile(
        "msquic", gso_batch=1, extra_per_packet_ns=1400,
        ack_processing_ns=300, pacing_overhead_ns=200,
        crypto_efficiency=0.80,
    ),
    "mvfst": QuicImplProfile(
        "mvfst", gso_batch=16, extra_per_packet_ns=5200,
        ack_processing_ns=500, pacing_overhead_ns=350,
        crypto_efficiency=0.70,
    ),
}
