"""QUIC baseline (RFC 9000 model) over UDP.

The paper compares TCPLS against three production QUIC implementations
(quicly, msquic, mvfst).  This package provides:

- :mod:`repro.baselines.quic.udp` -- a minimal UDP stack over
  :mod:`repro.net`;
- :mod:`repro.baselines.quic.packet` -- packet and frame codecs
  (STREAM / ACK / CRYPTO / HANDSHAKE_DONE / PING / CONNECTION_CLOSE);
- :mod:`repro.baselines.quic.connection` -- a functional QUIC endpoint:
  per-packet AEAD, user-space acknowledgment and loss recovery (packet
  thresholds + PTO), pluggable congestion control shared with the TCP
  stack, stream multiplexing, and optional GSO-style datagram batching;
- :mod:`repro.baselines.quic.impls` -- per-implementation cost profiles
  used by the Fig. 7 CPU model (syscall batching, GSO support, record
  sizes).

The architectural differences the paper attributes QUIC's lower bulk
throughput to are all present: encryption units are packet-sized
(~1.2 KiB vs 16 KiB TLS records), ACKs are generated and processed in
user space, and segmentation offload is GSO batching rather than TSO.
"""

from repro.baselines.quic.udp import UdpStack, Datagram
from repro.baselines.quic.connection import QuicClient, QuicConnection, QuicServer
from repro.baselines.quic.impls import IMPL_PROFILES, QuicImplProfile

__all__ = [
    "Datagram",
    "IMPL_PROFILES",
    "QuicClient",
    "QuicConnection",
    "QuicImplProfile",
    "QuicServer",
    "UdpStack",
]
