"""Multipath TCP baseline (RFC 8684 model).

This is the comparison point of the paper's Figs. 8, 9 and 11: a
kernel-style MPTCP connection built from TCP subflows over
:mod:`repro.tcp`, with

- a data sequence space mapped onto subflows (DSS), reassembled at the
  receiver at segment granularity (1460-byte chunks -- the reason
  MPTCP's aggregated goodput looks smoother than TCPLS's 16 KiB records
  in Fig. 11);
- data-level acknowledgments and reinjection of unacknowledged data
  from failed subflows onto surviving ones;
- path managers: ``fullmesh`` (the Linux default -- one subflow per
  address pair, new subflows when addresses appear) and ``backup``
  (second path opened but unused until the primary fails);
- the lowest-RTT scheduler (the Linux default);
- an interface-configuration delay modelling the time the kernel needs
  to configure a new interface, add routes and inform MPTCP before a
  new subflow becomes usable (the start-up lag visible in Fig. 11);
- token-based subflow association (the cleartext-key weakness relative
  to TCPLS's encrypted cookies is discussed in Sec. 3.3.2 -- this model
  keeps the token association but not the HMAC details).

Failure handling mirrors the behaviours the paper measured: an explicit
RST kills a subflow immediately; a blackholed subflow is only declared
dead after its retransmission timer has backed off ``RTO_FAIL_BACKOFF``
times, which is what makes MPTCP take seconds per outage in Fig. 9.
Re-created subflows to a previously reset address pair are attempted at
most once; a second RST on the same pair blacklists it (the stall the
paper observed when injecting RSTs repeatedly).
"""

import struct
from collections import deque

from repro.core.reorder import ReorderBuffer
from repro.net.address import Endpoint

CHUNK_DATA = 0
CHUNK_DATA_ACK = 1
CHUNK_INIT = 2
CHUNK_JOIN = 3
CHUNK_DATA_FIN = 4

DATA_HEADER = struct.Struct("!BQH")   # type, data_seq, length
ACK_HEADER = struct.Struct("!BQ")     # type, data_ack
TOKEN_HEADER = struct.Struct("!BQ")   # type, token

#: subflow declared failed after this many RTO backoffs (blackhole case)
RTO_FAIL_BACKOFF = 3
#: data chunk granularity (one TCP payload per chunk)
CHUNK_SIZE = 1448


class Subflow:
    """One TCP subflow plus its MPTCP bookkeeping."""

    def __init__(self, mptcp, tcp, pair, backup=False):
        self.mptcp = mptcp
        self.tcp = tcp
        self.pair = pair          # (local addr, remote addr)
        self.backup = backup
        self.established = False
        self.failed = False
        self._parse_buffer = bytearray()
        tcp.on_data = lambda _c: mptcp._on_subflow_data(self)
        tcp.on_reset = lambda _c: mptcp._on_subflow_failed(self, "rst")
        tcp.on_close = lambda _c: mptcp._on_subflow_closed(self)
        tcp.on_send_space = lambda _c: mptcp._pump()

    def usable(self):
        return self.established and not self.failed and self.tcp.is_open()

    def srtt(self):
        value = self.tcp.rtt.srtt
        return value if value is not None else float("inf")

    def monitor_stall(self):
        """Blackhole detection: excessive RTO backoff means the path is
        gone even though no explicit signal arrived."""
        return self.tcp._rto_backoff >= RTO_FAIL_BACKOFF

    def __repr__(self):
        state = "failed" if self.failed else (
            "up" if self.established else "opening")
        return "Subflow(%s->%s %s%s)" % (
            self.pair[0], self.pair[1], state,
            " backup" if self.backup else "",
        )


class MptcpConnection:
    """One MPTCP connection endpoint (either side)."""

    def __init__(self, sim, stack, token, is_client, scheduler="lowest-rtt",
                 path_manager="fullmesh", config_delay=0.0):
        self.sim = sim
        self.stack = stack
        self.token = token
        self.is_client = is_client
        self.scheduler = scheduler
        self.path_manager = path_manager
        self.config_delay = config_delay
        self.subflows = []
        self._blacklist = {}        # pair -> consecutive RST count

        # Sender state.
        self.snd_next = 0           # next data seq to assign
        self.snd_una = 0            # lowest unacked data seq
        self.pending = bytearray()  # app bytes not yet mapped
        self.unacked = {}           # data_seq -> (chunk bytes, subflow)
        self.reinject_queue = deque()
        self.fin_pending = False
        self.fin_sent = False

        # Receiver state.
        self.reorder = ReorderBuffer()
        self.recv_buffer = bytearray()
        self._chunks_received = 0
        self.remote_fin = False
        self._fin_seq = None
        self.bytes_delivered = 0

        self._monitor_event = None
        self.on_data = None
        self.on_established = None
        self.on_subflow_failed = None
        self._established_fired = False
        self._remote_port = None
        self._known_pairs = []       # (local, remote Endpoint) history
        self._reopen_cursor = 0
        self._next_reopen = 0.0
        #: seconds between path-manager re-establishment attempts when
        #: every subflow is dead -- the "several seconds to recover the
        #: right path" behaviour of Fig. 9
        self.reopen_interval = 2.0

    # -- path management --------------------------------------------------

    def open_subflow(self, local_addr, remote, backup=False, initial=False):
        """Create one subflow; subject to the RST blacklist."""
        pair = (local_addr, remote.addr)
        if self._blacklist.get(pair, 0) >= 2:
            return None  # Linux gives up on repeatedly-reset pairs
        tcp = self.stack.connect(local_addr, remote)
        subflow = Subflow(self, tcp, pair, backup=backup)
        self.subflows.append(subflow)
        if (local_addr, remote) not in self._known_pairs:
            self._known_pairs.append((local_addr, remote))
        kind = CHUNK_INIT if initial else CHUNK_JOIN
        tcp.on_established = (
            lambda _c, sf=subflow, k=kind: self._subflow_up(sf, k)
        )
        self._remote_port = remote.port
        return subflow

    def _subflow_up(self, subflow, kind):
        subflow.established = True
        subflow.tcp.send(TOKEN_HEADER.pack(kind, self.token))
        if not self._established_fired:
            self._established_fired = True
            if self.on_established is not None:
                self.on_established(self)
        self._arm_monitor()
        self._pump()

    def attach_passive_subflow(self, tcp):
        """Server side: adopt an accepted TCP connection."""
        subflow = Subflow(self, tcp,
                          (tcp.local.addr, tcp.remote.addr))
        subflow.established = True
        self.subflows.append(subflow)
        self._arm_monitor()
        return subflow

    def add_local_address(self, local_addr, remote=None):
        """Kernel hotplug path: a new local address appeared.  After the
        interface-configuration delay, the fullmesh path manager opens a
        subflow from it (Fig. 11's start-up lag)."""
        def create():
            target = remote
            if target is None and self._remote_port is not None:
                target = self._pick_remote_for(local_addr)
            if target is not None:
                self.open_subflow(local_addr, target)
        self.sim.schedule(self.config_delay, create)

    def _pick_remote_for(self, local_addr):
        for subflow in self.subflows:
            if subflow.pair[1].family == local_addr.family:
                return Endpoint(subflow.pair[1], self._remote_port)
        if self.subflows:
            return Endpoint(self.subflows[0].pair[1], self._remote_port)
        return None

    # -- failure handling --------------------------------------------------

    def _arm_monitor(self):
        if self._monitor_event is None:
            self._monitor_event = self.sim.schedule(0.1, self._monitor)

    def _monitor(self):
        self._monitor_event = None
        for subflow in list(self.subflows):
            if subflow.usable() and subflow.monitor_stall():
                self._on_subflow_failed(subflow, "stall")
        self._maybe_reopen()
        keep_watching = (
            (self.is_client and bool(self._known_pairs))
            or any(sf.usable() or (not sf.established and not sf.failed)
                   for sf in self.subflows)
        )
        if keep_watching:
            self._monitor_event = self.sim.schedule(0.1, self._monitor)

    def _maybe_reopen(self):
        """Path manager: with no usable subflow left, periodically try to
        re-establish one per known address pair, round-robin.  Each
        attempt must itself time out (SYN retransmissions) before the
        next pair is tried, which is why recovery takes seconds."""
        if not self.is_client or not self._known_pairs:
            return
        if any(sf.usable() for sf in self.subflows):
            return
        if any(not sf.established and not sf.failed
               for sf in self.subflows):
            return  # an attempt is already in progress
        if self.sim.now < self._next_reopen:
            return
        self._next_reopen = self.sim.now + self.reopen_interval
        pair = self._known_pairs[self._reopen_cursor %
                                 len(self._known_pairs)]
        self._reopen_cursor += 1
        subflow = self.open_subflow(pair[0], pair[1])
        if subflow is not None:
            # Give up on this attempt if it cannot establish quickly.
            def expire(sf=subflow):
                if not sf.established and not sf.failed:
                    sf.failed = True
                    sf.tcp.abort()
            self.sim.schedule(self.reopen_interval, expire)

    def _on_subflow_failed(self, subflow, reason):
        if subflow.failed:
            return
        subflow.failed = True
        if reason == "rst":
            pair = subflow.pair
            self._blacklist[pair] = self._blacklist.get(pair, 0) + 1
        subflow.tcp.abort()
        if self.on_subflow_failed is not None:
            self.on_subflow_failed(subflow, reason)
        # Reinjection: data mapped to the dead subflow goes back out on
        # the survivors.
        for data_seq, (chunk, owner) in sorted(self.unacked.items()):
            if owner is subflow:
                self.reinject_queue.append((data_seq, chunk))
        if self.is_client and self.path_manager == "backup":
            for backup_flow in self.subflows:
                if backup_flow.backup and backup_flow.usable():
                    backup_flow.backup = False  # promote
        self._pump()

    def _on_subflow_closed(self, subflow):
        subflow.established = False

    # -- scheduler ---------------------------------------------------------

    def _pick_subflow(self, size):
        active = [sf for sf in self.subflows if sf.usable() and
                  not sf.backup]
        if not active:
            active = [sf for sf in self.subflows if sf.usable()]
        candidates = [
            sf for sf in active
            if sf.tcp.send_space() >= size + DATA_HEADER.size
            and sf.tcp.unsent_bytes() < 64 * 1024
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda sf: sf.srtt())

    # -- send path -----------------------------------------------------------

    def send(self, data):
        """Queue application bytes onto the MPTCP data sequence space."""
        self.pending += data
        self._pump()
        return len(data)

    def close(self):
        self.fin_pending = True
        self._pump()

    def _pump(self):
        progressed = True
        while progressed:
            progressed = False
            # Reinjections first: the receiver is blocked on them.
            if self.reinject_queue:
                data_seq, chunk = self.reinject_queue[0]
                subflow = self._pick_subflow(len(chunk))
                if subflow is not None:
                    self.reinject_queue.popleft()
                    if data_seq in self.unacked:
                        self.unacked[data_seq] = (chunk, subflow)
                        subflow.tcp.send(
                            DATA_HEADER.pack(CHUNK_DATA, data_seq,
                                             len(chunk)) + chunk
                        )
                    progressed = True
                    continue
            if self.pending:
                chunk = bytes(self.pending[:CHUNK_SIZE])
                subflow = self._pick_subflow(len(chunk))
                if subflow is not None:
                    del self.pending[:len(chunk)]
                    data_seq = self.snd_next
                    self.snd_next += 1
                    self.unacked[data_seq] = (chunk, subflow)
                    subflow.tcp.send(
                        DATA_HEADER.pack(CHUNK_DATA, data_seq, len(chunk))
                        + chunk
                    )
                    progressed = True
                    continue
            if self.fin_pending and not self.fin_sent and not self.pending:
                subflow = self._pick_subflow(0)
                if subflow is not None:
                    subflow.tcp.send(
                        DATA_HEADER.pack(CHUNK_DATA_FIN, self.snd_next, 0)
                    )
                    self.fin_sent = True
                    progressed = True

    # -- receive path ----------------------------------------------------------

    def _on_subflow_data(self, subflow):
        data = subflow.tcp.recv()
        if data:
            subflow._parse_buffer += data
        self._parse_subflow_buffer(subflow)

    def _parse_subflow_buffer(self, subflow):
        buf = subflow._parse_buffer
        offset = 0
        while True:
            if len(buf) - offset < 1:
                break
            kind = buf[offset]
            if kind in (CHUNK_INIT, CHUNK_JOIN):
                if len(buf) - offset < TOKEN_HEADER.size:
                    break
                offset += TOKEN_HEADER.size
            elif kind == CHUNK_DATA_ACK:
                if len(buf) - offset < ACK_HEADER.size:
                    break
                _, data_ack = ACK_HEADER.unpack_from(buf, offset)
                offset += ACK_HEADER.size
                self._on_data_ack(data_ack)
            elif kind in (CHUNK_DATA, CHUNK_DATA_FIN):
                if len(buf) - offset < DATA_HEADER.size:
                    break
                _, data_seq, length = DATA_HEADER.unpack_from(buf, offset)
                if len(buf) - offset < DATA_HEADER.size + length:
                    break
                payload = bytes(
                    buf[offset + DATA_HEADER.size:
                        offset + DATA_HEADER.size + length]
                )
                offset += DATA_HEADER.size + length
                if kind == CHUNK_DATA_FIN:
                    self.remote_fin = True
                    self._fin_seq = data_seq
                    if self.on_data is not None:
                        self.on_data(self)
                else:
                    self._on_data_chunk(subflow, data_seq, payload)
            else:
                raise ValueError("bad MPTCP chunk type %d" % kind)
        if offset:
            del buf[:offset]

    def _on_data_chunk(self, subflow, data_seq, payload):
        released = self.reorder.push(data_seq, payload)
        for chunk in released:
            self.recv_buffer += chunk
            self.bytes_delivered += len(chunk)
        self._chunks_received += 1
        if self._chunks_received % 8 == 0 or released:
            self._send_data_ack(subflow)
        if released and self.on_data is not None:
            self.on_data(self)

    def _send_data_ack(self, preferred):
        subflow = preferred if preferred.usable() else None
        if subflow is None:
            usable = [sf for sf in self.subflows if sf.usable()]
            if not usable:
                return
            subflow = usable[0]
        subflow.tcp.send(ACK_HEADER.pack(CHUNK_DATA_ACK,
                                         self.reorder.next_seq))

    def _on_data_ack(self, data_ack):
        for data_seq in [s for s in self.unacked if s < data_ack]:
            del self.unacked[data_seq]
        self.snd_una = max(self.snd_una, data_ack)
        self.reinject_queue = deque(
            (s, c) for s, c in self.reinject_queue if s >= data_ack
        )
        self._pump()

    def recv(self, n=None):
        if n is None or n >= len(self.recv_buffer):
            data = bytes(self.recv_buffer)
            self.recv_buffer.clear()
            return data
        data = bytes(self.recv_buffer[:n])
        del self.recv_buffer[:n]
        return data

    @property
    def complete(self):
        """The peer's DATA_FIN arrived and everything before it was
        delivered in order."""
        return (self.remote_fin and self._fin_seq is not None
                and self.reorder.next_seq >= self._fin_seq)


class MptcpClient(MptcpConnection):
    """Client side: opens the initial subflow, then per path manager."""

    _next_token = 1

    def __init__(self, sim, stack, scheduler="lowest-rtt",
                 path_manager="fullmesh", config_delay=0.0):
        MptcpClient._next_token += 1
        super().__init__(sim, stack, MptcpClient._next_token,
                         is_client=True, scheduler=scheduler,
                         path_manager=path_manager,
                         config_delay=config_delay)

    def connect(self, address_pairs, port):
        """Open subflows per the path manager.

        ``address_pairs``: list of (local, remote) address pairs; the
        first is the initial subflow.  Under ``backup``, the remaining
        pairs open immediately but stay unused until a failure.
        """
        first = True
        for local, remote_addr in address_pairs:
            self.open_subflow(
                local, Endpoint(remote_addr, port),
                backup=(self.path_manager == "backup" and not first),
                initial=first,
            )
            first = False


class MptcpServer:
    """Listener: accepts subflows and groups them by token."""

    def __init__(self, sim, stack, port, **conn_kwargs):
        self.sim = sim
        self.stack = stack
        self.port = port
        self.conn_kwargs = conn_kwargs
        self.connections = {}
        self.on_connection = None
        stack.listen(port, self._on_accept)

    def _on_accept(self, tcp):
        state = {"buffer": bytearray()}

        def on_first_data(_c):
            data = tcp.recv()
            state["buffer"] += data
            if len(state["buffer"]) < TOKEN_HEADER.size:
                return
            kind, token = TOKEN_HEADER.unpack_from(state["buffer"], 0)
            rest = bytes(state["buffer"][TOKEN_HEADER.size:])
            if kind == CHUNK_INIT:
                conn = MptcpConnection(self.sim, self.stack, token,
                                       is_client=False, **self.conn_kwargs)
                self.connections[token] = conn
                if self.on_connection is not None:
                    self.on_connection(conn)
            else:
                conn = self.connections.get(token)
                if conn is None:
                    tcp.abort()
                    return
            subflow = conn.attach_passive_subflow(tcp)
            if rest:
                subflow._parse_buffer += rest
                conn._parse_subflow_buffer(subflow)

        tcp.on_data = on_first_data
