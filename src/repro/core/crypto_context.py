"""Per-stream cryptographic contexts (Fig. 2 of the paper).

TCPLS keeps the single TLS 1.3 application traffic *key* (adding keys
would degrade AEAD security bounds, Sec. 3.3.1) and derives one IV per
stream:

- the left-most 32 bits of the handshake-derived IV are **summed** with
  the 32-bit stream id (mod 2^32);
- the right-most 64 bits are **XORed** with the per-stream record
  sequence number at seal/open time.

Each stream having its own sequence space, every record of every stream
gets a unique nonce.  The stream id stays implicit on the wire: the
receiver recovers it by trying authentication tags (cheap for
Encrypt-then-MAC AEADs) against candidate contexts.
"""

import struct

from repro.crypto.aead import AeadAuthenticationError
from repro.tls.record import (
    RECORD_HEADER_SIZE,
    encode_record_header,
    CONTENT_APPLICATION_DATA,
)


def derive_stream_iv(base_iv, stream_id):
    """Apply the Fig. 2 left-32-bit addition of the stream id."""
    if len(base_iv) != 12:
        raise ValueError("TLS 1.3 IVs are 12 bytes")
    (left,) = struct.unpack_from("!I", base_iv, 0)
    left = (left + stream_id) & 0xFFFFFFFF
    return struct.pack("!I", left) + base_iv[4:]


def record_nonce(stream_iv, record_seq):
    """XOR the 64-bit record sequence into the right-most IV bits."""
    (right,) = struct.unpack_from("!Q", stream_iv, 4)
    right ^= record_seq & 0xFFFFFFFFFFFFFFFF
    return stream_iv[:4] + struct.pack("!Q", right)


class StreamCryptoContext:
    """Seal/open TCPLS records for one stream direction.

    One context per (stream, direction).  ``seal`` produces full TLS
    wire records; ``open_at`` / ``verify_at`` operate at an explicit
    record sequence, which is how the session layer implements both
    in-order decryption and the bounded trial window used across stream
    steering and failover replay.
    """

    def __init__(self, cipher, base_iv, stream_id):
        self.cipher = cipher
        self.stream_id = stream_id
        self.stream_iv = derive_stream_iv(base_iv, stream_id)
        # Nonce fast path: the left 4 IV bytes never change and the
        # right 64 bits are unpacked once, so per-record nonces are one
        # XOR + pack instead of two struct round-trips.
        self._iv_left = self.stream_iv[:4]
        (self._iv_right,) = struct.unpack_from("!Q", self.stream_iv, 4)
        self.send_seq = 0
        self.tag_trials = 0
        self.tag_hits = 0

    def _nonce(self, record_seq):
        right = self._iv_right ^ (record_seq & 0xFFFFFFFFFFFFFFFF)
        return self._iv_left + right.to_bytes(8, "big")

    def seal(self, inner_plaintext):
        """Encrypt at the next send sequence; returns full record bytes."""
        nonce = self._nonce(self.send_seq)
        length = len(inner_plaintext) + self.cipher.tag_size
        header = encode_record_header(CONTENT_APPLICATION_DATA, length)
        ciphertext = self.cipher.seal(nonce, inner_plaintext, aad=header)
        self.send_seq += 1
        return header + ciphertext

    def seal_many(self, inner_plaintexts):
        """Seal consecutive records in one pass.

        Byte-identical to ``[self.seal(p) for p in inner_plaintexts]``;
        the win is hoisting the cipher/IV attribute lookups out of the
        per-record loop, which matters when the session pump seals a
        whole congestion window's worth of records per writable event.
        """
        cipher = self.cipher
        cipher_seal = cipher.seal
        tag_size = cipher.tag_size
        iv_left = self._iv_left
        iv_right = self._iv_right
        seq = self.send_seq
        out = []
        append = out.append
        for inner in inner_plaintexts:
            nonce = iv_left + (
                iv_right ^ (seq & 0xFFFFFFFFFFFFFFFF)).to_bytes(8, "big")
            header = encode_record_header(
                CONTENT_APPLICATION_DATA, len(inner) + tag_size)
            append(header + cipher_seal(nonce, inner, aad=header))
            seq += 1
        self.send_seq = seq
        return out

    def open_at(self, record, record_seq):
        """Decrypt a full wire record at an explicit sequence.

        Raises :class:`~repro.crypto.aead.AeadAuthenticationError` if
        the record does not belong to this (stream, seq).
        """
        view = memoryview(record)
        header = bytes(view[:RECORD_HEADER_SIZE])
        ciphertext = view[RECORD_HEADER_SIZE:]
        nonce = self._nonce(record_seq)
        return self.cipher.open(nonce, ciphertext, aad=header)

    def verify_at(self, record, record_seq):
        """Tag-only trial (no plaintext produced)."""
        self.tag_trials += 1
        view = memoryview(record)
        header = bytes(view[:RECORD_HEADER_SIZE])
        ciphertext = view[RECORD_HEADER_SIZE:]
        nonce = self._nonce(record_seq)
        ok = self.cipher.verify_tag(nonce, ciphertext, aad=header)
        if ok:
            self.tag_hits += 1
        return ok

    def try_open(self, record, record_seq):
        """verify + open in one call; returns plaintext or None."""
        if not self.verify_at(record, record_seq):
            return None
        try:
            return self.open_at(record, record_seq)
        except AeadAuthenticationError:  # pragma: no cover - verify passed
            return None
