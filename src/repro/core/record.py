"""TCPLS record framing.

On the wire a TCPLS record is a TLS 1.3 encrypted record (outer type
``application_data``), indistinguishable from TLS traffic (Fig. 1 of
the paper).  Inside the AEAD plaintext, TCPLS frames its content as::

    payload bytes ... || control fields ... || control_len(u8) || type(u8)

with the type byte *last* -- extending TLS's inner-content-type trick.
Putting control data at the end is the design decision of Sec. 3.1:
after decrypting into a contiguous per-stream buffer, the receiver
simply truncates the control tail, so application payload never moves.

Record types (all hidden from the network by encryption):

=================  ======================================================
STREAM_DATA        application bytes; optional coupled-sequence control
ACK                per-stream cumulative record acknowledgment (failover)
SYNC               failover resynchronisation point (Fig. 4)
TCP_OPTION         a TCP option conveyed securely (e.g. User Timeout)
EBPF               a chunk of congestion-controller bytecode (Sec. 4.4)
CONTROL            session control (cookies, addresses, stream attach...)
PING / PONG        application path probing (Sec. 3.3.3)
=================  ======================================================
"""

import struct

RECORD_TYPE_APPDATA = 0x17        # plain TLS application data (stream 0)
RECORD_TYPE_STREAM_DATA = 0x30
RECORD_TYPE_ACK = 0x31
RECORD_TYPE_SYNC = 0x32
RECORD_TYPE_TCP_OPTION = 0x33
RECORD_TYPE_EBPF = 0x34
RECORD_TYPE_CONTROL = 0x35
RECORD_TYPE_PING = 0x36
RECORD_TYPE_PONG = 0x37

#: STREAM_DATA control flags
FLAG_COUPLED = 0x01   #: control carries a coupled-stream sequence number
FLAG_FIN = 0x02       #: sender finished this stream

# Control record opcodes (first byte of a CONTROL payload).
CTRL_NEW_COOKIES = 0x01
CTRL_ADD_ADDRESS = 0x02
CTRL_REMOVE_ADDRESS = 0x03
CTRL_STREAM_ATTACH = 0x04
CTRL_STREAM_DETACH = 0x05
CTRL_STREAM_CLOSE = 0x06
CTRL_ENABLE_FAILOVER = 0x07
CTRL_CONN_CLOSE = 0x08
CTRL_ENABLE_TCPLS = 0x09
CTRL_TCPINFO_REQUEST = 0x0A
CTRL_TCPINFO_RESPONSE = 0x0B
CTRL_NEW_TOKENS = 0x0C


class TcplsRecord:
    """One decoded TCPLS inner record: (type, payload, control bytes)."""

    __slots__ = ("record_type", "payload", "control")

    def __init__(self, record_type, payload=b"", control=b""):
        self.record_type = record_type
        self.payload = payload
        self.control = control

    def __repr__(self):
        return "TcplsRecord(0x%02x, %d B payload, %d B control)" % (
            self.record_type, len(self.payload), len(self.control)
        )


def encode_inner(record_type, payload=b"", control=b""):
    """Frame the AEAD plaintext with end-of-record control data.

    ``payload`` may be any bytes-like object (including a zero-copy
    ``memoryview`` of an application buffer); the single gather below is
    the only copy the send path makes of it.
    """
    if len(control) > 255:
        raise ValueError("control fields limited to 255 bytes")
    return b"".join((payload, control, bytes((len(control), record_type))))


def decode_inner(plaintext, zero_copy=False):
    """Parse a decrypted record; returns :class:`TcplsRecord`.

    The receive path counterpart of :func:`encode_inner`: the payload is
    the *prefix* of the buffer, so a zero-copy receiver just shrinks the
    buffer length.  With ``zero_copy=True`` the payload is returned as a
    :class:`memoryview` over ``plaintext`` -- no byte is moved, which is
    exactly what the end-of-record layout enables (Sec. 3.1); a
    header-first layout could not offer this without a memmove.
    """
    if len(plaintext) < 2:
        raise ValueError("TCPLS record shorter than its trailer")
    record_type = plaintext[-1]
    control_len = plaintext[-2]
    if len(plaintext) < 2 + control_len:
        raise ValueError("control length exceeds record")
    payload_end = len(plaintext) - 2 - control_len
    control = bytes(plaintext[payload_end:-2])
    if zero_copy:
        payload = memoryview(plaintext)[:payload_end]
    else:
        payload = plaintext[:payload_end]
    return TcplsRecord(record_type, payload, control)


# -- typed control payload codecs -----------------------------------------


def encode_stream_control(flags, coupled_seq=None):
    """STREAM_DATA control tail."""
    control = bytes([flags])
    if flags & FLAG_COUPLED:
        if coupled_seq is None:
            raise ValueError("coupled flag requires a sequence number")
        control += struct.pack("!Q", coupled_seq)
    return control


def decode_stream_control(control):
    """Returns (flags, coupled_seq or None)."""
    if not control:
        return 0, None
    flags = control[0]
    coupled_seq = None
    if flags & FLAG_COUPLED:
        if len(control) < 9:
            raise ValueError("coupled control truncated")
        (coupled_seq,) = struct.unpack_from("!Q", control, 1)
    return flags, coupled_seq


def encode_ack(entries):
    """ACK payload: count(u8) then (stream_id u32, next_seq u64) each."""
    out = bytearray([len(entries)])
    for stream_id, next_seq in entries:
        out += struct.pack("!IQ", stream_id, next_seq)
    return bytes(out)


def decode_ack(payload):
    count = payload[0]
    entries = []
    offset = 1
    for _ in range(count):
        stream_id, next_seq = struct.unpack_from("!IQ", payload, offset)
        entries.append((stream_id, next_seq))
        offset += 12
    return entries


def encode_sync(failed_conn_index, entries):
    """SYNC payload: the failed connection and per-stream resume seqs."""
    out = bytearray(struct.pack("!IB", failed_conn_index, len(entries)))
    for stream_id, resume_seq in entries:
        out += struct.pack("!IQ", stream_id, resume_seq)
    return bytes(out)


def decode_sync(payload):
    failed_conn_index, count = struct.unpack_from("!IB", payload, 0)
    entries = []
    offset = 5
    for _ in range(count):
        stream_id, resume_seq = struct.unpack_from("!IQ", payload, offset)
        entries.append((stream_id, resume_seq))
        offset += 12
    return failed_conn_index, entries


def encode_tcp_option(kind, data):
    return bytes([kind]) + data


def decode_tcp_option(payload):
    return payload[0], payload[1:]


def encode_ebpf_chunk(program_id, chunk_index, total_chunks, data):
    return struct.pack("!BHH", program_id, chunk_index, total_chunks) + data


def decode_ebpf_chunk(payload):
    program_id, chunk_index, total_chunks = struct.unpack_from("!BHH",
                                                               payload, 0)
    return program_id, chunk_index, total_chunks, payload[5:]


def encode_stream_attach(stream_id, from_seq, coupled_group=0):
    return struct.pack("!BIQI", CTRL_STREAM_ATTACH, stream_id, from_seq,
                       coupled_group)


def encode_stream_detach(stream_id, final_seq):
    return struct.pack("!BIQ", CTRL_STREAM_DETACH, stream_id, final_seq)


def encode_stream_close(stream_id):
    return struct.pack("!BI", CTRL_STREAM_CLOSE, stream_id)


_TCPINFO = struct.Struct("!BIIIQQI")


def encode_tcpinfo_response(info):
    """Pack the remote-``tcp_info`` fields the paper's API exposes."""
    srtt_us = int((info.get("srtt") or 0.0) * 1e6)
    ssthresh = info.get("ssthresh_bytes")
    return _TCPINFO.pack(
        CTRL_TCPINFO_RESPONSE,
        srtt_us,
        int(info.get("cwnd_bytes") or 0),
        int(ssthresh if ssthresh is not None else 0xFFFFFFFF),
        int(info.get("bytes_acked") or 0),
        int(info.get("bytes_received") or 0),
        int(info.get("retransmissions") or 0),
    )


def decode_tcpinfo_response(payload):
    (_op, srtt_us, cwnd, ssthresh, acked, received,
     retrans) = _TCPINFO.unpack(payload[:_TCPINFO.size])
    return {
        "srtt": srtt_us / 1e6,
        "cwnd_bytes": cwnd,
        "ssthresh_bytes": None if ssthresh == 0xFFFFFFFF else ssthresh,
        "bytes_acked": acked,
        "bytes_received": received,
        "retransmissions": retrans,
    }
