"""Simulator-facing TCPLS server (glue over the sans-I/O engine).

Handshake answering, cookie/token minting and join validation live in
:class:`repro.core.engine.server.TcplsServerEngine`; this module binds
the listener to a simulated host's TCP stack and keeps the historical
``TcplsServer(sim, stack, port, psk, ...)`` constructor.
"""

from repro.core.drivers.sim import SimDriver
from repro.core.engine.server import (
    TcplsServerEngine,
    TcplsServerSessionEngine,
)
from repro.core.session import TcplsSession


class TcplsServerSession(TcplsServerSessionEngine, TcplsSession):
    """One server-side session (a client plus its joined connections)."""


class TcplsServer(TcplsServerEngine):
    """Listener managing TCPLS sessions on a simulated host's port."""

    session_cls = TcplsServerSession

    def __init__(self, sim, stack, port, psk, **server_kwargs):
        driver = SimDriver(sim, stack)
        super().__init__(driver, port, psk, **server_kwargs)
        self.sim = sim
        self.stack = stack
