"""Application-facing TCPLS API (the Fig. 5 workflow).

The paper's API is session-level and event-driven: the application
configures a context, registers callbacks, explicitly opens TCP
connections between chosen address pairs (optionally racing them,
Happy-Eyeballs style), and then drives streams.
:class:`TcplsConnection` is that facade over
:class:`~repro.core.client.TcplsClient`.
"""

from repro.core.client import TcplsClient
from repro.core.errors import SessionStateError
from repro.net.address import Endpoint


class TcplsConnection:
    """High-level client handle.

    Typical use (mirroring the paper's workflow)::

        api = TcplsConnection(sim, stack, psk=b"secret")
        api.add_address(client_v4); api.add_address(client_v6)
        api.add_peer_address(server_v4, 443); api.add_peer_address(server_v6, 443)
        api.on("ready", lambda s: ...)
        api.connect(src=client_v4, dst=server_v4)    # primary + handshake
        ...
        api.join(src=client_v6)                      # second path
        group = api.aggregate()                       # couple all paths
        group.send(data)
    """

    EVENTS = frozenset({
        "ready", "stream_data", "group_data", "conn_established",
        "conn_failed", "failover", "join", "pong", "ebpf_attached",
        "writable", "stream_open", "tcp_option",
    })

    def __init__(self, sim, stack, psk, cipher_names=("null-tag",),
                 enable_tcpls=True, **session_kwargs):
        self.sim = sim
        self.stack = stack
        self.session = TcplsClient(sim, stack, psk,
                                   cipher_names=cipher_names,
                                   enable_tcpls=enable_tcpls,
                                   **session_kwargs)
        self.local_addresses = []
        self.peer_endpoints = []
        self._handlers = {}
        self._wire()

    def _wire(self):
        session = self.session
        session.on_ready = lambda s: self._emit("ready", s)
        session.on_stream_data = lambda st: self._emit("stream_data", st)
        session.on_group_data = lambda g: self._emit("group_data", g)
        session.on_stream_open = lambda st: self._emit("stream_open", st)
        session.on_conn_established = (
            lambda c: self._emit("conn_established", c))
        session.on_conn_failed = (
            lambda c, r: self._emit("conn_failed", c, r))
        session.on_failover = lambda o, n: self._emit("failover", o, n)
        session.on_join = lambda c: self._emit("join", c)
        session.on_pong = lambda c, p: self._emit("pong", c, p)
        session.on_ebpf_attached = (
            lambda c, p: self._emit("ebpf_attached", c, p))
        session.on_writable = lambda s: self._emit("writable", s)
        session.on_tcp_option = (
            lambda c, k, d: self._emit("tcp_option", c, k, d))

    def on(self, event, handler):
        """Register a callback; events mirror the paper's connection
        events (establishment, stream attachment, joins, options...)."""
        if event not in self.EVENTS:
            raise ValueError("unknown event %r (have: %s)"
                             % (event, ", ".join(sorted(self.EVENTS))))
        self._handlers.setdefault(event, []).append(handler)
        return self

    def _emit(self, event, *args):
        for handler in self._handlers.get(event, ()):
            handler(*args)

    # -- address bookkeeping ------------------------------------------------

    def add_address(self, address):
        """Declare a local address usable for connections (v4 or v6)."""
        self.local_addresses.append(address)
        return self

    def add_peer_address(self, address, port):
        self.peer_endpoints.append(Endpoint(address, port))
        return self

    # -- connection management ---------------------------------------------

    def connect(self, src=None, dst=None, timeout=None):
        """Open the primary connection.

        With ``src``/``dst`` omitted, races the first two configured
        address pairs Happy-Eyeballs style: both TCP connections start
        and the first to complete its handshake wins; the loser is
        aborted (``timeout`` bounds the race, default 50 ms as in the
        paper's example).
        """
        if src is not None or dst is not None:
            src = src if src is not None else self.local_addresses[0]
            dst = dst if dst is not None else self.peer_endpoints[0]
            return self.session.connect(src, dst)
        return self._happy_eyeballs(timeout if timeout is not None else 0.05)

    def _happy_eyeballs(self, timeout):
        pairs = list(zip(self.local_addresses, self.peer_endpoints))
        if not pairs:
            raise SessionStateError("no address pairs configured")
        if len(pairs) == 1:
            return self.session.connect(*pairs[0])
        # Race at the TCP level, then run TCPLS on the winner.
        winners = []
        probes = []
        for src, dst in pairs[:2]:
            probe = self.stack.connect(src, dst)
            probes.append((probe, src, dst))
            probe.on_established = (
                lambda c, s=src, d=dst: winners.append((c, s, d))
            )

        def decide():
            if not winners:
                # Nothing established inside the timeout; keep waiting on
                # whichever probe succeeds first.
                for probe, src, dst in probes:
                    probe.on_established = (
                        lambda c, s=src, d=dst: self._finish_race(
                            probes, c, s, d)
                    )
                return
            conn, src, dst = winners[0]
            self._finish_race(probes, conn, src, dst)

        self.sim.schedule(timeout, decide)
        return None

    def _finish_race(self, probes, winner, src, dst):
        for probe, _s, _d in probes:
            if probe is not winner:
                probe.abort()
        winner.abort()  # release the probe; TCPLS opens its own connection
        self.session.connect(src, dst)

    def join(self, src, dst=None):
        """Join one more path using a stored cookie."""
        return self.session.join(src, remote=dst)

    # -- transport services ---------------------------------------------------

    def new_stream(self, conn=None):
        conn = conn or self.session._first_writable()
        return self.session.create_stream(conn)

    def aggregate(self, conns=None, scheduler=None):
        """Couple streams over the given (default: all) connections for
        bandwidth aggregation."""
        conns = conns or self.session.alive_connections()
        return self.session.create_coupled_group(conns, scheduler=scheduler)

    def enable_failover(self):
        self.session.enable_failover()
        return self

    def set_user_timeout(self, seconds, conn=None):
        conn = conn or self.session._first_writable()
        self.session.set_user_timeout(conn, seconds)
        return self

    def tcp_info(self, conn=None):
        conn = conn or self.session._first_writable()
        return conn.tcp_info()

    def connections(self):
        return self.session.connections()


def tcpls_connect(sim, stack, local_addr, remote, psk, **kwargs):
    """One-call helper: build a client session and open the primary
    connection.  Returns the :class:`~repro.core.client.TcplsClient`."""
    client = TcplsClient(sim, stack, psk, **kwargs)
    client.connect(local_addr, remote)
    return client
