"""Simulator driver: runs the engine inside the discrete-event world.

The transports handed to the engine are the simulator's own
:class:`repro.tcp.connection.TcpConnection` objects (they satisfy the
:class:`~repro.core.engine.interfaces.Transport` contract directly), so
this driver adds no per-byte indirection -- the engine under
``SimDriver`` executes the exact code path the pre-split
``TcplsSession`` did, which is what keeps golden traces bit-identical.
"""

from repro.core.engine.interfaces import Clock, Driver
from repro.net.address import Endpoint


class SimClock(Clock):
    """Simulated time: proxies the :class:`repro.net.Simulator`."""

    def __init__(self, sim):
        self.sim = sim

    @property
    def now(self):
        return self.sim.now

    @property
    def compactions(self):
        return self.sim.compactions

    def call_later(self, delay, fn, *args):
        return self.sim.schedule(delay, fn, *args)


class SimDriver(Driver):
    """Bind engines to one host's :class:`repro.tcp.stack.TcpStack`."""

    def __init__(self, sim, stack):
        self.sim = sim
        self.stack = stack
        self.clock = SimClock(sim)
        self.bus = sim.bus
        self.rng = sim.rng

    @property
    def name(self):
        return self.stack.host.name

    @property
    def tfo_enabled(self):
        return self.stack.tfo_enabled

    def connect(self, local_addr, remote, cc=None, tfo_data=b""):
        return self.stack.connect(local_addr, remote, cc=cc,
                                  tfo_data=tfo_data)

    def listen(self, port, on_accept, cc=None):
        return self.stack.listen(port, on_accept, cc=cc)

    def endpoint(self, address, port):
        return Endpoint(address, port)

    def tfo_cookie_for(self, server_addr):
        return self.stack.tfo_cookie_for(server_addr)

    def usable_local_addresses(self):
        addresses = []
        for address in self.stack.host.addresses():
            iface = self.stack.host.interface_for_address(address)
            if iface is not None and iface.up:
                addresses.append(address)
        return addresses

    def advertised_addresses(self):
        return self.stack.host.addresses()


__all__ = ["SimClock", "SimDriver"]
