"""Socket driver: runs the TCPLS engine over real kernel TCP.

A :class:`SocketDriver` owns a :mod:`selectors` event loop, a monotonic
clock with a timer heap, and non-blocking :class:`SocketTransport`
objects satisfying the engine's Transport contract.  The engine code
that runs here is byte-for-byte the same as under the simulator driver
-- only the environment differs, which is the point of the sans-I/O
split (and what lets ``examples/loopback_sockets.py`` move TCPLS
records over OS loopback).

``tcp_info`` is populated from the Linux ``TCP_INFO`` socket option
when available and degrades to conservative defaults elsewhere.
"""

import errno
import heapq
import random
import selectors
import socket
import struct
import time

from repro.core.engine.interfaces import Clock, Driver, Transport
from repro.core.errors import DriverError
from repro.obs.bus import EventBus

#: Linux ``struct tcp_info`` prefix: 8 bytes of u8 fields, 24 u32
#: counters, 4 u64 rate/byte counters, 2 u32 segment counters.
_TCP_INFO_FMT = "8B24I4Q2I"
_TCP_INFO_SIZE = struct.calcsize(_TCP_INFO_FMT)
_TCP_USER_TIMEOUT = getattr(socket, "TCP_USER_TIMEOUT", 18)


class SocketAddress:
    """An IP address string with the engine's ``family`` attribute."""

    __slots__ = ("value", "family")

    def __init__(self, value, family=4):
        self.value = value
        self.family = family

    def __eq__(self, other):
        return (isinstance(other, SocketAddress)
                and (self.value, self.family)
                == (other.value, other.family))

    def __hash__(self):
        return hash((self.value, self.family))

    def __repr__(self):
        return self.value


class SocketEndpoint:
    """(address, port) pair mirroring :class:`repro.net.Endpoint`."""

    __slots__ = ("addr", "port")

    def __init__(self, addr, port):
        self.addr = addr
        self.port = port

    @property
    def family(self):
        return self.addr.family

    def __eq__(self, other):
        return (isinstance(other, SocketEndpoint)
                and (self.addr, self.port) == (other.addr, other.port))

    def __hash__(self):
        return hash((self.addr, self.port))

    def __repr__(self):
        return "%s:%d" % (self.addr, self.port)


def _endpoint_from_sockname(sockname, family):
    host, port = sockname[0], sockname[1]
    return SocketEndpoint(
        SocketAddress(host, 6 if family == socket.AF_INET6 else 4), port
    )


class SocketClock(Clock):
    """Monotonic real time (epoch at driver creation) + timer heap."""

    def __init__(self):
        self._epoch = time.monotonic()
        self.compactions = 0
        self._heap = []
        self._seq = 0

    @property
    def now(self):
        return time.monotonic() - self._epoch

    class _Timer:
        __slots__ = ("when", "fn", "args", "cancelled")

        def __init__(self, when, fn, args):
            self.when = when
            self.fn = fn
            self.args = args
            self.cancelled = False

        def cancel(self):
            self.cancelled = True

    def call_later(self, delay, fn, *args):
        timer = self._Timer(self.now + delay, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, (timer.when, self._seq, timer))
        return timer

    def next_deadline(self):
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def fire_due(self):
        fired = 0
        while self._heap and self._heap[0][0] <= self.now:
            _when, _seq, timer = heapq.heappop(self._heap)
            if timer.cancelled:
                continue
            timer.fn(*timer.args)
            fired += 1
        return fired


class SocketTransport(Transport):
    """One non-blocking TCP socket driven by the selector loop."""

    #: engine-visible send buffer bound (send_space = cap - queued)
    SEND_BUFFER_CAP = 1 << 20
    _RECV_CHUNK = 1 << 16

    def __init__(self, driver, sock, remote, connecting=False):
        self.driver = driver
        self.sock = sock
        self.remote = remote
        self.local = _endpoint_from_sockname(sock.getsockname(),
                                             sock.family)
        self._outbuf = bytearray()
        self._recv_buffer = bytearray()
        self._connecting = connecting
        self._open = True
        self._close_pending = False
        self._paused = False
        self.user_timeout = None
        self.on_established = None
        self.on_data = None
        self.on_close = None
        self.on_reset = None
        self.on_user_timeout = None
        self.on_send_space = None
        sock.setblocking(False)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        driver._register(self)

    # -- data path ------------------------------------------------------

    def send(self, data):
        if not self._open:
            raise DriverError("send on closed transport %r" % (self,))
        data = bytes(data)
        self._outbuf += data
        self._flush()
        self.driver._update_interest(self)
        return len(data)

    def recv(self, n=None):
        if n is None or n >= len(self._recv_buffer):
            data = bytes(self._recv_buffer)
            self._recv_buffer.clear()
            return data
        data = bytes(self._recv_buffer[:n])
        del self._recv_buffer[:n]
        return data

    def send_space(self):
        if not self._open:
            return 0
        return max(self.SEND_BUFFER_CAP - len(self._outbuf), 0)

    def unsent_bytes(self):
        return len(self._outbuf)

    def fileno(self):
        """Kernel fd (the multi-session connection-table key)."""
        try:
            return self.sock.fileno()
        except (OSError, AttributeError):
            return -1

    def pause_reading(self):
        """Backpressure: drop read interest so the kernel's receive
        buffer fills and TCP's window closes toward the peer."""
        if not self._paused:
            self._paused = True
            if self._open:
                self.driver._update_interest(self)

    def resume_reading(self):
        """Re-arm read interest after the session drained its buffers."""
        if self._paused:
            self._paused = False
            if self._open:
                self.driver._update_interest(self)

    # -- lifecycle ------------------------------------------------------

    def is_open(self):
        return self._open

    def close(self):
        if not self._open:
            return
        if self._outbuf:
            self._close_pending = True
            return
        self._teardown(graceful=True)

    def abort(self):
        if not self._open and self.sock is None:
            return
        try:
            self.sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER,
                struct.pack("ii", 1, 0),
            )
        except OSError:
            pass
        self._teardown(graceful=False)

    def _teardown(self, graceful):
        self._open = False
        self.driver._unregister(self)
        try:
            if graceful:
                try:
                    self.sock.shutdown(socket.SHUT_WR)
                except OSError:
                    pass
            self.sock.close()
        except OSError:
            pass

    def set_callbacks(self, on_data=None, on_close=None, on_reset=None,
                      on_user_timeout=None, on_send_space=None,
                      on_established=None):
        if on_data is not None:
            self.on_data = on_data
        if on_close is not None:
            self.on_close = on_close
        if on_reset is not None:
            self.on_reset = on_reset
        if on_user_timeout is not None:
            self.on_user_timeout = on_user_timeout
        if on_send_space is not None:
            self.on_send_space = on_send_space
        if on_established is not None:
            self.on_established = on_established

    # -- kernel services ------------------------------------------------

    def set_user_timeout(self, seconds):
        self.user_timeout = seconds
        try:
            self.sock.setsockopt(socket.IPPROTO_TCP, _TCP_USER_TIMEOUT,
                                 int(seconds * 1000))
        except OSError:
            pass

    def congestion_window(self):
        info = self.tcp_info()
        return info.get("cwnd_bytes") or self.SEND_BUFFER_CAP

    def bytes_in_flight(self):
        return self.tcp_info().get("bytes_in_flight") or 0

    def tcp_info(self):
        info = {
            "state": "ESTABLISHED" if self._open else "CLOSED",
            "mss": 1460, "srtt": None, "rttvar": None, "min_rtt": None,
            "rto": 1.0, "bytes_in_flight": 0, "peer_window": 65535,
            "bytes_sent": 0, "bytes_acked": 0, "bytes_received": 0,
            "segments_sent": 0, "segments_received": 0,
            "retransmissions": 0,
            "cwnd_bytes": self.SEND_BUFFER_CAP, "ssthresh_bytes": None,
        }
        if not self._open:
            return info
        try:
            raw = self.sock.getsockopt(socket.IPPROTO_TCP, socket.TCP_INFO,
                                       256)
        except (OSError, AttributeError):
            return info
        if len(raw) < _TCP_INFO_SIZE:
            return info
        fields = struct.unpack_from(_TCP_INFO_FMT, raw)
        (rto, _ato, snd_mss, _rcv_mss, unacked, _sacked, _lost, _retrans,
         _fackets, _lds, _las, _ldr, _lar, _pmtu, _rcv_ssthresh, rtt,
         rttvar, snd_ssthresh, snd_cwnd, _advmss, _reordering, _rcv_rtt,
         _rcv_space, total_retrans) = fields[8:32]
        _pacing, _max_pacing, bytes_acked, bytes_received = fields[32:36]
        segs_out, segs_in = fields[36:38]
        mss = snd_mss or 1460
        info.update({
            "mss": mss,
            "srtt": rtt / 1e6 if rtt else None,
            "rttvar": rttvar / 1e6 if rttvar else None,
            "rto": rto / 1e6 if rto else 1.0,
            "bytes_in_flight": unacked * mss,
            "bytes_acked": bytes_acked,
            "bytes_received": bytes_received,
            "segments_sent": segs_out,
            "segments_received": segs_in,
            "retransmissions": total_retrans,
            "cwnd_bytes": snd_cwnd * mss,
            "ssthresh_bytes": (None if snd_ssthresh >= 0x7FFFFFFF
                               else snd_ssthresh * mss),
        })
        return info

    # -- selector plumbing ----------------------------------------------

    def _wants_write(self):
        return self._open and (self._connecting or bool(self._outbuf)
                               or self._close_pending)

    def _flush(self):
        while self._outbuf and self._open and not self._connecting:
            try:
                sent = self.sock.send(bytes(self._outbuf[:self._RECV_CHUNK]))
            except BlockingIOError:
                return
            except OSError as exc:
                self._fail(exc)
                return
            if sent <= 0:
                return
            del self._outbuf[:sent]
        if not self._outbuf and self._close_pending:
            self._close_pending = False
            self._teardown(graceful=True)

    def _fail(self, exc):
        if not self._open:
            return
        self._teardown(graceful=False)
        if exc.errno in (errno.ETIMEDOUT,) and \
                self.on_user_timeout is not None:
            self.on_user_timeout(self)
        elif self.on_reset is not None:
            self.on_reset(self)

    def _handle_events(self, mask):
        if mask & selectors.EVENT_WRITE:
            if self._connecting:
                err = self.sock.getsockopt(socket.SOL_SOCKET,
                                           socket.SO_ERROR)
                if err:
                    self._fail(OSError(err, "connect failed"))
                    return
                self._connecting = False
                self.local = _endpoint_from_sockname(
                    self.sock.getsockname(), self.sock.family)
                if self.on_established is not None:
                    self.on_established(self)
                if not self._open:
                    return
            had_backlog = bool(self._outbuf)
            self._flush()
            if not self._open:
                return
            if had_backlog and not self._outbuf and \
                    self.on_send_space is not None:
                self.on_send_space(self)
            if not self._open:
                return
        if mask & selectors.EVENT_READ and not self._paused:
            self._handle_read()
        if self._open:
            self.driver._update_interest(self)

    def _handle_read(self):
        got_data = False
        while self._open:
            try:
                chunk = self.sock.recv(self._RECV_CHUNK)
            except BlockingIOError:
                break
            except OSError as exc:
                self._fail(exc)
                return
            if chunk == b"":
                if got_data and self.on_data is not None:
                    self.on_data(self)
                self._open = False
                self.driver._unregister(self)
                try:
                    self.sock.close()
                except OSError:
                    pass
                if self.on_close is not None:
                    self.on_close(self)
                return
            self._recv_buffer += chunk
            got_data = True
        if got_data and self.on_data is not None:
            self.on_data(self)

    def __repr__(self):
        return "SocketTransport(%s->%s)" % (self.local, self.remote)


class _SocketListener:
    """A listening socket; accepts become :class:`SocketTransport`."""

    def __init__(self, driver, sock, on_accept):
        self.driver = driver
        self.sock = sock
        self.on_accept = on_accept
        self.port = sock.getsockname()[1]
        self.accepted = 0
        sock.setblocking(False)

    def _handle_events(self, mask):
        while True:
            try:
                client, addr = self.sock.accept()
            except BlockingIOError:
                return
            except OSError:
                return
            remote = _endpoint_from_sockname(addr, client.family)
            transport = SocketTransport(self.driver, client, remote)
            self.accepted += 1
            self.on_accept(transport)

    def close(self):
        self.driver._unregister_listener(self)
        try:
            self.sock.close()
        except OSError:
            pass


class SocketDriver(Driver):
    """Selector event loop binding engines to kernel TCP sockets."""

    def __init__(self, name="sockets", host="127.0.0.1", seed=None,
                 bus=None, reuse_port=False, backlog=128):
        self.name = name
        self.host = host
        self.clock = SocketClock()
        self.bus = bus if bus is not None else EventBus(self.clock)
        self.rng = random.Random(seed)
        self.tfo_enabled = False
        #: bind listeners with SO_REUSEPORT so several shard processes
        #: can share one port (the C1M listener-per-shard layout).
        self.reuse_port = reuse_port
        self.backlog = backlog
        self.selector = selectors.DefaultSelector()
        self.transports = []
        self.listeners = []

    # -- Driver interface -----------------------------------------------

    def connect(self, local_addr, remote, cc=None, tfo_data=b""):
        if cc is not None or tfo_data:
            raise DriverError(
                "SocketDriver does not support per-connection cc/TFO")
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setblocking(False)
        if local_addr is not None:
            bind_host = getattr(local_addr, "value", local_addr)
            sock.bind((str(bind_host), 0))
        try:
            sock.connect((str(getattr(remote.addr, "value", remote.addr)),
                          remote.port))
        except BlockingIOError:
            pass
        return SocketTransport(self, sock, remote, connecting=True)

    def listen(self, port, on_accept, cc=None):
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if self.reuse_port and hasattr(socket, "SO_REUSEPORT"):
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((self.host, port))
        sock.listen(self.backlog)
        listener = _SocketListener(self, sock, on_accept)
        self.listeners.append(listener)
        self.selector.register(sock, selectors.EVENT_READ, listener)
        return listener

    def endpoint(self, address, port):
        if isinstance(address, SocketAddress):
            return SocketEndpoint(address, port)
        return SocketEndpoint(SocketAddress(str(address)), port)

    def usable_local_addresses(self):
        return [SocketAddress(self.host)]

    # -- event loop -----------------------------------------------------

    def step(self, timeout=0.05):
        """One select + timer pass; returns number of I/O events."""
        wait = timeout
        deadline = self.clock.next_deadline()
        if deadline is not None:
            wait = min(wait, max(deadline - self.clock.now, 0.0))
        if self.selector.get_map():
            events = self.selector.select(wait)
        else:
            time.sleep(wait)
            events = []
        for key, mask in events:
            key.data._handle_events(mask)
        self.clock.fire_due()
        return len(events)

    def run_until(self, predicate, timeout=10.0):
        """Spin the loop until ``predicate()`` is true.

        Raises :class:`DriverError` on timeout so hangs surface as
        errors instead of silent stalls.
        """
        deadline = self.clock.now + timeout
        while not predicate():
            if self.clock.now >= deadline:
                raise DriverError(
                    "run_until timed out after %.1fs" % timeout)
            self.step()
        return True

    def run_for(self, duration):
        deadline = self.clock.now + duration
        while self.clock.now < deadline:
            self.step(timeout=min(0.05, deadline - self.clock.now))

    def close(self):
        """Tear down every transport and listener and the selector."""
        for transport in list(self.transports):
            transport.abort()
        for listener in list(self.listeners):
            listener.close()
        self.selector.close()

    # -- transport plumbing ---------------------------------------------

    def _register(self, transport):
        self.transports.append(transport)
        mask = selectors.EVENT_READ
        if transport._wants_write():
            mask |= selectors.EVENT_WRITE
        self.selector.register(transport.sock, mask, transport)

    def _update_interest(self, transport):
        if not transport._open:
            return
        mask = 0
        if not transport._paused:
            mask |= selectors.EVENT_READ
        if transport._wants_write():
            mask |= selectors.EVENT_WRITE
        if mask == 0:
            # Paused with nothing to write: deregister entirely (the
            # selector API has no zero-interest registration).
            try:
                self.selector.unregister(transport.sock)
            except (KeyError, ValueError, OSError):
                pass
            return
        try:
            self.selector.modify(transport.sock, mask, transport)
        except KeyError:
            try:
                self.selector.register(transport.sock, mask, transport)
            except (ValueError, OSError):
                pass

    def _unregister(self, transport):
        try:
            self.selector.unregister(transport.sock)
        except (KeyError, ValueError, OSError):
            pass
        if transport in self.transports:
            self.transports.remove(transport)

    def _unregister_listener(self, listener):
        try:
            self.selector.unregister(listener.sock)
        except (KeyError, ValueError, OSError):
            pass
        if listener in self.listeners:
            self.listeners.remove(listener)


__all__ = ["SocketClock", "SocketDriver", "SocketTransport"]
