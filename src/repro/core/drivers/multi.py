"""Multi-session serving: thousands of TCPLS sessions on one loop.

The paper evaluates one session at a time; a production server (the
ROADMAP's "millions of users") multiplexes many.  This module adds that
layer on top of the sans-I/O engine without touching the per-session
code:

- :class:`ConnectionTable` -- fd -> (session, transport) registry
  modeled on libconvert's ``_tcpls_lookup(sd)`` (SNIPPETS.md Secs. 2-3):
  every accepted transport gets an entry at accept time (state
  ``pending``), is re-pointed at its session when the handshake
  resolves it (a fresh session or an MPJOIN attach), and is dropped on
  teardown -- including transports that die *mid-handshake*, which the
  stock :class:`~repro.core.engine.server.TcplsServerEngine` never
  cleans up.
- :class:`CookieCache` -- O(1) join-credential -> session map with a
  per-session reverse index, so MPJOIN cookies/tokens resolve without
  scanning all sessions and a retired session's outstanding
  credentials are invalidated atomically (no resurrection by a late
  join racing the teardown).
- :class:`MemoryBudget` -- bounded per-session receive memory with
  hysteresis.  When a session's buffered bytes
  (:meth:`~repro.core.engine.session.TcplsEngine.buffered_rx_bytes`)
  exceed the budget, its transports stop being read: kernel sockets
  drop read interest (``pause_reading``), simulated connections simply
  stop being drained -- either way the receive window closes and the
  *peer* is throttled, while every other session keeps progressing.
  Reads resume once the application drains below the low watermark.
- :class:`ShardLayout` -- deterministic listener-per-shard port layout
  plus a stable key -> shard hash for worker-process sharding.

:class:`MultiSessionServer` composes these around a server engine on
any driver (simulator or kernel sockets).
"""

import zlib

from repro.core.engine.server import TcplsServerEngine
from repro.core.stream import conn_id_from_cookie
from repro.tls.extensions import decode_tcpls_join

#: default per-session receive-memory budget (bytes)
DEFAULT_BUDGET = 256 * 1024
#: resume reads when buffered bytes drain below this fraction of budget
DEFAULT_RESUME_FRACTION = 0.5

STATE_PENDING = "pending"     # accepted, handshake in flight
STATE_ATTACHED = "attached"   # wired to a session


class TableEntry:
    """One transport's slot in the connection table."""

    __slots__ = ("fd", "transport", "conn", "session", "state", "paused")

    def __init__(self, fd, transport):
        self.fd = fd
        self.transport = transport
        self.conn = None          # engine ConnectionState once known
        self.session = None       # session engine once attached
        self.state = STATE_PENDING
        self.paused = False

    def __repr__(self):
        return "TableEntry(fd=%d, %s)" % (self.fd, self.state)


class ConnectionTable:
    """fd -> (session, transport) registry (the ``_tcpls_lookup`` shape).

    Keys are kernel fds when the transport has a real ``fileno()``;
    simulated transports get synthetic negative fds so the same table
    serves both drivers.  ``by_session`` indexes a session's fds for
    O(degree) teardown and backpressure sweeps.
    """

    def __init__(self):
        self._entries = {}
        self.by_session = {}      # session obs_id -> set of fds
        self._synthetic_fd = 0
        # Lifetime counters (the mux gauges and tests read these).
        self.accepts = 0
        self.attaches = 0
        self.teardowns = 0
        self.peak = 0

    def __len__(self):
        return len(self._entries)

    def __contains__(self, fd):
        return fd in self._entries

    def _fd_for(self, transport):
        fileno = getattr(transport, "fileno", None)
        if fileno is not None:
            fd = fileno()
            if isinstance(fd, int) and fd >= 0:
                return fd
        self._synthetic_fd -= 1
        return self._synthetic_fd

    def add_pending(self, transport):
        """Register a just-accepted transport; returns its entry."""
        fd = getattr(transport, "_mux_fd", None)
        if fd is None:
            fd = self._fd_for(transport)
            transport._mux_fd = fd
        if fd in self._entries:
            # Kernel fd reuse: the previous owner died without a
            # callback (abort); its slot is stale by definition.
            self.remove(fd)
        entry = TableEntry(fd, transport)
        self._entries[fd] = entry
        self.accepts += 1
        self.peak = max(self.peak, len(self._entries))
        return entry

    def attach(self, fd, session, conn):
        """Handshake resolved the transport to a session (new session's
        primary, or an MPJOIN attach to an existing one)."""
        entry = self._entries.get(fd)
        if entry is None:
            # Teardown raced the handshake completion; nothing to wire.
            return None
        entry.session = session
        entry.conn = conn
        entry.state = STATE_ATTACHED
        self.by_session.setdefault(session.obs_id, set()).add(fd)
        self.attaches += 1
        return entry

    def lookup(self, fd):
        """The ``_tcpls_lookup(sd)`` operation."""
        return self._entries.get(fd)

    def remove(self, fd):
        """Drop one transport's entry (close, reset, retire)."""
        entry = self._entries.pop(fd, None)
        if entry is None:
            return None
        if entry.session is not None:
            fds = self.by_session.get(entry.session.obs_id)
            if fds is not None:
                fds.discard(fd)
                if not fds:
                    del self.by_session[entry.session.obs_id]
        self.teardowns += 1
        return entry

    def entries_for(self, session):
        """All live entries attached to ``session``."""
        fds = self.by_session.get(session.obs_id, ())
        return [self._entries[fd] for fd in sorted(fds)
                if fd in self._entries]

    def sessions(self):
        """Distinct sessions currently holding table entries."""
        seen = {}
        for entry in self._entries.values():
            if entry.session is not None:
                seen[entry.session.obs_id] = entry.session
        return list(seen.values())


class CookieCache:
    """O(1) join-credential -> session map with per-session reverse
    index, so MPJOIN and token joins never scan the session table and
    a retiring session invalidates all its outstanding credentials."""

    def __init__(self):
        self._by_credential = {}
        self._by_session = {}     # session obs_id -> set of credentials

    def __len__(self):
        return len(self._by_credential)

    def register(self, session, credential):
        previous = self._by_credential.get(credential)
        if previous is not None and previous is not session:
            # Credential reissued to another session: drop the stale
            # reverse-index entry or it would outlive its owner.
            creds = self._by_session.get(previous.obs_id)
            if creds is not None:
                creds.discard(credential)
                if not creds:
                    del self._by_session[previous.obs_id]
        self._by_credential[credential] = session
        self._by_session.setdefault(session.obs_id, set()).add(credential)

    def pop(self, credential):
        """Resolve and consume one credential (single use)."""
        session = self._by_credential.pop(credential, None)
        if session is not None:
            creds = self._by_session.get(session.obs_id)
            if creds is not None:
                creds.discard(credential)
                if not creds:
                    del self._by_session[session.obs_id]
        return session

    def invalidate_session(self, session):
        """Atomically revoke every outstanding credential of a retiring
        session; returns how many were revoked."""
        creds = self._by_session.pop(session.obs_id, None)
        if not creds:
            return 0
        for credential in creds:
            self._by_credential.pop(credential, None)
        return len(creds)


class MemoryBudget:
    """Per-session receive-memory bound with pause/resume hysteresis."""

    def __init__(self, limit=DEFAULT_BUDGET,
                 resume_fraction=DEFAULT_RESUME_FRACTION):
        self.limit = limit
        self.low_watermark = int(limit * resume_fraction)

    def over(self, session):
        return session.buffered_rx_bytes() >= self.limit

    def drained(self, session):
        return session.buffered_rx_bytes() <= self.low_watermark


class ShardLayout:
    """Deterministic listener-per-shard layout for worker processes.

    Shard ``i`` listens on ``base_port + i`` (distinct ports keep the
    layout valid on drivers without ``SO_REUSEPORT``; kernel-socket
    shards sharing one port set ``SocketDriver(reuse_port=True)`` and
    use ``base_port`` for every shard).  ``shard_for_key`` hashes any
    byte/str key (e.g. a client id) to its home shard with crc32 --
    stable across processes and runs, unlike ``hash()``.
    """

    def __init__(self, n_shards, base_port=4443):
        if n_shards < 1:
            raise ValueError("need at least one shard")
        self.n_shards = n_shards
        self.base_port = base_port

    def port_for(self, shard):
        if not 0 <= shard < self.n_shards:
            raise ValueError("shard %d outside layout of %d"
                             % (shard, self.n_shards))
        return self.base_port + shard

    def ports(self):
        return [self.base_port + i for i in range(self.n_shards)]

    def shard_for_key(self, key):
        if isinstance(key, str):
            key = key.encode()
        elif isinstance(key, int):
            key = key.to_bytes(8, "big", signed=True)
        return zlib.crc32(key) % self.n_shards


class _MuxServerEngine(TcplsServerEngine):
    """Server engine whose join credentials live in the mux's
    :class:`CookieCache` (O(1) resolution + teardown invalidation)."""

    def __init__(self, mux, driver, port, psk, **kwargs):
        self._mux = mux
        super().__init__(driver, port, psk, **kwargs)

    # -- credential minting: mirror into the cache ----------------------

    def _mint_cookies(self, session, count):
        cookies = super()._mint_cookies(session, count)
        for cookie in cookies:
            self._mux.cache.register(session, cookie)
        return cookies

    def _mint_tokens(self, session, count):
        tokens = super()._mint_tokens(session, count)
        for token in tokens:
            self._mux.cache.register(session, token)
        return tokens

    # -- join answering: resolve through the cache ----------------------

    def _answer_join(self, join_ext, pending):
        from repro.tls.endpoint import TlsError

        session_id, cookie = decode_tcpls_join(join_ext.data)
        session = self._mux.cache.pop(cookie)
        if session is None or session.session_id != session_id \
                or session_id not in self.sessions:
            raise TlsError("TCPLS join: unknown session or stale cookie")
        session.issued_cookies.discard(cookie)
        pending["session"] = session
        pending["is_join"] = True
        pending["conn_id"] = conn_id_from_cookie(cookie)
        from repro.tls.extensions import EXT_TCPLS_HELLO, Extension

        return [Extension(EXT_TCPLS_HELLO, b"")]

    def _answer_token_join(self, token_ext, pending):
        from repro.tls.endpoint import TlsError

        token = token_ext.data
        session = self._mux.cache.pop(token)
        self._tokens.pop(token, None)
        if session is None or session.session_id not in self.sessions:
            raise TlsError("TCPLS join: unknown, reused or stale token")
        pending["session"] = session
        pending["is_join"] = True
        pending["conn_id"] = conn_id_from_cookie(token)
        from repro.tls.extensions import EXT_TCPLS_HELLO, Extension

        return [Extension(EXT_TCPLS_HELLO, b"")]

    # -- lifecycle hooks into the mux -----------------------------------

    def _on_accept(self, tcp):
        self._mux._track_accept(tcp)
        super()._on_accept(tcp)

    def _feed(self, conn, pending):
        super()._feed(conn, pending)
        # A bad ClientHello (stale cookie, reused token, TLS garbage)
        # makes the engine abort the transport -- which fires no
        # callback, so sweep the table entry here or it leaks.
        if not conn.tcp.is_open():
            self._mux._transport_aborted(conn.tcp)

    def _on_handshake_complete(self, conn, pending):
        super()._on_handshake_complete(conn, pending)
        self._mux._track_attach(conn)


class MultiSessionServer:
    """One event loop, thousands of TCPLS sessions.

    Wraps a :class:`~repro.core.engine.server.TcplsServerEngine` on any
    driver with the connection table, the credential cache and
    per-session memory budgets.  The per-session engine code is
    untouched; the mux only re-points transport callbacks after the
    engine wires them, which is exactly where libconvert interposes
    its ``_tcpls_lookup`` registry between the kernel and picotcpls.
    """

    def __init__(self, driver, port, psk, budget_bytes=DEFAULT_BUDGET,
                 resume_fraction=DEFAULT_RESUME_FRACTION,
                 release_handshakes=True, auto_retire=False,
                 **server_kwargs):
        self.driver = driver
        self.table = ConnectionTable()
        self.cache = CookieCache()
        self.budget = MemoryBudget(budget_bytes, resume_fraction)
        #: drop each connection's TLS handshake machine after attach
        #: (tens of KB per connection at C1M scale)
        self.release_handshakes = release_handshakes
        #: retire a session automatically once its last transport is
        #: gone (herd-scale churn would otherwise leak session state)
        self.auto_retire = auto_retire
        #: sessions retired (torn down) over the server's lifetime
        self.retired = 0
        #: lifetime backpressure pause / resume counts
        self.pauses = 0
        self.resumes = 0
        #: application callback: one new ready session
        self.on_session = None
        self.engine = _MuxServerEngine(self, driver, port, psk,
                                       **server_kwargs)
        self.engine.on_session = self._on_session_ready
        self.port = self.engine.port

    # -- observability ---------------------------------------------------

    def _emit(self, name, data=None):
        bus = self.driver.bus
        if not bus.wants("mux"):
            return
        payload = {"table": len(self.table),
                   "sessions": len(self.engine.sessions)}
        if data:
            payload.update(data)
        bus.emit("mux", name, payload)

    # -- public surface --------------------------------------------------

    @property
    def sessions(self):
        """Live sessions by session id (the engine's dict)."""
        return self.engine.sessions

    def session_count(self):
        return len(self.engine.sessions)

    def lookup(self, fd):
        """``_tcpls_lookup(sd)``: the table entry for a transport fd."""
        return self.table.lookup(fd)

    def retire_session(self, session):
        """Tear one session down completely: close its transports,
        drop its table entries, revoke its outstanding join
        credentials, and forget it -- a later MPJOIN with one of its
        cookies/tokens must fail, not resurrect it."""
        revoked = self.cache.invalidate_session(session)
        for entry in self.table.entries_for(session):
            self.table.remove(entry.fd)
        session.close()
        self.engine.sessions.pop(session.session_id, None)
        self.retired += 1
        self._emit("session_retired", {
            "session": session.obs_id, "revoked_credentials": revoked,
        })

    def close(self):
        """Retire every session and stop listening."""
        for session in list(self.engine.sessions.values()):
            self.retire_session(session)
        for entry in list(self.table._entries.values()):
            if entry.transport.is_open():
                entry.transport.abort()
            self.table.remove(entry.fd)
        self.engine.listener.close()
        self._emit("server_closed", {})

    # -- accept / attach / teardown tracking -----------------------------

    def _track_accept(self, tcp):
        entry = self.table.add_pending(tcp)
        # The stock engine leaves pre-handshake transports without
        # close/reset callbacks; a client that gives up mid-handshake
        # would leak its table entry forever.
        tcp.set_callbacks(
            on_close=lambda _c: self._pending_gone(entry),
            on_reset=lambda _c: self._pending_gone(entry),
        )
        self._emit("accept", {"fd": entry.fd})

    def _pending_gone(self, entry):
        if entry.state == STATE_PENDING:
            self.table.remove(entry.fd)
            self._emit("pending_teardown", {"fd": entry.fd})

    def _transport_aborted(self, tcp):
        fd = getattr(tcp, "_mux_fd", None)
        if fd is None:
            return
        entry = self.table.lookup(fd)
        if entry is not None and entry.transport is tcp:
            self.table.remove(fd)
            self._emit("pending_teardown", {"fd": fd, "reason": "abort"})

    def _on_session_ready(self, session):
        session.on_drain = self._on_session_drain
        session.on_conn_failed = self._conn_failed_hook
        if self.on_session is not None:
            self.on_session(session)

    def _conn_failed_hook(self, conn, reason):
        # A failover sync aborts the dead connection's transport
        # without any transport callback; sweep its table entry here.
        fd = getattr(conn.tcp, "_mux_fd", None)
        if fd is None:
            return
        entry = self.table.lookup(fd)
        if entry is not None and entry.conn is conn:
            self._attached_gone(entry, "failed:%s" % reason)

    def _track_attach(self, conn):
        session = conn.session
        if session is None or conn.failed:
            return
        fd = getattr(conn.tcp, "_mux_fd", None)
        if fd is None:
            # Transport never went through _track_accept (engine built
            # directly); register it now so lookups still work.
            entry = self.table.add_pending(conn.tcp)
            fd = entry.fd
        entry = self.table.attach(fd, session, conn)
        if entry is None:
            return
        # Joined connections attach to sessions created before the
        # join; make sure the mux hooks exist either way.
        if session.on_drain is None:
            session.on_drain = self._on_session_drain
        if session.on_conn_failed is None:
            session.on_conn_failed = self._conn_failed_hook
        self._wrap_transport(entry)
        if self.release_handshakes:
            # Deferred one tick: the handshake often completes inside
            # tls.feed(), whose caller still touches conn.tls after.
            self.driver.clock.call_later(0.0, conn.release_handshake)
        self._emit("attach", {
            "fd": fd, "session": session.obs_id, "conn": conn.conn_id,
            "join": conn.index > 0,
        })

    def _wrap_transport(self, entry):
        """Interpose budget + table bookkeeping between the transport
        callbacks the engine just wired and the session, mirroring how
        libconvert slots its registry between kernel and picotcpls."""
        conn, session, tcp = entry.conn, entry.session, entry.transport
        session_on_data = tcp.on_data
        session_on_close = tcp.on_close
        session_on_reset = tcp.on_reset

        def on_data(_c):
            if entry.paused:
                return
            if self.budget.over(session):
                self._pause_entry(entry)
                return
            session_on_data(_c)
            if self.budget.over(session):
                self._pause_entry(entry)

        def on_close(_c):
            if session_on_close is not None:
                session_on_close(_c)
            self._attached_gone(entry, "close")

        def on_reset(_c):
            if session_on_reset is not None:
                session_on_reset(_c)
            self._attached_gone(entry, "reset")

        tcp.set_callbacks(on_data=on_data, on_close=on_close,
                          on_reset=on_reset)

    def _attached_gone(self, entry, reason):
        if self.table.lookup(entry.fd) is entry:
            self.table.remove(entry.fd)
            self._emit("teardown", {"fd": entry.fd, "reason": reason})
            if self.auto_retire and entry.session is not None \
                    and entry.session.obs_id not in self.table.by_session:
                # Last transport of the session just went away.  Retire
                # on the next tick: we are deep inside the transport's
                # close/reset delivery path, and a join racing this
                # teardown may still attach before the tick fires (the
                # re-check below keeps that session alive).
                self.driver.clock.call_later(
                    0.0, self._auto_retire_check, entry.session)

    def _auto_retire_check(self, session):
        if session.session_id not in self.engine.sessions:
            return
        if session.obs_id in self.table.by_session:
            return
        self.retire_session(session)

    # -- backpressure -----------------------------------------------------

    def _pause_entry(self, entry):
        if entry.paused:
            return
        entry.paused = True
        self.pauses += 1
        pause = getattr(entry.transport, "pause_reading", None)
        if pause is not None:
            pause()
        # Without pause_reading (simulator transports) the pause is
        # purely "stop draining": bytes pile up in the transport's
        # receive buffer, its advertised window closes, and TCP
        # throttles the peer -- the same mechanism a kernel socket
        # gets from dropping read interest.
        self._emit("pause", {
            "fd": entry.fd, "session": entry.session.obs_id,
            "buffered": entry.session.buffered_rx_bytes(),
        })

    def _on_session_drain(self, session):
        if not self.budget.drained(session):
            return
        for entry in self.table.entries_for(session):
            if entry.paused:
                self._resume_entry(entry)

    def _resume_entry(self, entry):
        entry.paused = False
        self.resumes += 1
        resume = getattr(entry.transport, "resume_reading", None)
        if resume is not None:
            resume()
        self._emit("resume", {
            "fd": entry.fd, "session": entry.session.obs_id,
        })
        # Process bytes that arrived while paused.  Deferred to the
        # next clock tick: drain notifications fire from inside
        # recv(), often deep inside this very session's delivery path.
        self.driver.clock.call_later(0.0, self._drain_backlog, entry)

    def _drain_backlog(self, entry):
        if entry.paused or entry.conn is None:
            return
        if self.table.lookup(entry.fd) is not entry:
            return
        if entry.transport.is_open() or self._transport_has_bytes(
                entry.transport):
            # Through the wrapped on_data, so the backlog read is
            # budget-checked and re-pauses if it overshoots again.
            on_data = entry.transport.on_data
            if on_data is not None:
                on_data(entry.transport)

    @staticmethod
    def _transport_has_bytes(transport):
        readable = getattr(transport, "readable_bytes", None)
        if readable is not None:
            return readable() > 0
        buffered = getattr(transport, "_recv_buffer", None)
        if buffered is not None:
            return bool(buffered)
        return False

    def paused_fds(self):
        """fds currently under backpressure (tests / gauges)."""
        return sorted(
            entry.fd for entry in self.table._entries.values()
            if entry.paused
        )


__all__ = [
    "ConnectionTable",
    "CookieCache",
    "MemoryBudget",
    "MultiSessionServer",
    "ShardLayout",
    "TableEntry",
]
