"""Drivers binding the sans-I/O TCPLS engine to an environment.

- :class:`~repro.core.drivers.sim.SimDriver`: the discrete-event
  simulator (:mod:`repro.net` + :mod:`repro.tcp`), used by the paper's
  reproduced experiments;
- :class:`~repro.core.drivers.sockets.SocketDriver`: real kernel TCP
  sockets via :mod:`selectors`, so the same engine runs over OS
  loopback or a testbed.
"""

from repro.core.drivers.multi import (
    ConnectionTable,
    CookieCache,
    MemoryBudget,
    MultiSessionServer,
    ShardLayout,
)
from repro.core.drivers.sim import SimClock, SimDriver
from repro.core.drivers.sockets import (
    SocketClock,
    SocketDriver,
    SocketTransport,
)

__all__ = [
    "ConnectionTable",
    "CookieCache",
    "MemoryBudget",
    "MultiSessionServer",
    "ShardLayout",
    "SimClock",
    "SimDriver",
    "SocketClock",
    "SocketDriver",
    "SocketTransport",
]
