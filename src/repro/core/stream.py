"""TCPLS streams and coupled-stream groups.

A :class:`TcplsStream` is one encrypted byte sequence attached to one
TCP connection at a time, with its own cryptographic context (Fig. 2
IV) and record sequence space in each direction.  A
:class:`CoupledGroup` aggregates one stream per TCP connection to carry
a single application object across paths (Sec. 3.3.3): each record
carries an explicit group sequence number in its control tail and the
receiver reorders with a heap.
"""

from repro.core.crypto_context import StreamCryptoContext
from repro.core.errors import StreamClosedError
from repro.core.record import (
    FLAG_COUPLED,
    encode_stream_control,
)
from repro.core.reorder import ReorderBuffer
from repro.tcp.ranges import RangeSet

#: per-connection implicit control stream ids (the primary connection
#: uses stream 0, which is exactly the TLS application-data context).
CONTROL_STREAM_BASE = 0xFFFF0000


def control_stream_id(conn_id):
    """Control stream for a connection's wire identity.

    The primary connection has id 0; joined connections derive theirs
    from the join cookie (both endpoints know it), so the two sides
    always agree regardless of how many join *attempts* failed.
    """
    return 0 if conn_id == 0 else CONTROL_STREAM_BASE + (conn_id & 0xFFFF)


def conn_id_from_cookie(cookie):
    """Map a join cookie to a nonzero 16-bit connection identity."""
    value = int.from_bytes(cookie[:2], "big")
    return (value % 0xFFFE) + 1


class TcplsStream:
    """One TCPLS stream endpoint (both directions)."""

    def __init__(self, session, stream_id, connection, cipher_send,
                 cipher_recv, send_iv, recv_iv, coupled_group=None):
        self.session = session
        self.stream_id = stream_id
        self.connection = connection
        self.coupled_group = coupled_group
        self.ctx_send = StreamCryptoContext(cipher_send, send_iv, stream_id)
        self.ctx_recv = StreamCryptoContext(cipher_recv, recv_iv, stream_id)
        # Send side.
        self.pending = bytearray()       # app bytes not yet sealed
        self.unacked = []                # [(record_seq, wire_bytes)]
        self.fin_pending = False
        self.fin_sent = False
        #: bytes of this stream are being served by the fluid
        #: fast-forward engine (set on both endpoints' views)
        self.fluid_active = False
        # Receive side.
        self.recv_decrypted = RangeSet()
        self.recv_reorder = ReorderBuffer()
        self.recv_buffer = bytearray()
        self.records_delivered = 0
        self.last_delivery = float("-inf")
        self.records_since_ack = 0
        self.bytes_since_ack = 0
        self.fin_received = False
        self.closed = False

    # -- application send API -------------------------------------------

    def send(self, data):
        """Queue application bytes (sealed lazily at transmit time so
        steering can redirect not-yet-sent data)."""
        if self.closed or self.fin_pending:
            raise StreamClosedError(
                "send on closed stream %d" % self.stream_id)
        self.pending += data
        self.session._pump()
        return len(data)

    def close(self):
        """Half-close: a FIN flag rides the last record."""
        if not self.fin_pending:
            self.fin_pending = True
            self.session._pump()

    def recv(self, n=None):
        """Read delivered bytes."""
        if n is None or n >= len(self.recv_buffer):
            data = bytes(self.recv_buffer)
            self.recv_buffer.clear()
        else:
            data = bytes(self.recv_buffer[:n])
            del self.recv_buffer[:n]
        if data:
            self.session._notify_drain()
        return data

    @property
    def queued_bytes(self):
        """Application bytes accepted but not yet sealed into records."""
        return len(self.pending)

    # -- receive-side demux helpers ----------------------------------------

    def trial_seqs(self, window):
        """Candidate record sequences for tag trial: the first ``window``
        not-yet-decrypted sequences starting at the lowest gap."""
        base = 0
        if self.recv_decrypted:
            first = self.recv_decrypted.first_range_at_or_above(0)
            if first is not None and first[0] == 0:
                base = first[1]
        gaps = self.recv_decrypted.complement_within(base, base + window)
        seqs = []
        for start, end in gaps:
            for seq in range(start, min(end, start + window)):
                seqs.append(seq)
                if len(seqs) >= window:
                    return seqs
        return seqs

    def primary_trial_seq(self):
        """The single most likely next sequence (fast path)."""
        seqs = self.trial_seqs(1)
        return seqs[0] if seqs else 0

    def mark_decrypted(self, seq):
        self.recv_decrypted.add(seq, seq + 1)

    def ack_state(self):
        """(stream_id, next contiguous decrypted record seq) for ACKs."""
        next_seq = 0
        if self.recv_decrypted:
            first = self.recv_decrypted.first_range_at_or_above(0)
            if first is not None and first[0] == 0:
                next_seq = first[1]
        return (self.stream_id, next_seq)

    def prune_unacked(self, next_seq):
        """Peer acknowledged everything below ``next_seq``."""
        self.unacked = [(s, rec) for s, rec in self.unacked if s >= next_seq]

    def __repr__(self):
        return "TcplsStream(%d on conn%s)" % (
            self.stream_id,
            self.connection.index if self.connection else "?",
        )


class CoupledGroup:
    """A set of coupled streams carrying one application object.

    The sender schedules sealed records across member streams (one per
    TCP connection); every record's control tail carries the group
    sequence number used by the receiver's reordering heap.
    """

    def __init__(self, session, group_id, scheduler):
        self.session = session
        self.group_id = group_id
        self.scheduler = scheduler
        self.streams = []
        self.pending = bytearray()
        self.next_group_seq = 0
        self.reorder = ReorderBuffer()
        self.recv_buffer = bytearray()
        self.bytes_delivered = 0
        self.fin_pending = False
        self.fin_sent = False
        self.fin_received = False
        self.fin_seq = None

    @property
    def complete(self):
        """All object bytes up to the sender's FIN have been delivered."""
        return (self.fin_received and self.fin_seq is not None
                and self.reorder.next_seq > self.fin_seq)

    def add_stream(self, stream):
        stream.coupled_group = self.group_id
        self.streams.append(stream)

    def remove_stream(self, stream):
        """Stop scheduling over this stream (e.g. migration away)."""
        if stream in self.streams:
            self.streams.remove(stream)
        stream.coupled_group = None

    def send(self, data):
        """Queue object bytes for scheduling across member streams."""
        if self.fin_pending:
            raise StreamClosedError(
                "send on finished group %d" % self.group_id)
        self.pending += data
        self.session._pump()
        return len(data)

    def close(self):
        if not self.fin_pending:
            self.fin_pending = True
            self.session._pump()

    def recv(self, n=None):
        if n is None or n >= len(self.recv_buffer):
            data = bytes(self.recv_buffer)
            self.recv_buffer.clear()
        else:
            data = bytes(self.recv_buffer[:n])
            del self.recv_buffer[:n]
        if data:
            self.session._notify_drain()
        return data

    def next_control(self, fin=False):
        """Allocate the control tail for the next scheduled record."""
        flags = FLAG_COUPLED
        if fin:
            from repro.core.record import FLAG_FIN

            flags |= FLAG_FIN
        control = encode_stream_control(flags, self.next_group_seq)
        self.next_group_seq += 1
        return control

    @property
    def queued_bytes(self):
        return len(self.pending)

    def __repr__(self):
        return "CoupledGroup(%d, %d streams)" % (
            self.group_id, len(self.streams)
        )
