"""TCPLS server endpoint (engine side).

A :class:`TcplsServerEngine` listens on one port and manages many TCPLS
sessions.  For each accepted transport it runs a TLS handshake; a
ClientHello carrying TCPLS Hello opens a new session (assigning the
SESSID, a batch of single-use cookies, and the server's address
advertisement in EncryptedExtensions), while a ClientHello carrying
TCPLS Join attaches the connection to the existing session named by its
SESSID -- after validating and consuming the cookie.  By issuing ``n``
cookies the server caps the client at ``n`` additional connections
(resource-exhaustion resistance, Sec. 3.3.2).
"""

import hashlib

from repro.core.engine.session import ConnectionState, TcplsEngine
from repro.core.stream import conn_id_from_cookie
from repro.tls.endpoint import TlsServer
from repro.tls.extensions import (
    EXT_COOKIE_TCPLS,
    EXT_TCPLS_ADDRESSES,
    EXT_TCPLS_HELLO,
    EXT_TCPLS_JOIN,
    EXT_TCPLS_SESSID,
    EXT_TCPLS_TOKEN,
    EXT_TCPLS_TOKENS,
    Extension,
    decode_tcpls_join,
    encode_address_list,
    encode_cookie_list,
)


class TcplsServerSessionEngine(TcplsEngine):
    """One server-side session (a client plus its joined connections)."""

    def __init__(self, server, session_id, **session_kwargs):
        super().__init__(server.driver, is_client=False, **session_kwargs)
        self.server = server
        self.session_id = session_id
        self.issued_cookies = set()


class TcplsServerEngine:
    """Listener managing TCPLS sessions on a port, over any driver."""

    #: session class instantiated per client (drivers' glue subclasses
    #: may override to keep their historical public type).
    session_cls = TcplsServerSessionEngine

    def __init__(self, driver, port, psk, cipher_names=("null-tag",),
                 cookie_batch=8, auto_replenish=True, enable_tcpls=True,
                 strict_extensions=False, advertise_addresses=True,
                 token_mode=False, cc=None, **session_kwargs):
        self.driver = driver
        self.clock = driver.clock
        self.psk = psk
        self.cipher_names = tuple(cipher_names)
        self.cookie_batch = cookie_batch
        #: refresh the client's cookie budget on each successful join
        #: (failed probes over dead paths burn cookies silently)
        self.auto_replenish = auto_replenish
        #: Sec. 3.4 unlinkable joins: hand out single-use tokens that
        #: identify both the session and the join right, instead of a
        #: session-long SESSID plus per-join cookies.
        self.token_mode = token_mode
        self._tokens = {}          # token -> session
        self.enable_tcpls = enable_tcpls
        self.strict_extensions = strict_extensions
        self.advertise_addresses = advertise_addresses
        self.session_kwargs = session_kwargs
        self.sessions = {}
        self._cookie_seq = 0
        #: monotonic session ordinal -- NOT ``len(self.sessions)``:
        #: once sessions are retired (repro.core.drivers.multi) the
        #: length repeats and a fresh id would collide with, and
        #: silently overwrite, a live session's dict slot.
        self._session_seq = 0
        #: called with each new server session so the application can
        #: attach stream/data callbacks before any record arrives.
        self.on_session = None
        self.listener = driver.listen(port, self._on_accept, cc=cc)
        #: actual bound port (drivers may assign one when ``port`` is 0)
        self.port = self.listener.port

    # ------------------------------------------------------------------

    def _new_session_id(self):
        material = b"%s:%d:%d" % (
            self.driver.name.encode(), self.port, self._session_seq
        )
        self._session_seq += 1
        return hashlib.sha256(material).digest()[:16]

    def _mint_cookies(self, session, count):
        cookies = []
        for _ in range(count):
            self._cookie_seq += 1
            cookie = hashlib.sha256(
                session.session_id + self._cookie_seq.to_bytes(8, "big")
                + self.psk
            ).digest()[:16]
            session.issued_cookies.add(cookie)
            cookies.append(cookie)
        return cookies

    def _mint_tokens(self, session, count):
        tokens = []
        for _ in range(count):
            self._cookie_seq += 1
            token = hashlib.sha256(
                b"token" + session.session_id
                + self._cookie_seq.to_bytes(8, "big") + self.psk
            ).digest()[:16]
            self._tokens[token] = session
            tokens.append(token)
        return tokens

    def issue_tokens(self, session, count):
        """Send a fresh batch of unlinkable join tokens in-band."""
        from repro.core import record as rec

        tokens = self._mint_tokens(session, count)
        primary = session._first_writable()
        if primary is not None:
            payload = bytes([rec.CTRL_NEW_TOKENS, len(tokens)]) + b"".join(
                tokens
            )
            session._send_control(primary, payload)
        return tokens

    def issue_cookies(self, session, count):
        """Send a fresh batch of join cookies over the secure channel
        (the server can extend the join budget at any time)."""
        from repro.core import record as rec

        cookies = self._mint_cookies(session, count)
        primary = session._first_writable()
        if primary is not None:
            payload = bytes([rec.CTRL_NEW_COOKIES, len(cookies)]) + b"".join(
                cookies
            )
            session._send_control(primary, payload)
        return cookies

    # ------------------------------------------------------------------

    def _on_accept(self, tcp):
        pending = {"session": None, "is_join": False, "conn_id": 0}

        def ee_fn(client_hello):
            return self._answer_client_hello(client_hello, pending)

        tls = TlsServer(
            self.psk, self.driver.rng, cipher_names=self.cipher_names,
            encrypted_extensions_fn=ee_fn,
            strict_extensions=self.strict_extensions,
        )
        # 0-RTT early data (Sec. 4.5): buffered until the session is up,
        # then delivered as stream-0 application data.
        early_chunks = []
        tls.on_application_data = (
            lambda _e, data: early_chunks.append(data))
        pending["early"] = early_chunks
        holder = {}

        def on_complete(_endpoint):
            self._on_handshake_complete(holder["conn"], pending)

        tls.on_handshake_complete = on_complete

        # The session is only known once the ClientHello is parsed, so
        # the ConnectionState is created lazily inside the data callback.
        conn = ConnectionState(None, 0, tcp, tls)
        holder["conn"] = conn

        def on_data(_c):
            session = pending["session"]
            if session is not None and conn.session is None:
                conn.session = session
            self._feed(conn, pending)

        tcp.set_callbacks(on_data=on_data)
        conn.session = None

    def _feed(self, conn, pending):
        session = pending["session"]
        if session is not None and getattr(conn, "_wired", False):
            session._on_tcp_data(conn)
            return
        data = conn.tcp.recv()
        if not data:
            return
        from repro.tls.endpoint import TlsError
        from repro.tls.record import TlsRecordError

        try:
            conn.tls.feed(data)
        except (TlsError, TlsRecordError):
            conn.tcp.abort()
            return
        out = conn.tls.data_to_send()
        if out:
            conn.tcp.send(out)

    def _answer_client_hello(self, client_hello, pending):
        token_ext = client_hello.find_extension(EXT_TCPLS_TOKEN)
        if token_ext is not None:
            return self._answer_token_join(token_ext, pending)
        join_ext = client_hello.find_extension(EXT_TCPLS_JOIN)
        if join_ext is not None:
            return self._answer_join(join_ext, pending)
        hello_ext = client_hello.find_extension(EXT_TCPLS_HELLO)
        if hello_ext is not None and self.enable_tcpls:
            return self._answer_hello(pending)
        return []

    def _answer_hello(self, pending):
        session_id = self._new_session_id()
        session = self.session_cls(self, session_id,
                                   **self.session_kwargs)
        self.sessions[session_id] = session
        pending["session"] = session
        extensions = [Extension(EXT_TCPLS_HELLO, b"")]
        if self.token_mode:
            tokens = self._mint_tokens(session, self.cookie_batch)
            extensions.append(Extension(EXT_TCPLS_TOKENS,
                                        encode_cookie_list(tokens)))
        else:
            cookies = self._mint_cookies(session, self.cookie_batch)
            extensions.append(Extension(EXT_TCPLS_SESSID, session_id))
            extensions.append(Extension(EXT_COOKIE_TCPLS,
                                        encode_cookie_list(cookies)))
        if self.advertise_addresses:
            extensions.append(Extension(
                EXT_TCPLS_ADDRESSES,
                encode_address_list(self.driver.advertised_addresses()),
            ))
        return extensions

    def _answer_token_join(self, token_ext, pending):
        from repro.tls.endpoint import TlsError

        token = token_ext.data
        session = self._tokens.pop(token, None)  # single use
        if session is None:
            raise TlsError("TCPLS join: unknown or reused token")
        pending["session"] = session
        pending["is_join"] = True
        pending["conn_id"] = conn_id_from_cookie(token)
        return [Extension(EXT_TCPLS_HELLO, b"")]

    def _answer_join(self, join_ext, pending):
        from repro.tls.endpoint import TlsError

        session_id, cookie = decode_tcpls_join(join_ext.data)
        session = self.sessions.get(session_id)
        if session is None:
            raise TlsError("TCPLS join: unknown session")
        if cookie not in session.issued_cookies:
            raise TlsError("TCPLS join: invalid or reused cookie")
        session.issued_cookies.discard(cookie)  # single use
        pending["session"] = session
        pending["is_join"] = True
        pending["conn_id"] = conn_id_from_cookie(cookie)
        return [Extension(EXT_TCPLS_HELLO, b"")]

    def _on_handshake_complete(self, conn, pending):
        session = pending["session"]
        conn.alive = True
        if session is None:
            # Plain TLS client: wrap it in a degraded session so the
            # application still gets stream-0 data callbacks.
            session = self.session_cls(self, b"\x00" * 16,
                                       **self.session_kwargs)
            session.tcpls_enabled = False
        conn.session = session
        conn.index = len(session.conns)
        conn.conn_id = pending.get("conn_id", 0)
        session.conns.append(conn)
        session._wire_tcp_callbacks(conn)
        conn._wired = True
        session._emit("session", "conn_established", {
            "conn": conn.conn_id, "index": conn.index,
            "local": str(conn.tcp.local), "remote": str(conn.tcp.remote),
        })
        if conn.index == 0:
            session._setup_keys(conn.tls.schedule, conn.tls.cipher_cls)
            session.tcpls_enabled = pending["session"] is not None
            session._install_control_stream(conn)
            session.ready = True
            session._emit("session", "ready",
                          {"tcpls": session.tcpls_enabled})
            if self.on_session is not None:
                self.on_session(session)
            if session.on_ready is not None:
                session.on_ready(session)
            early = pending.get("early") or []
            if early:
                stream0 = conn.control_stream
                for chunk in early:
                    stream0.recv_buffer += chunk
                if session.on_stream_data is not None:
                    session.on_stream_data(stream0)
        else:
            session._install_control_stream(conn)
            # Keep the client's join budget topped up: failed probes over
            # dead paths burn single-use cookies the server never sees
            # (Sec. 3.3.2 allows the server to send additional cookies
            # at any time), so each successful join refreshes a batch.
            if self.auto_replenish:
                if self.token_mode:
                    self.issue_tokens(session, self.cookie_batch)
                else:
                    self.issue_cookies(session, self.cookie_batch)
            session._emit("session", "join", {"conn": conn.conn_id,
                                              "index": conn.index})
            session._resolve_pending_failover(conn)
            if session.on_join is not None:
                session.on_join(conn)
        if session.on_conn_established is not None:
            session.on_conn_established(conn)
        out = conn.tls.data_to_send()
        if out:
            session._conn_write(conn, out)
        session._takeover_tls(conn)
        session._pump()


__all__ = ["TcplsServerEngine", "TcplsServerSessionEngine"]
