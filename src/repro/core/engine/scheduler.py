"""Record schedulers for coupled streams (compatibility re-export).

The schedulers were promoted into the first-class policy layer in
:mod:`repro.core.engine.policy`: a :class:`~repro.core.engine.policy.Policy`
now owns *both* sender-side decision points -- per-record stream
scheduling (``pick_stream``) and per-transfer connection placement
(``assign_transfer``, used by the web-workload layer in
:mod:`repro.workload`).  This module keeps the historical import path
alive; an application can still pass any object with a
``pick(streams) -> stream`` method as a scheduler.
"""

from repro.core.engine.policy import (  # noqa: F401
    LowestRttScheduler,
    Policy,
    PredictivePolicy,
    RecordContext,
    RedundantScheduler,
    RoundRobinScheduler,
    WeightedScheduler,
)

__all__ = [
    "LowestRttScheduler",
    "Policy",
    "PredictivePolicy",
    "RecordContext",
    "RedundantScheduler",
    "RoundRobinScheduler",
    "WeightedScheduler",
]
