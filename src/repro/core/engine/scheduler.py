"""Record schedulers for coupled streams.

The paper exposes the sender-side record scheduler to the application
(Sec. 3.3.3): TCPLS does not hide path choice behind a kernel policy
the way MPTCP does.  These classes are the ready-made policies; an
application can also pass any callable ``scheduler(streams) -> stream``.

The evaluation uses round-robin (Sec. 5.1: "sends the records over the
two TCP connections in a round-robin manner").

Schedulers see only the :class:`~repro.core.engine.interfaces.Transport`
surface of each stream's connection (``tcp_info``, ``bytes_in_flight``,
``congestion_window``), so the same policy runs under any driver.
"""


class RoundRobinScheduler:
    """Alternate over the coupled streams in order."""

    name = "round-robin"

    def __init__(self):
        self._index = 0

    def pick(self, streams):
        if not streams:
            raise ValueError("no streams to schedule")
        stream = streams[self._index % len(streams)]
        self._index += 1
        return stream


class LowestRttScheduler:
    """MPTCP's default policy: prefer the lowest-SRTT connection with
    congestion-window room; fall back to lowest SRTT."""

    name = "lowest-rtt"

    def pick(self, streams):
        if not streams:
            raise ValueError("no streams to schedule")

        def srtt(stream):
            info = stream.connection.tcp.tcp_info()
            return info["srtt"] if info["srtt"] is not None else float("inf")

        with_room = [
            s for s in streams
            if s.connection.tcp.bytes_in_flight()
            < s.connection.tcp.congestion_window()
        ]
        candidates = with_room or list(streams)
        return min(candidates, key=srtt)


class WeightedScheduler:
    """Deterministic weighted interleaving (weights per stream index)."""

    name = "weighted"

    def __init__(self, weights):
        if not weights or any(w <= 0 for w in weights):
            raise ValueError("weights must be positive")
        self.weights = list(weights)
        self._credit = list(weights)

    def pick(self, streams):
        if not streams:
            raise ValueError("no streams to schedule")
        for index, stream in enumerate(streams):
            weight_index = index % len(self._credit)
            if self._credit[weight_index] > 0:
                self._credit[weight_index] -= 1
                return stream
        self._credit = [
            self.weights[i % len(self.weights)]
            for i in range(len(self._credit))
        ]
        return self.pick(streams)


class RedundantScheduler:
    """Send every record on every stream (latency-critical traffic;
    the receiver's reorder buffer discards the duplicates)."""

    name = "redundant"

    def pick(self, streams):
        if not streams:
            raise ValueError("no streams to schedule")
        return list(streams)


__all__ = [
    "LowestRttScheduler",
    "RedundantScheduler",
    "RoundRobinScheduler",
    "WeightedScheduler",
]
