"""The engine/driver boundary: Transport, Clock and Driver contracts.

The TCPLS engine consumes a plain TCP bytestream plus ``tcp_info`` --
exactly the service model of the paper (Sec. 3).  These abstract
classes pin down everything the engine is allowed to ask of its
environment; a driver supplies concrete implementations.

Input events (driver -> engine)
-------------------------------

======================  ==============================================
engine entry point      meaning
======================  ==============================================
``bytes_received``      ordered bytes arrived on a connection
``conn_writable``       the connection drained; more may be written
``conn_failed``         the connection died (RST, timeout, error)
``conn_closed``         the peer closed cleanly (FIN)
``user_timeout_fired``  the armed user timeout elapsed
timer callbacks         scheduled via :meth:`Clock.call_later`
======================  ==============================================

Effects (engine -> driver)
--------------------------

======================  ==============================================
interface call          meaning
======================  ==============================================
``Transport.send``      write bytes on connection N
``Transport.close``     graceful close / ``abort`` hard reset
``Transport.set_user_timeout``  arm the TCP user timeout
``Clock.call_later``    arm a timer
``bus.emit``            publish an observability event
app callbacks           deliver application data / lifecycle events
======================  ==============================================
"""

import abc


class Transport(abc.ABC):
    """One ordered, reliable bytestream (a TCP connection).

    Beyond the abstract methods, a transport exposes:

    - ``local`` / ``remote``: endpoint objects with ``.addr`` (which
      has ``.family``) and ``.port``;
    - ``user_timeout``: the currently armed user timeout in seconds
      (or ``None``);
    - ``on_established``: settable callback attribute fired once the
      connection completes its open.
    """

    # -- data path ------------------------------------------------------

    @abc.abstractmethod
    def send(self, data):
        """Queue bytes for transmission (caller checked send_space)."""

    @abc.abstractmethod
    def recv(self, n=None):
        """Drain received bytes (empty bytes when nothing pending)."""

    @abc.abstractmethod
    def send_space(self):
        """Bytes the transport can accept right now without blocking."""

    @abc.abstractmethod
    def unsent_bytes(self):
        """Bytes accepted by :meth:`send` but not yet on the wire."""

    # -- lifecycle ------------------------------------------------------

    @abc.abstractmethod
    def is_open(self):
        """True while data can still be exchanged."""

    @abc.abstractmethod
    def close(self):
        """Graceful close (FIN after pending data)."""

    @abc.abstractmethod
    def abort(self):
        """Hard close (RST); pending data is discarded."""

    # -- callbacks ------------------------------------------------------

    @abc.abstractmethod
    def set_callbacks(self, on_data=None, on_close=None, on_reset=None,
                      on_user_timeout=None, on_send_space=None,
                      on_established=None):
        """Install event callbacks; ``None`` leaves a slot unchanged.
        Each callback is invoked with the transport as sole argument."""

    # -- introspection / services --------------------------------------

    @abc.abstractmethod
    def tcp_info(self):
        """``tcp_info``-style statistics dict (paper Sec. 3.3.3)."""

    def congestion_window(self):
        """Current congestion window in bytes (used to bound how much
        sealed data may sit in one connection's buffers)."""
        return 1 << 30

    def bytes_in_flight(self):
        """Sent-but-unacknowledged bytes (scheduler hint)."""
        return 0

    def set_user_timeout(self, seconds):
        """Arm the TCP user timeout (RFC 5482 semantics)."""
        self.user_timeout = seconds

    def attach_ebpf_congestion(self, bytecode, program_name="prog"):
        """Verify and attach a congestion-controller program; returns
        True on success.  Drivers without pluggable CC return False."""
        return False


class Clock(abc.ABC):
    """Time source and timer service.

    ``now`` is an attribute/property (seconds, float); drivers define
    the epoch (simulated time or monotonic real time).
    """

    now = 0.0

    #: event-loop heap compactions (perf observability; drivers without
    #: a compacting event loop report 0).
    compactions = 0

    @abc.abstractmethod
    def call_later(self, delay, fn, *args):
        """Run ``fn(*args)`` after ``delay`` seconds; returns a handle
        with a ``cancel()`` method."""


class Driver(abc.ABC):
    """Factory and event-loop facade binding engines to an environment.

    Attributes
    ----------
    clock:
        The driver's :class:`Clock`.
    bus:
        An observability :class:`~repro.obs.bus.EventBus`.
    rng:
        ``random.Random`` used for handshake randomness.
    name:
        Stable host name (feeds server session-id derivation).
    tfo_enabled:
        Whether TCP Fast Open is available on this driver.
    """

    clock = None
    bus = None
    rng = None
    name = "driver"
    tfo_enabled = False

    @abc.abstractmethod
    def connect(self, local_addr, remote, cc=None, tfo_data=b""):
        """Open a :class:`Transport` from ``local_addr`` to the
        ``remote`` endpoint."""

    @abc.abstractmethod
    def listen(self, port, on_accept, cc=None):
        """Accept inbound transports on ``port``; returns a listener
        object exposing ``.port``.  ``on_accept(transport)`` runs for
        each new connection."""

    @abc.abstractmethod
    def endpoint(self, address, port):
        """Build an endpoint object for ``address``/``port``."""

    def tfo_cookie_for(self, server_addr):
        """Cached TCP Fast Open cookie for ``server_addr`` (b"" when
        none / unsupported)."""
        return b""

    def usable_local_addresses(self):
        """Local addresses with an operational interface (join-path
        candidates for the client's failover probing)."""
        return []

    def advertised_addresses(self):
        """Addresses a server advertises to clients (Sec. 3.3.2)."""
        return []


__all__ = ["Clock", "Driver", "Transport"]
