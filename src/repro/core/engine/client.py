"""TCPLS client endpoint (engine side).

Opens the primary transport with a TLS handshake carrying the TCPLS
Hello extension, stores the server's SESSID / cookies / address
advertisement from EncryptedExtensions, and joins additional transports
using one single-use cookie each (Fig. 3 of the paper).

Fallback behaviour (Sec. 5.2): if the server's EncryptedExtensions omit
the TCPLS Hello (a TLS-terminating proxy or a plain TLS server), the
session continues as ordinary TLS on stream 0; if the handshake is
reset outright (legacy servers aborting on unknown extensions), the
client retries once without any TCPLS extension.
"""

from repro.core.engine.session import ConnectionState, TcplsEngine
from repro.core.errors import JoinError, SessionStateError
from repro.core.stream import conn_id_from_cookie
from repro.tls.endpoint import TlsClient
from repro.tls.extensions import (
    EXT_COOKIE_TCPLS,
    EXT_TCPLS_ADDRESSES,
    EXT_TCPLS_HELLO,
    EXT_TCPLS_JOIN,
    EXT_TCPLS_SESSID,
    EXT_TCPLS_TOKEN,
    EXT_TCPLS_TOKENS,
    Extension,
    decode_address_list,
    decode_cookie_list,
    encode_tcpls_join,
    find_extension,
)


class TcplsClientEngine(TcplsEngine):
    """Client-side TCPLS session over any driver."""

    def __init__(self, driver, psk, cipher_names=("null-tag",),
                 enable_tcpls=True, fallback_retry=True, join_timeout=1.0,
                 key_exchange="dhe", **session_kwargs):
        super().__init__(driver, is_client=True, **session_kwargs)
        self.psk = psk
        self.cipher_names = tuple(cipher_names)
        self.enable_tcpls = enable_tcpls
        self.fallback_retry = fallback_retry
        #: ``"dhe"`` (default) or ``"psk"`` (RFC 8446 psk_ke: skip the
        #: FFDHE exponentiations -- the cheap handshake mass-session
        #: load generators use; see repro.core.drivers.multi)
        self.key_exchange = key_exchange
        #: abandon a join attempt that has not completed in this long
        #: and rotate to another path (failover path probing)
        self.join_timeout = join_timeout
        self.fell_back = False
        self._primary_remote = None
        self._primary_local = None
        self._recently_failed_pairs = {}

    # ------------------------------------------------------------------
    # Connection establishment
    # ------------------------------------------------------------------

    def connect(self, local_addr, remote, cc=None, tfo=False,
                early_data=b""):
        """Open the primary connection; the TCPLS handshake rides the
        TLS handshake.  ``remote`` is an endpoint object.

        With ``tfo=True`` (and a cached Fast Open cookie from an
        earlier connection) the ClientHello -- and any ``early_data``,
        protected under the 0-RTT keys -- travels inside the TCP SYN,
        the paper's Sec. 4.5 low-latency establishment.  The first
        connection to a server runs a regular handshake and caches the
        cookie.
        """
        if self.conns:
            raise SessionStateError("primary connection already exists")
        self._primary_remote = remote
        self._primary_local = local_addr
        extra = [Extension(EXT_TCPLS_HELLO, b"")] if self.enable_tcpls else []
        return self._open(local_addr, remote, extra, index=0, cc=cc,
                          tfo=tfo, early_data=early_data)

    def join(self, local_addr, remote=None, cc=None):
        """Join one more TCP connection to the session using a stored
        single-use cookie (connection migration / multipath)."""
        self._require_ready()
        if not self.tcpls_enabled:
            raise JoinError("session fell back to plain TLS; cannot join")
        if not self.cookies and not self.tokens:
            raise JoinError("no join cookies left (server controls joins)")
        if remote is None:
            remote = self._pick_remote(local_addr)
        if self.tokens:
            # Sec. 3.4 unlinkable join: the single-use token stands in
            # for both the SESSID and the cookie, so nothing on the
            # wire repeats across the session's connections.
            credential = self.tokens.pop(0)
            join_ext = Extension(EXT_TCPLS_TOKEN, credential)
        else:
            credential = self.cookies.pop(0)
            join_ext = Extension(
                EXT_TCPLS_JOIN,
                encode_tcpls_join(self.session_id, credential),
            )
        conn = self._open(local_addr, remote, [join_ext],
                          index=len(self.conns), cc=cc,
                          conn_id=conn_id_from_cookie(credential))
        if self.join_timeout is not None:
            self.clock.call_later(self.join_timeout, self._check_join, conn)
        return conn

    def _check_join(self, conn):
        """Abandon a join that never completed (e.g. the chosen path is
        blackholed) so the failover engine can probe another path."""
        if conn.alive or conn.failed:
            return
        conn.tcp.abort()
        self._conn_failed(conn, "join-timeout")

    def _mark_pair_failed(self, conn):
        pair = (conn.tcp.local.addr, conn.tcp.remote.addr)
        self._recently_failed_pairs[pair] = self.clock.now

    def _pick_remote(self, local_addr):
        """Choose an advertised server address matching the local family."""
        family = local_addr.family if hasattr(local_addr, "family") else 4
        for address in self.peer_addresses:
            if address.family == family and \
                    address != self._primary_remote.addr:
                return self.driver.endpoint(address,
                                            self._primary_remote.port)
        for address in self.peer_addresses:
            if address != self._primary_remote.addr:
                return self.driver.endpoint(address,
                                            self._primary_remote.port)
        return self._primary_remote

    def _open(self, local_addr, remote, extra_extensions, index, cc=None,
              conn_id=None, tfo=False, early_data=b""):
        tls = TlsClient(self.psk, self.driver.rng,
                        cipher_names=self.cipher_names,
                        extra_extensions=extra_extensions,
                        early_data=early_data,
                        key_exchange=self.key_exchange)
        tfo_payload = b""
        usable_tfo = (tfo and self.driver.tfo_enabled
                      and self.driver.tfo_cookie_for(remote.addr))
        if usable_tfo:
            # Pre-build the first TLS flight so it can ride the SYN.
            tls.start()
            tfo_payload = tls.data_to_send()
        tcp = self.driver.connect(local_addr, remote, cc=cc,
                                  tfo_data=tfo_payload)
        conn = ConnectionState(self, index, tcp, tls, conn_id=conn_id)
        self.conns.append(conn)
        self._wire_tcp_callbacks(conn)
        tls.on_handshake_complete = (
            lambda _endpoint: self._on_handshake_complete(conn)
        )
        if tfo_payload:
            # Flight already in the SYN; nothing to do at establishment.
            tcp.set_callbacks(on_established=lambda _c: None)
        else:
            tcp.set_callbacks(
                on_established=lambda _c: self._start_tls(conn))
        return conn

    def _start_tls(self, conn):
        if conn.tls._state == "START":
            conn.tls.start()
        self._flush_tls(conn)

    # ------------------------------------------------------------------
    # Handshake completion
    # ------------------------------------------------------------------

    def _on_handshake_complete(self, conn):
        conn.alive = True
        # Flush the client Finished before any callback can queue
        # application records behind it.
        self._flush_tls(conn)
        self._emit("session", "conn_established", {
            "conn": conn.conn_id, "index": conn.index,
            "local": str(conn.tcp.local), "remote": str(conn.tcp.remote),
        })
        if conn.is_primary:
            self._complete_primary(conn)
        else:
            self._complete_join(conn)
        # Route records arriving after the handshake through the session
        # (keys and control streams are installed above).
        self._takeover_tls(conn)
        self._flush_tls(conn)
        if self.on_conn_established is not None:
            self.on_conn_established(conn)
        self._pump()

    def _complete_primary(self, conn):
        ee = conn.tls.peer_encrypted_extensions
        hello = find_extension(ee, EXT_TCPLS_HELLO)
        self.tcpls_enabled = hello is not None
        if self.tcpls_enabled:
            sessid = find_extension(ee, EXT_TCPLS_SESSID)
            cookies = find_extension(ee, EXT_COOKIE_TCPLS)
            tokens = find_extension(ee, EXT_TCPLS_TOKENS)
            addresses = find_extension(ee, EXT_TCPLS_ADDRESSES)
            if sessid is not None:
                self.session_id = sessid.data
            if cookies is not None:
                self.cookies = decode_cookie_list(cookies.data)
            if tokens is not None:
                self.tokens = decode_cookie_list(tokens.data)
            if addresses is not None:
                self.peer_addresses = decode_address_list(addresses.data)
        self._setup_keys(conn.tls.schedule, conn.tls.cipher_cls)
        self._install_control_stream(conn)
        self.ready = True
        self._emit("session", "ready", {"tcpls": self.tcpls_enabled,
                                        "fallback": self.fell_back})
        if self.tcpls_enabled and self.auto_user_timeout is not None:
            self.set_user_timeout(conn, self.auto_user_timeout)
        if self.on_ready is not None:
            self.on_ready(self)

    def _complete_join(self, conn):
        ee = conn.tls.peer_encrypted_extensions
        if find_extension(ee, EXT_TCPLS_HELLO) is None:
            # Join rejected (blocked extension on this path, Sec. 5.2):
            # cancel the attachment and notify the application.
            conn.failed = True
            conn.tcp.abort()
            self._emit("session", "conn_failed",
                       {"conn": conn.conn_id, "reason": "join-rejected"})
            if self.on_conn_failed is not None:
                self.on_conn_failed(conn, "join-rejected")
            return
        self._install_control_stream(conn)
        if self.auto_user_timeout is not None:
            self.set_user_timeout(conn, self.auto_user_timeout)
        self._emit("session", "join", {"conn": conn.conn_id,
                                       "index": conn.index})
        self._resolve_pending_failover(conn)
        if self.on_join is not None:
            self.on_join(conn)

    # ------------------------------------------------------------------
    # Fallback (legacy servers aborting on unknown extensions)
    # ------------------------------------------------------------------

    def _conn_failed(self, conn, reason):
        if (conn.is_primary and not self.ready and self.enable_tcpls
                and self.fallback_retry and not self.fell_back):
            conn.failed = True
            conn.alive = False
            self.fell_back = True
            self.enable_tcpls = False
            self.conns.clear()
            self.clock.call_later(0.0, self._retry_plain_tls)
            return
        super()._conn_failed(conn, reason)

    def _retry_plain_tls(self):
        self._open(self._primary_local, self._primary_remote, [], index=0)

    def _on_no_failover_target(self, failed_conn):
        """Break-before-make recovery (Fig. 4): open a fresh TCP
        connection over a different path and join it to the session.
        (local, remote) address pairs that recently failed are
        deprioritised, so repeated failures rotate through the
        available paths until a live one is found (the behaviour the
        Fig. 9 experiment measures)."""
        if not (self.cookies or self.tokens) or not self.tcpls_enabled:
            return
        self._mark_pair_failed(failed_conn)
        pair = self._next_join_pair(failed_conn)
        if pair is None:
            return
        local, remote_addr = pair
        self.join(local, remote=self.driver.endpoint(
            remote_addr, self._primary_remote.port))

    def _next_join_pair(self, failed_conn):
        """Least-recently-failed (local, remote) pair, family-matched."""
        failed_pair = (failed_conn.tcp.local.addr,
                       failed_conn.tcp.remote.addr)
        remotes = list(self.peer_addresses) or [self._primary_remote.addr]
        candidates = []
        for address in self.driver.usable_local_addresses():
            for remote_addr in remotes:
                if remote_addr.family != address.family:
                    continue
                pair = (address, remote_addr)
                if pair == failed_pair:
                    continue
                candidates.append(pair)
        if not candidates:
            return None
        candidates.sort(
            key=lambda p: self._recently_failed_pairs.get(p, -1.0)
        )
        return candidates[0]


__all__ = ["TcplsClientEngine"]
