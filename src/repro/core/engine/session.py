"""The sans-I/O TCPLS session engine: multiplexing, joining, failover.

A :class:`TcplsEngine` owns one or more transports (paths), the streams
and coupled groups multiplexed over them, and the control machinery of
Secs. 3-4 of the paper.  Client- and server-specific handshake setup
lives in :mod:`repro.core.engine.client` /
:mod:`repro.core.engine.server`; everything after the handshake is
symmetric and lives here.

The engine is I/O-agnostic: it consumes input events
(:meth:`bytes_received`, :meth:`conn_writable`, :meth:`conn_failed`,
:meth:`conn_closed`, :meth:`user_timeout_fired`, clock timers) and
emits effects only through the :class:`~repro.core.engine.interfaces`
contracts -- write bytes on a transport, arm a timer, deliver
application data, publish an observability event.  It never touches
:mod:`repro.net` or :mod:`repro.tcp`; drivers do.

Receive-path demultiplexing (Sec. 4.1): records carry no stream id; the
session first tries the connection's last successful stream at its next
expected sequence, then the other attached streams, then widens to a
bounded trial window of sequences -- which is what makes stream
steering and failover replay work without explicit wire signalling.
"""

from collections import deque

from repro.core import record as rec
from repro.core.errors import SessionNotReadyError
from repro.core.engine.policy import RecordContext, RoundRobinScheduler
from repro.core.stream import CoupledGroup, TcplsStream, control_stream_id
from repro.crypto.aead import AeadAuthenticationError
from repro.tls.record import RecordReassembler

#: default bytes allowed to sit unsent in one TCP connection's buffer
#: before the pump stops sealing records for it (keeps data steerable).
DEFAULT_UNSENT_TARGET = 128 * 1024

#: RFC 5482 TCP User Timeout option kind (mirrors
#: ``repro.tcp.options.OPT_USER_TIMEOUT``; redefined here because the
#: engine may not import :mod:`repro.tcp`).
OPT_USER_TIMEOUT = 28


class ConnectionState:
    """One TCP connection (transport) participating in the session."""

    def __init__(self, session, index, tcp, tls=None, conn_id=None):
        self.session = session
        self.index = index
        #: wire identity shared by both endpoints: 0 for the primary,
        #: cookie-derived for joined connections
        self.conn_id = conn_id if conn_id is not None else index
        #: the transport; named ``tcp`` because that is what it models
        #: (and what two generations of tests call it).
        self.tcp = tcp
        self.tls = tls
        self.reassembler = RecordReassembler()
        self.pending_out = deque()
        #: total bytes queued in ``pending_out`` (kept incrementally so
        #: the pump's budget check is O(1) per record, not O(queue)).
        self.pending_out_bytes = 0
        self.control_stream = None
        self.last_stream = None
        self.alive = False
        self.failed = False
        #: we sent our FIN: the transport still receives (the peer's
        #: half may be open) but can no longer accept sends.
        self.local_closed = False
        self.records_received = 0

    @property
    def transport(self):
        """Alias for :attr:`tcp` (the driver-facing name)."""
        return self.tcp

    @property
    def is_primary(self):
        return self.index == 0

    def writable(self):
        """Bytes may be handed to TCP (handshake data included)."""
        return (not self.failed and not self.local_closed
                and self.tcp.is_open())

    def usable(self):
        """Established TCPLS connection ready for records."""
        return (self.alive and not self.failed and self.tcp.is_open()
                and self.control_stream is not None)

    def tcp_info(self):
        """Expose the underlying connection statistics (paper Sec. 3.3.3)."""
        return self.tcp.tcp_info()

    def release_handshake(self):
        """Drop the TLS handshake machine once the session has taken
        over record processing (the traffic keys live in the stream
        crypto contexts, not here).  Saves tens of kilobytes per
        connection; the mass-session server calls this after
        :meth:`TcplsEngine._takeover_tls`."""
        if self.tls is not None and self.tls.handshake_complete:
            self.tls = None

    def __repr__(self):
        state = "failed" if self.failed else (
            "alive" if self.alive else "opening"
        )
        return "Conn(%d, %s, %s->%s)" % (
            self.index, state, self.tcp.local, self.tcp.remote
        )


class TcplsEngine:
    """Shared session logic for both endpoints, over any driver."""

    _next_obs_id = 0

    def __init__(self, driver, is_client, record_payload=16384,
                 trial_window=64, ack_interval=16,
                 unsent_target=DEFAULT_UNSENT_TARGET):
        self.driver = driver
        self.clock = driver.clock
        self.bus = driver.bus
        TcplsEngine._next_obs_id += 1
        #: stable per-simulation ordinal carried in every event this
        #: session emits (the scoping key for bus subscriptions)
        self.obs_id = TcplsEngine._next_obs_id
        self.is_client = is_client
        self.record_payload = record_payload
        self.trial_window = trial_window
        self.ack_interval = ack_interval
        self.unsent_target = unsent_target

        self.conns = []
        self.streams = {}
        self.groups = {}
        self._next_stream_id = 1 if is_client else 2
        self._next_group_id = 1 if is_client else 2

        self.tcpls_enabled = False
        self.ready = False
        self.failover_enabled = False
        #: when set, every connection (primary and joined) automatically
        #: arms this User Timeout on establishment
        self.auto_user_timeout = None
        self.session_id = None
        self.cookies = []            # client: unused join cookies
        self.tokens = []             # client: unlinkable join tokens
        self.peer_addresses = []

        self._cipher_cls = None
        self._send_key = None
        self._recv_key = None
        self._send_iv = None
        self._recv_iv = None

        self._ebpf_chunks = {}
        self._last_ack_all = -1.0
        self._tcpinfo_callbacks = {}
        #: connections that failed with no alternate available yet;
        #: resolved as soon as a usable connection (re)appears.
        self._pending_failover = []
        #: optional :class:`~repro.core.engine.replay.InputLog`; when
        #: set, every external input event is appended for deterministic
        #: replay (debugging).
        self.input_log = None
        #: optional fluid fast-forward bridge (see
        #: :class:`repro.net.fluid.SessionFluidAdapter`): when set, the
        #: pump offers it bulk stream backlogs so steady-state transfers
        #: advance analytically instead of sealing per-record.
        self.fluid = None

        # Statistics (the ablation benches read these).
        self.stats = {
            "records_sent": 0,
            "records_received": 0,
            "tag_trials": 0,
            "demux_fallbacks": 0,
            "demux_drops": 0,
            "acks_sent": 0,
            "syncs_sent": 0,
            "records_replayed": 0,
            "failovers": 0,
            "bytes_sealed": 0,
            "bytes_opened": 0,
            "bytes_fluid": 0,
        }

        # Application callbacks (all optional, called with rich args).
        self.on_ready = None
        self.on_stream_data = None       # (stream)
        self.on_group_data = None        # (group)
        self.on_stream_open = None       # (stream)
        self.on_conn_established = None  # (conn)
        self.on_conn_failed = None       # (conn, reason)
        self.on_failover = None          # (old_conn, new_conn)
        self.on_join = None              # (conn)
        self.on_pong = None              # (conn, payload)
        self.on_ebpf_attached = None     # (conn, program_id)
        self.on_writable = None          # (session)
        self.on_tcp_option = None        # (conn, kind, data)
        self.on_drain = None             # (session)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def _emit(self, category, name, data=None):
        """Publish one session-scoped event (adds the session id and
        role); a no-op when nothing subscribed to ``category``."""
        bus = self.bus
        if not bus.wants(category):
            return
        payload = {"session": self.obs_id,
                   "role": "client" if self.is_client else "server"}
        if data:
            payload.update(data)
        bus.emit(category, name, payload)

    def emit_perf_totals(self):
        """Publish cumulative seal/open byte counts and event-loop
        compaction stats on the ``perf`` category."""
        self._emit("perf", "crypto_totals", {
            "bytes_sealed": self.stats["bytes_sealed"],
            "bytes_opened": self.stats["bytes_opened"],
            "records_sent": self.stats["records_sent"],
            "records_received": self.stats["records_received"],
            "heap_compactions": self.clock.compactions,
        })

    # ------------------------------------------------------------------
    # Input events (the driver-facing surface)
    # ------------------------------------------------------------------

    def _log_input(self, kind, conn, data=None):
        if self.input_log is not None:
            self.input_log.record(self.clock.now, kind, conn.conn_id, data)

    def bytes_received(self, conn, data):
        """Input: ordered bytes arrived on ``conn``."""
        if not data:
            return
        self._log_input("bytes", conn, bytes(data))
        if conn.tls is not None and not conn.tls.handshake_complete:
            self._feed_handshake(conn, data)
            return
        for record_bytes in conn.reassembler.feed(data):
            self._process_record(conn, record_bytes)

    def conn_writable(self, conn):
        """Input: the transport drained some of its buffer."""
        self._log_input("writable", conn)
        self._drain(conn)
        self._pump()
        if self.on_writable is not None:
            self.on_writable(self)

    def conn_failed(self, conn, reason):
        """Input: the connection died (RST, timeout, driver error)."""
        self._log_input("failed", conn, reason)
        self._conn_failed(conn, reason)

    def conn_closed(self, conn):
        """Input: the peer closed the connection cleanly (FIN)."""
        self._log_input("closed", conn)
        self._conn_closed(conn)

    def user_timeout_fired(self, conn):
        """Input: the armed user timeout elapsed without progress."""
        self._log_input("user_timeout", conn)
        self._on_user_timeout(conn)

    def conn_by_id(self, conn_id):
        """Resolve a wire connection id (replay helper)."""
        for conn in self.conns:
            if conn.conn_id == conn_id:
                return conn
        return None

    # ------------------------------------------------------------------
    # Key material
    # ------------------------------------------------------------------

    def _setup_keys(self, schedule, cipher_cls):
        """Install application traffic keys from a completed handshake."""
        client_keys = schedule.client_application
        server_keys = schedule.server_application
        if self.is_client:
            send, recv = client_keys, server_keys
        else:
            send, recv = server_keys, client_keys
        self.install_raw_keys(cipher_cls, send.key, recv.key,
                              send.iv, recv.iv)

    def install_raw_keys(self, cipher_cls, send_key, recv_key,
                         send_iv, recv_iv):
        """Install application traffic keys directly (used by the
        handshake path above, and by replay/debug harnesses that
        bootstrap a session from captured key material)."""
        self._cipher_cls = cipher_cls
        self._send_key = cipher_cls(send_key)
        self._recv_key = cipher_cls(recv_key)
        self._send_iv = send_iv
        self._recv_iv = recv_iv
        self._emit("tls", "keys_installed",
                   {"cipher": getattr(cipher_cls, "name", cipher_cls.__name__)})

    def _make_stream(self, stream_id, conn, coupled_group=None):
        stream = TcplsStream(
            self, stream_id, conn,
            cipher_send=self._send_key, cipher_recv=self._recv_key,
            send_iv=self._send_iv, recv_iv=self._recv_iv,
            coupled_group=coupled_group,
        )
        self.streams[stream_id] = stream
        self._emit("session", "stream_created", {
            "stream": stream_id, "conn": conn.conn_id,
            "group": coupled_group or 0,
        })
        return stream

    def _install_control_stream(self, conn):
        sid = control_stream_id(conn.conn_id)
        conn.control_stream = self._make_stream(sid, conn)

    # ------------------------------------------------------------------
    # Public stream / group API
    # ------------------------------------------------------------------

    def create_stream(self, conn):
        """Open a new application stream attached to ``conn``."""
        self._require_ready()
        stream_id = self._next_stream_id
        self._next_stream_id += 2
        stream = self._make_stream(stream_id, conn)
        self._send_control(
            conn, rec.encode_stream_attach(stream_id, 0, 0)
        )
        return stream

    def create_coupled_group(self, conns, scheduler=None):
        """Open a coupled group with one stream per connection
        (bandwidth aggregation, Sec. 3.3.3)."""
        self._require_ready()
        group_id = self._next_group_id
        self._next_group_id += 2
        group = CoupledGroup(self, group_id, scheduler or
                             RoundRobinScheduler())
        self.groups[group_id] = group
        for conn in conns:
            self.add_group_stream(group, conn)
        return group

    def add_group_stream(self, group, conn):
        """Attach the group to one more connection (e.g. a path enabled
        mid-transfer, as in the Fig. 11 experiment)."""
        stream_id = self._next_stream_id
        self._next_stream_id += 2
        stream = self._make_stream(stream_id, conn,
                                   coupled_group=group.group_id)
        group.add_stream(stream)
        self._send_control(
            conn, rec.encode_stream_attach(stream_id, 0, group.group_id)
        )
        self._pump()
        return stream

    def remove_group_stream(self, group, stream):
        """Detach a group member (migration away from its path)."""
        group.remove_stream(stream)
        if stream.connection is not None and stream.connection.writable():
            self._send_control(
                stream.connection,
                rec.encode_stream_detach(stream.stream_id,
                                         stream.ctx_send.send_seq),
            )
        self._pump()

    def steer_stream(self, stream, new_conn):
        """Move an (uncoupled) stream to another TCP connection.

        Not-yet-sealed data follows immediately; records already queued
        in the old connection's TCP buffer drain where they are.
        """
        old_conn = stream.connection
        if old_conn is new_conn:
            return
        if old_conn is not None and old_conn.writable():
            self._send_control(
                old_conn,
                rec.encode_stream_detach(stream.stream_id,
                                         stream.ctx_send.send_seq),
            )
        stream.connection = new_conn
        self._emit("session", "stream_steered", {
            "stream": stream.stream_id,
            "from": old_conn.conn_id if old_conn is not None else None,
            "to": new_conn.conn_id,
        })
        self._send_control(
            new_conn,
            rec.encode_stream_attach(stream.stream_id,
                                     stream.ctx_send.send_seq,
                                     stream.coupled_group or 0),
        )
        self._pump()

    def buffered_rx_bytes(self):
        """Receive-side bytes this session holds for the application:
        delivered-but-unread stream/group buffers plus out-of-order
        records parked in the reorder heaps.  The multi-session driver
        (:mod:`repro.core.drivers.multi`) reads this against a
        per-session memory budget to decide when to stop reading the
        session's sockets."""
        total = 0
        for stream in self.streams.values():
            total += len(stream.recv_buffer)
            total += stream.recv_reorder.buffered_bytes
        for group in self.groups.values():
            total += len(group.recv_buffer)
            total += group.reorder.buffered_bytes
        return total

    def _notify_drain(self):
        """A stream/group ``recv()`` handed bytes to the application;
        let the driver re-evaluate read backpressure."""
        if self.on_drain is not None:
            self.on_drain(self)

    def close(self):
        """Gracefully close every connection (FIN after buffered data).

        Teardown, not flush-and-wait: record bytes the transports could
        not accept yet are dropped along with the session's readiness,
        so a retiring multi-session server releases the fds promptly.
        """
        for conn in list(self.conns):
            if conn.pending_out:
                self._drain(conn)
                conn.pending_out.clear()
                conn.pending_out_bytes = 0
            if not conn.failed and conn.tcp.is_open():
                conn.tcp.close()
            conn.local_closed = True
            conn.alive = False
        self.ready = False
        self._emit("session", "closed", {"conns": len(self.conns)})

    def connections(self):
        """Live view of the session's connections (paper: TCPLS exposes
        the underlying TCP connections to the application)."""
        return list(self.conns)

    def alive_connections(self):
        return [c for c in self.conns if c.usable()]

    # ------------------------------------------------------------------
    # Failover / options / probing / eBPF
    # ------------------------------------------------------------------

    def enable_failover(self):
        """Turn on record-level ACKs and replay (both directions)."""
        self._require_ready()
        if self.failover_enabled:
            return
        self.failover_enabled = True
        self._emit("session", "failover_enabled", {})
        primary = self._first_writable()
        if primary is not None:
            self._send_control(primary, bytes([rec.CTRL_ENABLE_FAILOVER]))

    def set_user_timeout(self, conn, seconds):
        """Ship the User Timeout inside an encrypted record so the
        *peer* arms it (Sec. 4.2), and arm it locally too.

        Unlike the 15-bit seconds-or-minutes wire option of RFC 5482,
        the record-conveyed variant is not space-constrained (Sec. 3.1)
        and carries milliseconds -- the paper's experiments use 250 ms.
        """
        import struct

        payload = rec.encode_tcp_option(
            OPT_USER_TIMEOUT, struct.pack("!I", int(seconds * 1000))
        )
        self._send_typed(conn, rec.RECORD_TYPE_TCP_OPTION, payload)
        conn.tcp.set_user_timeout(seconds)

    def ping(self, conn, payload=b""):
        """Application path probe (echo request)."""
        self._send_typed(conn, rec.RECORD_TYPE_PING, payload)

    def send_tcp_option(self, conn, kind, data=b""):
        """Convey an arbitrary TCP option inside an encrypted record
        (Sec. 3.1): reliable, unbounded by the 40-byte header limit, and
        invisible to middleboxes.  The peer surfaces it through
        ``on_tcp_option(conn, kind, data)``."""
        self._send_typed(conn, rec.RECORD_TYPE_TCP_OPTION,
                         rec.encode_tcp_option(kind, data))

    def announce_address(self, address):
        """Advertise one more local address to the peer mid-session
        (Sec. 3.3.2: "The server can later ... update its list of
        addresses")."""
        from repro.tls.extensions import encode_address_list

        target = self._first_writable()
        if target is not None:
            self._send_control(
                target,
                bytes([rec.CTRL_ADD_ADDRESS])
                + encode_address_list([address]),
            )

    def withdraw_address(self, address):
        """Tell the peer an address is no longer usable."""
        from repro.tls.extensions import encode_address_list

        target = self._first_writable()
        if target is not None:
            self._send_control(
                target,
                bytes([rec.CTRL_REMOVE_ADDRESS])
                + encode_address_list([address]),
            )

    def request_peer_tcp_info(self, conn, callback):
        """Retrieve the *remote* endpoint's ``tcp_info`` for this
        connection over the secure channel (Sec. 3.3.3: "retrieve
        information from the remote host, e.g. ... the remote host's
        tcp_info").  ``callback(conn, info_dict)`` fires on response."""
        self._tcpinfo_callbacks.setdefault(conn.conn_id, []).append(
            callback)
        self._send_control(conn, bytes([rec.CTRL_TCPINFO_REQUEST]))

    def send_ebpf_program(self, conn, bytecode, program_id=1):
        """Chunk congestion-controller bytecode over the session
        (Sec. 4.4); the peer verifies and attaches it."""
        chunk_size = self.record_payload - 64
        chunks = [bytecode[i:i + chunk_size]
                  for i in range(0, len(bytecode), chunk_size)] or [b""]
        for index, chunk in enumerate(chunks):
            payload = rec.encode_ebpf_chunk(program_id, index, len(chunks),
                                            chunk)
            self._send_typed(conn, rec.RECORD_TYPE_EBPF, payload)

    # ------------------------------------------------------------------
    # Output path
    # ------------------------------------------------------------------

    def _require_ready(self):
        if not self.ready:
            raise SessionNotReadyError()

    def _first_writable(self):
        for conn in self.conns:
            if conn.usable():
                return conn
        return None

    def _send_control(self, conn, payload):
        self._send_typed(conn, rec.RECORD_TYPE_CONTROL, payload)

    def _send_typed(self, conn, record_type, payload, control=b"",
                    stream=None, store_unacked=False):
        """Seal one record on ``conn`` (control stream by default)."""
        stream = stream if stream is not None else conn.control_stream
        seq = stream.ctx_send.send_seq
        inner = rec.encode_inner(record_type, payload, control)
        wire = stream.ctx_send.seal(inner)
        if store_unacked and self.failover_enabled:
            stream.unacked.append((seq, wire))
        self.stats["records_sent"] += 1
        self.stats["bytes_sealed"] += len(inner)
        self._emit("tls", "record_sealed", {
            "conn": conn.conn_id, "stream": stream.stream_id,
            "seq": seq, "type": record_type, "length": len(wire),
        })
        self._conn_write(conn, wire)
        return seq

    def _conn_write(self, conn, data):
        conn.pending_out.append(data)
        conn.pending_out_bytes += len(data)
        self._drain(conn)

    def _drain(self, conn):
        if not conn.writable():
            return
        while conn.pending_out:
            head = conn.pending_out[0]
            if conn.tcp.send_space() < len(head):
                break
            conn.tcp.send(head)
            conn.pending_out.popleft()
            conn.pending_out_bytes -= len(head)

    def _conn_budget(self, conn):
        """Bytes the pump may still seal for this connection.

        Bounded by the congestion window (about two windows' worth may
        wait in the TCP buffer) so the scheduler cannot bury megabytes
        in a slow path's queue -- that data could neither be steered
        away nor delivered in order by the coupled reorder buffer.
        """
        if not conn.writable():
            return 0
        queued = conn.pending_out_bytes
        backlog = conn.tcp.unsent_bytes() + queued
        target = min(self.unsent_target,
                     2 * int(conn.tcp.congestion_window())
                     + self.record_payload)
        return max(target - backlog, 0)

    def _pump(self):
        """Seal pending application bytes into records wherever there is
        room.  Called on sends, ACK progress and topology changes."""
        if not self.ready:
            return
        progressed = True
        while progressed:
            progressed = False
            for group in list(self.groups.values()):
                progressed |= self._pump_group(group)
            for stream in list(self.streams.values()):
                if stream.coupled_group is None and stream.connection and \
                        not self._is_control(stream):
                    progressed |= self._pump_stream(stream)

    def _is_control(self, stream):
        return (stream.connection is not None
                and stream.connection.control_stream is stream)

    def _chunk_size(self, control_len):
        return self.record_payload - control_len - 2

    def _pump_stream(self, stream):
        """Seal pending stream bytes into records, a batch at a time.

        The outer loop recomputes the true connection budget; the inner
        loop seals against a conservative local copy (decremented by
        each record's full wire length, i.e. assuming nothing leaves the
        TCP buffer meanwhile), so a batch never seals a record the
        record-at-a-time pump would not have.  Within a batch the
        framing, AEAD sealing (:meth:`seal_many`), unacked bookkeeping
        and transport drain each run as one pass instead of per record
        -- same records, same wire bytes, one ``_drain`` per batch.
        """
        conn = stream.connection
        if self.fluid is not None:
            if stream.fluid_active:
                # The fluid engine owns this stream's bytes; the FIN
                # (and any tail bytes) are pumped when it hands back.
                return False
            if (stream.pending and conn is not None and conn.usable()
                    and self.fluid.offer(self, stream, conn)):
                return False
        sent = False
        while (stream.pending or
               (stream.fin_pending and not stream.fin_sent)):
            if conn is None or not conn.usable():
                break
            budget = self._conn_budget(conn)
            if budget <= 0:
                break
            ctx = stream.ctx_send
            record_overhead = ctx.cipher.tag_size + 5  # TLS header
            pending = stream.pending
            remaining = len(pending)
            fin_left = stream.fin_pending and not stream.fin_sent
            inners = []
            offset = 0
            # Zero-copy: hand the framer views of the app buffer; the
            # gather in encode_inner is the send path's only copy.  The
            # views must be released before the bytearray can shrink.
            view = memoryview(pending)
            try:
                while budget > 0 and (remaining or fin_left):
                    last = fin_left and remaining <= self._chunk_size(1)
                    flags = rec.FLAG_FIN if last else 0
                    control = rec.encode_stream_control(flags)
                    size = self._chunk_size(len(control))
                    chunk = view[offset:offset + size]
                    try:
                        inners.append(rec.encode_inner(
                            rec.RECORD_TYPE_STREAM_DATA, chunk, control))
                    finally:
                        chunk.release()
                    consumed = min(size, remaining)
                    offset += consumed
                    remaining -= consumed
                    budget -= len(inners[-1]) + record_overhead
                    if last:
                        fin_left = False
                        stream.fin_sent = True
            finally:
                view.release()
            del pending[:offset]
            seq = ctx.send_seq
            wires = ctx.seal_many(inners)
            self._book_sealed(conn, stream, seq, inners, wires)
            sent = True
        return sent

    def _book_sealed(self, conn, stream, first_seq, inners, wires):
        """Post-seal bookkeeping for one pump batch: unacked replay
        copies, stats, per-record trace events, one queue append pass
        and one transport drain."""
        if self.failover_enabled:
            unacked = stream.unacked
            seq = first_seq
            for wire in wires:
                unacked.append((seq, wire))
                seq += 1
        self.stats["records_sent"] += len(wires)
        self.stats["bytes_sealed"] += sum(len(i) for i in inners)
        if self.bus.wants("tls"):
            seq = first_seq
            for wire in wires:
                self._emit("tls", "record_sealed", {
                    "conn": conn.conn_id, "stream": stream.stream_id,
                    "seq": seq, "type": rec.RECORD_TYPE_STREAM_DATA,
                    "length": len(wire),
                })
                seq += 1
        pending_out = conn.pending_out
        total = 0
        for wire in wires:
            pending_out.append(wire)
            total += len(wire)
        conn.pending_out_bytes += total
        self._drain(conn)
        self._emit("perf", "pump_batch", {
            "conn": conn.conn_id, "stream": stream.stream_id,
            "records": len(wires), "bytes": total,
        })

    def _pick_targets(self, group, candidates):
        """Consult the group's policy for the next record's streams.

        Replication is a declared capability
        (:attr:`~repro.core.engine.policy.Policy.replicate`), not a
        return-type convention: a replicating policy fans out to every
        candidate, every other policy names exactly one stream.  Legacy
        schedulers (any object with only ``pick``) still work; a policy
        proper gets a :class:`~repro.core.engine.policy.RecordContext`.
        """
        policy = group.scheduler
        if getattr(policy, "replicate", False):
            return list(candidates)
        pick_stream = getattr(policy, "pick_stream", None)
        if pick_stream is not None:
            picked = pick_stream(candidates, RecordContext(
                group=group, session=self, now=self.clock.now))
        else:
            picked = policy.pick(candidates)
        return [picked]

    def _pump_group(self, group):
        sent = False
        while (group.pending or
               (group.fin_pending and not group.fin_sent)):
            candidates = [
                s for s in group.streams
                if s.connection is not None and s.connection.usable()
                and self._conn_budget(s.connection) > 0
            ]
            if not candidates:
                break
            targets = self._pick_targets(group, candidates)
            if self.bus.wants("scheduler"):
                self._emit("scheduler", "pick", {
                    "group": group.group_id,
                    "scheduler": getattr(group.scheduler, "name", "custom"),
                    "streams": [t.stream_id for t in targets],
                    "candidates": len(candidates),
                })
            last = (
                group.fin_pending
                and len(group.pending) <= self._chunk_size(9)
            )
            control = group.next_control(fin=last)
            size = self._chunk_size(len(control))
            chunk = memoryview(group.pending)[:size]
            try:
                for stream in targets:
                    self._send_typed(
                        stream.connection, rec.RECORD_TYPE_STREAM_DATA,
                        chunk, control, stream=stream, store_unacked=True,
                    )
            finally:
                chunk.release()
            del group.pending[:size]
            if last:
                group.fin_sent = True
            sent = True
        return sent

    # ------------------------------------------------------------------
    # Input path
    # ------------------------------------------------------------------

    def _on_tcp_data(self, conn):
        """Pull pending bytes from the transport and feed them in (the
        driver-wired ``on_data`` path)."""
        self.bytes_received(conn, conn.tcp.recv())

    def _feed_handshake(self, conn, data):
        from repro.tls.endpoint import TlsError
        from repro.tls.record import TlsRecordError

        try:
            conn.tls.feed(data)
        except (TlsError, TlsRecordError) as exc:
            self._on_handshake_failed(conn, exc)
            return
        out = conn.tls.data_to_send()
        if out:
            self._conn_write(conn, out)

    def _on_handshake_failed(self, conn, exc):
        conn.failed = True
        conn.tcp.abort()
        if self.on_conn_failed is not None:
            self.on_conn_failed(conn, "tls:%s" % exc)

    def _flush_tls(self, conn):
        if conn.tls is not None:
            out = conn.tls.data_to_send()
            if out:
                self._conn_write(conn, out)

    def _takeover_tls(self, conn):
        """Route post-handshake records through the session and migrate
        any partial record buffered in the TLS endpoint's reassembler."""
        conn.tls.takeover = (
            lambda record_bytes: self._process_record(conn, record_bytes)
        )
        leftover = bytes(conn.tls.reassembler._buffer)
        if leftover:
            conn.tls.reassembler._buffer.clear()
            for record_bytes in conn.reassembler.feed(leftover):
                self._process_record(conn, record_bytes)

    # -- demultiplexing ----------------------------------------------------

    def _demux_candidates(self, conn):
        seen = set()
        order = []
        if conn.last_stream is not None:
            order.append(conn.last_stream)
            seen.add(conn.last_stream.stream_id)
        if conn.control_stream is not None and \
                conn.control_stream.stream_id not in seen:
            order.append(conn.control_stream)
            seen.add(conn.control_stream.stream_id)
        for stream in self.streams.values():
            if stream.stream_id in seen:
                continue
            if stream.connection is conn:
                order.append(stream)
                seen.add(stream.stream_id)
        for stream in self.streams.values():
            if stream.stream_id not in seen:
                order.append(stream)
                seen.add(stream.stream_id)
        return order

    def _process_record(self, conn, record_bytes):
        conn.records_received += 1
        self.stats["records_received"] += 1
        candidates = self._demux_candidates(conn)
        # Fast pass: each candidate's single most likely sequence.
        for position, stream in enumerate(candidates):
            seq = stream.primary_trial_seq()
            self.stats["tag_trials"] += 1
            if stream.ctx_recv.verify_at(record_bytes, seq):
                if position > 0:
                    self.stats["demux_fallbacks"] += 1
                self._accept_record(conn, stream, seq, record_bytes)
                return
        # Slow pass: bounded sequence windows (steering / replay).
        for stream in candidates:
            for seq in stream.trial_seqs(self.trial_window)[1:]:
                self.stats["tag_trials"] += 1
                if stream.ctx_recv.verify_at(record_bytes, seq):
                    self.stats["demux_fallbacks"] += 1
                    self._accept_record(conn, stream, seq, record_bytes)
                    return
        # Undecryptable: duplicate failover replay or forgery.  A
        # replayed duplicate means one of our ACKs was lost with the
        # dead connection -- re-acknowledge everything (rate-limited)
        # so the peer prunes its replay buffer and stops.
        self.stats["demux_drops"] += 1
        self._emit("tls", "record_rejected", {
            "conn": conn.conn_id, "length": len(record_bytes),
        })
        if self.failover_enabled and \
                self.clock.now - self._last_ack_all >= 0.05:
            self._last_ack_all = self.clock.now
            data_streams = [
                s for s in self.streams.values()
                if not self._is_control(s) and s.recv_decrypted
            ]
            if data_streams:
                self._send_ack(conn, data_streams)

    def _accept_record(self, conn, stream, seq, record_bytes):
        try:
            plaintext = stream.ctx_recv.open_at(record_bytes, seq)
        except AeadAuthenticationError:  # pragma: no cover
            self.stats["demux_drops"] += 1
            return
        stream.mark_decrypted(seq)
        self.stats["bytes_opened"] += len(plaintext)
        conn.last_stream = stream
        inner = rec.decode_inner(plaintext)
        self._emit("tls", "record_opened", {
            "conn": conn.conn_id, "stream": stream.stream_id,
            "seq": seq, "type": inner.record_type,
            "length": len(record_bytes),
        })
        self._handle_inner(conn, stream, seq, inner)

    # -- record dispatch -----------------------------------------------------

    def _handle_inner(self, conn, stream, seq, inner):
        record_type = inner.record_type
        if record_type == rec.RECORD_TYPE_STREAM_DATA:
            self._handle_stream_data(conn, stream, seq, inner)
        elif record_type == rec.RECORD_TYPE_APPDATA:
            stream.recv_buffer += inner.payload
            if self.on_stream_data is not None:
                self.on_stream_data(stream)
        elif record_type == rec.RECORD_TYPE_ACK:
            for stream_id, next_seq in rec.decode_ack(inner.payload):
                target = self.streams.get(stream_id)
                if target is not None:
                    target.prune_unacked(next_seq)
        elif record_type == rec.RECORD_TYPE_SYNC:
            failed_index, entries = rec.decode_sync(inner.payload)
            self._handle_sync(conn, failed_index, entries)
        elif record_type == rec.RECORD_TYPE_TCP_OPTION:
            kind, data = rec.decode_tcp_option(inner.payload)
            self._handle_tcp_option(conn, kind, data)
        elif record_type == rec.RECORD_TYPE_EBPF:
            self._handle_ebpf_chunk(conn, inner.payload)
        elif record_type == rec.RECORD_TYPE_CONTROL:
            self._handle_control(conn, inner.payload)
        elif record_type == rec.RECORD_TYPE_PING:
            self._send_typed(conn, rec.RECORD_TYPE_PONG, inner.payload)
        elif record_type == rec.RECORD_TYPE_PONG:
            if self.on_pong is not None:
                self.on_pong(conn, inner.payload)

    def _handle_stream_data(self, conn, stream, seq, inner):
        flags, coupled_seq = rec.decode_stream_control(inner.control)
        if coupled_seq is not None:
            group = self._ensure_group(stream.coupled_group or 0)
            if flags & rec.FLAG_FIN:
                group.fin_received = True
                group.fin_seq = coupled_seq
            released = group.reorder.push(coupled_seq, inner.payload)
            if released:
                for payload in released:
                    group.recv_buffer += payload
                    group.bytes_delivered += len(payload)
                if self.on_group_data is not None:
                    self.on_group_data(group)
        else:
            if flags & rec.FLAG_FIN:
                stream.fin_received = True
            released = stream.recv_reorder.push(seq, inner.payload)
            if released:
                for payload in released:
                    stream.recv_buffer += payload
                stream.records_delivered += len(released)
                stream.last_delivery = self.clock.now
                if self.on_stream_data is not None:
                    self.on_stream_data(stream)
        self._maybe_ack(conn, stream, len(inner.payload),
                        fin=bool(flags & rec.FLAG_FIN))

    def _maybe_ack(self, conn, stream, payload_len, fin=False):
        if not self.failover_enabled:
            return
        stream.records_since_ack += 1
        stream.bytes_since_ack += payload_len
        # A FIN record acks immediately -- covering every data stream,
        # since a coupled transfer's FIN rides only one member stream --
        # so the sender's replay buffer empties when the transfer ends.
        if fin:
            data_streams = [
                s for s in self.streams.values()
                if not self._is_control(s) and s.recv_decrypted
            ]
            self._send_ack(conn, data_streams or [stream])
            for acked in data_streams:
                acked.records_since_ack = 0
                acked.bytes_since_ack = 0
            return
        if (stream.records_since_ack >= self.ack_interval
                or stream.bytes_since_ack >= self.ack_interval *
                self.record_payload):
            self._send_ack(conn, [stream])
            stream.records_since_ack = 0
            stream.bytes_since_ack = 0

    def _send_ack(self, conn, streams):
        target = conn if conn.usable() else self._first_writable()
        if target is None:
            return
        entries = [s.ack_state() for s in streams]
        self._send_typed(target, rec.RECORD_TYPE_ACK,
                         rec.encode_ack(entries))
        self.stats["acks_sent"] += 1

    def _ensure_group(self, group_id):
        group = self.groups.get(group_id)
        if group is None:
            group = CoupledGroup(self, group_id, RoundRobinScheduler())
            self.groups[group_id] = group
        return group

    def _handle_tcp_option(self, conn, kind, data):
        if kind == OPT_USER_TIMEOUT:
            import struct

            (milliseconds,) = struct.unpack("!I", data)
            conn.tcp.set_user_timeout(milliseconds / 1000.0)
        if self.on_tcp_option is not None:
            self.on_tcp_option(conn, kind, data)

    def _handle_ebpf_chunk(self, conn, payload):
        program_id, index, total, data = rec.decode_ebpf_chunk(payload)
        chunks = self._ebpf_chunks.setdefault(program_id, {})
        chunks[index] = data
        if len(chunks) == total:
            bytecode = b"".join(chunks[i] for i in range(total))
            del self._ebpf_chunks[program_id]
            self._attach_ebpf(conn, program_id, bytecode)

    def _attach_ebpf(self, conn, program_id, bytecode):
        """Ask the transport to verify and attach a received congestion
        controller (drivers without pluggable CC decline)."""
        attached = conn.tcp.attach_ebpf_congestion(
            bytecode, program_name="prog%d" % program_id
        )
        if attached and self.on_ebpf_attached is not None:
            self.on_ebpf_attached(conn, program_id)

    def _handle_control(self, conn, payload):
        import struct

        opcode = payload[0]
        if opcode == rec.CTRL_STREAM_ATTACH:
            _, stream_id, from_seq, group_id = struct.unpack_from(
                "!BIQI", payload, 0
            )
            stream = self.streams.get(stream_id)
            if stream is None:
                stream = self._make_stream(
                    stream_id, conn,
                    coupled_group=group_id or None,
                )
                if group_id:
                    group = self._ensure_group(group_id)
                    if stream not in group.streams:
                        group.streams.append(stream)
                if self.on_stream_open is not None:
                    self.on_stream_open(stream)
            else:
                stream.connection = conn
        elif opcode == rec.CTRL_STREAM_DETACH:
            _, stream_id, final_seq = struct.unpack_from("!BIQ", payload, 0)
            stream = self.streams.get(stream_id)
            if stream is not None and stream.connection is conn:
                pass  # demux keeps trying it; sender stopped using it
        elif opcode == rec.CTRL_STREAM_CLOSE:
            _, stream_id = struct.unpack_from("!BI", payload, 0)
            stream = self.streams.get(stream_id)
            if stream is not None:
                stream.closed = True
                self._emit("session", "stream_closed",
                           {"stream": stream_id, "conn": conn.conn_id})
        elif opcode == rec.CTRL_ENABLE_FAILOVER:
            self.failover_enabled = True
        elif opcode == rec.CTRL_NEW_COOKIES:
            count = payload[1]
            for i in range(count):
                self.cookies.append(payload[2 + 16 * i:2 + 16 * (i + 1)])
        elif opcode == rec.CTRL_NEW_TOKENS:
            count = payload[1]
            for i in range(count):
                self.tokens.append(payload[2 + 16 * i:2 + 16 * (i + 1)])
        elif opcode == rec.CTRL_ADD_ADDRESS:
            from repro.tls.extensions import decode_address_list

            for address in decode_address_list(payload[1:]):
                if address not in self.peer_addresses:
                    self.peer_addresses.append(address)
        elif opcode == rec.CTRL_REMOVE_ADDRESS:
            from repro.tls.extensions import decode_address_list

            for address in decode_address_list(payload[1:]):
                if address in self.peer_addresses:
                    self.peer_addresses.remove(address)
        elif opcode == rec.CTRL_TCPINFO_REQUEST:
            self._send_control(
                conn, rec.encode_tcpinfo_response(conn.tcp_info())
            )
        elif opcode == rec.CTRL_TCPINFO_RESPONSE:
            info = rec.decode_tcpinfo_response(payload)
            callbacks = self._tcpinfo_callbacks.pop(conn.conn_id, [])
            for callback in callbacks:
                callback(conn, info)
        elif opcode == rec.CTRL_CONN_CLOSE:
            conn.alive = False

    def _handle_sync(self, conn, failed_conn_id, entries):
        """Peer signalled failover: reattach our view of its streams to
        this connection, move our own streams off the dead connection,
        and replay our unacked records (Fig. 4)."""
        self._emit("recovery", "sync_received", {
            "conn": conn.conn_id, "failed": failed_conn_id,
            "streams": len(entries),
        })
        failed = next(
            (c for c in self.conns if c.conn_id == failed_conn_id
             and c is not conn),
            None,
        )
        if failed is not None:
            if not failed.failed:
                failed.failed = True
                failed.alive = False
                if self.fluid is not None:
                    self.fluid.conn_failed_hook(failed)
                failed.tcp.abort()
                failed.pending_out.clear()
                failed.pending_out_bytes = 0
                # abort() fires no transport callback, so this is the
                # only teardown signal observers (e.g. a connection
                # table) get for the peer-declared-dead connection.
                if self.on_conn_failed is not None:
                    self.on_conn_failed(failed, "sync")
        for stream_id, _resume_seq in entries:
            stream = self.streams.get(stream_id)
            if stream is not None:
                stream.connection = conn
        if failed is not None:
            for stream in self.streams.values():
                if stream.connection is failed and \
                        not self._is_control(stream):
                    stream.connection = conn
            self._pending_failover = [
                c for c in self._pending_failover if c is not failed
            ]
        self._replay_unacked(conn)
        self._pump()

    # ------------------------------------------------------------------
    # Failover engine (Sec. 3.3.2, Fig. 4)
    # ------------------------------------------------------------------

    def _wire_tcp_callbacks(self, conn):
        conn.tcp.set_callbacks(
            on_data=lambda _c: self._on_tcp_data(conn),
            on_reset=lambda _c: self.conn_failed(conn, "rst"),
            on_close=lambda _c: self.conn_closed(conn),
            on_user_timeout=lambda _c: self.user_timeout_fired(conn),
            on_send_space=lambda _c: self.conn_writable(conn),
        )

    def _on_user_timeout(self, conn):
        """UTO fired: fail over only if a transfer actually hangs on
        this connection; a merely idle session re-arms the timer."""
        if self._has_pending_transfer(conn):
            self._conn_failed(conn, "uto")
        elif conn.tcp.user_timeout is not None:
            conn.tcp.set_user_timeout(conn.tcp.user_timeout)

    def _has_pending_transfer(self, conn):
        """Is this connection carrying an unfinished transfer?"""
        for stream in self.streams.values():
            if self._is_control(stream) or stream.connection is not conn:
                continue
            if stream.fluid_active:
                # Fluid-served transfer: in flight by definition (the
                # engine's progress clock decides whether it stalled).
                return True
            if (stream.pending or stream.unacked
                    or (stream.fin_pending and not stream.fin_sent)):
                return True
            # Inbound stream mid-transfer: recent data, no FIN yet.
            if stream.recv_decrypted and not stream.fin_received and \
                    stream.coupled_group is None and \
                    self.clock.now - stream.last_delivery < 2.0:
                return True
        for group in self.groups.values():
            if not any(s.connection is conn for s in group.streams):
                continue
            if group.pending or (group.fin_pending and not group.fin_sent):
                return True
            if group.bytes_delivered and not group.complete:
                return True
        return False

    def _on_send_space(self, conn):
        """Backwards-compatible alias for :meth:`conn_writable` minus
        the input logging (internal callers)."""
        self._drain(conn)
        self._pump()
        if self.on_writable is not None:
            self.on_writable(self)

    def _conn_closed(self, conn):
        if conn.failed or not self.ready:
            return
        has_unacked = any(
            s.unacked for s in self.streams.values()
            if s.connection is conn
        )
        pending = conn.pending_out or conn.tcp.unsent_bytes()
        if self.failover_enabled and (has_unacked or pending):
            self._conn_failed(conn, "fin")
        else:
            conn.alive = False
            self.emit_perf_totals()

    def _conn_failed(self, conn, reason):
        if conn.failed:
            return
        conn.failed = True
        conn.alive = False
        if self.fluid is not None:
            # Unserved fluid bytes return to stream.pending before the
            # failover pump runs, so replay/re-handoff see them.
            self.fluid.conn_failed_hook(conn)
        self._emit("session", "conn_failed",
                   {"conn": conn.conn_id, "reason": reason})
        self.emit_perf_totals()
        if self.on_conn_failed is not None:
            self.on_conn_failed(conn, reason)
        if not self.failover_enabled or not self.ready:
            return
        self.stats["failovers"] += 1
        target = self._failover_target(conn)
        if target is None:
            self._pending_failover.append(conn)
            self._emit("recovery", "failover_pending",
                       {"conn": conn.conn_id, "reason": reason})
            self._on_no_failover_target(conn)
            return
        self._do_failover(conn, target)

    def _on_no_failover_target(self, conn):
        """Hook: the client overrides this to open + join a new path."""

    def _resolve_pending_failover(self, new_conn):
        """A connection became usable; complete any stalled failovers."""
        pending, self._pending_failover = self._pending_failover, []
        for failed in pending:
            self._do_failover(failed, new_conn)

    def _failover_target(self, failed_conn):
        """Prefer a connection on different addresses than the failed one
        (Sec. 4.2)."""
        alive = [c for c in self.conns if c is not failed_conn
                 and c.usable()]
        if not alive:
            return None
        different = [
            c for c in alive
            if c.tcp.local.addr != failed_conn.tcp.local.addr
            and c.tcp.remote.addr != failed_conn.tcp.remote.addr
        ]
        return (different or alive)[0]

    def _do_failover(self, failed_conn, target):
        moved = []
        for stream in self.streams.values():
            if stream.connection is failed_conn and \
                    not self._is_control(stream):
                stream.connection = target
                moved.append(stream)
        entries = []
        for stream in moved:
            resume = stream.unacked[0][0] if stream.unacked else \
                stream.ctx_send.send_seq
            entries.append((stream.stream_id, resume))
        self._emit("recovery", "failover", {
            "from": failed_conn.conn_id, "to": target.conn_id,
            "streams": len(moved),
        })
        self._send_typed(
            target, rec.RECORD_TYPE_SYNC,
            rec.encode_sync(failed_conn.conn_id, entries),
        )
        self.stats["syncs_sent"] += 1
        self._replay_unacked(target)
        # Anything sealed but stuck in the dead TCP connection's buffer
        # is covered by the unacked store; drop the queue.
        failed_conn.pending_out.clear()
        failed_conn.pending_out_bytes = 0
        if self.on_failover is not None:
            self.on_failover(failed_conn, target)
        self._pump()

    def _replay_unacked(self, target):
        """Retransmit stored ciphertexts as-is (per-stream contexts make
        the bytes connection-independent)."""
        replayed = 0
        for stream in self.streams.values():
            if stream.connection is target and stream.unacked:
                for _seq, wire in stream.unacked:
                    self._conn_write(target, wire)
                    self.stats["records_replayed"] += 1
                    replayed += 1
        if replayed:
            self._emit("recovery", "replay",
                       {"conn": target.conn_id, "records": replayed})
