"""Deterministic record/replay of engine inputs, plus test doubles.

Because the engine is sans-I/O, a session's entire behaviour is a pure
function of its input-event sequence.  Setting ``engine.input_log`` to
an :class:`InputLog` captures that sequence ``(t, kind, conn_id,
data)``; :meth:`InputLog.replay_into` later drives a fresh engine (over
:class:`StubDriver` / :class:`ReplayTransport`) through the identical
inputs -- a post-mortem debugger for protocol bugs observed in any
driver.

Replay targets a *post-handshake* session: handshake transcripts
depend on handshake randomness, so :func:`bootstrap_ready_session`
recreates the ready state directly from raw key material via
:meth:`~repro.core.engine.session.TcplsEngine.install_raw_keys`.
"""

import heapq
import random

from repro.core.engine.interfaces import Clock, Driver, Transport
from repro.core.engine.session import ConnectionState, TcplsEngine
from repro.core.errors import DriverError
from repro.crypto.aead import get_cipher
from repro.obs.bus import EventBus


class InputLog:
    """An append-only log of the engine's external input events."""

    #: event kinds produced by the engine's input methods
    KINDS = ("bytes", "writable", "failed", "closed", "user_timeout")

    def __init__(self):
        self.entries = []

    def record(self, t, kind, conn_id, data=None):
        self.entries.append((t, kind, conn_id, data))

    def __len__(self):
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def replay_into(self, engine):
        """Drive ``engine`` through the logged inputs.

        Connection ids are resolved against ``engine.conn_by_id``; the
        engine's clock (when it is a :class:`ManualClock`) is advanced
        to each entry's timestamp first so time-dependent logic (ACK
        rate limits, idle-transfer detection) behaves identically.
        Logging is suspended during replay so a log replayed into an
        engine that records its own inputs does not double up.
        """
        saved, engine.input_log = engine.input_log, None
        try:
            for t, kind, conn_id, data in self.entries:
                clock = engine.clock
                if isinstance(clock, ManualClock) and t > clock.now:
                    clock.run_until(t)
                conn = engine.conn_by_id(conn_id)
                if conn is None:
                    raise DriverError(
                        "replay: unknown connection id %r" % (conn_id,))
                if kind == "bytes":
                    engine.bytes_received(conn, data)
                elif kind == "writable":
                    engine.conn_writable(conn)
                elif kind == "failed":
                    engine.conn_failed(conn, data)
                elif kind == "closed":
                    engine.conn_closed(conn)
                elif kind == "user_timeout":
                    engine.user_timeout_fired(conn)
                else:
                    raise DriverError("replay: unknown kind %r" % (kind,))
        finally:
            engine.input_log = saved


class ManualClock(Clock):
    """A clock advanced explicitly by the test/replay harness."""

    def __init__(self, start=0.0):
        self.now = start
        self.compactions = 0
        self._heap = []
        self._seq = 0

    class _Timer:
        __slots__ = ("when", "fn", "args", "cancelled")

        def __init__(self, when, fn, args):
            self.when = when
            self.fn = fn
            self.args = args
            self.cancelled = False

        def cancel(self):
            self.cancelled = True

    def call_later(self, delay, fn, *args):
        timer = self._Timer(self.now + delay, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, (timer.when, self._seq, timer))
        return timer

    def run_until(self, t):
        """Fire due timers in order, then set ``now`` to ``t``."""
        while self._heap and self._heap[0][0] <= t:
            when, _seq, timer = heapq.heappop(self._heap)
            if timer.cancelled:
                continue
            self.now = when
            timer.fn(*timer.args)
        self.now = max(self.now, t)

    def advance(self, dt):
        self.run_until(self.now + dt)


class _StubAddress:
    """Minimal address object (family + value) for stub endpoints."""

    __slots__ = ("family", "value")

    def __init__(self, value, family=4):
        self.value = value
        self.family = family

    def __eq__(self, other):
        return (isinstance(other, _StubAddress)
                and (self.family, self.value) == (other.family, other.value))

    def __hash__(self):
        return hash((self.family, self.value))

    def __repr__(self):
        return str(self.value)


class _StubEndpoint:
    __slots__ = ("addr", "port")

    def __init__(self, addr, port):
        self.addr = addr
        self.port = port

    @property
    def family(self):
        return self.addr.family

    def __repr__(self):
        return "%s:%d" % (self.addr, self.port)


class ReplayTransport(Transport):
    """A scripted transport: captures engine writes, accepts injected
    reads.  The replay harness's stand-in for a real connection."""

    def __init__(self, local=None, remote=None, capacity=1 << 30):
        self.local = local or _StubEndpoint(_StubAddress("stub-local"), 0)
        self.remote = remote or _StubEndpoint(_StubAddress("stub-remote"), 0)
        self.capacity = capacity
        self.sent = bytearray()          # everything the engine wrote
        self._recv_buffer = bytearray()  # injected, awaiting recv()
        self._open = True
        self.closed = False
        self.aborted = False
        self.user_timeout = None
        self.on_data = None
        self.on_close = None
        self.on_reset = None
        self.on_user_timeout = None
        self.on_send_space = None
        self.on_established = None

    # -- data path ------------------------------------------------------

    def send(self, data):
        self.sent += data
        return len(data)

    def recv(self, n=None):
        if n is None or n >= len(self._recv_buffer):
            data = bytes(self._recv_buffer)
            self._recv_buffer.clear()
            return data
        data = bytes(self._recv_buffer[:n])
        del self._recv_buffer[:n]
        return data

    def send_space(self):
        return self.capacity if self._open else 0

    def unsent_bytes(self):
        return 0

    # -- harness helpers ------------------------------------------------

    def inject(self, data):
        """Buffer inbound bytes and fire ``on_data`` (as a driver would)."""
        self._recv_buffer += data
        if self.on_data is not None:
            self.on_data(self)

    def take_sent(self):
        """Drain and return everything the engine has written so far."""
        data = bytes(self.sent)
        self.sent.clear()
        return data

    # -- lifecycle ------------------------------------------------------

    def is_open(self):
        return self._open

    def close(self):
        self._open = False
        self.closed = True

    def abort(self):
        self._open = False
        self.aborted = True

    def set_callbacks(self, on_data=None, on_close=None, on_reset=None,
                      on_user_timeout=None, on_send_space=None,
                      on_established=None):
        if on_data is not None:
            self.on_data = on_data
        if on_close is not None:
            self.on_close = on_close
        if on_reset is not None:
            self.on_reset = on_reset
        if on_user_timeout is not None:
            self.on_user_timeout = on_user_timeout
        if on_send_space is not None:
            self.on_send_space = on_send_space
        if on_established is not None:
            self.on_established = on_established

    def tcp_info(self):
        return {
            "state": "ESTABLISHED" if self._open else "CLOSED",
            "mss": 1460, "srtt": None, "rttvar": None, "min_rtt": None,
            "rto": 1.0, "bytes_in_flight": 0, "peer_window": self.capacity,
            "bytes_sent": len(self.sent), "bytes_acked": len(self.sent),
            "bytes_received": 0, "segments_sent": 0, "segments_received": 0,
            "retransmissions": 0, "cwnd_bytes": self.capacity,
            "ssthresh_bytes": None,
        }


class StubDriver(Driver):
    """A driver with no I/O at all: every transport is a
    :class:`ReplayTransport`, time is a :class:`ManualClock`."""

    def __init__(self, seed=0, name="stub"):
        self.clock = ManualClock()
        self.bus = EventBus(self.clock)
        self.rng = random.Random(seed)
        self.name = name
        self.tfo_enabled = False
        self.transports = []

    def connect(self, local_addr, remote, cc=None, tfo_data=b""):
        transport = ReplayTransport(
            local=_StubEndpoint(local_addr, 49152 + len(self.transports)),
            remote=remote,
        )
        self.transports.append(transport)
        return transport

    def listen(self, port, on_accept, cc=None):
        listener = type("StubListener", (), {})()
        listener.port = port or 443
        listener.on_accept = on_accept
        return listener

    def endpoint(self, address, port):
        return _StubEndpoint(address, port)


def bootstrap_ready_session(driver=None, is_client=True,
                            cipher_name="null-tag",
                            key=b"\x11" * 32, iv=b"\x22" * 12,
                            peer_key=b"\x33" * 32, peer_iv=b"\x44" * 12,
                            **session_kwargs):
    """Build a ready post-handshake engine over a stub transport.

    ``key``/``iv`` protect the client-to-server direction and
    ``peer_key``/``peer_iv`` the reverse, so two sessions bootstrapped
    with the same material but opposite ``is_client`` interoperate
    byte-for-byte -- feed one's transport writes to the other's
    :meth:`~TcplsEngine.bytes_received`.

    Returns ``(engine, conn)``; ``conn.tcp`` is the
    :class:`ReplayTransport` carrying the primary connection.
    """
    driver = driver or StubDriver()
    engine = TcplsEngine(driver, is_client=is_client, **session_kwargs)
    transport = driver.connect(
        _StubAddress("client" if is_client else "server"),
        _StubEndpoint(_StubAddress("server" if is_client else "client"),
                      443),
    )
    conn = ConnectionState(engine, 0, transport)
    conn.alive = True
    engine.conns.append(conn)
    engine._wire_tcp_callbacks(conn)
    cipher_cls = get_cipher(cipher_name)
    if is_client:
        engine.install_raw_keys(cipher_cls, key, peer_key, iv, peer_iv)
    else:
        engine.install_raw_keys(cipher_cls, peer_key, key, peer_iv, iv)
    engine._install_control_stream(conn)
    engine.tcpls_enabled = True
    engine.ready = True
    return engine, conn


__all__ = [
    "InputLog",
    "ManualClock",
    "ReplayTransport",
    "StubDriver",
    "bootstrap_ready_session",
]
