"""The scheduling-policy layer: one object, two decision points.

The paper's API claim (Sec. 3.3.3) is that TCPLS exposes the
sender-side record scheduler to the application instead of hiding path
choice behind a kernel policy the way MPTCP does.  This module is that
claim made first-class: a :class:`Policy` decides

- **per record** which coupled stream carries the next record
  (:meth:`Policy.pick_stream` -- the decision
  :meth:`~repro.core.engine.session.TcplsEngine._pump_group` consults
  on every sealed record), and
- **per transfer** which pooled connection carries a whole web object
  (:meth:`Policy.assign_transfer` -- the decision the workload layer's
  :class:`~repro.workload.transfers.TransferManager` consults when a
  page object's dependencies complete).

so a single policy object can drive both the record layer and the
web-workload layer of the stack.

Policies see only the :class:`~repro.core.engine.interfaces.Transport`
surface of each stream's connection (``tcp_info``, ``bytes_in_flight``,
``congestion_window``), so the same policy runs under any driver; at
the transfer layer they see only the read-only
:class:`~repro.workload.pool.PoolView` snapshot.

Replication (the redundant policy) is a declared *capability*
(:attr:`Policy.replicate`), not a return-type convention: the pump
checks the flag and fans the record out to every candidate itself, so
``pick_stream`` always returns exactly one stream.

The evaluation uses round-robin (Sec. 5.1: "sends the records over the
two TCP connections in a round-robin manner").
"""


class RecordContext:
    """What a policy may consult when picking a stream for one record.

    Built per pick by the pump; cheap (three slots) and read-only by
    convention.  ``group`` is the :class:`~repro.core.stream.CoupledGroup`
    being pumped, ``session`` the owning engine, ``now`` the engine
    clock at decision time.
    """

    __slots__ = ("group", "session", "now")

    def __init__(self, group=None, session=None, now=0.0):
        self.group = group
        self.session = session
        self.now = now

    @property
    def pending_bytes(self):
        """Object bytes still queued behind this decision."""
        return len(self.group.pending) if self.group is not None else 0

    def __repr__(self):
        return "RecordContext(group=%s, t=%.6f)" % (
            self.group.group_id if self.group is not None else None,
            self.now,
        )


def _conn_srtt(stream):
    """Smoothed RTT of a stream's connection (inf when unmeasured)."""
    info = stream.connection.tcp.tcp_info()
    srtt = info.get("srtt")
    return srtt if srtt is not None else float("inf")


def _conn_headroom(stream):
    """Does the congestion window still have room for more data?"""
    tcp = stream.connection.tcp
    return tcp.bytes_in_flight() < tcp.congestion_window()


class Policy:
    """Base scheduling policy: both decision points, safe defaults.

    Subclasses override :meth:`pick_stream` (record scheduling) and
    optionally :meth:`assign_transfer` (transfer placement).  The
    legacy ``scheduler.pick(streams)`` surface is kept as an alias so
    two generations of callers keep working.
    """

    #: human-readable policy name, carried on every ``scheduler`` bus
    #: event this policy's decisions emit
    name = "policy"
    #: capability flag: when True the pump replicates each record onto
    #: every candidate stream instead of calling :meth:`pick_stream`
    replicate = False

    # -- decision point 1: record -> stream ------------------------------

    def pick_stream(self, streams, record_ctx=None):
        """Pick the stream that carries the next record.

        ``streams`` is the non-empty list of currently sendable coupled
        streams; ``record_ctx`` (a :class:`RecordContext`, possibly
        None for bare callers) describes the decision point.
        """
        raise NotImplementedError

    def pick(self, streams):
        """Legacy record-scheduler surface (pre-policy callers)."""
        return self.pick_stream(streams, None)

    # -- decision point 2: transfer -> pooled connection -----------------

    def assign_transfer(self, transfer, pool_view):
        """Pick the pool candidate that carries a whole transfer.

        ``pool_view`` is a read-only
        :class:`~repro.workload.pool.PoolView`; the returned candidate
        must come from ``pool_view.candidates()``.  The default
        placement is the browser-ish baseline: reuse an idle connection
        when one exists, open a fresh one while the per-host limit
        allows, otherwise share the least-loaded busy connection.
        """
        candidates = pool_view.candidates()
        if not candidates:
            raise ValueError("no pool candidates for transfer %r"
                             % (transfer,))
        idle = [c for c in candidates if c.kind == "reuse"]
        if idle:
            return idle[0]
        fresh = [c for c in candidates if c.kind == "new"]
        if fresh:
            return fresh[0]
        return min(candidates, key=lambda c: (c.active, c.index))

    def __repr__(self):
        return "%s(%r)" % (type(self).__name__, self.name)


class RoundRobinScheduler(Policy):
    """Alternate over the coupled streams in order."""

    name = "round-robin"

    def __init__(self):
        self._index = 0
        self._transfer_index = 0

    def pick_stream(self, streams, record_ctx=None):
        if not streams:
            raise ValueError("no streams to schedule")
        stream = streams[self._index % len(streams)]
        self._index += 1
        return stream

    def assign_transfer(self, transfer, pool_view):
        """Rotate over every assignable candidate (opening new
        connections counts as one rotation slot, so a fresh pool warms
        up to its per-host limit round by round)."""
        candidates = pool_view.candidates()
        if not candidates:
            raise ValueError("no pool candidates for transfer %r"
                             % (transfer,))
        choice = candidates[self._transfer_index % len(candidates)]
        self._transfer_index += 1
        return choice


class LowestRttScheduler(Policy):
    """MPTCP's default policy: prefer the lowest-SRTT connection with
    congestion-window room; fall back to lowest SRTT."""

    name = "lowest-rtt"

    def pick_stream(self, streams, record_ctx=None):
        if not streams:
            raise ValueError("no streams to schedule")
        with_room = [s for s in streams if _conn_headroom(s)]
        candidates = with_room or list(streams)
        return min(candidates, key=_conn_srtt)

    def assign_transfer(self, transfer, pool_view):
        """Lowest measured RTT wins; an unopened candidate (no RTT yet)
        is only chosen when nothing has been measured."""
        candidates = pool_view.candidates()
        if not candidates:
            raise ValueError("no pool candidates for transfer %r"
                             % (transfer,))
        return min(candidates,
                   key=lambda c: (c.srtt(), c.active, c.index))


class WeightedScheduler(Policy):
    """Deficit-round-robin weighted interleaving.

    Weights map positionally onto the *offered stream list* each pick
    (stream ``i`` gets ``weights[i % len(weights)]``), but credit is
    tracked per stream identity, so streams keep their earned share
    when the candidate list shrinks and grows between picks (a stalled
    connection dropping out must not strand its credit the way the old
    positional accounting did).
    """

    name = "weighted"

    def __init__(self, weights):
        if not weights or any(w <= 0 for w in weights):
            raise ValueError("weights must be positive")
        self.weights = list(weights)
        self._credit = {}

    @staticmethod
    def _key(stream):
        """Stable identity for credit bookkeeping: the TCPLS stream id
        when there is one, the object itself otherwise (unit tests
        schedule over plain placeholders)."""
        key = getattr(stream, "stream_id", None)
        return key if key is not None else stream

    def _weight_of(self, index):
        return self.weights[index % len(self.weights)]

    def pick_stream(self, streams, record_ctx=None):
        if not streams:
            raise ValueError("no streams to schedule")
        keys = [self._key(s) for s in streams]
        # Drop credit of streams no longer offered; a refill must not
        # resurrect a detached stream's balance onto its successor.
        live = set(keys)
        for stale in [k for k in self._credit if k not in live]:
            del self._credit[stale]
        for _round in (0, 1):
            for index, stream in enumerate(streams):
                if self._credit.get(keys[index], 0) > 0:
                    self._credit[keys[index]] -= 1
                    return stream
            # Everyone is out of credit: refill one quantum per offered
            # stream (deficit round-robin); the retry below must succeed
            # because weights are strictly positive.
            for index, key in enumerate(keys):
                self._credit[key] = (self._credit.get(key, 0)
                                     + self._weight_of(index))
        raise AssertionError("refilled credits must be spendable")


class RedundantScheduler(Policy):
    """Send every record on every stream (latency-critical traffic;
    the receiver's reorder buffer discards the duplicates).

    Declared through the :attr:`~Policy.replicate` capability flag: the
    pump fans the record out itself, so :meth:`pick_stream` -- used
    when a replicating policy is asked for exactly one stream -- simply
    returns the first candidate.
    """

    name = "redundant"
    replicate = True

    def pick_stream(self, streams, record_ctx=None):
        if not streams:
            raise ValueError("no streams to schedule")
        return streams[0]

    def pick(self, streams):
        """Legacy surface: historical callers expect the full list."""
        if not streams:
            raise ValueError("no streams to schedule")
        return list(streams)


class PredictivePolicy(Policy):
    """Estimate each candidate's completion time before committing.

    The trick the workload layer exists to exercise: because the engine
    is sans-I/O and the simulator deterministic, a candidate's future
    is cheap to compute.  For every candidate the policy forks a
    throwaway clock (a :class:`~repro.core.engine.replay.ManualClock`)
    and fast-forwards a fluid-style congestion model seeded from the
    candidate's *live* transport state -- srtt, cwnd, bytes in flight,
    queued backlog -- until the hypothetical transfer completes, then
    commits to the candidate with the earliest estimated finish.

    The estimator intentionally mirrors the fluid engine's flow model
    (slow-start doubling each RTT until a rate cap binds; see
    ``repro.net.fluid``): it is a *model* of the candidate's future,
    not a replay of the whole network -- cross-traffic that appears
    after the decision is not predicted (see DESIGN.md for the
    caveats).
    """

    name = "predictive"

    #: modelled segment size for turning cwnd into a rate
    MSS = 1500.0

    def __init__(self, rate_cap_bps=None, horizon=30.0):
        #: optional known path capacity; None = cwnd/srtt only
        self.rate_cap_bps = rate_cap_bps
        #: give up estimating past this many simulated seconds
        self.horizon = horizon
        #: estimates of the last decision: ``[(estimate_s, label)]``
        self.last_estimates = []

    # -- the forked-clock estimator --------------------------------------

    def estimate_completion(self, nbytes, srtt, cwnd,
                            backlog=0.0, rate_cap_bps=None):
        """Fast-forward a forked clock until ``nbytes`` would be fully
        delivered on a path with the given state; returns seconds.

        One RTT per step: ``cwnd`` bytes leave, then the window doubles
        (slow start) until the cap ``rate_cap_bps * srtt`` binds --
        exactly the cohort model the fluid engine advances in closed
        form, run here step-by-step on a private ManualClock.
        """
        from repro.core.engine.replay import ManualClock

        if srtt is None or srtt <= 0.0 or srtt == float("inf"):
            return float("inf")
        cap = rate_cap_bps if rate_cap_bps is not None else self.rate_cap_bps
        cwnd = max(float(cwnd), self.MSS)
        cwnd_cap = (cap / 8.0) * srtt if cap else float("inf")
        remaining = float(nbytes) + float(backlog)
        clock = ManualClock()
        while remaining > 0.0 and clock.now < self.horizon:
            window = min(cwnd, cwnd_cap)
            if remaining <= window:
                # Partial final window: sending time scales with the
                # fraction used, plus half an RTT for the last records
                # to land.
                clock.advance(srtt * (remaining / window) + srtt / 2.0)
                remaining = 0.0
                break
            clock.advance(srtt)
            remaining -= window
            cwnd = min(cwnd * 2.0, cwnd_cap) if cwnd_cap != float("inf") \
                else cwnd * 2.0
        return clock.now if remaining <= 0.0 else float("inf")

    # -- decision point 1 -------------------------------------------------

    def pick_stream(self, streams, record_ctx=None):
        if not streams:
            raise ValueError("no streams to schedule")
        nbytes = (record_ctx.pending_bytes if record_ctx is not None
                  else self.MSS) or self.MSS
        self.last_estimates = []
        best = None
        best_eta = None
        for stream in streams:
            tcp = stream.connection.tcp
            info = tcp.tcp_info()
            eta = self.estimate_completion(
                nbytes, info.get("srtt"), tcp.congestion_window(),
                backlog=tcp.unsent_bytes() + tcp.bytes_in_flight(),
            )
            self.last_estimates.append((eta, stream))
            if best_eta is None or eta < best_eta:
                best, best_eta = stream, eta
        if best_eta == float("inf"):
            # Nothing measurable yet (fresh connections): fall back to
            # first candidate rather than guessing.
            return streams[0]
        return best

    # -- decision point 2 -------------------------------------------------

    def assign_transfer(self, transfer, pool_view):
        candidates = pool_view.candidates()
        if not candidates:
            raise ValueError("no pool candidates for transfer %r"
                             % (transfer,))
        size = float(getattr(transfer, "size", 0) or self.MSS)
        self.last_estimates = []
        best = None
        best_key = None
        for candidate in candidates:
            srtt = candidate.srtt()
            if srtt == float("inf"):
                # Unopened connection: model it as the host's typical
                # path (the view's median measured RTT) plus one
                # handshake RTT of setup, from a cold IW10 window.
                typical = pool_view.typical_srtt()
                if typical is None:
                    eta = float("inf")
                else:
                    eta = typical + self.estimate_completion(
                        size, typical, 10 * self.MSS)
            else:
                eta = self.estimate_completion(
                    size, srtt, candidate.cwnd(),
                    backlog=candidate.backlog_bytes())
            self.last_estimates.append((eta, candidate))
            key = (eta, candidate.active, candidate.index)
            if best_key is None or key < best_key:
                best, best_key = candidate, key
        if best_key[0] == float("inf"):
            return Policy.assign_transfer(self, transfer, pool_view)
        return best


__all__ = [
    "LowestRttScheduler",
    "Policy",
    "PredictivePolicy",
    "RecordContext",
    "RedundantScheduler",
    "RoundRobinScheduler",
    "WeightedScheduler",
]
