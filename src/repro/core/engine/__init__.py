"""Sans-I/O TCPLS protocol engine.

Everything in this package operates purely on *inputs* (bytes
received, connection writable, connection failed/closed, timer fired)
and produces *effects* through the narrow :class:`Transport` /
:class:`Clock` interfaces of :mod:`repro.core.engine.interfaces` --
there are **no** imports of :mod:`repro.net` or :mod:`repro.tcp`
anywhere under ``repro.core.engine`` (a lint test enforces this).

Drivers bind the engine to an environment:

- :class:`repro.core.drivers.sim.SimDriver` runs it inside the
  discrete-event simulator (the original, bit-identical code path);
- :class:`repro.core.drivers.sockets.SocketDriver` runs the *same*
  engine over real kernel TCP sockets via :mod:`selectors`.
"""

from repro.core.engine.interfaces import Clock, Driver, Transport
from repro.core.engine.replay import (
    InputLog,
    ManualClock,
    ReplayTransport,
    StubDriver,
    bootstrap_ready_session,
)
from repro.core.engine.session import (
    DEFAULT_UNSENT_TARGET,
    ConnectionState,
    TcplsEngine,
)
from repro.core.engine.client import TcplsClientEngine
from repro.core.engine.server import TcplsServerEngine, TcplsServerSessionEngine

__all__ = [
    "Clock",
    "ConnectionState",
    "DEFAULT_UNSENT_TARGET",
    "Driver",
    "InputLog",
    "ManualClock",
    "ReplayTransport",
    "StubDriver",
    "TcplsClientEngine",
    "TcplsEngine",
    "TcplsServerEngine",
    "TcplsServerSessionEngine",
    "Transport",
    "bootstrap_ready_session",
]
