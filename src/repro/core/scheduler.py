"""Record schedulers for coupled streams (compatibility re-export).

The implementations moved to :mod:`repro.core.engine.scheduler` with
the sans-I/O split -- schedulers only consult the Transport surface
(``tcp_info``, ``bytes_in_flight``, ``congestion_window``), so the same
policies run under any driver.  This module keeps the historical import
path alive.
"""

from repro.core.engine.scheduler import (  # noqa: F401
    LowestRttScheduler,
    RedundantScheduler,
    RoundRobinScheduler,
    WeightedScheduler,
)

__all__ = [
    "LowestRttScheduler",
    "RedundantScheduler",
    "RoundRobinScheduler",
    "WeightedScheduler",
]
