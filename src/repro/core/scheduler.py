"""Record schedulers for coupled streams (compatibility re-export).

The implementations moved to :mod:`repro.core.engine.policy` with the
policy-layer promotion -- a :class:`~repro.core.engine.policy.Policy`
owns both the per-record stream decision (``pick_stream``) and the
per-transfer connection decision (``assign_transfer``) consulted by the
web-workload layer.  Policies only consult the Transport surface
(``tcp_info``, ``bytes_in_flight``, ``congestion_window``), so the same
policies run under any driver.  This module keeps the historical import
path alive.
"""

from repro.core.engine.policy import (  # noqa: F401
    LowestRttScheduler,
    Policy,
    PredictivePolicy,
    RecordContext,
    RedundantScheduler,
    RoundRobinScheduler,
    WeightedScheduler,
)

__all__ = [
    "LowestRttScheduler",
    "Policy",
    "PredictivePolicy",
    "RecordContext",
    "RedundantScheduler",
    "RoundRobinScheduler",
    "WeightedScheduler",
]
