"""Typed TCPLS exception hierarchy.

Every error the session layer raises deliberately derives from
:class:`TcplsError`, so applications can catch one base class instead
of fishing for bare ``RuntimeError`` strings.  :class:`TcplsError`
itself subclasses :class:`RuntimeError` for backwards compatibility
with code (and tests) written against the earlier ad-hoc raises.
"""


class TcplsError(RuntimeError):
    """Base class for every TCPLS session-layer error."""


class SessionNotReadyError(TcplsError):
    """An operation requires a completed handshake (``session.ready``)."""

    def __init__(self, message="TCPLS session not ready"):
        super().__init__(message)


class SessionStateError(TcplsError):
    """The session is in the wrong state for the requested operation
    (e.g. opening a second primary connection)."""


class JoinError(TcplsError):
    """A join cannot be attempted: the session fell back to plain TLS
    or the cookie/token budget is exhausted."""


class StreamClosedError(TcplsError):
    """Data was queued on a stream or group that is already closed."""


class DriverError(TcplsError):
    """A transport driver failed (socket error, event-loop timeout, or
    an operation the driver does not support)."""


__all__ = [
    "DriverError",
    "JoinError",
    "SessionNotReadyError",
    "SessionStateError",
    "StreamClosedError",
    "TcplsError",
]
