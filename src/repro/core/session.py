"""Simulator-facing TCPLS session (glue over the sans-I/O engine).

The protocol logic lives in :mod:`repro.core.engine.session`; this
module binds it to the discrete-event simulator and preserves the
historical ``TcplsSession(sim, is_client, ...)`` constructor.  The
transports a simulator session drives are the simulator's own
:class:`repro.tcp.connection.TcpConnection` objects, so the split adds
no indirection on the data path.
"""

from repro.core.engine.interfaces import Driver
from repro.core.engine.session import (  # noqa: F401  (re-exports)
    DEFAULT_UNSENT_TARGET,
    OPT_USER_TIMEOUT,
    ConnectionState,
    TcplsEngine,
)
from repro.core.errors import DriverError


class _BareSimDriver(Driver):
    """Clock/bus/rng view of a simulator for sessions built without a
    TCP stack (connections are attached externally)."""

    def __init__(self, sim):
        from repro.core.drivers.sim import SimClock

        self.sim = sim
        self.clock = SimClock(sim)
        self.bus = sim.bus
        self.rng = sim.rng
        self.name = "sim"

    def connect(self, local_addr, remote, cc=None, tfo_data=b""):
        raise DriverError("session has no TCP stack to connect with")

    def listen(self, port, on_accept, cc=None):
        raise DriverError("session has no TCP stack to listen with")

    def endpoint(self, address, port):
        from repro.net.address import Endpoint

        return Endpoint(address, port)


class TcplsSession(TcplsEngine):
    """A TCPLS session running inside the simulator.

    ``sim`` may also be a fully formed
    :class:`~repro.core.engine.interfaces.Driver` (that is how the
    engine subclasses reach this constructor); passing a
    :class:`repro.net.Simulator` wraps it in a bare driver.
    """

    def __init__(self, sim, is_client, **session_kwargs):
        if isinstance(sim, Driver):
            driver = sim
        else:
            driver = session_kwargs.pop("driver", None) or \
                _BareSimDriver(sim)
        super().__init__(driver, is_client, **session_kwargs)
        #: the simulator, when this session runs under one (kept for
        #: applications and tests that schedule against it directly)
        self.sim = getattr(driver, "sim", None)
