"""Simulator-facing TCPLS client (glue over the sans-I/O engine).

All protocol behaviour -- handshake extensions, joins, fallback,
failover path probing -- lives in
:class:`repro.core.engine.client.TcplsClientEngine`; this class merely
binds it to a simulated host's TCP stack and keeps the historical
``TcplsClient(sim, stack, psk, ...)`` constructor.
"""

from repro.core.drivers.sim import SimDriver
from repro.core.engine.client import TcplsClientEngine
from repro.core.session import TcplsSession


class TcplsClient(TcplsClientEngine, TcplsSession):
    """Client-side TCPLS session inside the simulator."""

    def __init__(self, sim, stack, psk, cipher_names=("null-tag",),
                 enable_tcpls=True, fallback_retry=True, join_timeout=1.0,
                 **session_kwargs):
        driver = SimDriver(sim, stack)
        TcplsClientEngine.__init__(
            self, driver, psk, cipher_names=cipher_names,
            enable_tcpls=enable_tcpls, fallback_retry=fallback_retry,
            join_timeout=join_timeout, **session_kwargs,
        )
        self.stack = stack
