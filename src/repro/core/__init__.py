"""TCPLS: modern transport services from TCP + TLS (the paper's core).

The package implements every mechanism of Secs. 3-4 of the paper:

- **TCPLS records** (:mod:`repro.core.record`): TLS 1.3 encrypted
  records whose *inner* type space is extended with stream data, ACK,
  SYNC, TCP-option, eBPF and control types; TCPLS control fields sit at
  the *end* of the plaintext so receivers can decrypt into contiguous
  buffers and truncate (the zero-copy receive path of Sec. 3.1).
- **Per-stream crypto contexts** (:mod:`repro.core.crypto_context`):
  one application key, per-stream IVs derived as in Fig. 2 (stream id
  summed into the left 32 IV bits, record sequence XORed into the right
  64), giving every record of every stream a unique nonce.
- **Stream multiplexing** with implicit stream ids recovered by AEAD
  tag trial (:class:`~repro.core.session.TcplsSession` demux).
- **Session management**: TCPLS Hello negotiation, SESSID + single-use
  COOKIE join of additional TCP connections, server address
  advertisement (Sec. 3.2, Fig. 3).
- **Failover** (Sec. 3.3.2, Fig. 4): record-level ACKs, explicit SYNC,
  as-is ciphertext replay onto a joined connection, triggered by RST /
  FIN / the User Timeout shipped inside encrypted records.
- **Application-triggered migration and stream steering**, and
  **coupled streams** with an explicit trailing sequence number and a
  receive-side reordering heap for bandwidth aggregation (Sec. 3.3.3).
- **eBPF code remote attachment** (Sec. 4.4): chunked transfer of
  verified congestion-controller bytecode.
- An event-driven application API in the spirit of Fig. 5
  (:mod:`repro.core.api`).
"""

from repro.core.record import (
    RECORD_TYPE_ACK,
    RECORD_TYPE_CONTROL,
    RECORD_TYPE_EBPF,
    RECORD_TYPE_PING,
    RECORD_TYPE_STREAM_DATA,
    RECORD_TYPE_SYNC,
    RECORD_TYPE_TCP_OPTION,
    TcplsRecord,
)
from repro.core.crypto_context import StreamCryptoContext, derive_stream_iv
from repro.core.errors import (
    DriverError,
    JoinError,
    SessionNotReadyError,
    SessionStateError,
    StreamClosedError,
    TcplsError,
)
from repro.core.session import TcplsEngine, TcplsSession
from repro.core.stream import TcplsStream
from repro.core.client import TcplsClient
from repro.core.server import TcplsServer
from repro.core.scheduler import (
    LowestRttScheduler,
    Policy,
    PredictivePolicy,
    RecordContext,
    RedundantScheduler,
    RoundRobinScheduler,
    WeightedScheduler,
)
from repro.core.api import TcplsConnection, tcpls_connect

__all__ = [
    "DriverError",
    "JoinError",
    "LowestRttScheduler",
    "RECORD_TYPE_ACK",
    "RECORD_TYPE_CONTROL",
    "RECORD_TYPE_EBPF",
    "RECORD_TYPE_PING",
    "RECORD_TYPE_STREAM_DATA",
    "RECORD_TYPE_SYNC",
    "RECORD_TYPE_TCP_OPTION",
    "Policy",
    "PredictivePolicy",
    "RecordContext",
    "RedundantScheduler",
    "RoundRobinScheduler",
    "SessionNotReadyError",
    "SessionStateError",
    "StreamClosedError",
    "StreamCryptoContext",
    "TcplsClient",
    "TcplsConnection",
    "TcplsEngine",
    "TcplsError",
    "TcplsRecord",
    "TcplsServer",
    "TcplsSession",
    "TcplsStream",
    "WeightedScheduler",
    "derive_stream_iv",
    "tcpls_connect",
]
