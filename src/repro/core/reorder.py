"""Receive-side reordering heap for coupled streams.

When coupled streams span several TCP connections, decrypted records
arrive interleaved; each carries an explicit coupled sequence number in
its control tail.  The heap releases payloads in coupled-sequence order
(Sec. 4.3: "When a record is received out-of-sequence, its content is
pushed on an efficient reordering heap").
"""

import heapq


class ReorderBuffer:
    """Min-heap keyed by sequence number, delivering a gapless prefix."""

    def __init__(self, first_seq=0):
        self.next_seq = first_seq
        self._heap = []
        self._pending = {}
        self.max_depth = 0
        self.out_of_order = 0
        #: payload bytes parked waiting for a gap to fill (feeds the
        #: per-session memory budget in repro.core.drivers.multi)
        self.buffered_bytes = 0

    def push(self, seq, payload):
        """Insert one item; returns the list of in-order payloads released.

        Duplicate sequence numbers (failover replays) are dropped.
        """
        if seq < self.next_seq or seq in self._pending:
            return []
        if seq != self.next_seq:
            self.out_of_order += 1
        heapq.heappush(self._heap, seq)
        self._pending[seq] = payload
        # Payloads are bytes on the session path; test harnesses push
        # arbitrary sentinels, which count as zero-sized.
        self.buffered_bytes += len(payload) if hasattr(payload, "__len__") \
            else 0
        self.max_depth = max(self.max_depth, len(self._heap))
        released = []
        while self._heap and self._heap[0] == self.next_seq:
            head = heapq.heappop(self._heap)
            item = self._pending.pop(head)
            self.buffered_bytes -= len(item) if hasattr(item, "__len__") \
                else 0
            released.append(item)
            self.next_seq += 1
        return released

    @property
    def depth(self):
        """Items waiting for a gap to fill."""
        return len(self._heap)
