"""qlog trace writer."""

import json


class QlogTracer:
    """Collects events and serialises them qlog-style."""

    def __init__(self, sim, title="tcpls-session", vantage_point="client"):
        self.sim = sim
        self.title = title
        self.vantage_point = vantage_point
        self.events = []

    def log(self, category, event, data=None):
        """Record one event at the current simulated time."""
        self.events.append({
            "time": round(self.sim.now * 1000.0, 6),  # qlog uses ms
            "category": category,
            "event": event,
            "data": data or {},
        })

    def to_dict(self):
        return {
            "qlog_version": "0.4",
            "title": self.title,
            "traces": [{
                "vantage_point": {"type": self.vantage_point},
                "events": self.events,
            }],
        }

    def dumps(self, indent=None):
        return json.dumps(self.to_dict(), indent=indent)

    def dump(self, path, indent=2):
        with open(path, "w") as fh:
            fh.write(self.dumps(indent=indent))


def attach_session_tracer(session, tracer, trace_records=False):
    """Wire a tracer into a TCPLS session's callback points.

    Existing application callbacks are preserved (the tracer chains
    them).  With ``trace_records=True`` every record sent/received is
    logged too (one event per record -- sized for short sessions).
    """
    if trace_records:
        session.qlog = tracer
    def chain(attr, category, event, datafn):
        previous = getattr(session, attr)

        def wrapper(*args):
            tracer.log(category, event, datafn(*args))
            if previous is not None:
                previous(*args)

        setattr(session, attr, wrapper)

    chain("on_ready", "connectivity", "session_ready", lambda s: {})
    chain("on_conn_established", "connectivity", "connection_established",
          lambda c: {"conn": c.index, "local": str(c.tcp.local),
                     "remote": str(c.tcp.remote)})
    chain("on_conn_failed", "connectivity", "connection_failed",
          lambda c, r: {"conn": c.index, "reason": r})
    chain("on_failover", "recovery", "failover",
          lambda o, n: {"from": o.index, "to": n.index})
    chain("on_join", "connectivity", "connection_joined",
          lambda c: {"conn": c.index})
    chain("on_ebpf_attached", "extensibility", "ebpf_cc_attached",
          lambda c, p: {"conn": c.index, "program": p})
    return tracer
