"""qlog trace writer.

:class:`QlogTracer` is a qlog-format *sink* for the observability bus
(:mod:`repro.obs`): subscribe it to ``sim.bus`` and every event it
receives becomes one qlog event in the output document.  The manual
:meth:`QlogTracer.log` entry point remains for ad-hoc events, and
:func:`attach_session_tracer` remains as the session-scoped shim.
"""

import json


class QlogTracer:
    """Collects events and serialises them qlog-style.

    Usable three ways:

    - as a bus sink: ``sim.bus.subscribe(tracer, categories=...)``
      (it implements the ``on_event`` sink protocol);
    - via :func:`attach_session_tracer` for one session's lifecycle
      (and optionally its record stream);
    - manually, through :meth:`log`.
    """

    def __init__(self, sim, title="tcpls-session", vantage_point="client"):
        self.sim = sim
        self.title = title
        self.vantage_point = vantage_point
        self.events = []

    def log(self, category, event, data=None):
        """Record one event at the current simulated time."""
        self.events.append({
            "time": round(self.sim.now * 1000.0, 6),  # qlog uses ms
            "category": category,
            "event": event,
            "data": data or {},
        })

    def on_event(self, event):
        """Bus-sink protocol: append one :class:`repro.obs.Event`."""
        self.events.append(event.to_dict())

    def to_dict(self):
        return {
            "qlog_version": "0.4",
            "title": self.title,
            "traces": [{
                "vantage_point": {"type": self.vantage_point},
                "events": self.events,
            }],
        }

    def dumps(self, indent=None):
        return json.dumps(self.to_dict(), indent=indent)

    def dump(self, path, indent=2):
        with open(path, "w") as fh:
            fh.write(self.dumps(indent=indent))


def attach_session_tracer(session, tracer, trace_records=False):
    """Wire a tracer into a TCPLS session's callback points.

    Existing application callbacks are preserved (the tracer chains
    them).  Lifecycle events (ready / established / failed / failover /
    join / eBPF) are always traced.

    ``trace_records=True`` additionally subscribes the tracer to the
    session's ``tls``-category events on the bus — one event per record
    sealed/opened/rejected, sized for short sessions.  With the default
    ``trace_records=False`` no record-level events are captured at all;
    to get them with different scoping (e.g. every session at once),
    subscribe the tracer to the bus yourself::

        sim.bus.subscribe(tracer, categories=("tls",))
    """
    if trace_records:
        session.sim.bus.subscribe(
            tracer, categories=("tls",),
            where={"session": session.obs_id},
        )

    def chain(attr, category, event, datafn):
        previous = getattr(session, attr)

        def wrapper(*args):
            tracer.log(category, event, datafn(*args))
            if previous is not None:
                previous(*args)

        setattr(session, attr, wrapper)

    chain("on_ready", "connectivity", "session_ready", lambda s: {})
    chain("on_conn_established", "connectivity", "connection_established",
          lambda c: {"conn": c.index, "local": str(c.tcp.local),
                     "remote": str(c.tcp.remote)})
    chain("on_conn_failed", "connectivity", "connection_failed",
          lambda c, r: {"conn": c.index, "reason": r})
    chain("on_failover", "recovery", "failover",
          lambda o, n: {"from": o.index, "to": n.index})
    chain("on_join", "connectivity", "connection_joined",
          lambda c: {"conn": c.index})
    chain("on_ebpf_attached", "extensibility", "ebpf_cc_attached",
          lambda c, p: {"conn": c.index, "program": p})
    return tracer
