"""qlog-style structured event tracing.

The paper's artefact includes QLOG/QVIS support; this module writes the
same shape of trace: a JSON document with a stream of timestamped,
categorised events, suitable for offline inspection of a simulated
session (records sent/received, failovers, joins, congestion events).

:class:`QlogTracer` is a sink for the :mod:`repro.obs` event bus —
subscribe it to ``sim.bus`` (any categories, any scope) and dump the
result; the output loads directly into QVIS-style viewers.
"""

from repro.qlog.writer import QlogTracer, attach_session_tracer

__all__ = ["QlogTracer", "attach_session_tracer"]
