"""Attachable protocol invariant checkers.

An :class:`InvariantChecker` is a bus sink that watches the event
stream and records :class:`Violation` objects when the protocol breaks
one of its rules.  Checkers are pure observers: they never mutate
protocol state, so any test or benchmark can arm all of them with one
call::

    harness = arm_invariants(sim)          # before the scenario runs
    ...
    sim.run(until=30)
    harness.assert_clean()                 # raises with full details

With ``strict=True`` the first violation raises immediately
(:class:`InvariantViolationError`), which pins the failure to the exact
simulated instant it happened.

Shipped checkers (see DESIGN.md for the event taxonomy they consume):

- :class:`MonotoneSeqChecker` — per (session, stream) record send
  sequences count 0, 1, 2, ... with no gap or regression;
- :class:`NonceUniquenessChecker` — no (session, stream, seq) is ever
  sealed twice: per-crypto-context record numbers are single-use;
- :class:`CwndSanityChecker` — cwnd stays positive and ssthresh, once
  finite, stays >= the minimum window;
- :class:`FailoverSanityChecker` — failovers move streams onto a
  *different*, established, not-failed connection;
- :class:`LinkConservationChecker` — per link, packets out + packets
  dropped never exceed packets in (nothing is created or double-counted
  on a pipe).
"""

from repro.obs.events import (
    CAT_LINK,
    CAT_RECOVERY,
    CAT_SESSION,
    CAT_TCP,
    CAT_TLS,
)


class Violation:
    """One structured invariant violation."""

    __slots__ = ("time", "invariant", "message", "event", "details")

    def __init__(self, time, invariant, message, event=None, details=None):
        self.time = time
        self.invariant = invariant
        self.message = message
        self.event = event
        self.details = details or {}

    def to_dict(self):
        return {
            "time": self.time,
            "invariant": self.invariant,
            "message": self.message,
            "details": dict(self.details),
        }

    def __repr__(self):
        return "Violation(t=%.6f, %s: %s)" % (
            self.time, self.invariant, self.message
        )


class InvariantViolationError(AssertionError):
    """Raised in strict mode (and by ``assert_clean``)."""

    def __init__(self, violations):
        self.violations = list(violations)
        lines = ["%d protocol invariant violation(s):" % len(self.violations)]
        lines += ["  - %r" % v for v in self.violations[:20]]
        if len(self.violations) > 20:
            lines.append("  ... and %d more" % (len(self.violations) - 20))
        super().__init__("\n".join(lines))


class InvariantChecker:
    """Base class: subscribe to ``categories``, record violations.

    Subclasses implement :meth:`on_event` (called for every event in
    their categories) and may override :meth:`finish` for end-of-run
    checks.  Use :meth:`violate` to record a finding.
    """

    #: categories this checker must be subscribed to
    categories = None
    #: short stable identifier used in violation records
    name = "invariant"

    def __init__(self, strict=False):
        self.strict = strict
        self.violations = []

    def on_event(self, event):  # pragma: no cover - abstract
        raise NotImplementedError

    def finish(self):
        """End-of-run hook (e.g. conservation residue checks)."""

    def violate(self, event, message, **details):
        violation = Violation(
            time=event.time if event is not None else -1.0,
            invariant=self.name,
            message=message,
            event=event,
            details=details,
        )
        self.violations.append(violation)
        if self.strict:
            raise InvariantViolationError([violation])
        return violation


class MonotoneSeqChecker(InvariantChecker):
    """Record send sequences per (session, stream) must be exactly
    0, 1, 2, ...  A regression means a crypto context was rewound; a
    gap means a record was sealed and lost before the wire."""

    categories = (CAT_TLS,)
    name = "monotone-seq"

    def __init__(self, strict=False):
        super().__init__(strict)
        self._next = {}

    def on_event(self, event):
        if event.name != "record_sealed":
            return
        key = (event.data.get("session"), event.data.get("stream"))
        seq = event.data.get("seq")
        expected = self._next.get(key, 0)
        if seq != expected:
            self.violate(
                event,
                "stream %s sealed seq %s, expected %s"
                % (key[1], seq, expected),
                session=key[0], stream=key[1], seq=seq, expected=expected,
            )
        self._next[key] = (seq if seq is not None else expected) + 1


class NonceUniquenessChecker(InvariantChecker):
    """No (session, stream, seq) may be sealed twice: per-stream IVs
    plus single-use record numbers are what keep AEAD nonces unique
    (Fig. 2 of the paper); re-sealing at an old sequence is catastrophic
    key reuse.  (Failover replays stored *ciphertexts*, which never
    re-seals, so a correct stack never trips this.)"""

    categories = (CAT_TLS,)
    name = "nonce-unique"

    def __init__(self, strict=False):
        super().__init__(strict)
        self._sealed = set()

    def on_event(self, event):
        if event.name != "record_sealed":
            return
        key = (event.data.get("session"), event.data.get("stream"),
               event.data.get("seq"))
        if key in self._sealed:
            self.violate(
                event,
                "nonce reuse: stream %s seq %s sealed twice"
                % (key[1], key[2]),
                session=key[0], stream=key[1], seq=key[2],
            )
        self._sealed.add(key)


class CwndSanityChecker(InvariantChecker):
    """cwnd must stay strictly positive; a finite ssthresh must stay at
    or above the controller's minimum window (RFC 5681 collapse floor).
    """

    categories = (CAT_TCP,)
    name = "cwnd-sane"

    def on_event(self, event):
        if event.name != "cwnd_updated":
            return
        cwnd = event.data.get("cwnd")
        ssthresh = event.data.get("ssthresh")
        min_cwnd = event.data.get("min_cwnd", 1)
        conn = event.data.get("conn")
        if cwnd is None or cwnd <= 0:
            self.violate(event, "conn %s cwnd %r not positive" % (conn, cwnd),
                         conn=conn, cwnd=cwnd)
        if ssthresh is not None and ssthresh < min_cwnd:
            self.violate(
                event,
                "conn %s ssthresh %r below minimum window %r"
                % (conn, ssthresh, min_cwnd),
                conn=conn, ssthresh=ssthresh, min_cwnd=min_cwnd,
            )


class FailoverSanityChecker(InvariantChecker):
    """Failover must land on a different connection that completed its
    handshake and has not itself failed (Sec. 3.3.2: streams migrate to
    a *working* connection); joins must not resurrect failed ids."""

    categories = (CAT_SESSION, CAT_RECOVERY)
    name = "failover-legal"

    def __init__(self, strict=False):
        super().__init__(strict)
        self._established = set()   # (session, conn)
        self._failed = set()

    def on_event(self, event):
        data = event.data
        session = data.get("session")
        if event.name == "conn_established" or event.name == "join":
            key = (session, data.get("conn"))
            self._established.add(key)
            self._failed.discard(key)
        elif event.name == "conn_failed":
            self._failed.add((session, data.get("conn")))
        elif event.name == "failover":
            source = (session, data.get("from"))
            target = (session, data.get("to"))
            if source == target:
                self.violate(event,
                             "failover onto the failed connection %s"
                             % (data.get("to"),),
                             session=session, conn=data.get("to"))
            if target in self._failed:
                self.violate(event,
                             "failover onto failed connection %s"
                             % (data.get("to"),),
                             session=session, conn=data.get("to"))
            elif target not in self._established:
                self.violate(event,
                             "failover onto never-established connection %s"
                             % (data.get("to"),),
                             session=session, conn=data.get("to"))


class LinkConservationChecker(InvariantChecker):
    """Per link: every delivered or dropped packet was first enqueued,
    so ``delivered + dropped <= enqueued`` at every instant, and the
    residue (in flight) is never negative.  ``finish()`` re-checks the
    final residue so a counting bug at the tail of a run still fails."""

    categories = (CAT_LINK,)
    name = "link-conservation"

    def __init__(self, strict=False):
        super().__init__(strict)
        self._counts = {}   # link -> [enqueued, delivered, dropped]

    def on_event(self, event):
        link = event.data.get("link")
        counts = self._counts.setdefault(link, [0, 0, 0])
        if event.name == "enqueue":
            counts[0] += 1
            return
        if event.name == "deliver":
            counts[1] += 1
        elif event.name == "drop":
            counts[2] += 1
        else:
            return
        if counts[1] + counts[2] > counts[0]:
            self.violate(
                event,
                "link %s: delivered+dropped (%d+%d) exceeds enqueued (%d)"
                % (link, counts[1], counts[2], counts[0]),
                link=link, enqueued=counts[0], delivered=counts[1],
                dropped=counts[2],
            )

    def finish(self):
        for link, (enq, dlv, drp) in self._counts.items():
            if dlv + drp > enq:
                self.violate(
                    None,
                    "link %s: final residue negative (%d enqueued, %d "
                    "delivered, %d dropped)" % (link, enq, dlv, drp),
                    link=link, enqueued=enq, delivered=dlv, dropped=drp,
                )


#: the checkers ``arm_invariants`` installs by default
DEFAULT_CHECKERS = (
    MonotoneSeqChecker,
    NonceUniquenessChecker,
    CwndSanityChecker,
    FailoverSanityChecker,
    LinkConservationChecker,
)


class InvariantHarness:
    """All armed checkers plus their bus subscriptions."""

    def __init__(self, bus, checkers):
        self.bus = bus
        self.checkers = list(checkers)
        self._subs = [
            bus.subscribe(checker, categories=checker.categories)
            for checker in self.checkers
        ]

    @property
    def violations(self):
        out = []
        for checker in self.checkers:
            out.extend(checker.violations)
        out.sort(key=lambda v: v.time)
        return out

    def finish(self):
        """Run end-of-run checks; returns all violations."""
        for checker in self.checkers:
            checker.finish()
        return self.violations

    def assert_clean(self):
        """Finish and raise :class:`InvariantViolationError` if any
        checker recorded a violation."""
        violations = self.finish()
        if violations:
            raise InvariantViolationError(violations)

    def disarm(self):
        for sub in self._subs:
            self.bus.unsubscribe(sub)
        self._subs = []


def arm_invariants(sim, checkers=None, strict=False):
    """Arm invariant checkers on a simulation with one call.

    Parameters
    ----------
    sim:
        The :class:`~repro.net.simulator.Simulator` (its ``bus`` is
        subscribed).
    checkers:
        Iterable of checker *classes* (default: all of
        :data:`DEFAULT_CHECKERS`) or ready-made instances.
    strict:
        Raise on the first violation instead of collecting.

    Returns an :class:`InvariantHarness`.
    """
    instances = []
    for checker in (checkers if checkers is not None else DEFAULT_CHECKERS):
        if isinstance(checker, InvariantChecker):
            instances.append(checker)
        else:
            instances.append(checker(strict=strict))
    return InvariantHarness(sim.bus, instances)
