"""The per-simulation event bus.

Every :class:`~repro.net.simulator.Simulator` owns one
:class:`EventBus` (``sim.bus``).  Instrumented layers *emit* onto it;
sinks *subscribe*, optionally narrowed to categories and to a scope
(e.g. one session or one stream).  With no matching subscriber an
``emit`` is a handful of attribute lookups, so instrumentation can stay
permanently wired into hot paths; emitters guarding expensive
data-dict construction should additionally check :meth:`EventBus.wants`.

A sink is any callable taking one :class:`~repro.obs.events.Event`, or
any object with an ``on_event(event)`` method (the protocol
:class:`~repro.qlog.QlogTracer` and the invariant checkers implement).
"""

from collections import deque

from repro.obs.events import Event


def _handler_for(sink):
    if callable(sink) and not hasattr(sink, "on_event"):
        return sink
    on_event = getattr(sink, "on_event", None)
    if on_event is None:
        raise TypeError(
            "sink %r is neither callable nor has on_event()" % (sink,)
        )
    return on_event


class Subscription:
    """One sink's registration on the bus.

    ``categories`` is ``None`` (all) or a frozenset of category names;
    ``where`` is ``None`` or a dict matched for equality against the
    event's ``data`` (the scoping mechanism: pass
    ``where={"session": sess.obs_id}`` or ``where={"stream": 3}``).
    """

    __slots__ = ("sink", "handler", "categories", "where", "active")

    def __init__(self, sink, categories, where):
        self.sink = sink
        self.handler = _handler_for(sink)
        self.categories = (
            None if categories is None else frozenset(categories)
        )
        self.where = dict(where) if where else None
        self.active = True

    def matches(self, event):
        if self.categories is not None and \
                event.category not in self.categories:
            return False
        if self.where:
            data = event.data
            for key, expected in self.where.items():
                if data.get(key) != expected:
                    return False
        return True


class EventBus:
    """Publish/subscribe fan-out for one simulation."""

    def __init__(self, sim):
        self.sim = sim
        self._subs = []
        # Emission iterates an immutable snapshot rebuilt only when the
        # subscriber set mutates, so the hot path never copies the list;
        # wants() answers from a per-category memo with the same
        # lifetime.  Both are invalidated together in _invalidate().
        self._snapshot = ()
        self._wants_cache = {}
        #: total events emitted to at least one subscriber
        self.events_emitted = 0

    # -- subscription ------------------------------------------------------

    def _invalidate(self):
        self._snapshot = tuple(self._subs)
        self._wants_cache = {}

    def subscribe(self, sink, categories=None, where=None):
        """Register ``sink``; returns the :class:`Subscription` (pass it
        to :meth:`unsubscribe`, or use it as a context manager)."""
        sub = Subscription(sink, categories, where)
        self._subs.append(sub)
        self._invalidate()
        return sub

    def unsubscribe(self, sub_or_sink):
        """Remove a subscription (or every subscription of a sink)."""
        if isinstance(sub_or_sink, Subscription):
            sub_or_sink.active = False
            if sub_or_sink in self._subs:
                self._subs.remove(sub_or_sink)
            self._invalidate()
            return
        for sub in [s for s in self._subs if s.sink is sub_or_sink]:
            sub.active = False
            self._subs.remove(sub)
        self._invalidate()

    def wants(self, category):
        """True if at least one live subscriber listens to ``category``.

        Emitters use this to skip building expensive data dicts on hot
        paths when nobody is looking; the answer is memoised until the
        subscriber set changes, so repeated calls are one dict lookup.
        """
        wanted = self._wants_cache.get(category)
        if wanted is None:
            wanted = any(
                sub.categories is None or category in sub.categories
                for sub in self._snapshot
            )
            self._wants_cache[category] = wanted
        return wanted

    # -- emission ----------------------------------------------------------

    def emit(self, category, name, data=None):
        """Publish one event at the current simulated time.

        Returns the :class:`~repro.obs.events.Event` if it was
        dispatched to at least one sink, else ``None`` (no event object
        is even built when nobody subscribed -- and an emit on a
        category no subscriber listens to is a memoised dict lookup).
        """
        subs = self._snapshot
        if not subs:
            return None
        if not self.wants(category):
            return None
        event = None
        delivered = False
        for sub in subs:
            if not sub.active:
                continue
            if sub.categories is not None and category not in sub.categories:
                continue
            if event is None:
                event = Event(self.sim.now, category, name, data or {})
            if sub.where:
                edata = event.data
                if any(edata.get(k) != v for k, v in sub.where.items()):
                    continue
            sub.handler(event)
            delivered = True
        if not delivered:
            return None
        self.events_emitted += 1
        return event


class CaptureSink:
    """Keeps every event (use for tests and short scenario runs)."""

    def __init__(self):
        self.events = []

    def on_event(self, event):
        self.events.append(event)

    def names(self):
        """The event-name sequence, in emission order."""
        return [e.name for e in self.events]

    def select(self, category=None, name=None, **data_filter):
        """Events matching the given category/name/data constraints."""
        out = []
        for event in self.events:
            if category is not None and event.category != category:
                continue
            if name is not None and event.name != name:
                continue
            if any(event.data.get(k) != v for k, v in data_filter.items()):
                continue
            out.append(event)
        return out

    def __len__(self):
        return len(self.events)

    def __iter__(self):
        return iter(self.events)


class RingBufferSink(CaptureSink):
    """Keeps only the most recent ``capacity`` events (flight-recorder
    style: cheap enough to leave armed across a long run, inspect after
    a failure)."""

    def __init__(self, capacity=4096):
        super().__init__()
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.events = deque(maxlen=capacity)
        self.seen = 0

    def on_event(self, event):
        self.events.append(event)
        self.seen += 1

    @property
    def dropped(self):
        """Events that fell off the front of the ring."""
        return max(self.seen - len(self.events), 0)
