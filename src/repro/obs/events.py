"""Typed events for the observability bus.

An :class:`Event` is one timestamped, categorised occurrence somewhere
in the stack.  The category names the *layer* that emitted it (fixed
vocabulary below); the event name says *what* happened; ``data`` is a
flat dict of primitives so every event serialises straight into qlog.

Scoping conventions (used by subscription filters and checkers):

- session-level events carry ``data["session"]`` (a per-simulation
  session ordinal);
- connection-level events carry ``data["conn"]`` and, where a TCPLS
  session is involved, the session id too;
- stream-level events carry ``data["stream"]``;
- link events carry ``data["link"]`` (the link's stable obs name).
"""

#: TCP connection state machine: state transitions, RTO, fast
#: retransmit, recovery, cwnd/ssthresh updates.
CAT_TCP = "tcp"
#: TLS/TCPLS record layer: records sealed/opened/rejected, traffic-key
#: installation.
CAT_TLS = "tls"
#: TCPLS session lifecycle: ready, connections, streams, joins.
CAT_SESSION = "session"
#: Failover engine: failover decisions, pending failovers, replay.
CAT_RECOVERY = "recovery"
#: Links: packet enqueue, delivery, drops (with reason).
CAT_LINK = "link"
#: Coupled-group record scheduler decisions.
CAT_SCHEDULER = "scheduler"
#: Performance counters: per-run seal/open byte totals, event-loop heap
#: compactions (emitted by the simulator and session hot paths).
CAT_PERF = "perf"
#: Multi-session serving (repro.core.drivers.multi): connection-table
#: gauges, attach/teardown accounting, backpressure pause/resume.
CAT_MUX = "mux"
#: Web-workload layer (repro.workload): page-object lifecycle
#: (ready/start/done), pool assignment decisions, page-load-time.
CAT_WORKLOAD = "workload"

ALL_CATEGORIES = (CAT_TCP, CAT_TLS, CAT_SESSION, CAT_RECOVERY, CAT_LINK,
                  CAT_SCHEDULER, CAT_PERF, CAT_MUX, CAT_WORKLOAD)


class Event:
    """One observed occurrence.

    Attributes
    ----------
    time:
        Simulated time in seconds at emission.
    category:
        One of :data:`ALL_CATEGORIES`.
    name:
        The event name (e.g. ``"state_changed"``, ``"failover"``).
    data:
        Flat dict of JSON-serialisable details.
    """

    __slots__ = ("time", "category", "name", "data")

    def __init__(self, time, category, name, data):
        self.time = time
        self.category = category
        self.name = name
        self.data = data

    def to_dict(self):
        """qlog-shaped dict (time in milliseconds, like QVIS expects)."""
        return {
            "time": round(self.time * 1000.0, 6),
            "category": self.category,
            "event": self.name,
            "data": dict(self.data),
        }

    def __repr__(self):
        return "Event(%.6f, %s:%s, %r)" % (
            self.time, self.category, self.name, self.data
        )
