"""Unified observability: event bus, sinks, and invariant checkers.

Every simulator owns an :class:`EventBus` (``sim.bus``).  The TCP
state machine, the TCPLS record layer and session, the links and the
coupled-stream scheduler emit typed events onto it; sinks — full
captures, ring buffers, qlog writers, invariant checkers — subscribe,
optionally scoped to categories or to one session/stream.

Quick start::

    from repro.obs import CaptureSink, arm_invariants

    sink = sim.bus.subscribe(CaptureSink(), categories=("recovery",))
    harness = arm_invariants(sim)
    ... run the scenario ...
    harness.assert_clean()
"""

from repro.obs.bus import CaptureSink, EventBus, RingBufferSink, Subscription
from repro.obs.events import (
    ALL_CATEGORIES,
    CAT_LINK,
    CAT_MUX,
    CAT_PERF,
    CAT_RECOVERY,
    CAT_SCHEDULER,
    CAT_SESSION,
    CAT_TCP,
    CAT_TLS,
    CAT_WORKLOAD,
    Event,
)
from repro.obs.invariants import (
    DEFAULT_CHECKERS,
    CwndSanityChecker,
    FailoverSanityChecker,
    InvariantChecker,
    InvariantHarness,
    InvariantViolationError,
    LinkConservationChecker,
    MonotoneSeqChecker,
    NonceUniquenessChecker,
    Violation,
    arm_invariants,
)

__all__ = [
    "ALL_CATEGORIES",
    "CAT_LINK",
    "CAT_MUX",
    "CAT_PERF",
    "CAT_RECOVERY",
    "CAT_SCHEDULER",
    "CAT_SESSION",
    "CAT_TCP",
    "CAT_TLS",
    "CAT_WORKLOAD",
    "CaptureSink",
    "CwndSanityChecker",
    "DEFAULT_CHECKERS",
    "Event",
    "EventBus",
    "FailoverSanityChecker",
    "InvariantChecker",
    "InvariantHarness",
    "InvariantViolationError",
    "LinkConservationChecker",
    "MonotoneSeqChecker",
    "NonceUniquenessChecker",
    "RingBufferSink",
    "Subscription",
    "Violation",
    "arm_invariants",
]
