"""TLS extension codec, including the TCPLS handshake extensions.

Extensions are ``type(u16) || length(u16) || data`` concatenations
inside a length-prefixed vector (RFC 8446 section 4.2).  TCPLS claims
identifiers from the private-use range (0xFA00+) for the messages of
Sec. 3 of the paper: TCPLS Hello, TCPLS Join, SESSID, COOKIE and the
server's address advertisement.
"""

import struct

# Standard TLS 1.3 extensions used by the handshake.
EXT_SERVER_NAME = 0
EXT_SUPPORTED_GROUPS = 10
EXT_SUPPORTED_VERSIONS = 43
EXT_PSK_KEY_EXCHANGE_MODES = 45
EXT_KEY_SHARE = 51
EXT_PRE_SHARED_KEY = 41
EXT_EARLY_DATA = 42

# TCPLS extensions (private-use identifiers).
EXT_TCPLS_HELLO = 0xFA01      #: client offers / server confirms TCPLS
EXT_TCPLS_JOIN = 0xFA02       #: joining CH: SESSID + one cookie
EXT_TCPLS_SESSID = 0xFA03     #: server-assigned session identifier
EXT_COOKIE_TCPLS = 0xFA04     #: server-issued single-use join cookies
EXT_TCPLS_ADDRESSES = 0xFA05  #: server address advertisement
#: Sec. 3.4 unlinkable joins: a single-use token acting as both the
#: session identifier and the cookie, so no value repeats on the wire
#: across the connections of one session.
EXT_TCPLS_TOKEN = 0xFA06
EXT_TCPLS_TOKENS = 0xFA07     #: server-issued token batch (in EE)


class Extension:
    """One TLS extension."""

    __slots__ = ("ext_type", "data")

    def __init__(self, ext_type, data=b""):
        self.ext_type = ext_type
        self.data = bytes(data)

    def encode(self):
        return struct.pack("!HH", self.ext_type, len(self.data)) + self.data

    def __eq__(self, other):
        return (
            isinstance(other, Extension)
            and self.ext_type == other.ext_type
            and self.data == other.data
        )

    def __repr__(self):
        return "Extension(0x%04x, %d B)" % (self.ext_type, len(self.data))


def encode_extensions(extensions):
    """Length-prefixed extension vector."""
    body = b"".join(e.encode() for e in extensions)
    return struct.pack("!H", len(body)) + body


def decode_extensions(data, offset=0):
    """Decode a vector; returns (list, new_offset)."""
    if offset + 2 > len(data):
        raise ValueError("truncated extension vector length")
    (total,) = struct.unpack_from("!H", data, offset)
    offset += 2
    end = offset + total
    if end > len(data):
        raise ValueError("extension vector exceeds message")
    extensions = []
    while offset < end:
        if offset + 4 > end:
            raise ValueError("truncated extension header")
        ext_type, length = struct.unpack_from("!HH", data, offset)
        offset += 4
        if offset + length > end:
            raise ValueError("extension data exceeds vector")
        extensions.append(Extension(ext_type, data[offset:offset + length]))
        offset += length
    return extensions, end


def find_extension(extensions, ext_type):
    """First extension of the given type, or None."""
    for extension in extensions:
        if extension.ext_type == ext_type:
            return extension
    return None


# -- TCPLS extension payload codecs --------------------------------------


def encode_tcpls_join(session_id, cookie):
    """TCPLS Join: 16-byte SESSID + 16-byte single-use cookie."""
    if len(session_id) != 16 or len(cookie) != 16:
        raise ValueError("SESSID and cookie are 16 bytes each")
    return session_id + cookie


def decode_tcpls_join(data):
    if len(data) != 32:
        raise ValueError("malformed TCPLS Join extension")
    return data[:16], data[16:]


def encode_cookie_list(cookies):
    """Vector of 16-byte cookies."""
    for cookie in cookies:
        if len(cookie) != 16:
            raise ValueError("cookies are 16 bytes")
    return struct.pack("!H", len(cookies) * 16) + b"".join(cookies)


def decode_cookie_list(data):
    if len(data) < 2:
        raise ValueError("truncated cookie list")
    (total,) = struct.unpack_from("!H", data, 0)
    if total % 16 or 2 + total != len(data):
        raise ValueError("malformed cookie list")
    return [data[2 + i:2 + i + 16] for i in range(0, total, 16)]


def encode_address_list(addresses):
    """Server address advertisement: family(1) + packed address each."""
    out = bytearray()
    for address in addresses:
        packed = address.packed()
        out.append(4 if len(packed) == 4 else 6)
        out += packed
    return bytes(out)


def decode_address_list(data):
    from repro.net.address import IPAddress

    addresses = []
    offset = 0
    while offset < len(data):
        family = data[offset]
        offset += 1
        size = 4 if family == 4 else 16
        if family not in (4, 6) or offset + size > len(data):
            raise ValueError("malformed address list")
        addresses.append(IPAddress.from_packed(data[offset:offset + size]))
        offset += size
    return addresses
