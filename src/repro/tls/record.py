"""TLS 1.3 record layer (RFC 8446 section 5).

Plaintext records carry the cleartext handshake flights; encrypted
records hide their true content type inside the AEAD payload
(``TLSInnerPlaintext = content || type || zeros``) under an outer type
of ``application_data``.  This content-type hiding is the property
TCPLS exploits: a TCPLS control record is indistinguishable on the wire
from TLS application data (Fig. 1 of the paper).
"""

import struct

from repro.crypto.aead import AeadAuthenticationError

CONTENT_CHANGE_CIPHER_SPEC = 20
CONTENT_ALERT = 21
CONTENT_HANDSHAKE = 22
CONTENT_APPLICATION_DATA = 23

LEGACY_RECORD_VERSION = 0x0303
RECORD_HEADER_SIZE = 5

#: RFC 8446: at most 2^14 bytes of plaintext per record.
MAX_RECORD_PAYLOAD = 16384
#: plaintext + content type byte + AEAD tag
MAX_CIPHERTEXT_EXPANSION = 256 + 1 + 16


class TlsRecordError(Exception):
    """Malformed or unauthenticatable record."""


def encode_record_header(content_type, length):
    return struct.pack("!BHH", content_type, LEGACY_RECORD_VERSION, length)


def encode_plaintext_record(content_type, payload):
    """A cleartext record (handshake flights before keys exist)."""
    if len(payload) > MAX_RECORD_PAYLOAD:
        raise TlsRecordError("record payload exceeds 2^14 bytes")
    return encode_record_header(content_type, len(payload)) + payload


def xor_nonce(iv, sequence):
    """Per-record nonce: static IV XOR 64-bit big-endian sequence."""
    seq_bytes = sequence.to_bytes(len(iv), "big")
    return bytes(a ^ b for a, b in zip(iv, seq_bytes))


class RecordEncryptor:
    """Protects records under one traffic key (cipher + IV + sequence).

    ``nonce_fn`` may be overridden to plug in the TCPLS per-stream
    derivation of Fig. 2; the default is RFC 8446's IV XOR seq.
    """

    def __init__(self, cipher, iv, nonce_fn=None):
        self.cipher = cipher
        self.iv = iv
        self.sequence = 0
        self._nonce_fn = nonce_fn or (lambda seq: xor_nonce(self.iv, seq))

    def protect(self, content_type, payload, padding=0):
        """Encrypt one record; returns the full wire bytes."""
        inner = payload + bytes([content_type]) + b"\x00" * padding
        if len(inner) > MAX_RECORD_PAYLOAD + 1 + padding:
            raise TlsRecordError("record payload exceeds 2^14 bytes")
        nonce = self._nonce_fn(self.sequence)
        length = len(inner) + self.cipher.tag_size
        header = encode_record_header(CONTENT_APPLICATION_DATA, length)
        ciphertext = self.cipher.seal(nonce, inner, aad=header)
        self.sequence += 1
        return header + ciphertext


class RecordDecryptor:
    """Unprotects records under one traffic key."""

    def __init__(self, cipher, iv, nonce_fn=None):
        self.cipher = cipher
        self.iv = iv
        self.sequence = 0
        self._nonce_fn = nonce_fn or (lambda seq: xor_nonce(self.iv, seq))
        self.forgery_attempts = 0

    def unprotect(self, record):
        """Decrypt one full record (header + ciphertext).

        Returns ``(content_type, plaintext)``; raises
        :class:`TlsRecordError` when authentication fails.
        """
        header, ciphertext = record[:RECORD_HEADER_SIZE], record[
            RECORD_HEADER_SIZE:]
        nonce = self._nonce_fn(self.sequence)
        try:
            inner = self.cipher.open(nonce, ciphertext, aad=header)
        except AeadAuthenticationError as exc:
            self.forgery_attempts += 1
            raise TlsRecordError("record authentication failed") from exc
        self.sequence += 1
        return split_inner_plaintext(inner)

    def verify_only(self, record):
        """Cheap tag check at the current sequence, without decrypting or
        advancing state -- the TCPLS stream-demux trial operation."""
        header, ciphertext = record[:RECORD_HEADER_SIZE], record[
            RECORD_HEADER_SIZE:]
        nonce = self._nonce_fn(self.sequence)
        return self.cipher.verify_tag(nonce, ciphertext, aad=header)


def split_inner_plaintext(inner):
    """Strip zero padding and the trailing content-type byte."""
    end = len(inner)
    while end > 0 and inner[end - 1] == 0:
        end -= 1
    if end == 0:
        raise TlsRecordError("record with no content type")
    return inner[end - 1], inner[:end - 1]


class RecordReassembler:
    """Cuts a TCP bytestream back into complete TLS records.

    Feed arbitrary byte chunks; iterate complete records.  This is where
    a tuned receive path matters (Sec. 5.1 discusses picotls losing 40%
    throughput to record fragmentation): the reassembler keeps one
    contiguous buffer and never copies completed records twice.
    """

    def __init__(self, max_record=MAX_RECORD_PAYLOAD + MAX_CIPHERTEXT_EXPANSION):
        self._buffer = bytearray()
        self.max_record = max_record
        self.records_out = 0

    def feed(self, data):
        """Buffer incoming bytes and return a list of complete records."""
        self._buffer += data
        records = []
        offset = 0
        buf = self._buffer
        while len(buf) - offset >= RECORD_HEADER_SIZE:
            content_type, _version, length = struct.unpack_from(
                "!BHH", buf, offset
            )
            if length > self.max_record:
                raise TlsRecordError(
                    "record length %d exceeds maximum %d"
                    % (length, self.max_record)
                )
            total = RECORD_HEADER_SIZE + length
            if len(buf) - offset < total:
                break
            records.append(bytes(buf[offset:offset + total]))
            offset += total
        if offset:
            del buf[:offset]
        self.records_out += len(records)
        return records

    @property
    def pending_bytes(self):
        return len(self._buffer)
