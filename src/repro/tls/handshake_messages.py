"""TLS 1.3 handshake messages with byte-exact framing.

Each message encodes as ``msg_type(u8) || length(u24) || body`` and is
hashed into the transcript in this serialized form (RFC 8446 4.4.1).
The subset implemented is what the PSK + FFDHE handshake needs:
ClientHello, ServerHello, EncryptedExtensions, Finished.
"""

import struct

from repro.tls.extensions import (
    decode_extensions,
    encode_extensions,
    find_extension,
)

HS_CLIENT_HELLO = 1
HS_SERVER_HELLO = 2
HS_ENCRYPTED_EXTENSIONS = 8
HS_FINISHED = 20

TLS13_VERSION = 0x0304
LEGACY_VERSION = 0x0303

#: IANA cipher suite ids implemented by :mod:`repro.crypto`.
TLS_AES_128_GCM_SHA256 = 0x1301
TLS_CHACHA20_POLY1305_SHA256 = 0x1303
#: private-use suite id for the simulation null-tag cipher
TLS_NULL_TAG_SHA256 = 0xFF01

CIPHER_SUITE_NAMES = {
    TLS_AES_128_GCM_SHA256: "aes128gcm",
    TLS_CHACHA20_POLY1305_SHA256: "chacha20poly1305",
    TLS_NULL_TAG_SHA256: "null-tag",
}
CIPHER_SUITE_IDS = {name: suite for suite, name in CIPHER_SUITE_NAMES.items()}


def _frame(msg_type, body):
    return struct.pack("!B", msg_type) + len(body).to_bytes(3, "big") + body


def parse_handshake_messages(data):
    """Split a handshake byte stream into (msg_type, body, raw) tuples.

    Returns (messages, leftover_bytes) -- handshake messages may span
    TLS records, so callers buffer the leftover.
    """
    messages = []
    offset = 0
    while offset + 4 <= len(data):
        msg_type = data[offset]
        length = int.from_bytes(data[offset + 1:offset + 4], "big")
        end = offset + 4 + length
        if end > len(data):
            break
        messages.append((msg_type, data[offset + 4:end], data[offset:end]))
        offset = end
    return messages, data[offset:]


class ClientHello:
    """ClientHello: random, cipher suites, extensions."""

    msg_type = HS_CLIENT_HELLO

    def __init__(self, random, cipher_suites, extensions, session_id=b""):
        self.random = random
        self.cipher_suites = list(cipher_suites)
        self.extensions = list(extensions)
        self.session_id = session_id

    def encode(self):
        body = struct.pack("!H", LEGACY_VERSION)
        body += self.random
        body += bytes([len(self.session_id)]) + self.session_id
        body += struct.pack("!H", len(self.cipher_suites) * 2)
        for suite in self.cipher_suites:
            body += struct.pack("!H", suite)
        body += b"\x01\x00"  # legacy compression: null only
        body += encode_extensions(self.extensions)
        return _frame(self.msg_type, body)

    @classmethod
    def decode(cls, body):
        (version,) = struct.unpack_from("!H", body, 0)
        if version != LEGACY_VERSION:
            raise ValueError("unexpected legacy_version 0x%04x" % version)
        random = body[2:34]
        offset = 34
        sid_len = body[offset]
        offset += 1
        session_id = body[offset:offset + sid_len]
        offset += sid_len
        (suites_len,) = struct.unpack_from("!H", body, offset)
        offset += 2
        cipher_suites = [
            struct.unpack_from("!H", body, offset + i)[0]
            for i in range(0, suites_len, 2)
        ]
        offset += suites_len
        comp_len = body[offset]
        offset += 1 + comp_len
        extensions, _ = decode_extensions(body, offset)
        return cls(random, cipher_suites, extensions, session_id)

    def find_extension(self, ext_type):
        return find_extension(self.extensions, ext_type)


class ServerHello:
    """ServerHello: random, selected suite, extensions."""

    msg_type = HS_SERVER_HELLO

    def __init__(self, random, cipher_suite, extensions, session_id=b""):
        self.random = random
        self.cipher_suite = cipher_suite
        self.extensions = list(extensions)
        self.session_id = session_id

    def encode(self):
        body = struct.pack("!H", LEGACY_VERSION)
        body += self.random
        body += bytes([len(self.session_id)]) + self.session_id
        body += struct.pack("!H", self.cipher_suite)
        body += b"\x00"  # legacy compression
        body += encode_extensions(self.extensions)
        return _frame(self.msg_type, body)

    @classmethod
    def decode(cls, body):
        random = body[2:34]
        offset = 34
        sid_len = body[offset]
        offset += 1
        session_id = body[offset:offset + sid_len]
        offset += sid_len
        (cipher_suite,) = struct.unpack_from("!H", body, offset)
        offset += 3  # suite + compression byte
        extensions, _ = decode_extensions(body, offset)
        return cls(random, cipher_suite, extensions, session_id)

    def find_extension(self, ext_type):
        return find_extension(self.extensions, ext_type)


class EncryptedExtensions:
    """Extensions protected under the handshake traffic keys.

    This is where the server places its TCPLS answers (TCPLS Hello echo,
    SESSID, COOKIE list, address advertisement) -- encrypted, and part
    of the transcript, so middleboxes can neither read nor strip them
    without breaking the handshake (Sec. 3.2 of the paper).
    """

    msg_type = HS_ENCRYPTED_EXTENSIONS

    def __init__(self, extensions):
        self.extensions = list(extensions)

    def encode(self):
        return _frame(self.msg_type, encode_extensions(self.extensions))

    @classmethod
    def decode(cls, body):
        extensions, _ = decode_extensions(body, 0)
        return cls(extensions)

    def find_extension(self, ext_type):
        return find_extension(self.extensions, ext_type)


class Finished:
    """HMAC over the transcript hash with the finished key."""

    msg_type = HS_FINISHED

    def __init__(self, verify_data):
        self.verify_data = verify_data

    def encode(self):
        return _frame(self.msg_type, self.verify_data)

    @classmethod
    def decode(cls, body):
        return cls(body)
