"""TLS 1.3 (RFC 8446) handshake and record layer.

This is the substrate TCPLS extends: a byte-exact record layer with
AEAD protection and content-type hiding, the full key schedule
(HKDF-Extract / Derive-Secret chains), a transcript-hashed PSK + FFDHE
handshake with Finished verification, and an extension codec that
TCPLS's handshake extensions plug into.

Substitution note (see DESIGN.md): server authentication uses TLS 1.3's
PSK mode rather than X.509 certificates -- TCPLS never touches
certificate logic, only extensions and records, which are implemented
in full.
"""

from repro.tls.extensions import (
    EXT_COOKIE_TCPLS,
    EXT_KEY_SHARE,
    EXT_PRE_SHARED_KEY,
    EXT_SUPPORTED_VERSIONS,
    EXT_TCPLS_ADDRESSES,
    EXT_TCPLS_HELLO,
    EXT_TCPLS_JOIN,
    EXT_TCPLS_SESSID,
    Extension,
    decode_extensions,
    encode_extensions,
)
from repro.tls.handshake_messages import (
    ClientHello,
    EncryptedExtensions,
    Finished,
    ServerHello,
)
from repro.tls.keyschedule import KeySchedule, TrafficKeys
from repro.tls.record import (
    CONTENT_ALERT,
    CONTENT_APPLICATION_DATA,
    CONTENT_HANDSHAKE,
    MAX_RECORD_PAYLOAD,
    RecordDecryptor,
    RecordEncryptor,
    RecordReassembler,
    TlsRecordError,
    encode_plaintext_record,
)
from repro.tls.endpoint import TlsClient, TlsServer, TlsError

__all__ = [
    "CONTENT_ALERT",
    "CONTENT_APPLICATION_DATA",
    "CONTENT_HANDSHAKE",
    "ClientHello",
    "EXT_COOKIE_TCPLS",
    "EXT_KEY_SHARE",
    "EXT_PRE_SHARED_KEY",
    "EXT_SUPPORTED_VERSIONS",
    "EXT_TCPLS_ADDRESSES",
    "EXT_TCPLS_HELLO",
    "EXT_TCPLS_JOIN",
    "EXT_TCPLS_SESSID",
    "EncryptedExtensions",
    "Extension",
    "Finished",
    "KeySchedule",
    "MAX_RECORD_PAYLOAD",
    "RecordDecryptor",
    "RecordEncryptor",
    "RecordReassembler",
    "ServerHello",
    "TlsClient",
    "TlsError",
    "TlsRecordError",
    "TlsServer",
    "TrafficKeys",
    "decode_extensions",
    "encode_extensions",
    "encode_plaintext_record",
]
