"""TLS 1.3 handshake state machines.

:class:`TlsClient` and :class:`TlsServer` run the PSK + FFDHE
handshake over any reliable bytestream: callers push inbound bytes via
:meth:`feed` and drain outbound bytes via :meth:`data_to_send`.

The machines expose exactly the surface TCPLS extends:

- callers inject extra ClientHello extensions (TCPLS Hello / Join);
- the server asks a callback for its EncryptedExtensions content given
  the parsed ClientHello (TCPLS SESSID / COOKIE / address advertisement);
- on completion both sides expose the :class:`~repro.tls.keyschedule.
  KeySchedule` so TCPLS can spin per-stream crypto contexts from the
  application traffic secrets.

Simplifications (documented in DESIGN.md): no HelloRetryRequest, no
certificate path (PSK authentication), and PSK binders are omitted --
none of these interact with the TCPLS mechanisms under study.
"""

from repro.crypto.ffdhe import DHKeyPair, FFDHE2048
from repro.crypto.aead import get_cipher
from repro.tls.extensions import (
    EXT_EARLY_DATA,
    EXT_KEY_SHARE,
    EXT_PRE_SHARED_KEY,
    EXT_PSK_KEY_EXCHANGE_MODES,
    EXT_SUPPORTED_VERSIONS,
    Extension,
    find_extension,
)

#: RFC 8446 Sec. 4.2.9 PskKeyExchangeMode values.
PSK_KE = 0       #: PSK-only establishment (no (EC)DHE)
PSK_DHE_KE = 1   #: PSK with (EC)DHE (the default handshake here)
from repro.tls.handshake_messages import (
    CIPHER_SUITE_NAMES,
    ClientHello,
    EncryptedExtensions,
    Finished,
    HS_CLIENT_HELLO,
    HS_ENCRYPTED_EXTENSIONS,
    HS_FINISHED,
    HS_SERVER_HELLO,
    ServerHello,
    TLS13_VERSION,
    parse_handshake_messages,
)
from repro.tls.keyschedule import KeySchedule
from repro.tls.record import (
    CONTENT_ALERT,
    CONTENT_APPLICATION_DATA,
    CONTENT_HANDSHAKE,
    MAX_RECORD_PAYLOAD,
    RECORD_HEADER_SIZE,
    RecordDecryptor,
    RecordEncryptor,
    RecordReassembler,
    TlsRecordError,
    encode_plaintext_record,
)


class TlsError(Exception):
    """Fatal handshake or record-layer failure."""


class _TlsEndpoint:
    """Shared plumbing for both roles."""

    def __init__(self, psk, cipher_names, rng):
        self.psk = psk
        self.cipher_names = list(cipher_names)
        self.rng = rng
        self.reassembler = RecordReassembler()
        self.schedule = None
        self.cipher_cls = None
        self.negotiated_cipher = None
        self.handshake_complete = False
        self.peer_encrypted_extensions = []
        self._out = bytearray()
        self._handshake_buffer = b""
        self._encryptor = None
        self._decryptor = None
        self._app_encryptor = None
        self._app_decryptor = None
        # Callbacks.
        self.on_handshake_complete = None
        self.on_application_data = None
        #: once set (by TCPLS after handshake completion), raw records
        #: are handed over instead of being processed here.
        self.takeover = None

    # -- transport glue -----------------------------------------------------

    def data_to_send(self):
        """Drain bytes queued for the transport."""
        data = bytes(self._out)
        self._out.clear()
        return data

    def send_application_data(self, data):
        """Encrypt application data into records (post-handshake)."""
        if not self.handshake_complete:
            raise TlsError("handshake not complete")
        for offset in range(0, len(data), MAX_RECORD_PAYLOAD):
            chunk = data[offset:offset + MAX_RECORD_PAYLOAD]
            self._out += self._app_encryptor.protect(
                CONTENT_APPLICATION_DATA, chunk
            )
        return len(data)

    def feed(self, data):
        """Process inbound transport bytes."""
        for record in self.reassembler.feed(data):
            self._process_record(record)

    # -- internals -----------------------------------------------------------

    def _process_record(self, record):
        if self.handshake_complete and self.takeover is not None:
            self.takeover(record)
            return
        outer_type = record[0]
        body = record[RECORD_HEADER_SIZE:]
        if outer_type == CONTENT_HANDSHAKE:
            self._process_handshake_bytes(body)
        elif outer_type == CONTENT_APPLICATION_DATA:
            decryptor = (
                self._app_decryptor
                if self.handshake_complete and self._app_decryptor
                else self._decryptor
            )
            if decryptor is None:
                raise TlsError("encrypted record before any keys")
            content_type, plaintext = decryptor.unprotect(record)
            if content_type == CONTENT_HANDSHAKE:
                self._process_handshake_bytes(plaintext)
            elif content_type == CONTENT_APPLICATION_DATA:
                self._deliver_application_data(plaintext)
            elif content_type == CONTENT_ALERT:
                raise TlsError(
                    "alert received: %r" % (plaintext[:2],)
                )
        elif outer_type == CONTENT_ALERT:
            raise TlsError("plaintext alert received: %r" % (body[:2],))

    def _deliver_application_data(self, plaintext):
        if self.on_application_data is not None:
            self.on_application_data(self, plaintext)

    def _process_handshake_bytes(self, data):
        messages, leftover = parse_handshake_messages(
            self._handshake_buffer + data
        )
        self._handshake_buffer = leftover
        for msg_type, body, raw in messages:
            self._handle_handshake_message(msg_type, body, raw)

    def _handle_handshake_message(self, msg_type, body, raw):
        raise NotImplementedError

    def _random(self):
        return bytes(self.rng.getrandbits(8) for _ in range(32))

    def _suite_ids(self):
        from repro.tls.handshake_messages import CIPHER_SUITE_IDS

        return [CIPHER_SUITE_IDS[name] for name in self.cipher_names]


class TlsClient(_TlsEndpoint):
    """Client role.

    Parameters
    ----------
    extra_extensions:
        Additional ClientHello extensions (the TCPLS Hello / Join).
    early_data:
        Optional 0-RTT payload encrypted under the early traffic keys
        and flushed together with the ClientHello (pairs with TCP Fast
        Open for the paper's Sec. 4.5 low-latency establishment).
    """

    def __init__(self, psk, rng, cipher_names=("null-tag",),
                 extra_extensions=(), early_data=b"", key_exchange="dhe"):
        super().__init__(psk, cipher_names, rng)
        self.extra_extensions = list(extra_extensions)
        self.early_data = early_data
        if key_exchange not in ("dhe", "psk"):
            raise ValueError("key_exchange must be 'dhe' or 'psk'")
        #: ``"dhe"`` runs the full PSK + FFDHE handshake; ``"psk"``
        #: offers RFC 8446 ``psk_ke`` (no key share, no modular
        #: exponentiation) -- the mode a server multiplexing thousands
        #: of PSK sessions negotiates to keep handshake cost flat.
        self.key_exchange = key_exchange
        self._dh = None
        self._state = "START"

    def start(self):
        """Emit the ClientHello (and any 0-RTT early data)."""
        if self._state != "START":
            raise TlsError("client already started")
        extensions = [
            Extension(EXT_SUPPORTED_VERSIONS,
                      bytes([2]) + TLS13_VERSION.to_bytes(2, "big")),
        ]
        if self.key_exchange == "dhe":
            self._dh = FFDHE2048.generate(self.rng)
            extensions.append(
                Extension(EXT_KEY_SHARE, self._dh.public_bytes()))
        else:
            extensions.append(
                Extension(EXT_PSK_KEY_EXCHANGE_MODES, bytes([1, PSK_KE])))
        extensions.append(Extension(EXT_PRE_SHARED_KEY, b"psk-identity"))
        if self.early_data:
            extensions.append(Extension(EXT_EARLY_DATA, b""))
        extensions.extend(self.extra_extensions)
        hello = ClientHello(self._random(), self._suite_ids(), extensions)
        raw = hello.encode()
        # The schedule begins with the first offered suite's hash; all
        # implemented suites share SHA-256.
        self.schedule = KeySchedule(get_cipher(self.cipher_names[0]),
                                    psk=self.psk)
        self.schedule.update_transcript(raw)
        self._out += encode_plaintext_record(CONTENT_HANDSHAKE, raw)
        if self.early_data:
            keys = self.schedule.derive_early_traffic()
            encryptor = RecordEncryptor(
                self.schedule.cipher_cls(keys.key), keys.iv
            )
            self._out += encryptor.protect(CONTENT_APPLICATION_DATA,
                                           self.early_data)
        self._state = "WAIT_SH"

    def _handle_handshake_message(self, msg_type, body, raw):
        if self._state == "WAIT_SH" and msg_type == HS_SERVER_HELLO:
            self._on_server_hello(ServerHello.decode(body), raw)
        elif self._state == "WAIT_EE" and msg_type == HS_ENCRYPTED_EXTENSIONS:
            ee = EncryptedExtensions.decode(body)
            self.peer_encrypted_extensions = ee.extensions
            self.schedule.update_transcript(raw)
            self._state = "WAIT_FINISHED"
        elif self._state == "WAIT_FINISHED" and msg_type == HS_FINISHED:
            self._on_server_finished(Finished.decode(body), raw)
        else:
            raise TlsError(
                "unexpected handshake message %d in state %s"
                % (msg_type, self._state)
            )

    def _on_server_hello(self, hello, raw):
        if hello.cipher_suite not in self._suite_ids():
            raise TlsError("server selected unoffered suite 0x%04x"
                           % hello.cipher_suite)
        self.negotiated_cipher = CIPHER_SUITE_NAMES[hello.cipher_suite]
        self.cipher_cls = get_cipher(self.negotiated_cipher)
        self.schedule.cipher_cls = self.cipher_cls
        key_share = hello.find_extension(EXT_KEY_SHARE)
        if self.key_exchange == "psk":
            if key_share is not None:
                raise TlsError("server sent key_share in psk_ke mode")
            shared = b""
        else:
            if key_share is None:
                raise TlsError("server omitted key_share")
            peer_public = DHKeyPair.public_from_bytes(key_share.data)
            shared = FFDHE2048.shared_secret(self._dh.private, peer_public)
        self.schedule.update_transcript(raw)
        client_hs, server_hs = self.schedule.derive_handshake(shared)
        self._decryptor = RecordDecryptor(self.cipher_cls(server_hs.key),
                                          server_hs.iv)
        self._encryptor = RecordEncryptor(self.cipher_cls(client_hs.key),
                                          client_hs.iv)
        self._state = "WAIT_EE"

    def _on_server_finished(self, finished, raw):
        expected = self.schedule.finished_verify_data(
            self.schedule.server_handshake.secret
        )
        if finished.verify_data != expected:
            raise TlsError("server Finished verification failed")
        self.schedule.update_transcript(raw)
        client_app, server_app = self.schedule.derive_application()
        # Client Finished, still under the handshake keys.
        verify = self.schedule.finished_verify_data(
            self.schedule.client_handshake.secret
        )
        fin_raw = Finished(verify).encode()
        self.schedule.update_transcript(fin_raw)
        self._out += self._encryptor.protect(CONTENT_HANDSHAKE, fin_raw)
        self.schedule.derive_resumption_master()
        self._app_encryptor = RecordEncryptor(
            self.cipher_cls(client_app.key), client_app.iv
        )
        self._app_decryptor = RecordDecryptor(
            self.cipher_cls(server_app.key), server_app.iv
        )
        self.handshake_complete = True
        self._state = "CONNECTED"
        if self.on_handshake_complete is not None:
            self.on_handshake_complete(self)


class TlsServer(_TlsEndpoint):
    """Server role.

    ``encrypted_extensions_fn(client_hello) -> list[Extension]`` lets the
    embedding layer (the TCPLS session manager) answer the client's
    extensions inside EncryptedExtensions.  ``strict_extensions`` models
    the legacy servers of Sec. 5.2 that abort on unknown extensions.
    """

    KNOWN_EXTENSIONS = frozenset({
        EXT_SUPPORTED_VERSIONS, EXT_KEY_SHARE, EXT_PRE_SHARED_KEY,
        EXT_EARLY_DATA, EXT_PSK_KEY_EXCHANGE_MODES,
    })

    def __init__(self, psk, rng, cipher_names=("null-tag",),
                 encrypted_extensions_fn=None, strict_extensions=False):
        super().__init__(psk, cipher_names, rng)
        self.encrypted_extensions_fn = encrypted_extensions_fn
        self.strict_extensions = strict_extensions
        self.client_hello = None
        self._early_decryptor = None
        self._state = "WAIT_CH"

    def _handle_handshake_message(self, msg_type, body, raw):
        if self._state == "WAIT_CH" and msg_type == HS_CLIENT_HELLO:
            self._on_client_hello(ClientHello.decode(body), raw)
        elif self._state == "WAIT_FINISHED" and msg_type == HS_FINISHED:
            self._on_client_finished(Finished.decode(body), raw)
        else:
            raise TlsError(
                "unexpected handshake message %d in state %s"
                % (msg_type, self._state)
            )

    def _on_client_hello(self, hello, raw):
        if self.strict_extensions:
            unknown = [
                e for e in hello.extensions
                if e.ext_type not in self.KNOWN_EXTENSIONS
            ]
            if unknown:
                raise TlsError(
                    "legacy server aborting on unknown extension 0x%04x"
                    % unknown[0].ext_type
                )
        self.client_hello = hello
        offered = set(hello.cipher_suites)
        suite = next(
            (s for s in self._suite_ids() if s in offered), None
        )
        if suite is None:
            raise TlsError("no common cipher suite")
        self.negotiated_cipher = CIPHER_SUITE_NAMES[suite]
        self.cipher_cls = get_cipher(self.negotiated_cipher)
        key_share = hello.find_extension(EXT_KEY_SHARE)
        psk_modes = hello.find_extension(EXT_PSK_KEY_EXCHANGE_MODES)
        psk_only = (
            key_share is None and psk_modes is not None
            and PSK_KE in psk_modes.data[1:1 + (psk_modes.data[0]
                                                if psk_modes.data else 0)]
        )
        if psk_only:
            dh = None
            shared = b""
        else:
            if key_share is None:
                raise TlsError("client omitted key_share")
            peer_public = DHKeyPair.public_from_bytes(key_share.data)
            dh = FFDHE2048.generate(self.rng)
            shared = FFDHE2048.shared_secret(dh.private, peer_public)

        self.schedule = KeySchedule(self.cipher_cls, psk=self.psk)
        self.schedule.update_transcript(raw)
        if hello.find_extension(EXT_EARLY_DATA) is not None:
            keys = self.schedule.derive_early_traffic()
            self._early_decryptor = RecordDecryptor(
                self.cipher_cls(keys.key), keys.iv
            )

        sh_extensions = [
            Extension(EXT_SUPPORTED_VERSIONS, TLS13_VERSION.to_bytes(2, "big")),
        ]
        if dh is not None:
            sh_extensions.append(Extension(EXT_KEY_SHARE, dh.public_bytes()))
        sh_extensions.append(Extension(EXT_PRE_SHARED_KEY, b"\x00\x00"))
        server_hello = ServerHello(self._random(), suite, sh_extensions)
        sh_raw = server_hello.encode()
        self.schedule.update_transcript(sh_raw)
        self._out += encode_plaintext_record(CONTENT_HANDSHAKE, sh_raw)

        client_hs, server_hs = self.schedule.derive_handshake(shared)
        self._encryptor = RecordEncryptor(self.cipher_cls(server_hs.key),
                                          server_hs.iv)
        self._decryptor = RecordDecryptor(self.cipher_cls(client_hs.key),
                                          client_hs.iv)

        ee_extensions = []
        if self.encrypted_extensions_fn is not None:
            ee_extensions = list(self.encrypted_extensions_fn(hello))
        ee_raw = EncryptedExtensions(ee_extensions).encode()
        self.schedule.update_transcript(ee_raw)
        self._out += self._encryptor.protect(CONTENT_HANDSHAKE, ee_raw)

        verify = self.schedule.finished_verify_data(
            self.schedule.server_handshake.secret
        )
        fin_raw = Finished(verify).encode()
        self.schedule.update_transcript(fin_raw)
        self._out += self._encryptor.protect(CONTENT_HANDSHAKE, fin_raw)

        client_app, server_app = self.schedule.derive_application()
        self._app_encryptor = RecordEncryptor(
            self.cipher_cls(server_app.key), server_app.iv
        )
        self._pending_app_decryptor = RecordDecryptor(
            self.cipher_cls(client_app.key), client_app.iv
        )
        self._state = "WAIT_FINISHED"

    def _process_record(self, record):
        # 0-RTT early data arrives between CH and client Finished and is
        # protected under the early traffic keys.
        outer_type = record[0]
        if (outer_type == CONTENT_APPLICATION_DATA
                and self._state == "WAIT_FINISHED"
                and self._early_decryptor is not None):
            try:
                content_type, plaintext = self._early_decryptor.unprotect(
                    record
                )
            except TlsRecordError:
                pass  # not early data; fall through to handshake keys
            else:
                if content_type == CONTENT_APPLICATION_DATA:
                    self._deliver_application_data(plaintext)
                    return
        super()._process_record(record)

    def _on_client_finished(self, finished, raw):
        expected = self.schedule.finished_verify_data(
            self.schedule.client_handshake.secret
        )
        if finished.verify_data != expected:
            raise TlsError("client Finished verification failed")
        self.schedule.update_transcript(raw)
        self.schedule.derive_resumption_master()
        self._app_decryptor = self._pending_app_decryptor
        self.handshake_complete = True
        self._state = "CONNECTED"
        if self.on_handshake_complete is not None:
            self.on_handshake_complete(self)
