"""TLS 1.3 key schedule (RFC 8446 section 7.1).

The schedule is the Extract/Derive-Secret chain:

    0 / PSK -> early secret
      +-> Derive-Secret(., "derived") + DHE -> handshake secret
            +-> client/server handshake traffic secrets
            +-> Derive-Secret(., "derived") + 0 -> master secret
                  +-> client/server application traffic secrets

TCPLS's Fig. 2 IV derivation starts from the traffic IVs produced here.
"""

import hashlib
import hmac

from repro.crypto.hkdf import derive_secret, hkdf_expand_label, hkdf_extract


class TrafficKeys:
    """AEAD key + static IV derived from one traffic secret."""

    __slots__ = ("secret", "key", "iv")

    def __init__(self, secret, key_size, iv_size=12, hash_name="sha256"):
        self.secret = secret
        self.key = hkdf_expand_label(secret, b"key", b"", key_size, hash_name)
        self.iv = hkdf_expand_label(secret, b"iv", b"", iv_size, hash_name)


class KeySchedule:
    """Runs the schedule incrementally as handshake messages are hashed."""

    def __init__(self, cipher_cls, psk=b"", hash_name="sha256"):
        self.cipher_cls = cipher_cls
        self.hash_name = hash_name
        self._digest_size = hashlib.new(hash_name).digest_size
        self._transcript = hashlib.new(hash_name)
        self._transcript_bytes = b""
        self.early_secret = hkdf_extract(
            b"", psk or b"\x00" * self._digest_size, hash_name
        )
        self.handshake_secret = None
        self.master_secret = None
        self.client_handshake = None
        self.server_handshake = None
        self.client_application = None
        self.server_application = None
        self.resumption_master_secret = None

    # -- transcript ------------------------------------------------------

    def update_transcript(self, raw_message):
        """Hash a serialized handshake message into the transcript."""
        self._transcript.update(raw_message)
        self._transcript_bytes += raw_message

    def transcript_hash(self):
        return self._transcript.copy().digest()

    # -- secrets -----------------------------------------------------------

    def derive_early_traffic(self):
        """client_early_traffic_secret for 0-RTT data (after CH)."""
        secret = self._derive("c e traffic", self.early_secret)
        return TrafficKeys(secret, self.cipher_cls.key_size,
                           hash_name=self.hash_name)

    def derive_handshake(self, dhe_shared_secret):
        """After ServerHello: handshake traffic keys."""
        derived = derive_secret(self.early_secret, b"derived", b"",
                                self.hash_name)
        self.handshake_secret = hkdf_extract(derived, dhe_shared_secret,
                                             self.hash_name)
        client = self._derive("c hs traffic", self.handshake_secret)
        server = self._derive("s hs traffic", self.handshake_secret)
        self.client_handshake = TrafficKeys(client, self.cipher_cls.key_size,
                                            hash_name=self.hash_name)
        self.server_handshake = TrafficKeys(server, self.cipher_cls.key_size,
                                            hash_name=self.hash_name)
        return self.client_handshake, self.server_handshake

    def derive_application(self):
        """After server Finished: application traffic keys.

        Note (paper Sec. 3.2): the handshake keys protecting the TCPLS
        EncryptedExtensions are *not* part of the context deriving the
        application keys -- the master secret hangs off the handshake
        secret, not off the handshake traffic secrets.
        """
        if self.handshake_secret is None:
            raise RuntimeError("derive_handshake must run first")
        derived = derive_secret(self.handshake_secret, b"derived", b"",
                                self.hash_name)
        self.master_secret = hkdf_extract(
            derived, b"\x00" * self._digest_size, self.hash_name
        )
        client = self._derive("c ap traffic", self.master_secret)
        server = self._derive("s ap traffic", self.master_secret)
        self.client_application = TrafficKeys(
            client, self.cipher_cls.key_size, hash_name=self.hash_name
        )
        self.server_application = TrafficKeys(
            server, self.cipher_cls.key_size, hash_name=self.hash_name
        )
        return self.client_application, self.server_application

    def derive_resumption_master(self):
        """After client Finished (for session resumption / 0-RTT PSKs)."""
        self.resumption_master_secret = self._derive("res master",
                                                     self.master_secret)
        return self.resumption_master_secret

    def finished_verify_data(self, traffic_secret):
        """Finished.verify_data = HMAC(finished_key, Transcript-Hash)."""
        finished_key = hkdf_expand_label(
            traffic_secret, b"finished", b"", self._digest_size,
            self.hash_name,
        )
        return hmac.new(finished_key, self.transcript_hash(),
                        self.hash_name).digest()

    def _derive(self, label, secret):
        return hkdf_expand_label(
            secret, label.encode(), self.transcript_hash(),
            self._digest_size, self.hash_name,
        )
