"""TCP connection state machine.

Implements the connection lifecycle over :mod:`repro.net`: three-way
handshake (with optional TCP Fast Open), bidirectional bytestream
transfer with cumulative ACKs, RFC 6298 retransmission timeouts with
exponential backoff, fast retransmit after three duplicate ACKs with
NewReno-style recovery, receive-window flow control, FIN/RST teardown,
and the RFC 5482 User Timeout used by TCPLS to detect blackholed paths.

Simplifications relative to a kernel stack (documented here because
tests rely on them): sequence numbers are Python ints that never wrap
(ISS is small); the advertised window is carried as an integer without
the 16-bit clamp + window-scale split; ACKs are sent immediately
rather than delayed; SACK blocks are not generated (loss recovery is
NewReno).  None of these affect the transport dynamics the paper
measures.
"""

from repro.net.packet import Packet
from repro.tcp.buffers import ReceiveBuffer, SendBuffer
from repro.tcp.congestion import make_congestion_control
from repro.tcp.options import (
    FastOpenOption,
    MssOption,
    OPT_FAST_OPEN,
    OPT_MSS,
    OPT_SACK,
    SackOption,
)
from repro.tcp.ranges import RangeSet
from repro.tcp.rtt import RttEstimator
from repro.tcp.segment import Segment

# Hot-path flag sets: prebuilt frozensets so per-segment construction
# does not rebuild (and revalidate) a set on every send.
FLAGS_ACK = frozenset({"ACK"})
FLAGS_SYN = frozenset({"SYN"})
FLAGS_SYN_ACK = frozenset({"SYN", "ACK"})
FLAGS_FIN_ACK = frozenset({"FIN", "ACK"})
FLAGS_RST = frozenset({"RST"})

# Connection states
CLOSED = "CLOSED"
SYN_SENT = "SYN_SENT"
SYN_RCVD = "SYN_RCVD"
ESTABLISHED = "ESTABLISHED"
FIN_WAIT_1 = "FIN_WAIT_1"
FIN_WAIT_2 = "FIN_WAIT_2"
CLOSE_WAIT = "CLOSE_WAIT"
LAST_ACK = "LAST_ACK"
CLOSING = "CLOSING"
TIME_WAIT = "TIME_WAIT"

TIME_WAIT_DURATION = 1.0  # shortened 2*MSL for simulation
MAX_SYN_RETRIES = 6


class TcpConnection:
    """One TCP connection endpoint.

    Applications (and TCPLS) interact through :meth:`send`,
    :meth:`recv`, :meth:`close`, :meth:`abort`, :meth:`tcp_info` and
    the callback attributes ``on_established``, ``on_data``,
    ``on_close``, ``on_reset``, ``on_user_timeout`` and
    ``on_send_space`` -- each called with the connection as the sole
    argument.
    """

    _next_id = 0

    def __init__(self, stack, local, remote, passive=False, cc="cubic",
                 iss=None, send_buffer_capacity=4 << 20,
                 recv_buffer_capacity=1 << 20):
        TcpConnection._next_id += 1
        self.conn_id = TcpConnection._next_id
        self.stack = stack
        self.sim = stack.sim
        self.local = local      # Endpoint
        self.remote = remote    # Endpoint
        self.passive = passive
        self.state = CLOSED
        self.mss = stack.mss_for(local, remote)
        self.cc = make_congestion_control(cc, self.mss)
        self.rtt = RttEstimator()

        self.iss = iss if iss is not None else (self.conn_id * 100000)
        self.snd_una = self.iss
        self.snd_nxt = self.iss
        self.snd_buf = SendBuffer(self.iss + 1, capacity=send_buffer_capacity)
        self.rcv_buf = None     # created once the peer's ISS is known
        self.peer_window = self.mss * 10
        self.irs = None

        self._fin_queued = False
        self._fin_seq = None
        self._fin_sent = False
        self._remote_fin_seen = False

        self._rto_event = None
        self._rto_backoff = 0
        self._syn_retries = 0
        self._dupacks = 0
        self._in_recovery = False
        self._recover_point = 0
        # RFC 6675-style scoreboard: what the peer holds, what we deem
        # lost, and what we already retransmitted this recovery episode.
        self._sacked = RangeSet()
        self._lost = RangeSet()
        self._rexmitted = RangeSet()
        self._rtt_seq = None
        self._rtt_time = None
        self._time_wait_event = None
        self._persist_event = None
        self._persist_backoff = 0

        # User timeout (RFC 5482): TCPLS's blackhole-detection trigger.
        self.user_timeout = None
        self._uto_event = None
        self.last_segment_received = self.sim.now
        self.last_data_received = None
        #: fluid-mode liveness hook: a callable returning the timestamp
        #: of the flow's last modelled progress.  While a fluid engine
        #: serves this connection's transfer no segments arrive, so the
        #: user-timeout check consults this instead of going off on a
        #: healthy (merely leapt-over) interval; a stalled flow freezes
        #: the timestamp and the UTO fires exactly as packet mode would.
        self.fluid_progress = None

        # TFO state for this connection attempt.
        self._tfo_data = b""
        self._tfo_accepted = False
        self._syn_acked_len = 0

        # Stats for tcp_info().
        self.bytes_sent = 0
        self.bytes_acked = 0
        self.bytes_received = 0
        self.segments_sent = 0
        self.segments_received = 0
        self.retransmissions = 0
        self.established_at = None

        # TSO/GSO-style segmentation offload: data and retransmit
        # bursts leave as segment *trains* (one routing pass, one
        # link-admission batch, one heap event downstream).  ``_train``
        # is the collection buffer while a burst is being built.
        self._train = None
        self.trains_sent = 0
        self.train_segments_sent = 0

        # Application callbacks.
        self.on_established = None
        self.on_data = None
        self.on_close = None
        self.on_reset = None
        self.on_user_timeout = None
        self.on_send_space = None

        # Observability (repro.obs): last cwnd/ssthresh pair reported,
        # so cwnd_updated only fires on actual changes.
        self._last_cc_obs = None

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def _set_state(self, new_state):
        """All state transitions funnel through here so the event bus
        sees every edge of the connection state machine."""
        old_state, self.state = self.state, new_state
        if old_state != new_state:
            self.sim.bus.emit("tcp", "state_changed", {
                "conn": self.conn_id, "old": old_state, "new": new_state,
            })

    def _observe_cc(self, trigger):
        """Report a cwnd/ssthresh change (after a CC hook ran)."""
        bus = self.sim.bus
        if not bus.wants("tcp"):
            return
        cwnd = int(self.cc.cwnd)
        ssthresh = self.cc.ssthresh
        ssthresh = None if ssthresh == float("inf") else int(ssthresh)
        if (cwnd, ssthresh) == self._last_cc_obs:
            return
        self._last_cc_obs = (cwnd, ssthresh)
        bus.emit("tcp", "cwnd_updated", {
            "conn": self.conn_id, "cwnd": cwnd, "ssthresh": ssthresh,
            "min_cwnd": int(self.cc.min_cwnd), "trigger": trigger,
        })

    # ------------------------------------------------------------------
    # Opening
    # ------------------------------------------------------------------

    def connect(self, tfo_data=b""):
        """Start the active open.  ``tfo_data`` rides on the SYN when a
        Fast Open cookie for the peer is cached."""
        if self.state != CLOSED:
            raise RuntimeError("connect() on %s connection" % self.state)
        self._set_state(SYN_SENT)
        options = [MssOption(self.mss)]
        payload = b""
        if self.stack.tfo_enabled:
            cookie = self.stack.tfo_cookie_for(self.remote.addr)
            options.append(FastOpenOption(cookie))
            if cookie and tfo_data:
                payload = tfo_data[: self.mss]
                self._tfo_data = payload
                self.snd_buf.write(payload)
        self._send_segment(
            flags=FLAGS_SYN, seq=self.iss, options=options, payload=payload
        )
        self.snd_nxt = self.iss + 1 + len(payload)
        self._arm_rto()

    def accept_syn(self, segment, packet):
        """Passive open: stack routed a SYN to this new connection."""
        self._set_state(SYN_RCVD)
        self.irs = segment.seq
        self.rcv_buf = ReceiveBuffer(segment.seq + 1)
        mss_opt = segment.find_option(OPT_MSS)
        if mss_opt is not None:
            self.mss = min(self.mss, mss_opt.mss)
            self.cc.mss = self.mss
        self.peer_window = segment.window
        options = [MssOption(self.mss)]
        tfo = segment.find_option(OPT_FAST_OPEN)
        accepted_tfo_payload = b""
        if tfo is not None and self.stack.tfo_enabled:
            if tfo.cookie and self.stack.tfo_cookie_valid(
                packet.src, tfo.cookie
            ):
                # Valid cookie: the peer is genuine, so the server may
                # respond with data before the handshake ACK (RFC 7413).
                self._tfo_accepted = True
                if segment.payload:
                    self.rcv_buf.offer(segment.seq + 1, segment.payload)
                    accepted_tfo_payload = segment.payload
            else:
                options.append(
                    FastOpenOption(self.stack.tfo_make_cookie(packet.src))
                )
        self._send_segment(
            flags=FLAGS_SYN_ACK,
            seq=self.iss,
            ack=self.rcv_buf.rcv_nxt,
            options=options,
        )
        self.snd_nxt = self.iss + 1
        self._arm_rto()
        if accepted_tfo_payload and self.on_data is not None:
            # Deliver TFO payload once the app attaches callbacks; the
            # stack wires callbacks before calling us, so deliver now.
            self.on_data(self)

    # ------------------------------------------------------------------
    # Application API
    # ------------------------------------------------------------------

    def send(self, data):
        """Queue bytes; returns the count accepted (send-buffer space)."""
        if self.state not in (ESTABLISHED, CLOSE_WAIT, SYN_SENT, SYN_RCVD):
            raise RuntimeError("send() on %s connection" % self.state)
        if self._fin_queued:
            raise RuntimeError("send() after close()")
        accepted = self.snd_buf.write(bytes(data))
        self._try_send()
        return accepted

    def send_space(self):
        """Free bytes in the send buffer."""
        return self.snd_buf.free_space()

    def unsent_bytes(self):
        """Bytes queued in the send buffer but not yet transmitted."""
        return max(self.snd_buf.end_seq - self.snd_nxt, 0)

    def recv(self, n=None):
        """Read up to ``n`` in-order received bytes."""
        if self.rcv_buf is None:
            return b""
        window_before = self.rcv_buf.window()
        data = self.rcv_buf.read(n)
        # Window-update ACK: reopening a closed (or nearly closed)
        # receive window must be announced or the sender deadlocks.
        if data and window_before <= 2 * self.mss and self.is_open():
            if self.rcv_buf.window() > 2 * self.mss:
                self._send_ack()
        return data

    def readable_bytes(self):
        return 0 if self.rcv_buf is None else self.rcv_buf.readable_bytes()

    def close(self):
        """Graceful close: FIN after all queued data."""
        if self.state in (CLOSED, TIME_WAIT, LAST_ACK, CLOSING, FIN_WAIT_1,
                          FIN_WAIT_2):
            return
        self._fin_queued = True
        if self.state == ESTABLISHED:
            self._set_state(FIN_WAIT_1)
        elif self.state == CLOSE_WAIT:
            self._set_state(LAST_ACK)
        self._try_send()

    def abort(self):
        """Hard close: send RST, drop all state."""
        if self.state not in (CLOSED, TIME_WAIT):
            self._send_segment(flags=FLAGS_RST, seq=self.snd_nxt)
        self._enter_closed(notify=False)

    def set_user_timeout(self, seconds):
        """Arm (or update) the RFC 5482 user timeout."""
        self.user_timeout = seconds
        self._schedule_uto_check()

    def is_open(self):
        return self.state in (ESTABLISHED, CLOSE_WAIT, FIN_WAIT_1, FIN_WAIT_2)

    def bytes_in_flight(self):
        return max(self.snd_nxt - self.snd_una - self._ctrl_seq_in_flight(), 0)

    def congestion_window(self):
        """Current congestion window in bytes (Transport interface)."""
        return self.cc.cwnd

    # -- fluid fast-forward interface (see repro.net.fluid) -------------

    def is_steady_state(self):
        """Eligible for fluid fast-forward: established and between
        loss episodes — nothing marked lost or SACKed, no duplicate-ACK
        run, no recovery in progress.  Transitions (handshakes, loss,
        recovery, teardown) must run packet-level."""
        return (self.state == ESTABLISHED
                and not self._in_recovery
                and self._dupacks == 0
                and not self._lost
                and not self._sacked)

    def fluid_advance_send(self, nbytes):
        """Book ``nbytes`` of payload analytically sent-and-acked (the
        fluid engine served them; no segments existed).  Sequence spaces
        are untouched — the bytes never entered the send buffer."""
        self.bytes_sent += nbytes
        self.bytes_acked += nbytes

    def fluid_advance_recv(self, nbytes):
        """Book ``nbytes`` of payload analytically received, keeping
        the liveness timestamps fresh."""
        self.bytes_received += nbytes
        self.last_segment_received = self.sim.now
        self.last_data_received = self.sim.now

    def fluid_resync(self, cohort):
        """Re-enter packet mode after a completed fluid interval: adopt
        the modelled congestion state so the next packet-level send
        starts at the converged window instead of re-probing."""
        bdp = cohort.rate * cohort.overhead * cohort.rtt
        if cohort.cwnd is not None:
            bdp = max(bdp, cohort.cwnd * cohort.overhead)
        if bdp > 0:
            target = max(float(self.cc.min_cwnd), bdp)
            self.cc.cwnd = max(float(self.cc.cwnd), min(
                target, 64 * 1024 * 1024))
        self.last_segment_received = self.sim.now

    def set_callbacks(self, on_data=None, on_close=None, on_reset=None,
                      on_user_timeout=None, on_send_space=None,
                      on_established=None):
        """Install event callbacks (Transport interface); ``None``
        leaves a slot unchanged."""
        if on_data is not None:
            self.on_data = on_data
        if on_close is not None:
            self.on_close = on_close
        if on_reset is not None:
            self.on_reset = on_reset
        if on_user_timeout is not None:
            self.on_user_timeout = on_user_timeout
        if on_send_space is not None:
            self.on_send_space = on_send_space
        if on_established is not None:
            self.on_established = on_established

    def attach_ebpf_congestion(self, bytecode, program_name="prog"):
        """Verify ``bytecode`` and swap in the eBPF congestion
        controller, preserving the current window state (Sec. 4.4).
        Returns False when verification rejects the program."""
        from repro.ebpf.cc_hooks import EbpfCongestionControl
        from repro.ebpf.verifier import VerificationError

        try:
            cc = EbpfCongestionControl.from_bytecode(
                self.mss, bytecode, program_name=program_name
            )
        except (VerificationError, ValueError):
            return False  # reject quietly; sender is not trusted blindly
        cc.cwnd = self.cc.cwnd
        cc.ssthresh = self.cc.ssthresh
        self.cc = cc
        return True

    def _ctrl_seq_in_flight(self):
        ctrl = 0
        if self.snd_una <= self.iss:
            ctrl += 1  # SYN outstanding
        if self._fin_sent and self.snd_una <= (self._fin_seq or 0):
            ctrl += 1
        return ctrl

    def tcp_info(self):
        """Linux-``tcp_info``-style statistics snapshot.

        This is the interface TCPLS applications use to drive scheduling
        decisions (Sec. 3.3.3: "Using socket options such as tcp_info,
        an application can retrieve useful statistics").
        """
        info = {
            "state": self.state,
            "mss": self.mss,
            "srtt": self.rtt.srtt,
            "rttvar": self.rtt.rttvar,
            "min_rtt": None if self.rtt.min_rtt == float("inf")
            else self.rtt.min_rtt,
            "rto": self.rtt.rto,
            "bytes_in_flight": self.bytes_in_flight(),
            "peer_window": self.peer_window,
            "bytes_sent": self.bytes_sent,
            "bytes_acked": self.bytes_acked,
            "bytes_received": self.bytes_received,
            "segments_sent": self.segments_sent,
            "segments_received": self.segments_received,
            "retransmissions": self.retransmissions,
        }
        info.update(self.cc.snapshot())
        return info

    # ------------------------------------------------------------------
    # Output path
    # ------------------------------------------------------------------

    def _send_window(self):
        return min(self.cc.cwnd, self.peer_window)

    def _try_send(self):
        if self.state in (CLOSED, SYN_SENT, TIME_WAIT):
            return
        if self.state == SYN_RCVD and not self._tfo_accepted:
            return  # wait for the handshake ACK (no TFO validation)
        sent_any = self._retransmit_lost()
        # New data leaves as one segment train (TSO/GSO-style offload):
        # the header template -- ports, ACK, advertised window -- is
        # built once for the whole burst, congestion/flow bookkeeping
        # runs on exact local ints, and the burst goes out through a
        # single transmit_train() call.  ``window`` is constant across
        # the burst (no ACK can arrive between synchronous sends), and
        # ``in_flight`` grows by exactly the payload length per segment,
        # so per-iteration arithmetic matches the unbatched loop
        # bit-for-bit.
        available = self.snd_buf.end_seq - self.snd_nxt
        if available > 0:
            in_flight = self._pipe()
            window = self._send_window()
        if available > 0 and window > in_flight:
            mss = self.mss
            ack = self._ack_value()
            adv_window = (self.rcv_buf.window() if self.rcv_buf is not None
                          else 1 << 20)
            snd_nxt = self.snd_nxt
            peek = self.snd_buf.peek
            data_segment = Segment.data_segment
            src_port, dst_port = self.local.port, self.remote.port
            src_addr, dst_addr = self.local.addr, self.remote.addr
            train = self._train = []
            try:
                while available > 0:
                    room = window - in_flight
                    if room <= 0:
                        break
                    size = int(min(mss, available, room))
                    if size <= 0:
                        break
                    # Silly-window avoidance: a fractionally-growing
                    # cwnd must not clock out runt segments mid-stream;
                    # wait until a full MSS of window opens (always
                    # flush the stream tail).
                    if size < mss and size < available and in_flight > 0:
                        break
                    payload = peek(snd_nxt, size)
                    segment = data_segment(src_port, dst_port, snd_nxt,
                                           ack, FLAGS_ACK, adv_window,
                                           payload)
                    train.append(Packet(src_addr, dst_addr, "tcp", segment))
                    length = len(payload)
                    if self._rtt_seq is None:
                        self._rtt_seq = snd_nxt + length
                        self._rtt_time = self.sim.now
                    snd_nxt += length
                    in_flight += length
                    available -= length
                if train:
                    self.segments_sent += len(train)
                    self.bytes_sent += snd_nxt - self.snd_nxt
                    self.snd_nxt = snd_nxt
                    sent_any = True
            finally:
                self._flush_train("data")
        if (not sent_any and self.peer_window == 0
                and self.snd_buf.end_seq > self.snd_nxt):
            self._arm_persist()
        if (self._fin_queued and not self._fin_sent
                and self.snd_nxt == self.snd_buf.end_seq):
            self._fin_seq = self.snd_nxt
            self._send_segment(
                flags=FLAGS_FIN_ACK, seq=self.snd_nxt, ack=self._ack_value()
            )
            self.snd_nxt += 1
            self._fin_sent = True
            sent_any = True
        if sent_any:
            self._arm_rto()

    def _ack_value(self):
        if self.rcv_buf is None:
            return 0
        ack = self.rcv_buf.rcv_nxt
        return ack

    def _send_segment(self, flags, seq, ack=0, options=(), payload=b""):
        window = self.rcv_buf.window() if self.rcv_buf is not None else (
            1 << 20
        )
        segment = Segment(
            src_port=self.local.port,
            dst_port=self.remote.port,
            seq=seq,
            ack=ack,
            flags=frozenset(flags),
            window=window,
            options=tuple(options),
            payload=payload,
        )
        packet = Packet(self.local.addr, self.remote.addr, "tcp", segment)
        self.segments_sent += 1
        if self._train is not None:
            self._train.append(packet)
        else:
            self.stack.transmit(packet)

    def _flush_train(self, kind):
        """Hand the collected burst to the stack and reset collection.

        A single packet degenerates to a plain ``transmit`` (no train
        bookkeeping downstream); larger bursts go out through one
        ``transmit_train`` call: one routing pass, one link-admission
        batch, one simulator heap event.  Admission still runs per
        packet in append order, so drop/RNG/serialization behaviour is
        bit-identical to individual sends.
        """
        train, self._train = self._train, None
        n = len(train)
        if n == 0:
            return
        if n == 1:
            self.stack.transmit(train[0])
        else:
            self.stack.transmit_train(train)
            self.trains_sent += 1
            self.train_segments_sent += n
            bus = self.sim.bus
            if bus.wants("perf"):
                bus.emit("perf", "segment_train", {
                    "conn": self.conn_id,
                    "segments": n,
                    "bytes": sum(p.wire_size() for p in train),
                    "kind": kind,
                })

    def _send_ack(self):
        if self.state in (CLOSED,):
            return
        options = ()
        if self.rcv_buf is not None and self.rcv_buf.has_gap():
            options = (SackOption(self.rcv_buf.sack_blocks()),)
        self._send_segment(flags=FLAGS_ACK, seq=self.snd_nxt,
                           ack=self._ack_value(), options=options)

    # -- SACK scoreboard (RFC 6675 style) ---------------------------------

    def _merge_sack_blocks(self, blocks):
        """Fold peer-reported SACK blocks into the scoreboard."""
        for start, end in blocks:
            self._sacked.add(int(start), int(end))
            self._lost.subtract(int(start), int(end))
        self._prune_scoreboard()

    def _prune_scoreboard(self):
        self._sacked.trim_below(self.snd_una)
        self._lost.trim_below(self.snd_una)
        self._rexmitted.trim_below(self.snd_una)

    def _pipe(self):
        """Bytes believed to actually be in flight."""
        outstanding = self.snd_nxt - self.snd_una
        return max(outstanding - self._sacked.total - self._lost.total, 0)

    def _mark_holes_lost(self):
        """Declare holes lost per RFC 6675's IsLost: a gap counts as lost
        only once at least DupThresh (3) segments' worth of data above it
        has been SACKed -- otherwise it is merely still in flight and
        retransmitting it would inflate the pipe past cwnd."""
        if not self._sacked:
            return
        threshold = 3 * self.mss
        ranges = list(self._sacked)
        gaps = self._sacked.complement_within(self.snd_una, self._sacked.max)
        for start, end in gaps:
            sacked_above = sum(e - s for s, e in ranges if s >= end)
            if sacked_above < threshold:
                continue
            cursor = start
            while cursor < end:
                chunk_end = min(cursor + self.mss, end)
                if not self._rexmitted.covers(cursor, chunk_end):
                    self._lost.add(cursor, chunk_end)
                cursor = chunk_end

    def _retransmit_lost(self):
        """Retransmit marked-lost ranges while the window has room.

        Returns True if anything was (re)sent.
        """
        if not self._lost:
            # Common case (no loss episode in progress): skip the window
            # math and train setup entirely.
            return False
        sent = False
        # Retransmissions form their own train (never merged with new
        # data: a retransmit boundary always splits bursts), flushed
        # before the RTO re-arm so simulator bookkeeping happens in the
        # same order as per-segment sends.
        self._train = []
        try:
            while self._pipe() < self._send_window():
                hole = self._lost.first_range_at_or_above(self.snd_una)
                if hole is None:
                    break
                seq, end = hole
                if self._fin_sent and self._fin_seq is not None and \
                        seq >= self._fin_seq:
                    self._lost.subtract(seq, end)
                    self._send_segment(flags=FLAGS_FIN_ACK, seq=self._fin_seq,
                                       ack=self._ack_value())
                    self.retransmissions += 1
                    sent = True
                    continue
                end = min(end, seq + self.mss, self.snd_buf.end_seq)
                if end <= seq:
                    self._lost.subtract(seq, hole[1])
                    continue
                payload = self.snd_buf.peek(seq, end - seq)
                self._send_segment(flags=FLAGS_ACK, seq=seq,
                                   ack=self._ack_value(), payload=payload)
                self._lost.subtract(seq, end)      # back in flight
                self._rexmitted.add(seq, end)
                self.retransmissions += 1
                sent = True
        finally:
            self._flush_train("rexmit")
        if sent:
            self._arm_rto()
        return sent

    # ------------------------------------------------------------------
    # Persist timer (zero-window probing)
    # ------------------------------------------------------------------

    def _arm_persist(self):
        if self._persist_event is not None:
            return
        timeout = self.rtt.rto * (2 ** min(self._persist_backoff, 6))
        self._persist_event = self.sim.schedule(timeout, self._on_persist)

    def _on_persist(self):
        self._persist_event = None
        if self.state == CLOSED or self.peer_window > 0:
            self._persist_backoff = 0
            self._try_send()
            return
        if self.snd_buf.end_seq > self.snd_nxt:
            # One-byte window probe; the ACK carries the fresh window.
            payload = self.snd_buf.peek(self.snd_nxt, 1)
            self._send_segment(flags=FLAGS_ACK, seq=self.snd_nxt,
                               ack=self._ack_value(), payload=payload)
            self.snd_nxt += 1
            self._persist_backoff += 1
            self._arm_persist()

    # ------------------------------------------------------------------
    # Retransmission
    # ------------------------------------------------------------------

    def _arm_rto(self):
        self._cancel_rto()
        timeout = self.rtt.rto * (2 ** self._rto_backoff)
        self._rto_event = self.sim.schedule(timeout, self._on_rto)

    def _cancel_rto(self):
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None

    def _on_rto(self):
        self._rto_event = None
        if self.state == CLOSED:
            return
        if self.sim.bus.wants("tcp"):
            self.sim.bus.emit("tcp", "rto", {
                "conn": self.conn_id, "state": self.state,
                "backoff": self._rto_backoff,
            })
        if self.state == SYN_SENT:
            self._syn_retries += 1
            if self._syn_retries > MAX_SYN_RETRIES:
                self._enter_closed(notify=True, reset=True)
                return
            self._rto_backoff += 1
            options = [MssOption(self.mss)]
            if self.stack.tfo_enabled:
                options.append(
                    FastOpenOption(self.stack.tfo_cookie_for(self.remote.addr))
                )
            self._send_segment(flags=FLAGS_SYN, seq=self.iss, options=options,
                               payload=self._tfo_data)
            self._arm_rto()
            return
        if self.state == SYN_RCVD:
            self._rto_backoff += 1
            self._send_segment(flags=FLAGS_SYN_ACK, seq=self.iss,
                               ack=self._ack_value(),
                               options=[MssOption(self.mss)])
            self._arm_rto()
            return
        if self.snd_una >= self.snd_nxt:
            return  # nothing outstanding
        self._rto_backoff += 1
        self.cc.on_rto(self.sim.now)
        self._observe_cc("rto")
        self._rtt_seq = None  # Karn: no samples from retransmits
        self._in_recovery = False
        self._dupacks = 0
        self._rexmitted.clear()
        # Everything outstanding and not SACKed is presumed lost; it will
        # be retransmitted in cwnd-sized bursts as ACKs return.
        self._lost = self._sacked.complement_within(self.snd_una,
                                                    self.snd_nxt)
        self._retransmit_lost()
        self._arm_rto()

    def _retransmit_first_unacked(self):
        seq = max(self.snd_una, self.snd_buf.base_seq)
        if self._fin_sent and seq >= (self._fin_seq or 0):
            self._send_segment(flags=FLAGS_FIN_ACK, seq=self._fin_seq,
                               ack=self._ack_value())
            self.retransmissions += 1
            return
        end = min(self.snd_nxt, seq + self.mss, self.snd_buf.end_seq)
        length = end - seq
        if length <= 0:
            return
        payload = self.snd_buf.peek(seq, length)
        self._send_segment(flags=FLAGS_ACK, seq=seq, ack=self._ack_value(),
                           payload=payload)
        self.retransmissions += 1
        if self._rtt_seq is not None and self._rtt_seq <= seq + length:
            self._rtt_seq = None

    # ------------------------------------------------------------------
    # Input path
    # ------------------------------------------------------------------

    def receive_segment(self, segment, packet):
        """Entry point from the stack's demultiplexer."""
        self.segments_received += 1
        self.last_segment_received = self.sim.now
        if segment.is_rst:
            self._handle_rst(segment)
            return
        handler = {
            SYN_SENT: self._rx_syn_sent,
            SYN_RCVD: self._rx_syn_rcvd,
        }.get(self.state, self._rx_established_family)
        handler(segment)

    def _handle_rst(self, segment):
        if self.state == CLOSED:
            return
        # Accept the RST if it is in the window (simplified check).
        self._enter_closed(notify=True, reset=True)

    def _rx_syn_sent(self, segment):
        if not (segment.is_syn and segment.is_ack):
            return
        if segment.ack <= self.iss or segment.ack > self.snd_nxt:
            return
        self.irs = segment.seq
        self.rcv_buf = ReceiveBuffer(segment.seq + 1)
        self.peer_window = segment.window
        mss_opt = segment.find_option(OPT_MSS)
        if mss_opt is not None:
            self.mss = min(self.mss, mss_opt.mss)
            self.cc.mss = self.mss
        tfo = segment.find_option(OPT_FAST_OPEN)
        if tfo is not None and tfo.cookie:
            self.stack.tfo_store_cookie(self.remote.addr, tfo.cookie)
        acked_payload = max(segment.ack - self.iss - 1, 0)
        self.snd_una = segment.ack
        self.snd_buf.ack_to(self.iss + 1 + acked_payload)
        if segment.ack < self.snd_nxt:
            # SYN data not accepted (no/expired cookie): rewind and
            # retransmit the payload after establishment.
            self.snd_nxt = segment.ack
        self._rto_backoff = 0
        self._cancel_rto()
        self._become_established()
        self._send_ack()
        self._try_send()

    def _rx_syn_rcvd(self, segment):
        if segment.is_syn and not segment.is_ack:
            # Duplicate SYN: retransmit SYN-ACK.
            self._send_segment(flags=FLAGS_SYN_ACK, seq=self.iss,
                               ack=self._ack_value(),
                               options=[MssOption(self.mss)])
            return
        if segment.is_ack and segment.ack == self.snd_nxt:
            self.snd_una = segment.ack
            self.peer_window = segment.window
            self._rto_backoff = 0
            self._cancel_rto()
            self._become_established()
            if segment.payload:
                self._process_payload(segment)
            self._try_send()

    def _become_established(self):
        self._set_state(ESTABLISHED)
        self.established_at = self.sim.now
        self._schedule_uto_check()
        if self.on_established is not None:
            self.on_established(self)

    def _rx_established_family(self, segment):
        if segment.is_syn:
            return  # stray SYN; a real stack would challenge-ACK
        if segment.is_ack:
            self._process_ack(segment)
        if segment.payload:
            self._process_payload(segment)
        if segment.is_fin:
            self._process_fin(segment)

    def _process_ack(self, segment):
        ack = segment.ack
        self.peer_window = segment.window
        if ack > self.snd_nxt:
            return  # acks data never sent
        sack_opt = segment.find_option(OPT_SACK)
        if ack > self.snd_una:
            in_flight_before = self.snd_nxt - self.snd_una
            newly_acked = ack - self.snd_una
            self.snd_una = ack
            data_acked = self.snd_buf.ack_to(ack)
            self.bytes_acked += data_acked
            self._dupacks = 0
            self._rto_backoff = 0
            if sack_opt is not None:
                self._merge_sack_blocks(sack_opt.blocks)
            else:
                self._prune_scoreboard()
            rtt_sample = None
            if self._rtt_seq is not None and ack >= self._rtt_seq:
                rtt_sample = self.sim.now - self._rtt_time
                self.rtt.on_sample(rtt_sample)
                self._rtt_seq = None
            if self._in_recovery:
                if ack >= self._recover_point:
                    self._in_recovery = False
                    self._rexmitted.clear()
                    self.cc.on_exit_recovery(self.sim.now)
                    self._observe_cc("exit_recovery")
                    if self.sim.bus.wants("tcp"):
                        self.sim.bus.emit("tcp", "recovery_exited", {
                            "conn": self.conn_id,
                        })
                else:
                    self._mark_holes_lost()
            else:
                self.cc.on_ack(newly_acked, rtt_sample, self.sim.now,
                               in_flight_before)
                self._observe_cc("ack")
            if self.snd_una >= self.snd_nxt:
                self._cancel_rto()
            else:
                self._arm_rto()
            self._handle_ack_state_transitions(ack)
            if self.on_send_space is not None and data_acked:
                self.on_send_space(self)
        elif (ack == self.snd_una and not segment.payload
              and self.snd_nxt > self.snd_una and not segment.is_fin):
            self._dupacks += 1
            if sack_opt is not None:
                self._merge_sack_blocks(sack_opt.blocks)
            self.cc.on_duplicate_ack(self._dupacks, self.sim.now)
            lost_by_sack = self._sacked.total >= 3 * self.mss
            if (self._dupacks >= 3 or lost_by_sack) and not self._in_recovery:
                self._enter_recovery()
            elif self._in_recovery:
                self._mark_holes_lost()
        self._try_send()

    def _enter_recovery(self):
        self._in_recovery = True
        self._recover_point = self.snd_nxt
        self._rexmitted.clear()
        self._rtt_seq = None  # Karn: no samples across a loss event
        self.cc.on_loss(self.sim.now)
        self._observe_cc("loss")
        if self.sim.bus.wants("tcp"):
            self.sim.bus.emit("tcp", "fast_retransmit", {
                "conn": self.conn_id, "recover_point": self._recover_point,
                "dupacks": self._dupacks,
            })
        if self._sacked:
            self._mark_holes_lost()
        else:
            self._lost.add(self.snd_una,
                           min(self.snd_una + self.mss, self.snd_nxt))

    def _handle_ack_state_transitions(self, ack):
        fin_acked = self._fin_sent and ack > (self._fin_seq or 0)
        if self.state == FIN_WAIT_1 and fin_acked:
            self._set_state(FIN_WAIT_2)
        elif self.state == CLOSING and fin_acked:
            self._enter_time_wait()
        elif self.state == LAST_ACK and fin_acked:
            self._enter_closed(notify=True)

    def _process_payload(self, segment):
        if self.rcv_buf is None:
            return
        delivered = self.rcv_buf.offer(segment.seq, segment.payload)
        self.bytes_received += delivered
        self.last_data_received = self.sim.now
        # Deliver before acking so synchronous readers free buffer space
        # that the advertised window can reflect immediately.
        if delivered and self.on_data is not None:
            self.on_data(self)
        self._send_ack()

    def _process_fin(self, segment):
        if self.rcv_buf is None or segment.end_seq - 1 != self.rcv_buf.rcv_nxt:
            # FIN not yet in order; the ACK we sent covers what we have.
            if self.rcv_buf is not None and segment.seq <= self.rcv_buf.rcv_nxt:
                pass
            else:
                return
        if self._remote_fin_seen:
            self._send_ack()
            return
        self._remote_fin_seen = True
        self.rcv_buf.rcv_nxt += 1
        self._send_ack()
        if self.state == ESTABLISHED:
            self._set_state(CLOSE_WAIT)
        elif self.state == FIN_WAIT_1:
            self._set_state(CLOSING)
        elif self.state == FIN_WAIT_2:
            self._enter_time_wait()
        if self.on_close is not None:
            self.on_close(self)

    # ------------------------------------------------------------------
    # Teardown and timers
    # ------------------------------------------------------------------

    def _enter_time_wait(self):
        self._set_state(TIME_WAIT)
        self._cancel_rto()
        self._time_wait_event = self.sim.schedule(
            TIME_WAIT_DURATION, self._enter_closed, True
        )

    def _enter_closed(self, notify=False, reset=False):
        was_open = self.state not in (CLOSED,)
        self._set_state(CLOSED)
        self._cancel_rto()
        if self._uto_event is not None:
            self._uto_event.cancel()
            self._uto_event = None
        if self._time_wait_event is not None:
            self._time_wait_event.cancel()
            self._time_wait_event = None
        if self._persist_event is not None:
            self._persist_event.cancel()
            self._persist_event = None
        self.stack.forget(self)
        if not (notify and was_open):
            return
        if reset and self.on_reset is not None:
            self.on_reset(self)
        elif not reset and self.on_close is not None:
            self.on_close(self)

    def _schedule_uto_check(self):
        if self.user_timeout is None or self.state != ESTABLISHED:
            return
        if self._uto_event is not None:
            self._uto_event.cancel()
        self._uto_event = self.sim.schedule(
            max(self.user_timeout / 4.0, 0.01), self._check_uto
        )

    def _check_uto(self):
        self._uto_event = None
        if self.user_timeout is None or self.state != ESTABLISHED:
            return
        reference = self.last_segment_received
        if self.fluid_progress is not None:
            reference = max(reference, self.fluid_progress())
        idle = self.sim.now - reference
        # RFC 5482 covers unacknowledged sent data; the paper
        # additionally uses it receiver-side to notice a stalled inbound
        # transfer.  Either way an *idle* connection must not fire.
        transfer_active = self.bytes_in_flight() > 0 or (
            self.last_data_received is not None
            and self.sim.now - self.last_data_received
            < 4 * self.user_timeout
        )
        if not transfer_active and self.fluid_progress is not None:
            # A fluid-served transfer counts as active while it made
            # progress recently (stall detection window, as above).
            transfer_active = (
                self.sim.now - reference < 4 * self.user_timeout)
        if idle >= self.user_timeout and transfer_active:
            if self.on_user_timeout is not None:
                self.on_user_timeout(self)
            return  # fired once; TCPLS decides what happens next
        self._schedule_uto_check()

    def __repr__(self):
        return "TcpConnection(%s %s->%s)" % (self.state, self.local,
                                             self.remote)
