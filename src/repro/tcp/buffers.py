"""Send and receive buffers for the bytestream.

The send buffer retains unacknowledged bytes addressed by absolute
sequence number; the receive buffer reassembles in-order data from
possibly out-of-order, overlapping segments and exposes a read queue
with back-pressure (its free space is the advertised window).
"""


class SendBuffer:
    """Bytes the application queued, addressed by sequence number.

    ``base_seq`` tracks the lowest unacknowledged byte; data below it
    has been freed.  ``next_new`` is where the next app write lands.
    """

    def __init__(self, base_seq, capacity=None):
        self.base_seq = base_seq
        self.capacity = capacity
        self._chunks = bytearray()

    def __len__(self):
        return len(self._chunks)

    @property
    def end_seq(self):
        return self.base_seq + len(self._chunks)

    def free_space(self):
        if self.capacity is None:
            return float("inf")
        return self.capacity - len(self._chunks)

    def write(self, data):
        """Append application data; returns bytes accepted."""
        accept = len(data)
        if self.capacity is not None:
            accept = min(accept, max(self.capacity - len(self._chunks), 0))
        self._chunks += data[:accept]
        return accept

    def peek(self, seq, length):
        """Read ``length`` bytes starting at absolute ``seq``."""
        if seq < self.base_seq:
            raise ValueError("peek below base_seq (already acked)")
        offset = seq - self.base_seq
        return bytes(self._chunks[offset:offset + length])

    def ack_to(self, seq):
        """Release everything below absolute ``seq``; returns bytes freed."""
        if seq <= self.base_seq:
            return 0
        freed = min(seq - self.base_seq, len(self._chunks))
        del self._chunks[:freed]
        self.base_seq += freed
        return freed


class ReceiveBuffer:
    """Reassembles the incoming bytestream.

    Out-of-order data is kept in a segment map keyed by sequence number;
    when the gap fills, contiguous bytes move to the readable queue.
    ``capacity`` bounds readable + buffered out-of-order data and is the
    basis of the advertised receive window.
    """

    def __init__(self, rcv_nxt, capacity=1 << 20):
        self.rcv_nxt = rcv_nxt
        self.capacity = capacity
        self._readable = bytearray()
        self._ooo = {}

    def window(self):
        """Advertised window: free space."""
        used = len(self._readable) + sum(len(d) for d in self._ooo.values())
        return max(self.capacity - used, 0)

    def readable_bytes(self):
        return len(self._readable)

    def offer(self, seq, data):
        """Accept segment payload at absolute ``seq``.

        Returns the number of *new* in-order bytes made readable.
        Duplicate and already-received data is trimmed; data beyond the
        window is clamped (a simplification: real stacks also trim).
        """
        if not data:
            return 0
        end = seq + len(data)
        if end <= self.rcv_nxt:
            return 0  # entirely old
        if seq < self.rcv_nxt:
            data = data[self.rcv_nxt - seq:]
            seq = self.rcv_nxt
        limit = self.rcv_nxt + self.window() + len(self._readable)
        if seq >= limit + self.capacity:
            return 0  # absurdly far ahead; drop
        if seq > self.rcv_nxt:
            existing = self._ooo.get(seq)
            if existing is None or len(existing) < len(data):
                self._ooo[seq] = data
            return 0
        # In-order: deliver, then drain any now-contiguous segments.
        delivered = len(data)
        self._readable += data
        self.rcv_nxt = end
        while True:
            nxt = self._find_contiguous()
            if nxt is None:
                break
            seq2, data2 = nxt
            del self._ooo[seq2]
            if seq2 + len(data2) <= self.rcv_nxt:
                continue
            if seq2 < self.rcv_nxt:
                data2 = data2[self.rcv_nxt - seq2:]
            self._readable += data2
            delivered += len(data2)
            self.rcv_nxt += len(data2)
        return delivered

    def _find_contiguous(self):
        for seq, data in self._ooo.items():
            if seq <= self.rcv_nxt:
                return seq, data
        return None

    def read(self, n=None):
        """Consume up to ``n`` readable bytes (all if None)."""
        if n is None or n >= len(self._readable):
            data = bytes(self._readable)
            self._readable.clear()
            return data
        data = bytes(self._readable[:n])
        del self._readable[:n]
        return data

    def has_gap(self):
        return bool(self._ooo)

    def sack_blocks(self, limit=3):
        """Merged out-of-order ranges for SACK generation (RFC 2018)."""
        if not self._ooo:
            return []
        spans = sorted((seq, seq + len(d)) for seq, d in self._ooo.items())
        merged = [list(spans[0])]
        for start, end in spans[1:]:
            if start <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], end)
            else:
                merged.append([start, end])
        # Most recently useful (highest) blocks first, like real stacks.
        merged.sort(key=lambda b: b[1], reverse=True)
        return [tuple(b) for b in merged[:limit]]
