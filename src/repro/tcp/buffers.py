"""Send and receive buffers for the bytestream.

The send buffer retains unacknowledged bytes addressed by absolute
sequence number; the receive buffer reassembles in-order data from
possibly out-of-order, overlapping segments and exposes a read queue
with back-pressure (its free space is the advertised window).

Hot-path layout: the send buffer keeps application writes as a list of
*immutable* chunks so :meth:`SendBuffer.peek` can hand out zero-copy
``memoryview`` slices -- the segment payload and the TLS record it is
sealed into reference the application's bytes instead of copying them
twice more.  Immutability matters: a live memoryview over a resizable
``bytearray`` would make releasing acked data a ``BufferError``.
"""

from bisect import bisect_right


class SendBuffer:
    """Bytes the application queued, addressed by sequence number.

    ``base_seq`` tracks the lowest unacknowledged byte; data below it
    has been freed.  Chunks are freed lazily: an index (``_head``)
    advances past fully-acked chunks and the chunk list compacts only
    once dead entries dominate, so ``ack_to`` is amortised O(1) instead
    of a memmove of the whole buffer per ACK.
    """

    def __init__(self, base_seq, capacity=None):
        self.base_seq = base_seq
        self.capacity = capacity
        self._chunks = []      # immutable bytes objects
        self._ends = []        # absolute end seq of each chunk (sorted)
        self._head = 0         # index of first chunk with live bytes
        self._end_seq = base_seq
        # Peek cursor: index of the chunk the last peek landed in.  The
        # train builder walks the buffer in MSS steps, so the next peek
        # almost always hits the same chunk or its successor -- O(1)
        # instead of a bisect per segment.
        self._peek_index = 0

    def __len__(self):
        return self._end_seq - self.base_seq

    @property
    def end_seq(self):
        return self._end_seq

    def free_space(self):
        if self.capacity is None:
            return float("inf")
        return self.capacity - len(self)

    def write(self, data):
        """Append application data; returns bytes accepted.

        ``bytes`` input is retained by reference (no copy); anything
        else, or a clamped write, is copied once into an immutable
        chunk.
        """
        accept = len(data)
        if self.capacity is not None:
            accept = min(accept, max(self.capacity - len(self), 0))
        if not accept:
            return 0
        if accept == len(data) and type(data) is bytes:
            chunk = data
        else:
            chunk = bytes(memoryview(data)[:accept])
        self._chunks.append(chunk)
        self._end_seq += accept
        self._ends.append(self._end_seq)
        return accept

    def peek(self, seq, length):
        """Read up to ``length`` bytes starting at absolute ``seq``.

        Returns a zero-copy ``memoryview`` when the range lies inside a
        single chunk (the common case: MSS-sized reads of MSS-or-larger
        writes), else a gathered ``bytes``.
        """
        if seq < self.base_seq:
            raise ValueError("peek below base_seq (already acked)")
        end = min(seq + length, self._end_seq)
        if seq >= end:
            return b""
        # Cursor fast path: sequential peeks hit the cached chunk or
        # the one after it; anything else falls back to the bisect.
        ends = self._ends
        head = self._head
        i = self._peek_index
        if not (head <= i < len(ends)
                and (ends[i - 1] if i > head else self.base_seq) <= seq
                < ends[i]):
            i += 1
            if not (head <= i < len(ends) and ends[i - 1] <= seq < ends[i]):
                i = bisect_right(ends, seq, head)
        self._peek_index = i
        chunk = self._chunks[i]
        offset = seq - (self._ends[i] - len(chunk))
        if end <= self._ends[i]:
            return memoryview(chunk)[offset:offset + (end - seq)]
        parts = [memoryview(chunk)[offset:]]
        need = (end - seq) - len(parts[0])
        while need > 0:
            i += 1
            chunk = self._chunks[i]
            take = chunk if len(chunk) <= need else memoryview(chunk)[:need]
            parts.append(take)
            need -= len(take)
        return b"".join(parts)

    def ack_to(self, seq):
        """Release everything below absolute ``seq``; returns bytes freed."""
        if seq <= self.base_seq:
            return 0
        freed = min(seq, self._end_seq) - self.base_seq
        self.base_seq += freed
        head = self._head
        ends = self._ends
        n = len(ends)
        while head < n and ends[head] <= self.base_seq:
            head += 1
        self._head = head
        if head == n:
            self._chunks.clear()
            self._ends.clear()
            self._head = 0
            self._peek_index = 0
        elif head > 32 and head * 2 > n:
            self._chunks = self._chunks[head:]
            self._ends = ends[head:]
            self._head = 0
            self._peek_index = max(self._peek_index - head, 0)
        return freed


class ReceiveBuffer:
    """Reassembles the incoming bytestream.

    Out-of-order data is kept in a segment map keyed by sequence number;
    when the gap fills, contiguous bytes move to the readable queue.
    ``capacity`` bounds readable + buffered out-of-order data and is the
    basis of the advertised receive window.  The out-of-order byte total
    is maintained incrementally so :meth:`window` -- computed for every
    outgoing segment -- is O(1).
    """

    def __init__(self, rcv_nxt, capacity=1 << 20):
        self.rcv_nxt = rcv_nxt
        self.capacity = capacity
        self._readable = bytearray()
        self._ooo = {}
        self._ooo_bytes = 0

    def window(self):
        """Advertised window: free space."""
        used = len(self._readable) + self._ooo_bytes
        return max(self.capacity - used, 0)

    def readable_bytes(self):
        return len(self._readable)

    def offer(self, seq, data):
        """Accept segment payload at absolute ``seq``.

        Returns the number of *new* in-order bytes made readable.
        Duplicate and already-received data is trimmed; data beyond the
        window is clamped (a simplification: real stacks also trim).
        """
        if not data:
            return 0
        end = seq + len(data)
        if end <= self.rcv_nxt:
            return 0  # entirely old
        if seq < self.rcv_nxt:
            data = data[self.rcv_nxt - seq:]
            seq = self.rcv_nxt
        limit = self.rcv_nxt + self.window() + len(self._readable)
        if seq >= limit + self.capacity:
            return 0  # absurdly far ahead; drop
        if seq > self.rcv_nxt:
            existing = self._ooo.get(seq)
            if existing is None:
                self._ooo[seq] = data
                self._ooo_bytes += len(data)
            elif len(existing) < len(data):
                self._ooo[seq] = data
                self._ooo_bytes += len(data) - len(existing)
            return 0
        # In-order: deliver, then drain any now-contiguous segments.
        delivered = len(data)
        self._readable += data
        self.rcv_nxt = end
        while True:
            nxt = self._find_contiguous()
            if nxt is None:
                break
            seq2, data2 = nxt
            del self._ooo[seq2]
            self._ooo_bytes -= len(data2)
            if seq2 + len(data2) <= self.rcv_nxt:
                continue
            if seq2 < self.rcv_nxt:
                data2 = data2[self.rcv_nxt - seq2:]
            self._readable += data2
            delivered += len(data2)
            self.rcv_nxt += len(data2)
        return delivered

    def _find_contiguous(self):
        for seq, data in self._ooo.items():
            if seq <= self.rcv_nxt:
                return seq, data
        return None

    def read(self, n=None):
        """Consume up to ``n`` readable bytes (all if None)."""
        if n is None or n >= len(self._readable):
            data = bytes(self._readable)
            self._readable.clear()
            return data
        data = bytes(self._readable[:n])
        del self._readable[:n]
        return data

    def has_gap(self):
        return bool(self._ooo)

    def sack_blocks(self, limit=3):
        """Merged out-of-order ranges for SACK generation (RFC 2018)."""
        if not self._ooo:
            return []
        spans = sorted((seq, seq + len(d)) for seq, d in self._ooo.items())
        merged = [list(spans[0])]
        for start, end in spans[1:]:
            if start <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], end)
            else:
                merged.append([start, end])
        # Most recently useful (highest) blocks first, like real stacks.
        merged.sort(key=lambda b: b[1], reverse=True)
        return [tuple(b) for b in merged[:limit]]
