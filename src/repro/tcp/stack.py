"""Per-host TCP stack: demultiplexing, listeners, port allocation, TFO.

One :class:`TcpStack` is registered on each :class:`repro.net.Host`
under the ``"tcp"`` protocol.  It owns every connection terminating at
that host and hands inbound segments to the right state machine by
(local addr, local port, remote addr, remote port).
"""

import hashlib

from repro.net.address import Endpoint, ip_header_size
from repro.net.packet import Packet
from repro.tcp.connection import TcpConnection
from repro.tcp.segment import Segment

EPHEMERAL_PORT_BASE = 49152


class Listener:
    """A passive socket: accepts SYNs on a port."""

    def __init__(self, port, on_accept, cc="cubic"):
        self.port = port
        self.on_accept = on_accept
        self.cc = cc
        self.accepted = 0


class TcpStack:
    """Host-wide TCP state."""

    def __init__(self, sim, host, default_cc="cubic", tfo_enabled=False):
        self.sim = sim
        self.host = host
        self.default_cc = default_cc
        self.tfo_enabled = tfo_enabled
        self._connections = {}
        self._listeners = {}
        self._next_port = EPHEMERAL_PORT_BASE
        self._tfo_secret = hashlib.sha256(host.name.encode()).digest()
        self._tfo_client_cookies = {}
        host.register_stack("tcp", self)

    # -- API -------------------------------------------------------------

    def listen(self, port, on_accept, cc=None):
        """Accept connections on ``port``.

        ``on_accept(conn)`` runs when a SYN arrives, *before* the
        SYN-ACK is emitted, so the acceptor can attach callbacks (and
        TFO payload is delivered through them).
        """
        if port in self._listeners:
            raise ValueError("port %d already listening" % port)
        listener = Listener(port, on_accept, cc or self.default_cc)
        self._listeners[port] = listener
        return listener

    def connect(self, local_addr, remote, local_port=None, cc=None,
                tfo_data=b""):
        """Active open from ``local_addr`` to ``remote`` Endpoint.

        Binding the local address pins the connection to the owning
        interface/path -- this is how TCPLS opens one TCP connection per
        network path.
        """
        if local_port is None:
            local_port = self._allocate_port()
        local = Endpoint(local_addr, local_port)
        conn = TcpConnection(self, local, remote, cc=cc or self.default_cc)
        self._register(conn)
        conn.connect(tfo_data=tfo_data)
        return conn

    def connections(self):
        return list(self._connections.values())

    # -- TFO cookies -------------------------------------------------------

    def tfo_make_cookie(self, client_addr):
        digest = hashlib.sha256(
            self._tfo_secret + client_addr.packed()
        ).digest()
        return digest[:8]

    def tfo_cookie_valid(self, client_addr, cookie):
        return cookie == self.tfo_make_cookie(client_addr)

    def tfo_store_cookie(self, server_addr, cookie):
        self._tfo_client_cookies[server_addr] = cookie

    def tfo_cookie_for(self, server_addr):
        return self._tfo_client_cookies.get(server_addr, b"")

    # -- plumbing ---------------------------------------------------------

    def mss_for(self, local, remote):
        """MSS derived from the egress link MTU."""
        iface = self.host.route(remote.addr, local.addr)
        mtu = 1500
        if iface is not None and iface.tx_link is not None:
            mtu = iface.tx_link.mtu
        return mtu - ip_header_size(remote.addr.family) - 20

    def transmit(self, packet):
        return self.host.send(packet)

    def transmit_train(self, packets):
        """Hand a TSO/GSO segment train to the host in one call."""
        return self.host.send_train(packets)

    def _allocate_port(self):
        """Pick a free ephemeral port, wrapping within the IANA dynamic
        range and skipping ports still used by live connections."""
        in_use = {key[1] for key in self._connections}
        total = 65536 - EPHEMERAL_PORT_BASE
        for _ in range(total):
            port = self._next_port
            self._next_port += 1
            if self._next_port > 65535:
                self._next_port = EPHEMERAL_PORT_BASE
            if port not in in_use and port not in self._listeners:
                return port
        raise OSError("ephemeral port range exhausted")

    def _key(self, local_addr, local_port, remote_addr, remote_port):
        return (str(local_addr), local_port, str(remote_addr), remote_port)

    def _register(self, conn):
        key = self._key(conn.local.addr, conn.local.port, conn.remote.addr,
                        conn.remote.port)
        self._connections[key] = conn

    def forget(self, conn):
        key = self._key(conn.local.addr, conn.local.port, conn.remote.addr,
                        conn.remote.port)
        self._connections.pop(key, None)

    def receive(self, packet):
        """Demultiplex one inbound packet."""
        segment = packet.payload
        key = self._key(packet.dst, segment.dst_port, packet.src,
                        segment.src_port)
        conn = self._connections.get(key)
        if conn is not None:
            conn.receive_segment(segment, packet)
            return
        if segment.is_rst:
            return
        listener = self._listeners.get(segment.dst_port)
        if listener is not None and segment.is_syn and not segment.is_ack:
            local = Endpoint(packet.dst, segment.dst_port)
            remote = Endpoint(packet.src, segment.src_port)
            conn = TcpConnection(self, local, remote, passive=True,
                                 cc=listener.cc)
            self._register(conn)
            listener.accepted += 1
            listener.on_accept(conn)
            conn.accept_syn(segment, packet)
            return
        self._send_rst_for(packet, segment)

    def _send_rst_for(self, packet, segment):
        """Refuse a segment for which no socket exists."""
        if segment.is_ack:
            seq, ack, flags = segment.ack, 0, {"RST"}
        else:
            seq, ack, flags = 0, segment.end_seq, {"RST", "ACK"}
        rst = Segment(
            src_port=segment.dst_port,
            dst_port=segment.src_port,
            seq=seq,
            ack=ack,
            flags=frozenset(flags),
            window=0,
        )
        self.host.send(Packet(packet.dst, packet.src, "tcp", rst))
