"""RTT estimation and retransmission timeout per RFC 6298."""


class RttEstimator:
    """Tracks SRTT/RTTVAR and derives the RTO."""

    K = 4
    ALPHA = 1 / 8
    BETA = 1 / 4
    MIN_RTO = 0.2     # Linux uses 200 ms rather than RFC's 1 s
    MAX_RTO = 60.0
    INITIAL_RTO = 1.0
    CLOCK_GRANULARITY = 0.001

    def __init__(self):
        self.srtt = None
        self.rttvar = None
        self.min_rtt = float("inf")
        self.latest_rtt = None
        self.samples = 0

    def on_sample(self, rtt):
        """Feed one RTT measurement (seconds)."""
        if rtt <= 0:
            return
        self.latest_rtt = rtt
        self.min_rtt = min(self.min_rtt, rtt)
        self.samples += 1
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2
        else:
            self.rttvar = (1 - self.BETA) * self.rttvar + self.BETA * abs(
                self.srtt - rtt
            )
            self.srtt = (1 - self.ALPHA) * self.srtt + self.ALPHA * rtt

    @property
    def rto(self):
        """Current retransmission timeout."""
        if self.srtt is None:
            return self.INITIAL_RTO
        rto = self.srtt + max(self.CLOCK_GRANULARITY, self.K * self.rttvar)
        return min(max(rto, self.MIN_RTO), self.MAX_RTO)
