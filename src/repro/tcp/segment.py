"""TCP segments.

Segments are value objects: middleboxes produce modified copies via
:meth:`Segment.replace` rather than mutating in place, so a packet
duplicated on-path never aliases another packet's header.
"""

from repro.tcp.options import encode_options

TCP_HEADER_BYTES = 20

VALID_FLAGS = frozenset({"SYN", "ACK", "FIN", "RST", "PSH", "URG"})

_NO_FLAGS = frozenset()


class Segment:
    """One TCP segment.

    ``flags`` is a frozenset of flag names, ``options`` a tuple of
    :class:`~repro.tcp.options.TcpOption`, ``payload`` real bytes.
    """

    __slots__ = (
        "src_port", "dst_port", "seq", "ack", "flags", "window",
        "options", "payload",
    )

    def __init__(self, src_port, dst_port, seq=0, ack=0, flags=_NO_FLAGS,
                 window=65535, options=(), payload=b""):
        if flags is not _NO_FLAGS:
            flags = flags if type(flags) is frozenset else frozenset(flags)
            if not flags <= VALID_FLAGS:
                raise ValueError(
                    "unknown TCP flags: %s" % sorted(flags - VALID_FLAGS))
        self.src_port = src_port
        self.dst_port = dst_port
        self.seq = seq
        self.ack = ack
        self.flags = flags
        self.window = window
        self.options = tuple(options)
        # bytes and memoryview are immutable(-over-bytes) -- keep the
        # caller's object so SendBuffer.peek slices travel copy-free all
        # the way into the sealed record.
        self.payload = (payload if type(payload) in (bytes, memoryview)
                        else bytes(payload))

    @classmethod
    def data_segment(cls, src_port, dst_port, seq, ack, flags, window,
                     payload):
        """Fast path for the segmentation-offload train builder.

        ``flags`` must be one of the prebuilt frozensets from
        :mod:`repro.tcp.connection`; validation and option handling are
        skipped because a data train shares one header template and
        only ``seq``/``payload`` vary per segment.
        """
        seg = cls.__new__(cls)
        seg.src_port = src_port
        seg.dst_port = dst_port
        seg.seq = seq
        seg.ack = ack
        seg.flags = flags
        seg.window = window
        seg.options = ()
        seg.payload = payload
        return seg

    def replace(self, **kwargs):
        """Copy with some fields replaced (middlebox-safe mutation)."""
        fields = {name: getattr(self, name) for name in self.__slots__}
        fields.update(kwargs)
        return Segment(**fields)

    # -- flag helpers ----------------------------------------------------

    @property
    def is_syn(self):
        return "SYN" in self.flags

    @property
    def is_ack(self):
        return "ACK" in self.flags

    @property
    def is_fin(self):
        return "FIN" in self.flags

    @property
    def is_rst(self):
        return "RST" in self.flags

    # -- sizes -----------------------------------------------------------

    def options_size(self):
        raw = encode_options(self.options) if self.options else b""
        return len(raw)

    def header_size(self):
        return TCP_HEADER_BYTES + self.options_size()

    def wire_size(self):
        # Fast path for the (overwhelmingly common) no-options segment:
        # skip the encode_options round-trip entirely.
        if self.options:
            return self.header_size() + len(self.payload)
        return TCP_HEADER_BYTES + len(self.payload)

    def seq_space(self):
        """Sequence numbers consumed: payload plus SYN/FIN."""
        return len(self.payload) + (1 if self.is_syn else 0) + (
            1 if self.is_fin else 0
        )

    @property
    def end_seq(self):
        return self.seq + self.seq_space()

    def find_option(self, kind):
        """First option of the given kind, or None."""
        for option in self.options:
            if option.kind == kind:
                return option
        return None

    def __repr__(self):
        flags = "|".join(sorted(self.flags)) or "-"
        return "Segment(%d->%d %s seq=%d ack=%d len=%d)" % (
            self.src_port, self.dst_port, flags, self.seq, self.ack,
            len(self.payload),
        )
