"""TCP options with real wire encoding.

Options are encoded to/decoded from bytes exactly as on the wire so the
option-stripping and resegmenting middleboxes interact with them the
way deployed equipment does.  The catalogue covers the options the
paper discusses: MSS, window scale, SACK-permitted, timestamps, the
User Timeout option (RFC 5482, which TCPLS re-conveys inside encrypted
records), TCP Fast Open (RFC 7413), and an experimental option
(RFC 6994) used to demonstrate middlebox interference.
"""

import struct

OPT_EOL = 0
OPT_NOP = 1
OPT_MSS = 2
OPT_WSCALE = 3
OPT_SACK_PERMITTED = 4
OPT_SACK = 5
OPT_TIMESTAMP = 8
OPT_USER_TIMEOUT = 28
OPT_MPTCP = 30
OPT_FAST_OPEN = 34
OPT_EXPERIMENTAL = 254

#: TCP options area is limited to 40 bytes -- the constraint motivating
#: the paper (Sec. 3: "the TCP header size is a constraint").
MAX_OPTIONS_BYTES = 40


class TcpOption:
    """Base class.  Subclasses define ``kind`` and a body codec."""

    kind = None

    def body(self):
        """Option body bytes (excluding kind/length)."""
        raise NotImplementedError

    def encode(self):
        body = self.body()
        return bytes([self.kind, 2 + len(body)]) + body

    def wire_size(self):
        return 2 + len(self.body())

    def __eq__(self, other):
        return (
            isinstance(other, TcpOption)
            and self.kind == other.kind
            and self.body() == other.body()
        )

    def __hash__(self):
        return hash((self.kind, self.body()))

    def __repr__(self):
        return "%s(kind=%d, body=%r)" % (
            type(self).__name__, self.kind, self.body()
        )


class MssOption(TcpOption):
    """Maximum Segment Size, exchanged on SYN."""

    kind = OPT_MSS

    def __init__(self, mss):
        self.mss = mss

    def body(self):
        return struct.pack("!H", self.mss)

    @classmethod
    def decode(cls, body):
        return cls(struct.unpack("!H", body)[0])


class WindowScaleOption(TcpOption):
    kind = OPT_WSCALE

    def __init__(self, shift):
        self.shift = shift

    def body(self):
        return bytes([self.shift])

    @classmethod
    def decode(cls, body):
        return cls(body[0])


class SackPermittedOption(TcpOption):
    kind = OPT_SACK_PERMITTED

    def body(self):
        return b""

    @classmethod
    def decode(cls, body):
        return cls()


class SackOption(TcpOption):
    """Selective acknowledgment blocks (RFC 2018)."""

    kind = OPT_SACK

    def __init__(self, blocks):
        self.blocks = tuple((int(a), int(b)) for a, b in blocks)

    def body(self):
        return b"".join(
            struct.pack("!II", a & 0xFFFFFFFF, b & 0xFFFFFFFF)
            for a, b in self.blocks
        )

    @classmethod
    def decode(cls, body):
        blocks = []
        for i in range(0, len(body), 8):
            blocks.append(struct.unpack("!II", body[i:i + 8]))
        return cls(blocks)


class TimestampOption(TcpOption):
    kind = OPT_TIMESTAMP

    def __init__(self, ts_val, ts_ecr):
        self.ts_val = ts_val
        self.ts_ecr = ts_ecr

    def body(self):
        return struct.pack("!II", self.ts_val & 0xFFFFFFFF,
                           self.ts_ecr & 0xFFFFFFFF)

    @classmethod
    def decode(cls, body):
        val, ecr = struct.unpack("!II", body)
        return cls(val, ecr)


class UserTimeoutOption(TcpOption):
    """RFC 5482 User Timeout: granularity bit + 15-bit value.

    The paper ships this option *inside encrypted TCPLS records* so
    middleboxes cannot strip it; the wire form here exists to show what
    happens when it is sent in the clear instead (the option-stripping
    firewall removes it).
    """

    kind = OPT_USER_TIMEOUT

    def __init__(self, timeout_seconds, granularity_minutes=False):
        self.timeout_seconds = timeout_seconds
        self.granularity_minutes = granularity_minutes

    def body(self):
        value = int(self.timeout_seconds // 60 if self.granularity_minutes
                    else self.timeout_seconds)
        word = (0x8000 if self.granularity_minutes else 0) | (value & 0x7FFF)
        return struct.pack("!H", word)

    @classmethod
    def decode(cls, body):
        (word,) = struct.unpack("!H", body)
        minutes = bool(word & 0x8000)
        value = word & 0x7FFF
        return cls(value * 60 if minutes else value, minutes)


class FastOpenOption(TcpOption):
    """RFC 7413 TCP Fast Open cookie (empty body = cookie request)."""

    kind = OPT_FAST_OPEN

    def __init__(self, cookie=b""):
        self.cookie = cookie

    def body(self):
        return self.cookie

    @classmethod
    def decode(cls, body):
        return cls(body)


class ExperimentalOption(TcpOption):
    """RFC 6994 shared experimental option with a 16-bit ExID."""

    kind = OPT_EXPERIMENTAL

    def __init__(self, exid, data=b""):
        self.exid = exid
        self.data = data

    def body(self):
        return struct.pack("!H", self.exid) + self.data

    @classmethod
    def decode(cls, body):
        (exid,) = struct.unpack("!H", body[:2])
        return cls(exid, body[2:])


class UnknownOption(TcpOption):
    """Catch-all for kinds without a dedicated codec."""

    def __init__(self, kind, data=b""):
        self.kind = kind
        self.data = data

    def body(self):
        return self.data


_DECODERS = {
    OPT_MSS: MssOption.decode,
    OPT_WSCALE: WindowScaleOption.decode,
    OPT_SACK_PERMITTED: SackPermittedOption.decode,
    OPT_SACK: SackOption.decode,
    OPT_TIMESTAMP: TimestampOption.decode,
    OPT_USER_TIMEOUT: UserTimeoutOption.decode,
    OPT_FAST_OPEN: FastOpenOption.decode,
    OPT_EXPERIMENTAL: ExperimentalOption.decode,
}


def encode_options(options):
    """Encode options, NOP-padding to a 4-byte boundary.

    Raises ``ValueError`` when the encoding exceeds the 40-byte TCP
    options area -- the hard limit the paper escapes by moving options
    into TLS records.
    """
    raw = b"".join(o.encode() for o in options)
    pad = (-len(raw)) % 4
    raw += bytes([OPT_NOP]) * pad
    if len(raw) > MAX_OPTIONS_BYTES:
        raise ValueError(
            "TCP options occupy %d bytes; the header allows only %d"
            % (len(raw), MAX_OPTIONS_BYTES)
        )
    return raw


def decode_options(raw):
    """Decode an options area back into option objects (NOP/EOL skipped)."""
    options = []
    i = 0
    while i < len(raw):
        kind = raw[i]
        if kind == OPT_EOL:
            break
        if kind == OPT_NOP:
            i += 1
            continue
        if i + 1 >= len(raw):
            raise ValueError("truncated TCP option")
        length = raw[i + 1]
        if length < 2 or i + length > len(raw):
            raise ValueError("malformed TCP option length")
        body = raw[i + 2:i + length]
        decoder = _DECODERS.get(kind)
        if decoder is not None:
            try:
                options.append(decoder(body))
            except (struct.error, IndexError) as exc:
                raise ValueError("malformed option kind %d" % kind) from exc
        else:
            options.append(UnknownOption(kind, body))
        i += length
    return options
