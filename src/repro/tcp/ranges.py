"""Sorted, merged half-open integer ranges.

Used for the SACK scoreboard (sacked / lost / retransmitted sequence
ranges, RFC 6675) and reused by the TCPLS failover machinery to track
acknowledged records.  Ranges are half-open ``[start, end)``.
"""

import bisect


class RangeSet:
    """A set of non-overlapping, sorted, merged [start, end) ranges."""

    def __init__(self, ranges=()):
        self._ranges = []
        #: cached coverage (see :attr:`total`); ``None`` = recompute.
        self._total = 0
        for start, end in ranges:
            self.add(start, end)

    def __bool__(self):
        return bool(self._ranges)

    def __len__(self):
        return len(self._ranges)

    def __iter__(self):
        return iter(tuple(r) for r in self._ranges)

    def __eq__(self, other):
        if isinstance(other, RangeSet):
            return self._ranges == other._ranges
        return NotImplemented

    def __repr__(self):
        return "RangeSet(%r)" % (self._ranges,)

    def clear(self):
        self._ranges = []
        self._total = 0

    @property
    def total(self):
        """Total integers covered.

        Cached between mutations: the TCP pipe estimator reads the
        sacked/lost totals on every send opportunity, which is far more
        often than the scoreboard changes.
        """
        t = self._total
        if t is None:
            t = self._total = sum(e - s for s, e in self._ranges)
        return t

    @property
    def min(self):
        return self._ranges[0][0] if self._ranges else None

    @property
    def max(self):
        return self._ranges[-1][1] if self._ranges else None

    def add(self, start, end):
        """Insert [start, end), merging with neighbours."""
        if end <= start:
            return
        self._total = None
        i = bisect.bisect_left(self._ranges, [start, end])
        # Merge with the predecessor if it touches.
        if i > 0 and self._ranges[i - 1][1] >= start:
            i -= 1
            start = min(start, self._ranges[i][0])
            end = max(end, self._ranges[i][1])
            del self._ranges[i]
        # Swallow successors that overlap.
        while i < len(self._ranges) and self._ranges[i][0] <= end:
            end = max(end, self._ranges[i][1])
            del self._ranges[i]
        self._ranges.insert(i, [start, end])

    def subtract(self, start, end):
        """Remove [start, end) from the set."""
        if end <= start or not self._ranges:
            return
        self._total = None
        out = []
        for s, e in self._ranges:
            if e <= start or s >= end:
                out.append([s, e])
                continue
            if s < start:
                out.append([s, start])
            if e > end:
                out.append([end, e])
        self._ranges = out

    def trim_below(self, cutoff):
        """Remove everything < cutoff."""
        if self._ranges:
            self.subtract(self._ranges[0][0], cutoff)

    def contains(self, point):
        i = bisect.bisect_right(self._ranges, [point, float("inf")])
        if i > 0:
            s, e = self._ranges[i - 1]
            if s <= point < e:
                return True
        return False

    def covers(self, start, end):
        """True if [start, end) is entirely inside one range."""
        if end <= start:
            return True
        i = bisect.bisect_right(self._ranges, [start, float("inf")])
        if i > 0:
            s, e = self._ranges[i - 1]
            return s <= start and end <= e
        return False

    def first_range_at_or_above(self, point):
        """First (start, end) with end > point, clamped to start >= point."""
        for s, e in self._ranges:
            if e > point:
                return (max(s, point), e)
        return None

    def complement_within(self, start, end):
        """Gaps of this set inside [start, end), as a new RangeSet."""
        gaps = RangeSet()
        cursor = start
        for s, e in self._ranges:
            if e <= start:
                continue
            if s >= end:
                break
            if s > cursor:
                gaps.add(cursor, min(s, end))
            cursor = max(cursor, e)
            if cursor >= end:
                break
        if cursor < end:
            gaps.add(cursor, end)
        return gaps

    def union_update(self, other):
        for s, e in other:
            self.add(s, e)
