"""Congestion control hook interface."""


class CongestionControl:
    """Base congestion controller.

    State is in bytes.  Connections call the ``on_*`` hooks; schedulers
    and ``tcp_info()`` read :attr:`cwnd` and :attr:`ssthresh`.
    """

    #: human-readable algorithm name, overridden by subclasses
    name = "base"

    INITIAL_WINDOW_SEGMENTS = 10  # RFC 6928
    MIN_WINDOW_SEGMENTS = 2

    def __init__(self, mss):
        self.mss = mss
        self.cwnd = self.INITIAL_WINDOW_SEGMENTS * mss
        self.ssthresh = float("inf")

    # -- hooks ---------------------------------------------------------

    def on_ack(self, acked_bytes, rtt, now, in_flight):
        """New data was cumulatively acknowledged.

        Parameters
        ----------
        acked_bytes:
            Bytes newly acknowledged by this ACK.
        rtt:
            The RTT sample for this ACK, or None if unavailable.
        now:
            Simulated time (seconds).
        in_flight:
            Bytes outstanding before this ACK was processed.
        """

    def on_duplicate_ack(self, count, now):
        """A duplicate ACK arrived (``count`` consecutive so far)."""

    def on_loss(self, now):
        """Fast-retransmit-detected loss (halve, do not collapse)."""

    def on_rto(self, now):
        """Retransmission timeout: collapse to the minimum window."""

    def on_exit_recovery(self, now):
        """Recovery completed (cumulative ACK covered the loss point)."""

    # -- helpers ---------------------------------------------------------

    @property
    def min_cwnd(self):
        return self.MIN_WINDOW_SEGMENTS * self.mss

    def in_slow_start(self):
        return self.cwnd < self.ssthresh

    def snapshot(self):
        """Stats for ``tcp_info()``."""
        ssthresh = self.ssthresh
        return {
            "ca_name": self.name,
            "cwnd_bytes": int(self.cwnd),
            "ssthresh_bytes": None if ssthresh == float("inf") else int(ssthresh),
            "slow_start": self.in_slow_start(),
        }
