"""NewReno congestion control (RFC 5681 / 6582)."""

from repro.tcp.congestion.base import CongestionControl


class NewReno(CongestionControl):
    """Classic AIMD: slow start, congestion avoidance, halving on loss."""

    name = "reno"

    def __init__(self, mss):
        super().__init__(mss)
        self._avoidance_acc = 0

    def on_ack(self, acked_bytes, rtt, now, in_flight):
        if self.in_slow_start():
            self.cwnd += acked_bytes
            if self.cwnd > self.ssthresh:
                self.cwnd = self.ssthresh
        else:
            # Byte-counting congestion avoidance: +1 MSS per cwnd acked.
            self._avoidance_acc += acked_bytes
            if self._avoidance_acc >= self.cwnd:
                self._avoidance_acc -= self.cwnd
                self.cwnd += self.mss

    def on_loss(self, now):
        self.ssthresh = max(self.cwnd / 2.0, self.min_cwnd)
        self.cwnd = self.ssthresh
        self._avoidance_acc = 0

    def on_rto(self, now):
        self.ssthresh = max(self.cwnd / 2.0, self.min_cwnd)
        self.cwnd = self.mss
        self._avoidance_acc = 0
