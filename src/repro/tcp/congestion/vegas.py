"""TCP Vegas congestion control (Brakmo et al., 1994).

Delay-based: Vegas compares the expected throughput (cwnd / base_rtt)
with the actual throughput and backs off before losses occur.  Against
loss-based flows like CUBIC it is famously timid -- which is exactly
the unfairness Fig. 12 shows before the server ships CUBIC bytecode to
the Vegas session.
"""

from repro.tcp.congestion.base import CongestionControl


class Vegas(CongestionControl):
    name = "vegas"

    ALPHA = 2  # segments of queue occupancy tolerated (lower bound)
    BETA = 4   # upper bound
    GAMMA = 1  # slow-start threshold on queue build-up

    def __init__(self, mss):
        super().__init__(mss)
        self.base_rtt = float("inf")
        self._min_rtt_this_rtt = float("inf")
        self._cwnd_at_rtt_start = self.cwnd
        self._next_adjust = 0.0

    def on_ack(self, acked_bytes, rtt, now, in_flight):
        if rtt is not None:
            self.base_rtt = min(self.base_rtt, rtt)
            self._min_rtt_this_rtt = min(self._min_rtt_this_rtt, rtt)
        # Exponential growth happens per ACK while in slow start; the
        # Vegas estimator below only runs once per RTT.
        if self.in_slow_start():
            self.cwnd += acked_bytes
        if now < self._next_adjust:
            return
        rtt_sample = self._min_rtt_this_rtt
        if rtt_sample == float("inf") or self.base_rtt == float("inf"):
            return
        # Once per RTT: compare expected vs actual rate in segments.
        expected = self.cwnd / self.base_rtt
        actual = self.cwnd / rtt_sample
        diff_segments = (expected - actual) * self.base_rtt / self.mss
        if self.in_slow_start():
            if diff_segments > self.GAMMA:
                # Leave slow start before the queue builds.
                self.ssthresh = self.cwnd
                self.cwnd = max(self.cwnd - self.mss, self.min_cwnd)
        else:
            if diff_segments < self.ALPHA:
                self.cwnd += self.mss
            elif diff_segments > self.BETA:
                self.cwnd = max(self.cwnd - self.mss, self.min_cwnd)
        self._min_rtt_this_rtt = float("inf")
        self._next_adjust = now + rtt_sample

    def on_loss(self, now):
        self.ssthresh = max(self.cwnd / 2.0, self.min_cwnd)
        self.cwnd = max(self.cwnd * 3 / 4.0, self.min_cwnd)

    def on_rto(self, now):
        self.ssthresh = max(self.cwnd / 2.0, self.min_cwnd)
        self.cwnd = self.mss
