"""Pluggable congestion control.

The interface mirrors the hook set the Linux kernel exposes to eBPF
``struct_ops`` congestion controllers (Sec. 4.4 of the paper): an init
hook, per-ACK and per-loss hooks, and a queryable congestion window.
Native implementations are NewReno, CUBIC and Vegas; an adapter in
:mod:`repro.ebpf.cc_hooks` runs a verified eBPF program behind the same
interface, which is what the Fig. 12 experiment attaches mid-session.
"""

from repro.tcp.congestion.base import CongestionControl
from repro.tcp.congestion.reno import NewReno
from repro.tcp.congestion.cubic import Cubic
from repro.tcp.congestion.vegas import Vegas

_REGISTRY = {
    "reno": NewReno,
    "newreno": NewReno,
    "cubic": Cubic,
    "vegas": Vegas,
}


def register_congestion_control(name, factory):
    """Register a congestion controller factory under ``name``."""
    _REGISTRY[name.lower()] = factory


def make_congestion_control(name, mss):
    """Instantiate a registered congestion controller by name."""
    try:
        factory = _REGISTRY[name.lower()]
    except KeyError:
        raise ValueError(
            "unknown congestion control %r (have: %s)"
            % (name, ", ".join(sorted(_REGISTRY)))
        ) from None
    return factory(mss)


__all__ = [
    "CongestionControl",
    "Cubic",
    "NewReno",
    "Vegas",
    "make_congestion_control",
    "register_congestion_control",
]
