"""CUBIC congestion control (RFC 8312).

The window grows as a cubic function of time since the last congestion
event, anchored at the window size where the loss happened (W_max).
This is the default controller in Linux and the one the paper's server
ships as eBPF bytecode in Fig. 12; :mod:`repro.ebpf.programs` contains
the bytecode twin of this implementation.
"""

from repro.tcp.congestion.base import CongestionControl


class Cubic(CongestionControl):
    name = "cubic"

    C = 0.4          # scaling constant (RFC 8312 section 5)
    BETA = 0.7       # multiplicative decrease factor

    #: HyStart: leave slow start when the RTT inflates by this factor.
    HYSTART_RTT_FACTOR = 1.25
    HYSTART_MIN_SEGMENTS = 16

    def __init__(self, mss):
        super().__init__(mss)
        self.w_max = 0.0
        self.epoch_start = None
        self.k = 0.0
        self._tcp_cwnd = 0.0  # TCP-friendly region estimate
        self._min_rtt = float("inf")

    def _reset_epoch(self, now):
        self.epoch_start = now
        if self.cwnd < self.w_max:
            self.k = ((self.w_max - self.cwnd) / (self.C * self.mss)) ** (1.0 / 3.0)
        else:
            self.k = 0.0
            self.w_max = self.cwnd
        self._tcp_cwnd = self.cwnd

    def on_ack(self, acked_bytes, rtt, now, in_flight):
        if rtt:
            self._min_rtt = min(self._min_rtt, rtt)
        if self.in_slow_start():
            self.cwnd += acked_bytes
            if self.cwnd > self.ssthresh:
                self.cwnd = self.ssthresh
            # HyStart delay heuristic: queue build-up means the path is
            # full; stop doubling before the drop-tail burst loss.
            if (rtt and self._min_rtt != float("inf")
                    and rtt > self._min_rtt * self.HYSTART_RTT_FACTOR
                    and self.cwnd >= self.HYSTART_MIN_SEGMENTS * self.mss):
                self.ssthresh = self.cwnd
            return
        if self.epoch_start is None:
            self._reset_epoch(now)
        t = now - self.epoch_start
        target = self.w_max + self.C * self.mss * (t - self.k) ** 3
        # TCP-friendly region (estimate standard AIMD growth).
        if rtt:
            self._tcp_cwnd += (3.0 * (1.0 - self.BETA) / (1.0 + self.BETA)) * (
                acked_bytes / self.cwnd
            ) * self.mss
        target = max(target, self._tcp_cwnd)
        # Linux-style ACK counting: one MSS every ``cnt`` acked segments,
        # with cnt clamped >= 2 so the window grows at most 1.5x per RTT.
        cwnd_seg = self.cwnd / self.mss
        if target > self.cwnd:
            cnt = max(self.cwnd / (target - self.cwnd), 2.0)
        else:
            cnt = 100.0 * cwnd_seg
        self.cwnd += (acked_bytes / self.mss) * self.mss / cnt

    def on_loss(self, now):
        self.w_max = self.cwnd
        self.ssthresh = max(self.cwnd * self.BETA, self.min_cwnd)
        self.cwnd = self.ssthresh
        self.epoch_start = None

    def on_rto(self, now):
        self.w_max = self.cwnd
        self.ssthresh = max(self.cwnd * self.BETA, self.min_cwnd)
        self.cwnd = self.mss
        self.epoch_start = None
