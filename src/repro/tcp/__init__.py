"""User-space TCP stack running over :mod:`repro.net`.

This substrate replaces the Linux kernel TCP stack of the paper's
testbed.  It implements the full connection lifecycle (three-way
handshake with optional TCP Fast Open, bidirectional data transfer,
FIN/RST teardown), loss recovery (RTO per RFC 6298 with exponential
backoff, fast retransmit on three duplicate ACKs), flow control with an
advertised window, wire-codable TCP options, and pluggable congestion
control (Reno, CUBIC, Vegas, or an eBPF program via
:mod:`repro.ebpf`).

TCPLS consumes this stack purely through its bytestream socket API plus
``tcp_info()`` statistics -- the same contract it has with the kernel.
"""

from repro.tcp.segment import Segment
from repro.tcp.options import (
    MssOption,
    SackPermittedOption,
    TcpOption,
    TimestampOption,
    UnknownOption,
    UserTimeoutOption,
    WindowScaleOption,
    decode_options,
    encode_options,
)
from repro.tcp.connection import TcpConnection
from repro.tcp.stack import TcpStack
from repro.tcp.congestion import (
    CongestionControl,
    Cubic,
    NewReno,
    Vegas,
    make_congestion_control,
)

__all__ = [
    "CongestionControl",
    "Cubic",
    "MssOption",
    "NewReno",
    "SackPermittedOption",
    "Segment",
    "TcpConnection",
    "TcpOption",
    "TcpStack",
    "TimestampOption",
    "UnknownOption",
    "UserTimeoutOption",
    "Vegas",
    "WindowScaleOption",
    "decode_options",
    "encode_options",
    "make_congestion_control",
]
