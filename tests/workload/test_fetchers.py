"""End-to-end page loads over the real stacks + cell determinism."""

import pytest

from repro.net import Simulator, build_faulty_multipath
from repro.core.engine.policy import (
    PredictivePolicy,
    RoundRobinScheduler,
)
from repro.perf.pageload import run_pageload_cell
from repro.workload import (
    MptcpPageFetcher,
    QuicPageFetcher,
    TcplsPageFetcher,
    TransferManager,
    synthetic_page,
)

pytestmark = pytest.mark.workload


def load_one_page(make_fetcher, policy, n_objects=15, horizon=30.0):
    sim = Simulator(seed=11)
    topo = build_faulty_multipath(sim, n_paths=2)
    fetcher = make_fetcher(sim, topo)
    pool = fetcher.pool(bus=sim.bus)
    page = synthetic_page(seed=2, n_objects=n_objects)
    manager = TransferManager(page, pool, policy, sim, fetcher.fetch,
                              bus=sim.bus)
    fetcher.connect(manager.start)
    sim.run(until=horizon)
    return manager, pool


FETCHERS = [
    ("tcpls", lambda sim, topo: TcplsPageFetcher(sim, topo, n_paths=2)),
    ("quic", lambda sim, topo: QuicPageFetcher(sim, topo)),
    ("mptcp", lambda sim, topo: MptcpPageFetcher(sim, topo, n_paths=2)),
]


class TestFetchers:
    @pytest.mark.parametrize("name,make", FETCHERS,
                             ids=[f[0] for f in FETCHERS])
    def test_page_completes(self, name, make):
        manager, pool = load_one_page(make, RoundRobinScheduler())
        assert manager.done
        assert manager.plt is not None and 0 < manager.plt < 30
        assert pool.stats()["opened"] >= 1

    @pytest.mark.parametrize("name,make", FETCHERS,
                             ids=[f[0] for f in FETCHERS])
    def test_page_completes_under_predictive(self, name, make):
        manager, _pool = load_one_page(
            make, PredictivePolicy(rate_cap_bps=25_000_000))
        assert manager.done

    def test_tcpls_uses_both_paths(self):
        manager, pool = load_one_page(
            lambda sim, topo: TcplsPageFetcher(sim, topo, n_paths=2),
            RoundRobinScheduler(), n_objects=20)
        assert manager.done
        # Round-robin transfer placement opens (= adopts) both session
        # connections and spreads objects across them.
        assert pool.stats()["opened"] == 2
        conns = {t.entry.index for t in manager.transfers.values()}
        assert conns == {0, 1}

    def test_mptcp_pool_is_serial(self):
        manager, pool = load_one_page(
            lambda sim, topo: MptcpPageFetcher(sim, topo, n_paths=2),
            RoundRobinScheduler(), n_objects=20)
        assert manager.done
        stats = pool.stats()
        assert stats["shared"] == 0          # capacity-1 connections
        assert stats["reused"] > 0


class TestCellDeterminism:
    def test_same_config_same_metrics(self):
        kwargs = dict(stack="tcpls", policy="predictive", grid="ge-light",
                      pages=2, waves=2, n_objects=10, horizon=60.0)
        assert run_pageload_cell(**kwargs) == run_pageload_cell(**kwargs)

    def test_policies_change_outcomes(self):
        plts = {}
        for policy in ("round-robin", "lowest-rtt"):
            metrics = run_pageload_cell(
                stack="tcpls", policy=policy, grid="ge-light",
                pages=2, waves=2, n_objects=10, horizon=60.0)
            assert metrics["pages_completed"] == 2
            plts[policy] = metrics["plt_samples"]
        assert plts["round-robin"] != plts["lowest-rtt"]

    def test_unknown_names_rejected(self):
        with pytest.raises(ValueError):
            run_pageload_cell(stack="carrier-pigeon")
        with pytest.raises(ValueError):
            run_pageload_cell(policy="oracle")
        with pytest.raises(ValueError):
            run_pageload_cell(grid="hurricane")
