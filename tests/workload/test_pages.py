"""PageSpec dependency graphs: validation, generators, HAR-lite."""

import json

import pytest

from repro.workload import (
    PageObject,
    PageSpec,
    load_page,
    page_from_dict,
    synthetic_page,
)

pytestmark = pytest.mark.workload


def simple_page():
    return PageSpec("p", [
        PageObject("html", 1000, (), kind="html"),
        PageObject("css", 500, ("html",), kind="css"),
        PageObject("js", 700, ("html",), kind="js"),
        PageObject("img", 2000, ("css", "js"), kind="img"),
    ])


class TestPageSpec:
    def test_toposort_respects_dependencies(self):
        page = simple_page()
        order = {name: i for i, name in enumerate(page.order)}
        assert order["html"] < order["css"] < order["img"]
        assert order["html"] < order["js"] < order["img"]

    def test_roots_and_dependents(self):
        page = simple_page()
        assert [o.name for o in page.roots()] == ["html"]
        assert sorted(o.name for o in page.dependents("html")) \
            == ["css", "js"]

    def test_totals(self):
        page = simple_page()
        assert page.total_bytes == 4200
        assert len(page) == 4
        # Longest chain: html -> css -> img (or js branch: 1000+700+2000).
        assert page.critical_path_bytes() == 1000 + 700 + 2000

    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            PageSpec("bad", [
                PageObject("a", 1, ("b",)),
                PageObject("b", 1, ("a",)),
            ])

    def test_unknown_dependency_rejected(self):
        with pytest.raises(ValueError, match="undeclared"):
            PageSpec("bad", [PageObject("a", 1, ("ghost",))])

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            PageSpec("bad", [PageObject("a", 1), PageObject("a", 2)])

    def test_non_positive_size_rejected(self):
        with pytest.raises(ValueError):
            PageObject("a", 0)


class TestSyntheticPages:
    def test_deterministic_for_seed(self):
        a = synthetic_page(seed=5, n_objects=30)
        b = synthetic_page(seed=5, n_objects=30)
        assert a.to_dict() == b.to_dict()

    def test_seeds_differ(self):
        a = synthetic_page(seed=5, n_objects=30)
        b = synthetic_page(seed=6, n_objects=30)
        assert a.to_dict() != b.to_dict()

    def test_object_count_and_single_root(self):
        page = synthetic_page(seed=1, n_objects=23)
        assert len(page) == 23
        assert [o.name for o in page.roots()] == ["html"]

    def test_depth_bounds_tiers(self):
        page = synthetic_page(seed=2, n_objects=40, fanout=3, depth=3)
        # Every non-root object's chain to html is at most `depth` hops.
        def depth_of(name, page=page):
            obj = page.objects[name]
            if not obj.depends_on:
                return 0
            return 1 + max(depth_of(d) for d in obj.depends_on)
        assert max(depth_of(n) for n in page.objects) <= 3

    def test_sizes_within_bounds(self):
        page = synthetic_page(seed=3, n_objects=50, min_object=1000,
                              max_object=9000)
        for obj in page.objects.values():
            if obj.name != "html":
                assert 1000 <= obj.size <= 9000


class TestHarLite:
    def test_round_trip_through_json(self, tmp_path):
        page = synthetic_page(seed=4, n_objects=12)
        path = tmp_path / "page.json"
        path.write_text(json.dumps(page.to_dict()))
        loaded = load_page(str(path))
        assert loaded.to_dict() == page.to_dict()
        assert loaded.order == page.order

    def test_dict_defaults(self):
        page = page_from_dict({"objects": [{"name": "only", "size": 10}]})
        assert page.name == "page"
        assert page.objects["only"].kind == "object"
        assert page.objects["only"].depends_on == ()
