"""TransferManager: graph walking, queuing, obs events, waterfall."""

import pytest

from repro.net import Simulator
from repro.obs import CaptureSink
from repro.core.engine.policy import Policy, RoundRobinScheduler
from repro.workload import (
    ConnectionPool,
    PageObject,
    PageSpec,
    TransferManager,
)

pytestmark = pytest.mark.workload


class InstantFetchStack:
    """Fetch backend completing each transfer after a fixed simulated
    delay per byte -- enough to exercise ordering without a transport."""

    def __init__(self, sim, byte_time=1e-6):
        self.sim = sim
        self.byte_time = byte_time
        self.fetched = []

    def factory(self, host):
        return "handle-%s" % host

    def fetch(self, entry, transfer, done):
        self.fetched.append((self.sim.now, transfer.name, entry.index))
        self.sim.schedule(transfer.size * self.byte_time, done)


def diamond_page():
    return PageSpec("diamond", [
        PageObject("html", 10_000, (), kind="html"),
        PageObject("css", 5_000, ("html",), kind="css"),
        PageObject("js", 8_000, ("html",), kind="js"),
        PageObject("img", 20_000, ("css", "js"), kind="img"),
    ])


def run_page(page, capacity=2, max_per_host=2, policy=None, bus=False):
    sim = Simulator(seed=3)
    stack = InstantFetchStack(sim)
    pool = ConnectionPool(sim, stack.factory, max_per_host=max_per_host,
                          capacity=capacity,
                          bus=sim.bus if bus else None)
    capture = CaptureSink()
    if bus:
        sim.bus.subscribe(capture, categories=("workload",))
    manager = TransferManager(page, pool, policy or Policy(), sim,
                              stack.fetch,
                              bus=sim.bus if bus else None)
    sim.schedule(0.0, manager.start)
    sim.run(until=60)
    return manager, pool, stack, capture


class TestGraphWalk:
    def test_dependencies_gate_release(self):
        manager, _pool, stack, _cap = run_page(diamond_page())
        assert manager.done
        started = {name: t for t, name, _conn in stack.fetched}
        assert started["html"] < started["css"]
        assert started["html"] < started["js"]
        # img waits for BOTH branches.
        done_css = manager.transfers["css"].t_done
        done_js = manager.transfers["js"].t_done
        assert started["img"] >= max(done_css, done_js)

    def test_plt_spans_first_to_last(self):
        manager, _pool, _stack, _cap = run_page(diamond_page())
        assert manager.plt == pytest.approx(
            manager.transfers["img"].t_done - manager.t_begin)

    def test_saturated_pool_queues_then_drains(self):
        wide = PageSpec("wide", [PageObject("html", 1000)] + [
            PageObject("o%d" % i, 1000, ("html",)) for i in range(8)
        ])
        manager, pool, _stack, _cap = run_page(wide, capacity=1,
                                               max_per_host=2)
        assert manager.done
        # 9 transfers over at most 2 concurrent slots.
        assert pool.stats()["opened"] == 2
        assert pool.stats()["reused"] >= 6

    def test_two_managers_share_one_pool_without_stalling(self):
        sim = Simulator(seed=4)
        stack = InstantFetchStack(sim)
        pool = ConnectionPool(sim, stack.factory, max_per_host=1,
                              capacity=1)
        managers = [
            TransferManager(diamond_page(), pool, Policy(), sim,
                            stack.fetch)
            for _ in range(2)
        ]
        for manager in managers:
            sim.schedule(0.0, manager.start)
        sim.run(until=60)
        # One serial connection for both pages: the capacity listener
        # must hand freed slots across managers.
        assert all(m.done for m in managers)

    def test_transfer_records_placement(self):
        manager, _pool, _stack, _cap = run_page(diamond_page())
        assert manager.transfers["html"].placement == "new"
        placements = {t.placement for t in manager.transfers.values()}
        assert placements <= {"new", "reuse", "share"}


class TestObsEvents:
    def test_lifecycle_events_emitted(self):
        manager, _pool, _stack, capture = run_page(diamond_page(),
                                                   bus=True)
        names = capture.names()
        for expected in ("object_ready", "object_start", "object_done",
                         "page_load", "pool_open"):
            assert expected in names
        ready = capture.select(name="object_ready")
        start = capture.select(name="object_start")
        done = capture.select(name="object_done")
        assert len(ready) == len(start) == len(done) == 4

    def test_page_load_event_carries_plt(self):
        manager, _pool, _stack, capture = run_page(diamond_page(),
                                                   bus=True)
        (event,) = capture.select(name="page_load")
        assert event.data["plt"] == pytest.approx(manager.plt)
        assert event.data["objects"] == 4
        assert event.data["bytes"] == 43_000

    def test_object_start_names_policy(self):
        _m, _pool, _stack, capture = run_page(
            diamond_page(), policy=RoundRobinScheduler(), bus=True)
        for event in capture.select(name="object_start"):
            assert event.data["policy"] == "round-robin"

    def test_silent_without_bus(self):
        manager, _pool, _stack, capture = run_page(diamond_page(),
                                                   bus=False)
        assert manager.done
        assert capture.events == []


class TestWaterfall:
    def test_rows_complete_and_ordered(self):
        manager, _pool, _stack, _cap = run_page(diamond_page())
        rows = manager.waterfall()
        assert [r["status"] for r in rows] == ["done"] * 4
        times = [r["t_done"] for r in rows]
        assert times == sorted(times)
        first = rows[0]
        assert first["name"] == "html"
        assert first["t_ready"] <= first["t_start"] <= first["t_done"]
