"""Connection pool: candidates, accounting, idle expiry, limits."""

import pytest

from repro.workload.pool import ConnectionPool

pytestmark = pytest.mark.workload


class FakeClock:
    def __init__(self):
        self.now = 0.0


class FakeHandle:
    def __init__(self, host):
        self.host = host
        self.closed = False
        self._srtt = 0.02

    def srtt(self):
        return self._srtt

    def cwnd(self):
        return 20_000.0

    def backlog_bytes(self):
        return 123.0

    def close(self):
        self.closed = True


def make_pool(max_per_host=2, capacity=2, idle_timeout=10.0):
    clock = FakeClock()
    made = []

    def factory(host):
        handle = FakeHandle(host)
        made.append(handle)
        return handle

    pool = ConnectionPool(clock, factory, max_per_host=max_per_host,
                          capacity=capacity, idle_timeout=idle_timeout)
    return pool, clock, made


class TestCandidates:
    def test_fresh_pool_offers_only_new(self):
        pool, _clock, _made = make_pool()
        view = pool.view("h")
        kinds = [c.kind for c in view.candidates()]
        assert kinds == ["new"]

    def test_idle_connection_offers_reuse(self):
        pool, _clock, _made = make_pool()
        entry = pool.checkout(pool.view("h").candidates()[0])
        pool.release(entry)
        kinds = [c.kind for c in pool.view("h").candidates()]
        assert kinds == ["reuse", "new"]

    def test_partially_busy_offers_share(self):
        pool, _clock, _made = make_pool(capacity=2)
        pool.checkout(pool.view("h").candidates()[0])
        kinds = [c.kind for c in pool.view("h").candidates()]
        assert kinds == ["share", "new"]

    def test_full_connection_not_offered(self):
        pool, _clock, _made = make_pool(max_per_host=1, capacity=1)
        pool.checkout(pool.view("h").candidates()[0])
        assert pool.view("h").candidates() == []

    def test_per_host_limit_hides_new(self):
        pool, _clock, _made = make_pool(max_per_host=1, capacity=2)
        pool.checkout(pool.view("h").candidates()[0])
        kinds = [c.kind for c in pool.view("h").candidates()]
        assert kinds == ["share"]

    def test_candidate_stats_delegate_to_handle(self):
        pool, _clock, _made = make_pool()
        entry = pool.checkout(pool.view("h").candidates()[0])
        pool.release(entry)
        candidate = pool.view("h").candidates()[0]
        assert candidate.srtt() == 0.02
        assert candidate.cwnd() == 20_000.0
        assert candidate.backlog_bytes() == 123.0
        assert pool.view("h").typical_srtt() == 0.02

    def test_new_candidate_defaults(self):
        pool, _clock, _made = make_pool()
        candidate = pool.view("h").candidates()[0]
        assert candidate.srtt() == float("inf")
        assert candidate.backlog_bytes() == 0.0
        assert pool.view("h").typical_srtt() is None


class TestAccounting:
    def test_reuse_new_share_counters(self):
        pool, _clock, _made = make_pool(max_per_host=2, capacity=2)
        first = pool.checkout(pool.view("h").candidates()[0])     # new
        pool.checkout([c for c in pool.view("h").candidates()
                       if c.kind == "share"][0])                  # share
        pool.release(first)
        pool.release(first)
        pool.checkout([c for c in pool.view("h").candidates()
                       if c.kind == "reuse"][0])                  # reuse
        stats = pool.stats()
        assert stats["opened"] == 1
        assert stats["shared"] == 1
        assert stats["reused"] == 1
        assert first.transfers_carried == 3

    def test_hosts_are_independent(self):
        pool, _clock, made = make_pool(max_per_host=1)
        pool.checkout(pool.view("a").candidates()[0])
        pool.checkout(pool.view("b").candidates()[0])
        assert [h.host for h in made] == ["a", "b"]
        assert pool.stats()["live"] == 2

    def test_stale_candidate_rejected(self):
        pool, clock, _made = make_pool(idle_timeout=1.0)
        entry = pool.checkout(pool.view("h").candidates()[0])
        pool.release(entry)
        stale = pool.view("h").candidates()[0]
        clock.now = 5.0
        pool.sweep()
        with pytest.raises(ValueError, match="stale"):
            pool.checkout(stale)

    def test_release_underflow_rejected(self):
        pool, _clock, _made = make_pool()
        entry = pool.checkout(pool.view("h").candidates()[0])
        pool.release(entry)
        with pytest.raises(ValueError):
            pool.release(entry)


class TestIdleExpiry:
    def test_sweep_closes_idle_past_timeout(self):
        pool, clock, made = make_pool(idle_timeout=10.0)
        entry = pool.checkout(pool.view("h").candidates()[0])
        clock.now = 5.0
        pool.release(entry)
        clock.now = 14.0
        assert pool.sweep() == 0          # idle only 9s
        clock.now = 15.0
        assert pool.sweep() == 1
        assert made[0].closed
        assert pool.stats() == {"opened": 1, "reused": 0, "shared": 0,
                                "expired": 1, "live": 0}

    def test_busy_connection_never_expires(self):
        pool, clock, made = make_pool(idle_timeout=1.0)
        pool.checkout(pool.view("h").candidates()[0])
        clock.now = 100.0
        assert pool.sweep() == 0
        assert not made[0].closed

    def test_close_all(self):
        pool, _clock, made = make_pool()
        pool.checkout(pool.view("h").candidates()[0])
        pool.close_all()
        assert made[0].closed
        assert pool.stats()["live"] == 0


class TestCapacityListeners:
    def test_release_notifies_listeners(self):
        pool, _clock, _made = make_pool()
        fired = []
        pool.add_capacity_listener(lambda: fired.append(True))
        entry = pool.checkout(pool.view("h").candidates()[0])
        assert not fired
        pool.release(entry)
        assert fired == [True]
