"""TLS 1.3 handshake machines: completion, keys, extensions, failure."""

import random

import pytest

from repro.tls import TlsClient, TlsError, TlsServer
from repro.tls.extensions import (
    EXT_TCPLS_HELLO,
    Extension,
)
from repro.tls.record import TlsRecordError


def pump(client, server, rounds=10):
    for _ in range(rounds):
        moved = False
        data = client.data_to_send()
        if data:
            server.feed(data)
            moved = True
        data = server.data_to_send()
        if data:
            client.feed(data)
            moved = True
        if not moved:
            return


def handshake(client_kwargs=None, server_kwargs=None, psk=b"psk"):
    client = TlsClient(psk, random.Random(1), **(client_kwargs or {}))
    server = TlsServer(psk, random.Random(2), **(server_kwargs or {}))
    client.start()
    pump(client, server)
    return client, server


@pytest.mark.parametrize("suite", ["null-tag", "chacha20poly1305",
                                   "aes128gcm"])
def test_handshake_completes_each_suite(suite):
    client, server = handshake({"cipher_names": (suite,)},
                               {"cipher_names": (suite,)})
    assert client.handshake_complete and server.handshake_complete
    assert client.negotiated_cipher == suite
    assert server.negotiated_cipher == suite


def test_application_keys_agree():
    client, server = handshake()
    cs, ss = client.schedule, server.schedule
    assert cs.client_application.key == ss.client_application.key
    assert cs.server_application.key == ss.server_application.key
    assert cs.client_application.key != cs.server_application.key
    assert cs.master_secret == ss.master_secret


def test_application_data_both_directions():
    client, server = handshake()
    to_server, to_client = [], []
    server.on_application_data = lambda s, d: to_server.append(d)
    client.on_application_data = lambda s, d: to_client.append(d)
    client.send_application_data(b"request")
    pump(client, server)
    server.send_application_data(b"response")
    pump(client, server)
    assert b"".join(to_server) == b"request"
    assert b"".join(to_client) == b"response"


def test_large_application_data_chunked_into_records():
    client, server = handshake()
    got = []
    server.on_application_data = lambda s, d: got.append(d)
    client.send_application_data(b"z" * 50000)  # > 3 records
    pump(client, server)
    assert len(got) >= 4
    assert b"".join(got) == b"z" * 50000


def test_psk_mismatch_fails_finished():
    client = TlsClient(b"psk-A", random.Random(1))
    server = TlsServer(b"psk-B", random.Random(2))
    client.start()
    with pytest.raises((TlsError, TlsRecordError)):
        pump(client, server)
    assert not client.handshake_complete


def test_extra_extension_reaches_server_and_answer_comes_back():
    seen = []

    def ee_fn(client_hello):
        ext = client_hello.find_extension(EXT_TCPLS_HELLO)
        seen.append(ext)
        if ext is not None:
            return [Extension(EXT_TCPLS_HELLO, b"ack")]
        return []

    client, server = handshake(
        {"extra_extensions": [Extension(EXT_TCPLS_HELLO, b"")]},
        {"encrypted_extensions_fn": ee_fn},
    )
    assert seen[0] is not None
    answers = [e for e in client.peer_encrypted_extensions
               if e.ext_type == EXT_TCPLS_HELLO]
    assert answers and answers[0].data == b"ack"


def test_strict_server_aborts_on_unknown_extension():
    """The legacy-server behaviour of Sec. 5.2: connection dies, which
    triggers the client's explicit fallback."""
    client = TlsClient(b"psk", random.Random(1),
                       extra_extensions=[Extension(EXT_TCPLS_HELLO, b"")])
    server = TlsServer(b"psk", random.Random(2), strict_extensions=True)
    client.start()
    with pytest.raises(TlsError):
        pump(client, server)


def test_zero_rtt_early_data():
    early = []
    server = TlsServer(b"psk", random.Random(2))
    server.on_application_data = lambda s, d: early.append(d)
    client = TlsClient(b"psk", random.Random(1), early_data=b"0rtt GET /")
    client.start()
    pump(client, server)
    assert client.handshake_complete
    assert b"".join(early) == b"0rtt GET /"


def test_no_common_cipher_suite():
    client = TlsClient(b"psk", random.Random(1),
                       cipher_names=("aes128gcm",))
    server = TlsServer(b"psk", random.Random(2),
                       cipher_names=("chacha20poly1305",))
    client.start()
    with pytest.raises(TlsError):
        pump(client, server)


def test_server_picks_preferred_common_suite():
    client = TlsClient(b"psk", random.Random(1),
                       cipher_names=("null-tag", "aes128gcm"))
    server = TlsServer(b"psk", random.Random(2),
                       cipher_names=("aes128gcm", "null-tag"))
    client.start()
    pump(client, server)
    assert server.negotiated_cipher == "aes128gcm"


def test_tampered_handshake_record_fails():
    client = TlsClient(b"psk", random.Random(1))
    server = TlsServer(b"psk", random.Random(2))
    client.start()
    server.feed(client.data_to_send())
    flight = bytearray(server.data_to_send())
    flight[-1] ^= 0xFF  # corrupt the (encrypted) server Finished
    with pytest.raises((TlsError, TlsRecordError)):
        client.feed(bytes(flight))
