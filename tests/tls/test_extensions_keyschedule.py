"""Extension codec and the key schedule."""

import pytest

from repro.crypto.aead import NullTagCipher
from repro.net.address import IPAddress
from repro.tls.extensions import (
    Extension,
    decode_address_list,
    decode_cookie_list,
    decode_extensions,
    decode_tcpls_join,
    encode_address_list,
    encode_cookie_list,
    encode_extensions,
    encode_tcpls_join,
    find_extension,
)
from repro.tls.keyschedule import KeySchedule


class TestExtensionCodec:
    def test_roundtrip(self):
        extensions = [Extension(43, b"\x03\x04"), Extension(0xFA01, b"")]
        decoded, offset = decode_extensions(
            encode_extensions(extensions), 0
        )
        assert decoded == extensions

    def test_find(self):
        extensions = [Extension(1, b"a"), Extension(2, b"b")]
        assert find_extension(extensions, 2).data == b"b"
        assert find_extension(extensions, 3) is None

    def test_truncated_vector_rejected(self):
        raw = encode_extensions([Extension(1, b"abc")])
        with pytest.raises(ValueError):
            decode_extensions(raw[:-1], 0)

    def test_join_payload(self):
        sessid, cookie = b"S" * 16, b"C" * 16
        assert decode_tcpls_join(encode_tcpls_join(sessid, cookie)) == (
            sessid, cookie)
        with pytest.raises(ValueError):
            encode_tcpls_join(b"short", cookie)
        with pytest.raises(ValueError):
            decode_tcpls_join(b"x" * 31)

    def test_cookie_list(self):
        cookies = [bytes([i]) * 16 for i in range(5)]
        assert decode_cookie_list(encode_cookie_list(cookies)) == cookies
        with pytest.raises(ValueError):
            encode_cookie_list([b"short"])
        with pytest.raises(ValueError):
            decode_cookie_list(b"\x00\x10" + b"x" * 15)

    def test_address_list_mixed_families(self):
        addresses = [IPAddress("10.0.0.2"), IPAddress("fd01::2")]
        decoded = decode_address_list(encode_address_list(addresses))
        assert decoded == addresses


class TestKeySchedule:
    def make(self, psk=b"p"):
        return KeySchedule(NullTagCipher, psk=psk)

    def run_through(self, schedule):
        schedule.update_transcript(b"\x01fake-client-hello")
        schedule.update_transcript(b"\x02fake-server-hello")
        schedule.derive_handshake(b"D" * 256)
        schedule.update_transcript(b"\x08fake-ee")
        schedule.derive_application()
        return schedule

    def test_mirrored_schedules_agree(self):
        a = self.run_through(self.make())
        b = self.run_through(self.make())
        assert a.client_application.key == b.client_application.key
        assert a.server_application.key == b.server_application.key

    def test_transcript_divergence_changes_keys(self):
        a = self.make()
        b = self.make()
        a.update_transcript(b"\x01hello")
        b.update_transcript(b"\x01HELLO")
        a.derive_handshake(b"D" * 256)
        b.derive_handshake(b"D" * 256)
        assert a.client_handshake.key != b.client_handshake.key

    def test_psk_changes_all_secrets(self):
        a = self.run_through(self.make(b"psk-one"))
        b = self.run_through(self.make(b"psk-two"))
        assert a.client_application.key != b.client_application.key

    def test_handshake_keys_not_in_application_context(self):
        """Paper Sec. 3.2: the handshake key is not part of the context
        used to derive the application key -- the master secret chains
        from the handshake *secret*, so the traffic keys differ."""
        schedule = self.run_through(self.make())
        assert schedule.client_handshake.key != \
            schedule.client_application.key
        assert schedule.handshake_secret != schedule.master_secret

    def test_application_before_handshake_rejected(self):
        with pytest.raises(RuntimeError):
            self.make().derive_application()

    def test_finished_covers_transcript(self):
        schedule = self.run_through(self.make())
        before = schedule.finished_verify_data(
            schedule.server_handshake.secret
        )
        schedule.update_transcript(b"\x14more")
        after = schedule.finished_verify_data(
            schedule.server_handshake.secret
        )
        assert before != after

    def test_early_traffic_keys(self):
        schedule = self.make(b"resumption-psk")
        schedule.update_transcript(b"\x01ch")
        keys = schedule.derive_early_traffic()
        assert len(keys.key) == NullTagCipher.key_size
        assert len(keys.iv) == 12
