"""psk_ke mode (RFC 8446 Sec. 4.2.9): PSK-only establishment.

The mass-session serving path (repro.core.drivers.multi) negotiates
psk_ke so per-handshake cost stays flat at thousands of sessions --
no FFDHE exponentiations, just the HKDF schedule.  These tests pin the
negotiation shape and that psk_ke produces working, *distinct* traffic
keys while the default DHE handshake is untouched.
"""

import random

import pytest

from repro.tls import TlsClient, TlsError, TlsServer
from repro.tls.extensions import EXT_KEY_SHARE

def pump(client, server, rounds=10):
    for _ in range(rounds):
        moved = False
        data = client.data_to_send()
        if data:
            server.feed(data)
            moved = True
        data = server.data_to_send()
        if data:
            client.feed(data)
            moved = True
        if not moved:
            return


def handshake(client_kwargs=None, server_kwargs=None, psk=b"psk"):
    client = TlsClient(psk, random.Random(1), **(client_kwargs or {}))
    server = TlsServer(psk, random.Random(2), **(server_kwargs or {}))
    client.start()
    pump(client, server)
    return client, server


def test_psk_ke_handshake_completes_without_key_share():
    client, server = handshake({"key_exchange": "psk"})
    assert client.handshake_complete and server.handshake_complete
    assert client._dh is None
    cs, ss = client.schedule, server.schedule
    assert cs.client_application.key == ss.client_application.key
    assert cs.server_application.key == ss.server_application.key


def test_psk_ke_application_data_flows():
    client, server = handshake({"key_exchange": "psk"})
    got = []
    server.on_application_data = lambda s, d: got.append(d)
    client.send_application_data(b"over psk_ke")
    server.feed(client.data_to_send())
    assert b"".join(got) == b"over psk_ke"


def test_psk_ke_keys_differ_per_handshake():
    """The random nonces still separate sessions sharing one PSK."""
    a = TlsClient(b"psk", random.Random(11), key_exchange="psk")
    sa = TlsServer(b"psk", random.Random(12))
    a.start()
    pump(a, sa)
    b = TlsClient(b"psk", random.Random(21), key_exchange="psk")
    sb = TlsServer(b"psk", random.Random(22))
    b.start()
    pump(b, sb)
    assert a.schedule.client_application.key != \
        b.schedule.client_application.key


def test_psk_ke_keys_differ_between_modes():
    dhe, _ = handshake()
    psk, _ = handshake({"key_exchange": "psk"})
    assert dhe.schedule.client_application.key != \
        psk.schedule.client_application.key


def test_dhe_client_rejects_keyshareless_server_hello():
    """A DHE client never silently downgrades to psk-only."""
    client = TlsClient(b"psk", random.Random(1))
    server = TlsServer(b"psk", random.Random(2))
    client.start()
    raw = client.data_to_send()
    # Strip the key share from the ClientHello by replaying it through
    # a psk_ke client's hello instead: simpler -- hand the DHE client a
    # psk_ke ServerHello produced against a psk_ke ClientHello.
    psk_client = TlsClient(b"psk", random.Random(1), key_exchange="psk")
    psk_client.start()
    server.feed(psk_client.data_to_send())
    with pytest.raises(TlsError):
        client.feed(server.data_to_send())


def test_psk_ke_mode_survives_strict_extension_server():
    """psk_key_exchange_modes is standard TLS 1.3; the Sec. 5.2 legacy
    server models only abort on genuinely unknown extensions."""
    client, server = handshake({"key_exchange": "psk"},
                               {"strict_extensions": True})
    assert client.handshake_complete and server.handshake_complete


def test_dhe_server_hello_still_carries_key_share():
    """Default-mode wire bytes are unchanged by the psk_ke feature."""
    client, server = handshake()
    # ServerHello seen by the client carried a key share (the client
    # keeps the DH keypair only in DHE mode and completed with it).
    assert client._dh is not None
    assert client.handshake_complete
    sh_ks = None
    # Re-run a fresh handshake and inspect the ServerHello bytes.
    c2 = TlsClient(b"psk", random.Random(1))
    s2 = TlsServer(b"psk", random.Random(2))
    c2.start()
    s2.feed(c2.data_to_send())
    out = s2.data_to_send()
    from repro.tls.handshake_messages import ServerHello
    from repro.tls.record import RecordReassembler

    reasm = RecordReassembler()
    records = reasm.feed(out)
    body = records[0][5:]
    hello = ServerHello.decode(body[4:])
    sh_ks = hello.find_extension(EXT_KEY_SHARE)
    assert sh_ks is not None
