"""TLS 1.3 record layer: framing, protection, reassembly."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aead import NullTagCipher
from repro.tls.record import (
    CONTENT_APPLICATION_DATA,
    CONTENT_HANDSHAKE,
    MAX_RECORD_PAYLOAD,
    RecordDecryptor,
    RecordEncryptor,
    RecordReassembler,
    TlsRecordError,
    encode_plaintext_record,
    split_inner_plaintext,
    xor_nonce,
)


def traffic_pair():
    cipher = NullTagCipher(b"K" * 32)
    iv = bytes(range(12))
    return RecordEncryptor(cipher, iv), RecordDecryptor(cipher, iv)


def test_plaintext_record_framing():
    record = encode_plaintext_record(CONTENT_HANDSHAKE, b"hello")
    assert record[0] == CONTENT_HANDSHAKE
    assert record[3:5] == (5).to_bytes(2, "big")
    assert record[5:] == b"hello"


def test_plaintext_record_size_limit():
    with pytest.raises(TlsRecordError):
        encode_plaintext_record(CONTENT_HANDSHAKE,
                                b"x" * (MAX_RECORD_PAYLOAD + 1))


def test_protect_unprotect_roundtrip():
    enc, dec = traffic_pair()
    record = enc.protect(CONTENT_APPLICATION_DATA, b"secret payload")
    assert record[0] == CONTENT_APPLICATION_DATA  # outer type hides inner
    content_type, plaintext = dec.unprotect(record)
    assert content_type == CONTENT_APPLICATION_DATA
    assert plaintext == b"secret payload"


def test_content_type_hiding():
    """A handshake record is outer-typed application_data on the wire --
    the property TCPLS extends to hide its control records (Fig. 1)."""
    enc, dec = traffic_pair()
    record = enc.protect(CONTENT_HANDSHAKE, b"finished-msg")
    assert record[0] == CONTENT_APPLICATION_DATA
    content_type, plaintext = dec.unprotect(record)
    assert content_type == CONTENT_HANDSHAKE


def test_padding_stripped():
    enc, dec = traffic_pair()
    record = enc.protect(CONTENT_APPLICATION_DATA, b"padded", padding=32)
    _, plaintext = dec.unprotect(record)
    assert plaintext == b"padded"


def test_sequence_mismatch_fails():
    enc, dec = traffic_pair()
    first = enc.protect(CONTENT_APPLICATION_DATA, b"one")
    second = enc.protect(CONTENT_APPLICATION_DATA, b"two")
    with pytest.raises(TlsRecordError):
        dec.unprotect(second)  # decryptor expects seq 0
    assert dec.forgery_attempts == 1
    # In order it works.
    dec2 = RecordDecryptor(NullTagCipher(b"K" * 32), bytes(range(12)))
    assert dec2.unprotect(first)[1] == b"one"
    assert dec2.unprotect(second)[1] == b"two"


def test_verify_only_does_not_advance():
    enc, dec = traffic_pair()
    record = enc.protect(CONTENT_APPLICATION_DATA, b"x")
    assert dec.verify_only(record)
    assert dec.sequence == 0
    assert dec.unprotect(record)[1] == b"x"


def test_xor_nonce():
    iv = bytes(12)
    assert xor_nonce(iv, 0) == bytes(12)
    assert xor_nonce(iv, 1)[-1] == 1
    assert xor_nonce(b"\xff" * 12, 1)[-1] == 0xFE


def test_split_inner_rejects_all_padding():
    with pytest.raises(TlsRecordError):
        split_inner_plaintext(b"\x00\x00\x00")


class TestReassembler:
    def test_single_complete_record(self):
        buf = RecordReassembler()
        record = encode_plaintext_record(CONTENT_HANDSHAKE, b"abc")
        assert buf.feed(record) == [record]

    def test_partial_then_complete(self):
        buf = RecordReassembler()
        record = encode_plaintext_record(CONTENT_HANDSHAKE, b"abcdef")
        assert buf.feed(record[:4]) == []
        assert buf.pending_bytes == 4
        assert buf.feed(record[4:]) == [record]
        assert buf.pending_bytes == 0

    def test_multiple_records_one_chunk(self):
        buf = RecordReassembler()
        r1 = encode_plaintext_record(CONTENT_HANDSHAKE, b"one")
        r2 = encode_plaintext_record(CONTENT_APPLICATION_DATA, b"two")
        assert buf.feed(r1 + r2) == [r1, r2]

    def test_oversized_record_rejected(self):
        buf = RecordReassembler(max_record=100)
        bogus = bytes([23, 3, 3]) + (5000).to_bytes(2, "big")
        with pytest.raises(TlsRecordError):
            buf.feed(bogus)

    @settings(max_examples=100)
    @given(st.lists(st.binary(min_size=0, max_size=300), min_size=1,
                    max_size=10),
           st.integers(1, 40))
    def test_property_any_fragmentation(self, payloads, chunk):
        """However TCP fragments the byte stream, the reassembler yields
        exactly the original records, in order."""
        records = [encode_plaintext_record(CONTENT_APPLICATION_DATA, p)
                   for p in payloads]
        stream = b"".join(records)
        buf = RecordReassembler()
        out = []
        for i in range(0, len(stream), chunk):
            out.extend(buf.feed(stream[i:i + chunk]))
        assert out == records
        assert buf.pending_bytes == 0
