"""TCP segment value semantics and sizing."""

import pytest

from repro.tcp.options import MssOption, TimestampOption
from repro.tcp.segment import Segment


def test_wire_size_accounts_header_options_payload():
    seg = Segment(1, 2, payload=b"12345")
    assert seg.wire_size() == 20 + 5
    seg = Segment(1, 2, options=(MssOption(1460),), payload=b"12345")
    assert seg.wire_size() == 20 + 4 + 5  # MSS option padded to 4


def test_seq_space_counts_syn_and_fin():
    assert Segment(1, 2, flags={"SYN"}).seq_space() == 1
    assert Segment(1, 2, flags={"FIN"}, payload=b"ab").seq_space() == 3
    assert Segment(1, 2, seq=100, payload=b"abc").end_seq == 103


def test_invalid_flags_rejected():
    with pytest.raises(ValueError):
        Segment(1, 2, flags={"SYN", "BOGUS"})


def test_replace_returns_independent_copy():
    seg = Segment(1, 2, seq=10, payload=b"orig",
                  options=(TimestampOption(1, 2),))
    other = seg.replace(payload=b"new!", seq=20)
    assert seg.payload == b"orig" and seg.seq == 10
    assert other.payload == b"new!" and other.seq == 20
    assert other.options == seg.options
    assert other.src_port == 1


def test_find_option():
    seg = Segment(1, 2, options=(MssOption(1200), TimestampOption(5, 6)))
    assert seg.find_option(2).mss == 1200
    assert seg.find_option(8).ts_val == 5
    assert seg.find_option(99) is None


def test_flag_helpers():
    seg = Segment(1, 2, flags={"SYN", "ACK"})
    assert seg.is_syn and seg.is_ack
    assert not seg.is_fin and not seg.is_rst
