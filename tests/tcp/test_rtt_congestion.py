"""RTT estimation and congestion-control algorithms."""

import pytest

from repro.tcp.congestion import (
    Cubic,
    NewReno,
    Vegas,
    make_congestion_control,
    register_congestion_control,
)
from repro.tcp.rtt import RttEstimator

MSS = 1460


class TestRttEstimator:
    def test_initial_rto(self):
        assert RttEstimator().rto == pytest.approx(1.0)

    def test_first_sample_seeds_srtt(self):
        est = RttEstimator()
        est.on_sample(0.1)
        assert est.srtt == pytest.approx(0.1)
        assert est.rttvar == pytest.approx(0.05)

    def test_ewma_converges(self):
        est = RttEstimator()
        for _ in range(100):
            est.on_sample(0.05)
        assert est.srtt == pytest.approx(0.05, rel=0.01)
        assert est.rto == pytest.approx(0.2, abs=0.02)  # MIN_RTO floor

    def test_rto_grows_with_variance(self):
        est = RttEstimator()
        for sample in (0.05, 0.25, 0.05, 0.25, 0.05, 0.25):
            est.on_sample(sample)
        assert est.rto > 0.3

    def test_min_rtt_tracked(self):
        est = RttEstimator()
        for sample in (0.08, 0.03, 0.2):
            est.on_sample(sample)
        assert est.min_rtt == pytest.approx(0.03)

    def test_nonpositive_samples_ignored(self):
        est = RttEstimator()
        est.on_sample(0.0)
        est.on_sample(-1.0)
        assert est.samples == 0


class TestNewReno:
    def test_slow_start_doubles_per_rtt(self):
        cc = NewReno(MSS)
        start = cc.cwnd
        cc.on_ack(int(start), 0.02, 0.02, int(start))
        assert cc.cwnd == pytest.approx(2 * start)

    def test_congestion_avoidance_one_mss_per_cwnd(self):
        cc = NewReno(MSS)
        cc.ssthresh = cc.cwnd  # leave slow start
        before = cc.cwnd
        acked = 0
        while acked < before:
            cc.on_ack(MSS, 0.02, 0.0, 0)
            acked += MSS
        assert before + MSS <= cc.cwnd <= before + 2 * MSS

    def test_loss_halves(self):
        cc = NewReno(MSS)
        cc.cwnd = 100 * MSS
        cc.on_loss(0.0)
        assert cc.cwnd == pytest.approx(50 * MSS)
        assert cc.ssthresh == pytest.approx(50 * MSS)

    def test_rto_collapses_to_one_mss(self):
        cc = NewReno(MSS)
        cc.cwnd = 100 * MSS
        cc.on_rto(0.0)
        assert cc.cwnd == MSS

    def test_floor_at_two_mss(self):
        cc = NewReno(MSS)
        cc.cwnd = 2 * MSS
        cc.on_loss(0.0)
        assert cc.cwnd >= 2 * MSS


class TestCubic:
    def test_slow_start_then_plateau(self):
        cc = Cubic(MSS)
        assert cc.in_slow_start()
        cc.cwnd = 100 * MSS
        cc.on_loss(0.0)
        assert not cc.in_slow_start()
        assert cc.cwnd == pytest.approx(70 * MSS)  # beta = 0.7

    def test_concave_growth_toward_w_max(self):
        cc = Cubic(MSS)
        cc.cwnd = 100 * MSS
        cc.on_loss(0.0)
        now = 0.0
        for _ in range(400):
            now += 0.01
            cc.on_ack(MSS, 0.02, now, int(cc.cwnd))
        assert 70 * MSS < cc.cwnd
        # K for this drop is ~3.3 s; at t=4 s cwnd should be near w_max.
        assert cc.cwnd < 130 * MSS

    def test_growth_rate_clamped(self):
        cc = Cubic(MSS)
        cc.ssthresh = cc.cwnd
        cc.w_max = 1000 * MSS  # huge target
        before = cc.cwnd
        cc.on_ack(MSS, 0.02, 10.0, 0)
        # cnt >= 2: at most half an MSS per acked MSS.
        assert cc.cwnd - before <= MSS / 2 + 1

    def test_hystart_exits_slow_start_on_delay(self):
        cc = Cubic(MSS)
        cc.cwnd = 32 * MSS
        cc.on_ack(MSS, 0.020, 0.0, 0)    # min_rtt = 20 ms
        cc.on_ack(MSS, 0.060, 0.1, 0)    # inflated RTT -> exit
        assert not cc.in_slow_start()


class TestVegas:
    def test_grows_when_below_alpha(self):
        cc = Vegas(MSS)
        cc.ssthresh = cc.cwnd
        now = 0.0
        before = cc.cwnd
        for _ in range(50):
            now += 0.02
            cc.on_ack(MSS, 0.020, now, 0)  # rtt == base_rtt: no queue
        assert cc.cwnd > before

    def test_backs_off_when_queue_builds(self):
        cc = Vegas(MSS)
        cc.ssthresh = cc.cwnd
        now = 0.0
        cc.on_ack(MSS, 0.020, now, 0)   # establish base_rtt
        before = None
        for _ in range(100):
            now += 0.05
            cc.on_ack(MSS, 0.050, now, 0)   # heavy queueing delay
            if before is None:
                before = cc.cwnd
        assert cc.cwnd < before

    def test_loss_decrease_gentler_than_reno(self):
        vegas, reno = Vegas(MSS), NewReno(MSS)
        vegas.cwnd = reno.cwnd = 100 * MSS
        vegas.on_loss(0.0)
        reno.on_loss(0.0)
        assert vegas.cwnd > reno.cwnd


def test_factory_and_registry():
    assert isinstance(make_congestion_control("cubic", MSS), Cubic)
    assert isinstance(make_congestion_control("RENO", MSS), NewReno)
    with pytest.raises(ValueError):
        make_congestion_control("bbr9", MSS)
    register_congestion_control("custom", NewReno)
    assert isinstance(make_congestion_control("custom", MSS), NewReno)


def test_snapshot_shape():
    cc = Cubic(MSS)
    snap = cc.snapshot()
    assert snap["ca_name"] == "cubic"
    assert snap["ssthresh_bytes"] is None  # infinity encodes as None
    assert snap["slow_start"] is True
