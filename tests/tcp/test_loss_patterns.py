"""TCP recovery under adversarial loss patterns.

Property: for any burst-loss scenario in the grid below (and any
hypothesis-drawn Gilbert–Elliott parameters), the receiver's
reassembled bytestream equals the sent bytestream and the connection
never deadlocks — completion is demanded inside a bounded sim-time
watchdog, so a stuck retransmission state machine fails loudly instead
of spinning.
"""

import pytest

from hypothesis import given, settings, strategies as st

from helpers import bulk_receiver, bulk_sender, make_net, tcp_pair

from repro.net import Simulator, build_faulty_multipath
from repro.net.faults import GilbertElliott, LinkFlap
from repro.tcp import TcpStack

pytestmark = pytest.mark.faults

WATCHDOG = 120.0   # sim-seconds; plenty for 256 KiB on a 25 Mbps path
SIZE = 256 << 10


def transfer_under_faults(fault_builder, size=SIZE, seed=7,
                          watchdog=WATCHDOG):
    """Run one TCP bulk transfer with ``fault_builder(topo)`` applied.

    Returns (received bytes, payload, finish time).  Fails the test if
    the transfer does not complete inside the watchdog (deadlock) or
    the event queue drains without delivering everything (lost state).
    """
    sim = Simulator(seed=seed)
    topo = build_faulty_multipath(sim, n_paths=1, families=[4])
    cstack = TcpStack(sim, topo.client)
    sstack = TcpStack(sim, topo.server)
    fault_builder(topo)
    payload = bytes((i * 37 + 11) % 256 for i in range(size))
    on_accept, received = bulk_receiver()
    sstack.listen(443, on_accept)
    from repro.net.address import Endpoint
    conn = cstack.connect(topo.path(0).client_addr,
                          Endpoint(topo.path(0).server_addr, 443))
    bulk_sender(conn, payload)
    finished = sim.run_until(lambda: len(received) >= size,
                             timeout=watchdog)
    assert finished, (
        "TCP transfer deadlocked: %d/%d bytes after %.0f sim-seconds "
        "(drops: %s)" % (
            len(received), size, watchdog,
            topo.path(0).c2s.stats.drop_reasons))
    return bytes(received), payload, sim.now


BURST_GRID = [
    # (p_gb, p_bg, loss_bad) — from gentle sparse bursts to brutal
    # long ones (mean burst length 1/p_bg packets).
    (0.01, 0.50, 1.0),
    (0.02, 0.30, 1.0),
    (0.05, 0.25, 1.0),
    (0.05, 0.10, 0.8),
    (0.10, 0.20, 0.6),
    (0.02, 0.05, 0.5),   # rare but very long half-loss episodes
]


@pytest.mark.parametrize("p_gb,p_bg,loss_bad", BURST_GRID)
def test_bytestream_intact_under_burst_loss_grid(p_gb, p_bg, loss_bad):
    def build(topo):
        # Bursty loss on the data direction, milder on the ACK path.
        topo.path(0).c2s.add_fault(
            GilbertElliott(p_gb, p_bg, loss_bad=loss_bad, seed=21))
        topo.path(0).s2c.add_fault(
            GilbertElliott(p_gb / 2, p_bg, loss_bad=loss_bad, seed=22))

    received, payload, _t = transfer_under_faults(build)
    assert received == payload


@pytest.mark.parametrize("down_for", [0.1, 0.5, 2.0])
def test_bytestream_intact_across_hard_flaps(down_for):
    """Hard outages force RTO backoff; the stream must come back intact
    however long the hole (shorter than the watchdog) lasts."""
    def build(topo):
        flap = LinkFlap()
        flap.flap_every(3.0, down_for, start=0.5, until=10.0)
        topo.path(0).c2s.add_fault(flap)
        topo.path(0).s2c.add_fault(
            LinkFlap(windows=list(flap.windows)))

    received, payload, _t = transfer_under_faults(build)
    assert received == payload


def test_loss_pattern_runs_are_seed_reproducible():
    def build(topo):
        topo.burst_loss(0, 0.05, 0.25, seed=33)

    a = transfer_under_faults(build, size=64 << 10)
    b = transfer_under_faults(build, size=64 << 10)
    assert a == b


@settings(max_examples=12, deadline=None, derandomize=True)
@given(
    p_gb=st.floats(min_value=0.005, max_value=0.08),
    p_bg=st.floats(min_value=0.08, max_value=0.6),
    loss_bad=st.floats(min_value=0.4, max_value=1.0),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_property_reassembly_equals_sent(p_gb, p_bg, loss_bad, seed):
    """Property-based sweep: any GE channel in this (recoverable)
    parameter box preserves the bytestream without deadlock."""
    def build(topo):
        topo.path(0).c2s.add_fault(
            GilbertElliott(p_gb, p_bg, loss_bad=loss_bad, seed=seed))
        topo.path(0).s2c.add_fault(
            GilbertElliott(p_gb / 2, p_bg, loss_bad=loss_bad,
                           seed=seed + 1))

    received, payload, _t = transfer_under_faults(build, size=96 << 10)
    assert received == payload
