"""RangeSet: the SACK scoreboard structure (unit + property tests)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tcp.ranges import RangeSet


def test_add_and_merge_adjacent():
    ranges = RangeSet()
    ranges.add(0, 10)
    ranges.add(10, 20)
    assert list(ranges) == [(0, 20)]


def test_add_overlapping():
    ranges = RangeSet([(0, 10), (20, 30)])
    ranges.add(5, 25)
    assert list(ranges) == [(0, 30)]


def test_empty_add_ignored():
    ranges = RangeSet()
    ranges.add(5, 5)
    assert not ranges and ranges.total == 0


def test_subtract_middle_splits():
    ranges = RangeSet([(0, 30)])
    ranges.subtract(10, 20)
    assert list(ranges) == [(0, 10), (20, 30)]


def test_subtract_everything():
    ranges = RangeSet([(5, 15)])
    ranges.subtract(0, 100)
    assert not ranges


def test_trim_below():
    ranges = RangeSet([(0, 10), (20, 30)])
    ranges.trim_below(25)
    assert list(ranges) == [(25, 30)]


def test_contains_and_covers():
    ranges = RangeSet([(10, 20)])
    assert ranges.contains(10)
    assert ranges.contains(19)
    assert not ranges.contains(20)
    assert ranges.covers(12, 18)
    assert not ranges.covers(12, 22)
    assert ranges.covers(5, 5)  # empty interval always covered


def test_first_range_at_or_above():
    ranges = RangeSet([(10, 20), (30, 40)])
    assert ranges.first_range_at_or_above(0) == (10, 20)
    assert ranges.first_range_at_or_above(15) == (15, 20)
    assert ranges.first_range_at_or_above(25) == (30, 40)
    assert ranges.first_range_at_or_above(40) is None


def test_complement_within():
    ranges = RangeSet([(10, 20), (30, 40)])
    gaps = ranges.complement_within(0, 50)
    assert list(gaps) == [(0, 10), (20, 30), (40, 50)]
    assert list(ranges.complement_within(12, 18)) == []


def test_min_max_total():
    ranges = RangeSet([(5, 10), (20, 22)])
    assert ranges.min == 5 and ranges.max == 22 and ranges.total == 7


intervals = st.lists(
    st.tuples(st.integers(0, 500), st.integers(1, 50)).map(
        lambda t: (t[0], t[0] + t[1])
    ),
    max_size=30,
)


@settings(max_examples=200)
@given(intervals)
def test_property_matches_set_semantics(spans):
    """A RangeSet must behave exactly like a set of integers."""
    ranges = RangeSet()
    model = set()
    for start, end in spans:
        ranges.add(start, end)
        model.update(range(start, end))
    assert ranges.total == len(model)
    for point in range(0, 560, 7):
        assert ranges.contains(point) == (point in model)
    # Internal invariant: sorted, non-overlapping, non-adjacent.
    flat = list(ranges)
    for (s1, e1), (s2, e2) in zip(flat, flat[1:]):
        assert e1 < s2


@settings(max_examples=200)
@given(intervals, intervals)
def test_property_subtract_matches_set_difference(adds, subs):
    ranges = RangeSet()
    model = set()
    for start, end in adds:
        ranges.add(start, end)
        model.update(range(start, end))
    for start, end in subs:
        ranges.subtract(start, end)
        model.difference_update(range(start, end))
    assert ranges.total == len(model)
    for point in range(0, 560, 11):
        assert ranges.contains(point) == (point in model)


@settings(max_examples=100)
@given(intervals, st.integers(0, 550), st.integers(0, 550))
def test_property_complement_is_exact(spans, lo, hi):
    if lo > hi:
        lo, hi = hi, lo
    ranges = RangeSet()
    model = set()
    for start, end in spans:
        ranges.add(start, end)
        model.update(range(start, end))
    gaps = ranges.complement_within(lo, hi)
    expected = {p for p in range(lo, hi) if p not in model}
    assert gaps.total == len(expected)
    for point in range(lo, hi, 5):
        assert gaps.contains(point) == (point in expected)
