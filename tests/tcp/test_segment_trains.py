"""Segment-train (TSO/GSO coalescing) edge cases.

The train builder must behave exactly like per-segment sends: split at
the receive-window boundary, survive partial ACKs of a train, and keep
the per-connection counters truthful.
"""

from repro.net import Simulator, build_multipath
from repro.net.address import Endpoint
from repro.tcp import TcpStack

from tests.helpers import bulk_receiver, bulk_sender, make_net, tcp_pair


def run_transfer(sim, conn, received, size, until=30.0):
    sim.run_until(lambda: len(received) >= size, timeout=until)
    return bytes(received)


def test_bulk_transfer_emits_trains():
    sim, topo, cstack, sstack = make_net(n_paths=1)
    on_accept, received = bulk_receiver()
    sstack.listen(443, on_accept)
    p = topo.path(0)
    conn = cstack.connect(p.client_addr, Endpoint(p.server_addr, 443))
    payload = bytes(range(256)) * 4096  # 1 MiB
    bulk_sender(conn, payload)
    assert run_transfer(sim, conn, received, len(payload)) == payload
    # A bulk transfer must actually coalesce: trains were sent, every
    # train covered >= 2 segments, and the sum matches the counters.
    assert conn.trains_sent > 0
    assert conn.train_segments_sent >= 2 * conn.trains_sent
    assert conn.train_segments_sent <= conn.segments_sent


def test_train_splits_at_receive_window_boundary():
    """A slow reader closes the advertised window; the burst builder
    must stop exactly where it ends, never overshooting and relying on
    the peer trimming."""
    sim, topo, cstack, sstack = make_net(n_paths=1)
    accepted = []
    sstack.listen(443, accepted.append)
    p = topo.path(0)
    conn = cstack.connect(p.client_addr, Endpoint(p.server_addr, 443))
    # Reader drains slowly on a timer instead of on_data, so the 1 MiB
    # receive buffer fills and the advertised window becomes the
    # binding constraint (not cwnd).
    received = bytearray()

    def slow_drain():
        if accepted:
            received.extend(accepted[0].recv(4096))
        if len(received) < len(payload):
            sim.schedule(0.005, slow_drain)

    payload = b"\xA5" * (3 << 20)  # 3 MiB through a 1 MiB window
    bulk_sender(conn, payload)
    sim.schedule(0.05, slow_drain)
    window_bound = {"hit": False}

    def peer_window_respected():
        # Never more unacked bytes outstanding than the peer advertised
        # (a zero-window persist probe may add a single byte).
        assert conn.bytes_in_flight() <= max(conn.peer_window, 16)
        if 0 < conn.peer_window < conn.cc.cwnd:
            window_bound["hit"] = True
        return len(received) >= len(payload)

    assert sim.run_until(peer_window_respected, check_interval=0.002,
                         timeout=300.0)
    assert bytes(received) == payload
    assert window_bound["hit"], "receive window never became binding"
    assert conn.trains_sent > 0


def test_retransmit_of_partially_acked_train():
    """Drop a mid-train segment, deliver a cumulative ACK for the
    prefix, and check the retransmission covers exactly the hole."""
    sim, topo, cstack, sstack = make_net(n_paths=1)
    on_accept, received = bulk_receiver()
    sstack.listen(443, on_accept)
    p = topo.path(0)
    conn = cstack.connect(p.client_addr, Endpoint(p.server_addr, 443))
    sim.run(until=1.0)
    assert conn.state == "ESTABLISHED"

    # Drop one data segment out of the middle of the first big train.
    link = topo.path(0).c2s
    state = {"seen": 0}
    original_sink = link._sink

    def dropper(packet):
        seg = packet.payload
        if seg.payload:
            state["seen"] += 1
            if state["seen"] == 3:   # third data segment of the train
                state["dropped"] = (seg.seq, seg.seq + len(seg.payload))
                return               # swallowed
        original_sink(packet)

    link.connect(dropper)
    payload = b"\x5A" * (512 * 1024)
    bulk_sender(conn, payload)
    # Connection is already established, so kick the pump by hand.
    conn.on_send_space(conn)
    sim.run_until(lambda: len(received) >= len(payload), timeout=60.0)
    assert bytes(received) == payload
    assert "dropped" in state, "the dropper never saw a mid-train segment"
    assert conn.retransmissions >= 1
    # Let the final ACK land: the partially-acked train is fully
    # recovered and everything below snd_nxt is acknowledged again.
    sim.run(until=sim.now + 2.0)
    assert conn.snd_una == conn.snd_nxt


def test_train_counters_zero_without_bulk():
    """Pure handshake + tiny exchange: no coalescing opportunity, so
    single-segment sends must not book trains."""
    sim, topo, cstack, sstack = make_net(n_paths=1)
    on_accept, received = bulk_receiver()
    sstack.listen(443, on_accept)
    p = topo.path(0)
    conn = cstack.connect(p.client_addr, Endpoint(p.server_addr, 443))
    sim.run(until=1.0)
    conn.send(b"hi")
    sim.run(until=2.0)
    assert bytes(received) == b"hi"
    assert conn.trains_sent == 0
    assert conn.train_segments_sent == 0


def test_segment_train_perf_event_emitted():
    sim, topo, cstack, sstack = make_net(n_paths=1)
    events = []
    sim.bus.subscribe(events.append, categories=("perf",))
    on_accept, received = bulk_receiver()
    sstack.listen(443, on_accept)
    p = topo.path(0)
    conn = cstack.connect(p.client_addr, Endpoint(p.server_addr, 443))
    payload = b"\x3C" * (256 * 1024)
    bulk_sender(conn, payload)
    sim.run_until(lambda: len(received) >= len(payload), timeout=30.0)
    trains = [e for e in events if e.name == "segment_train"]
    assert trains, "bulk transfer emitted no segment_train events"
    assert sum(e.data["segments"] for e in trains) == \
        conn.train_segments_sent
    for event in trains:
        assert event.data["segments"] >= 2
        assert event.data["kind"] in ("data", "rexmit")
        assert event.data["conn"] == conn.conn_id
