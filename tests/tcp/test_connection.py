"""TCP connection behaviour over the simulated network."""

import pytest

from helpers import bulk_receiver, bulk_sender, make_net, tcp_pair

from repro.net.address import Endpoint
from repro.net.middlebox import RstInjector


def test_three_way_handshake():
    sim, topo, cstack, sstack = make_net(n_paths=1)
    conn, accepted = tcp_pair(sim, topo, cstack, sstack)
    established = []
    conn.on_established = lambda c: established.append(sim.now)
    sim.run(until=1.0)
    assert conn.state == "ESTABLISHED"
    assert accepted[0].state == "ESTABLISHED"
    # One RTT: 2 x 10 ms.
    assert established[0] == pytest.approx(0.02, abs=0.005)


def test_bidirectional_transfer():
    sim, topo, cstack, sstack = make_net(n_paths=1)
    server_rx = bytearray()
    client_rx = bytearray()

    def on_accept(server_conn):
        def on_data(c):
            server_rx.extend(c.recv())
            if len(server_rx) == 5000:
                c.send(b"pong" * 500)
        server_conn.on_data = on_data

    sstack.listen(443, on_accept)
    p = topo.path(0)
    conn = cstack.connect(p.client_addr, Endpoint(p.server_addr, 443))
    conn.on_established = lambda c: c.send(b"ping" + b"x" * 4996)
    conn.on_data = lambda c: client_rx.extend(c.recv())
    sim.run(until=5)
    assert len(server_rx) == 5000
    assert bytes(client_rx) == b"pong" * 500


@pytest.mark.parametrize("cc", ["cubic", "reno", "vegas"])
def test_bulk_transfer_integrity_and_goodput(cc):
    sim, topo, cstack, sstack = make_net(n_paths=1, families=[4])
    payload = bytes(range(256)) * (4 << 12)  # 4 MiB patterned
    on_accept, received = bulk_receiver()
    sstack.listen(443, on_accept)
    p = topo.path(0)
    conn = cstack.connect(p.client_addr, Endpoint(p.server_addr, 443),
                          cc=cc)
    bulk_sender(conn, payload)
    sim.run(until=60)
    assert bytes(received) == payload
    # 4 MiB over a 25 Mbps link should take < 3 s at decent utilisation.
    info = conn.tcp_info()
    assert info["bytes_acked"] == len(payload)


def test_transfer_survives_random_loss():
    sim, topo, cstack, sstack = make_net(n_paths=1, families=[4])
    topo.path(0).c2s.loss_rate = 0.02
    topo.path(0).s2c.loss_rate = 0.02
    payload = bytes(range(256)) * 2048  # 512 KiB
    on_accept, received = bulk_receiver()
    sstack.listen(443, on_accept)
    p = topo.path(0)
    conn = cstack.connect(p.client_addr, Endpoint(p.server_addr, 443))
    bulk_sender(conn, payload)
    sim.run(until=120)
    assert bytes(received) == payload
    assert conn.retransmissions > 0


def test_graceful_close_fin_handshake():
    sim, topo, cstack, sstack = make_net(n_paths=1)
    closed = []

    def on_accept(server_conn):
        server_conn.on_data = lambda c: c.recv()
        server_conn.on_close = lambda c: (closed.append("server"),
                                          c.close())

    sstack.listen(443, on_accept)
    p = topo.path(0)
    conn = cstack.connect(p.client_addr, Endpoint(p.server_addr, 443))

    def on_established(c):
        c.send(b"bye")
        c.close()

    conn.on_established = on_established
    sim.run(until=10)
    assert "server" in closed
    assert conn.state == "CLOSED"


def test_rst_on_connect_to_closed_port():
    sim, topo, cstack, sstack = make_net(n_paths=1)
    reset = []
    p = topo.path(0)
    conn = cstack.connect(p.client_addr, Endpoint(p.server_addr, 9999))
    conn.on_reset = lambda c: reset.append(sim.now)
    sim.run(until=2)
    assert reset and conn.state == "CLOSED"


def test_spurious_rst_mid_transfer():
    sim, topo, cstack, sstack = make_net(n_paths=1)
    injector = RstInjector()
    topo.path(0).s2c.add_middlebox(injector)
    on_accept, received = bulk_receiver()
    sstack.listen(443, on_accept)
    p = topo.path(0)
    conn = cstack.connect(p.client_addr, Endpoint(p.server_addr, 443))
    reset = []
    conn.on_reset = lambda c: reset.append(sim.now)
    bulk_sender(conn, b"z" * (1 << 20))
    injector.schedule_rst(sim, 0.2)
    sim.run(until=5)
    assert reset and reset[0] == pytest.approx(0.21, abs=0.05)


def test_user_timeout_fires_on_silence():
    sim, topo, cstack, sstack = make_net(n_paths=1)
    on_accept, _ = bulk_receiver()
    sstack.listen(443, on_accept)
    p = topo.path(0)
    conn = cstack.connect(p.client_addr, Endpoint(p.server_addr, 443))
    fired = []
    bulk_sender(conn, b"x" * (2 << 20))  # keeps data in flight
    conn.set_user_timeout(0.25)
    conn.on_user_timeout = lambda c: fired.append(sim.now)
    topo.path(0).blackhole(sim, start=0.5)
    sim.run(until=5)
    assert fired
    assert 0.7 <= fired[0] <= 1.1  # ~250 ms after the last segment


def test_user_timeout_idle_connection_does_not_fire():
    """RFC 5482 covers in-flight data: a quiescent connection with the
    timeout armed must stay up."""
    sim, topo, cstack, sstack = make_net(n_paths=1)
    on_accept, _ = bulk_receiver()
    sstack.listen(443, on_accept)
    p = topo.path(0)
    conn = cstack.connect(p.client_addr, Endpoint(p.server_addr, 443))
    fired = []

    def on_established(c):
        c.set_user_timeout(0.25)
        c.send(b"x" * 5000)  # fully delivered, then silence

    conn.on_established = on_established
    conn.on_user_timeout = lambda c: fired.append(sim.now)
    sim.run(until=5)
    assert not fired


def test_user_timeout_quiet_when_traffic_flows():
    sim, topo, cstack, sstack = make_net(n_paths=1)
    on_accept, received = bulk_receiver()
    sstack.listen(443, on_accept)
    p = topo.path(0)
    conn = cstack.connect(p.client_addr, Endpoint(p.server_addr, 443))
    fired = []
    progress = bulk_sender(conn, b"y" * (2 << 20))
    conn.on_user_timeout = lambda c: fired.append(sim.now)
    conn.set_user_timeout(0.25)
    sim.run(until=10)
    assert not fired
    assert progress["sent"] == 2 << 20


def test_zero_window_then_reopen():
    sim, topo, cstack, sstack = make_net(n_paths=1)
    holder = []

    def on_accept(server_conn):
        holder.append(server_conn)  # do NOT read: window closes

    sstack.listen(443, on_accept)
    p = topo.path(0)
    conn = cstack.connect(p.client_addr, Endpoint(p.server_addr, 443))
    payload = b"w" * (3 << 20)  # 3 MiB > 1 MiB receive buffer
    bulk_sender(conn, payload)
    drained = bytearray()

    def drain():
        if holder:
            drained.extend(holder[0].recv())
        if len(drained) < len(payload):
            sim.schedule(0.05, drain)

    sim.at(3.0, drain)  # receiver finally starts reading
    sim.run(until=60)
    assert bytes(drained) == payload


def test_tcp_info_fields():
    sim, topo, cstack, sstack = make_net(n_paths=1)
    on_accept, _ = bulk_receiver()
    sstack.listen(443, on_accept)
    p = topo.path(0)
    conn = cstack.connect(p.client_addr, Endpoint(p.server_addr, 443))
    bulk_sender(conn, b"i" * 100000)
    sim.run(until=5)
    info = conn.tcp_info()
    assert info["state"] == "ESTABLISHED"
    assert info["srtt"] == pytest.approx(0.02, abs=0.02)
    assert info["bytes_acked"] == 100000
    assert info["cwnd_bytes"] > 0
    assert info["ca_name"] == "cubic"


def test_tfo_second_connection_carries_data_on_syn():
    sim, topo, cstack, sstack = make_net(n_paths=1)
    cstack.tfo_enabled = True
    sstack.tfo_enabled = True
    got = []

    def on_accept(server_conn):
        server_conn.on_data = lambda c: got.append((sim.now, c.recv()))

    sstack.listen(443, on_accept)
    p = topo.path(0)
    # First connection: requests a cookie.
    conn1 = cstack.connect(p.client_addr, Endpoint(p.server_addr, 443))
    conn1.on_established = lambda c: c.close()
    sim.run(until=2)
    assert cstack.tfo_cookie_for(p.server_addr) != b""
    # Second connection: data rides the SYN and arrives in half an RTT.
    start = sim.now
    cstack.connect(p.client_addr, Endpoint(p.server_addr, 443),
                   tfo_data=b"GET /tfo")
    sim.run(until=start + 1)
    times = [t for t, d in got if d == b"GET /tfo"]
    assert times and times[0] - start == pytest.approx(0.01, abs=0.005)
