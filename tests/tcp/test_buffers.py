"""Send/receive buffers, including out-of-order reassembly properties."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tcp.buffers import ReceiveBuffer, SendBuffer


class TestSendBuffer:
    def test_write_and_peek(self):
        buf = SendBuffer(base_seq=100)
        assert buf.write(b"hello world") == 11
        assert buf.peek(100, 5) == b"hello"
        assert buf.peek(106, 5) == b"world"

    def test_capacity_limits_writes(self):
        buf = SendBuffer(base_seq=0, capacity=10)
        assert buf.write(b"x" * 8) == 8
        assert buf.write(b"y" * 8) == 2
        assert buf.free_space() == 0

    def test_ack_frees_space(self):
        buf = SendBuffer(base_seq=0, capacity=10)
        buf.write(b"0123456789")
        assert buf.ack_to(4) == 4
        assert buf.base_seq == 4
        assert buf.peek(4, 3) == b"456"
        assert buf.free_space() == 4

    def test_ack_below_base_is_noop(self):
        buf = SendBuffer(base_seq=50)
        buf.write(b"abc")
        assert buf.ack_to(40) == 0

    def test_peek_below_base_rejected(self):
        buf = SendBuffer(base_seq=10)
        buf.write(b"abc")
        buf.ack_to(11)
        try:
            buf.peek(10, 1)
        except ValueError:
            return
        raise AssertionError("expected ValueError")


class TestReceiveBuffer:
    def test_in_order_delivery(self):
        buf = ReceiveBuffer(rcv_nxt=0)
        assert buf.offer(0, b"abc") == 3
        assert buf.read() == b"abc"
        assert buf.rcv_nxt == 3

    def test_out_of_order_held_until_gap_fills(self):
        buf = ReceiveBuffer(rcv_nxt=0)
        assert buf.offer(3, b"def") == 0
        assert buf.readable_bytes() == 0
        assert buf.has_gap()
        assert buf.offer(0, b"abc") == 6
        assert buf.read() == b"abcdef"
        assert not buf.has_gap()

    def test_duplicate_and_overlap_trimmed(self):
        buf = ReceiveBuffer(rcv_nxt=0)
        buf.offer(0, b"abcd")
        assert buf.offer(0, b"abcd") == 0     # pure duplicate
        assert buf.offer(2, b"cdEF") == 2     # overlap trimmed
        assert buf.read() == b"abcdEF"

    def test_window_shrinks_with_unread_data(self):
        buf = ReceiveBuffer(rcv_nxt=0, capacity=100)
        buf.offer(0, b"x" * 60)
        assert buf.window() == 40
        buf.read()
        assert buf.window() == 100

    def test_ooo_data_counts_against_window(self):
        buf = ReceiveBuffer(rcv_nxt=0, capacity=100)
        buf.offer(50, b"y" * 30)
        assert buf.window() == 70

    def test_partial_read(self):
        buf = ReceiveBuffer(rcv_nxt=0)
        buf.offer(0, b"abcdef")
        assert buf.read(2) == b"ab"
        assert buf.read(100) == b"cdef"

    def test_sack_blocks_merged_and_highest_first(self):
        buf = ReceiveBuffer(rcv_nxt=0)
        buf.offer(10, b"aa")
        buf.offer(12, b"bb")     # merges with previous
        buf.offer(30, b"cc")
        blocks = buf.sack_blocks()
        assert blocks[0] == (30, 32)
        assert blocks[1] == (10, 14)


segments = st.lists(
    st.tuples(st.integers(0, 40), st.integers(1, 20)),
    min_size=1, max_size=40,
)


@settings(max_examples=200)
@given(segments)
def test_property_any_arrival_order_reassembles(spans):
    """Whatever overlapping/duplicated segments arrive, the delivered
    bytestream is exactly the in-order prefix of the original data."""
    original = bytes(range(256)) * 1
    data = (original * 2)[:80]
    buf = ReceiveBuffer(rcv_nxt=0)
    delivered = bytearray()
    covered = set()
    for offset, length in spans:
        piece = data[offset:offset + length]
        if not piece:
            continue
        buf.offer(offset, piece)
        covered.update(range(offset, offset + len(piece)))
        delivered += buf.read()
    # The readable prefix must be the longest contiguous run from 0.
    expected_len = 0
    while expected_len in covered:
        expected_len += 1
    assert len(delivered) == expected_len
    assert bytes(delivered) == data[:expected_len]


class TestSendBufferZeroCopy:
    def test_peek_within_one_chunk_is_a_view(self):
        buf = SendBuffer(base_seq=0)
        payload = b"a" * 64
        buf.write(payload)
        view = buf.peek(10, 20)
        assert isinstance(view, memoryview)
        assert view == payload[10:30]
        assert view.obj is payload  # zero-copy: same object

    def test_peek_spanning_chunks_gathers(self):
        buf = SendBuffer(base_seq=0)
        buf.write(b"abc")
        buf.write(b"defg")
        buf.write(b"hij")
        assert bytes(buf.peek(1, 7)) == b"bcdefgh"
        assert bytes(buf.peek(0, 100)) == b"abcdefghij"

    def test_peek_clamps_to_end(self):
        buf = SendBuffer(base_seq=5)
        buf.write(b"xyz")
        assert bytes(buf.peek(7, 10)) == b"z"
        assert bytes(buf.peek(8, 10)) == b""

    def test_partial_ack_inside_chunk(self):
        buf = SendBuffer(base_seq=0)
        buf.write(b"0123456789")
        assert buf.ack_to(4) == 4
        assert bytes(buf.peek(4, 6)) == b"456789"
        assert len(buf) == 6
        assert buf.ack_to(10) == 6
        assert len(buf) == 0

    def test_views_stay_valid_after_ack(self):
        buf = SendBuffer(base_seq=0)
        buf.write(b"first-chunk!")
        buf.write(b"second")
        view = buf.peek(0, 12)
        buf.ack_to(12)  # frees the chunk the view points into
        assert bytes(view) == b"first-chunk!"  # immutable: still valid

    def test_ack_churn_compacts_chunk_list(self):
        buf = SendBuffer(base_seq=0)
        for i in range(200):
            buf.write(bytes([i % 256]) * 4)
        for seq in range(4, 680, 4):
            buf.ack_to(seq)
        assert bytes(buf.peek(680, 8)) == bytes([170]) * 4 + bytes([171]) * 4
        assert buf._head <= 32 or buf._head * 2 <= len(buf._chunks)

    def test_bytearray_write_is_copied(self):
        buf = SendBuffer(base_seq=0)
        source = bytearray(b"mutable")
        buf.write(source)
        source[0] = ord("X")
        assert bytes(buf.peek(0, 7)) == b"mutable"


class TestReceiveBufferWindowCache:
    def test_window_tracks_ooo_replacement(self):
        buf = ReceiveBuffer(rcv_nxt=0, capacity=100)
        buf.offer(10, b"a" * 5)
        assert buf.window() == 95
        buf.offer(10, b"b" * 9)   # longer replacement at same seq
        assert buf.window() == 91
        buf.offer(10, b"c" * 3)   # shorter: ignored
        assert buf.window() == 91

    def test_window_restored_after_gap_fills(self):
        buf = ReceiveBuffer(rcv_nxt=0, capacity=100)
        buf.offer(5, b"y" * 10)
        buf.offer(20, b"z" * 7)
        assert buf.window() == 100 - 17
        buf.offer(0, b"x" * 5)    # fills the first gap
        assert buf.window() == 100 - 22   # 15 readable + 7 still ooo
        buf.read()
        assert buf.window() == 93

    def test_window_matches_recount(self):
        buf = ReceiveBuffer(rcv_nxt=0, capacity=1000)
        for seq, data in [(0, b"a" * 10), (30, b"b" * 10), (5, b"c" * 30),
                          (100, b"d" * 5), (35, b"e" * 70)]:
            buf.offer(seq, data)
            used = len(buf._readable) + sum(len(d) for d in buf._ooo.values())
            assert buf.window() == max(buf.capacity - used, 0)
