"""TCP option wire codecs."""

import pytest

from repro.tcp.options import (
    ExperimentalOption,
    FastOpenOption,
    MAX_OPTIONS_BYTES,
    MssOption,
    SackOption,
    SackPermittedOption,
    TimestampOption,
    UnknownOption,
    UserTimeoutOption,
    WindowScaleOption,
    decode_options,
    encode_options,
)


def roundtrip(options):
    return decode_options(encode_options(options))


def test_mss_roundtrip():
    (out,) = roundtrip([MssOption(1460)])
    assert isinstance(out, MssOption) and out.mss == 1460


def test_window_scale_roundtrip():
    (out,) = roundtrip([WindowScaleOption(7)])
    assert out.shift == 7


def test_sack_permitted_roundtrip():
    (out,) = roundtrip([SackPermittedOption()])
    assert isinstance(out, SackPermittedOption)


def test_sack_blocks_roundtrip():
    (out,) = roundtrip([SackOption([(1000, 2000), (5000, 6460)])])
    assert out.blocks == ((1000, 2000), (5000, 6460))


def test_timestamp_roundtrip():
    (out,) = roundtrip([TimestampOption(123456, 654321)])
    assert (out.ts_val, out.ts_ecr) == (123456, 654321)


def test_user_timeout_seconds_and_minutes():
    (out,) = roundtrip([UserTimeoutOption(30)])
    assert out.timeout_seconds == 30 and not out.granularity_minutes
    (out,) = roundtrip([UserTimeoutOption(600, granularity_minutes=True)])
    assert out.timeout_seconds == 600 and out.granularity_minutes


def test_fast_open_roundtrip():
    (out,) = roundtrip([FastOpenOption(b"\x01" * 8)])
    assert out.cookie == b"\x01" * 8
    (out,) = roundtrip([FastOpenOption()])
    assert out.cookie == b""


def test_experimental_roundtrip():
    (out,) = roundtrip([ExperimentalOption(0xABCD, b"hi")])
    assert (out.exid, out.data) == (0xABCD, b"hi")


def test_unknown_option_preserved():
    (out,) = roundtrip([UnknownOption(99, b"zz")])
    assert isinstance(out, UnknownOption)
    assert (out.kind, out.data) == (99, b"zz")


def test_multiple_options_order_preserved():
    options = [MssOption(1400), WindowScaleOption(3), SackPermittedOption()]
    assert [o.kind for o in roundtrip(options)] == [2, 3, 4]


def test_nop_padding_to_word_boundary():
    raw = encode_options([WindowScaleOption(2)])  # 3 bytes -> pad to 4
    assert len(raw) % 4 == 0


def test_forty_byte_limit_enforced():
    too_many = [TimestampOption(1, 2)] * 5  # 5 * 10 = 50 bytes
    with pytest.raises(ValueError):
        encode_options(too_many)
    # This is exactly the constraint TCPLS escapes (paper Sec. 3):
    # the same options inside a TLS record have no such limit.


def test_decode_rejects_truncation():
    raw = encode_options([MssOption(1460)])
    with pytest.raises(ValueError):
        decode_options(raw[:-3] + b"\x02\x09")  # bad length
