"""TcpStack: listeners, demux, ports, MSS derivation."""

import pytest

from helpers import bulk_receiver, make_net

from repro.net.address import Endpoint


def test_double_listen_rejected():
    sim, topo, cstack, sstack = make_net(n_paths=1)
    sstack.listen(443, lambda c: None)
    with pytest.raises(ValueError):
        sstack.listen(443, lambda c: None)


def test_ephemeral_ports_unique():
    sim, topo, cstack, sstack = make_net(n_paths=1)
    sstack.listen(443, lambda c: None)
    p = topo.path(0)
    conns = [cstack.connect(p.client_addr, Endpoint(p.server_addr, 443))
             for _ in range(5)]
    ports = {c.local.port for c in conns}
    assert len(ports) == 5
    assert all(port >= 49152 for port in ports)


def test_mss_derived_from_link_mtu():
    sim, topo, cstack, sstack = make_net(n_paths=2, mtu=9000)
    p = topo.path(0)
    mss = cstack.mss_for(Endpoint(p.client_addr, 1), Endpoint(p.server_addr,
                                                              2))
    assert mss == 9000 - 20 - 20  # v4
    p6 = topo.path(1)
    mss6 = cstack.mss_for(Endpoint(p6.client_addr, 1),
                          Endpoint(p6.server_addr, 2))
    assert mss6 == 9000 - 40 - 20  # v6 header is larger


def test_concurrent_connections_demuxed_independently():
    sim, topo, cstack, sstack = make_net(n_paths=1)
    buffers = {}

    def on_accept(conn):
        key = conn.remote.port
        buffers[key] = bytearray()
        conn.on_data = lambda c, k=key: buffers[k].extend(c.recv())

    sstack.listen(443, on_accept)
    p = topo.path(0)
    conns = []
    for index in range(3):
        conn = cstack.connect(p.client_addr, Endpoint(p.server_addr, 443))
        conn.on_established = (
            lambda c, i=index: c.send(bytes([i]) * (1000 + i)))
        conns.append(conn)
    sim.run(until=5)
    values = sorted(bytes(b) for b in buffers.values())
    assert values == sorted(bytes([i]) * (1000 + i) for i in range(3))


def test_syn_to_closed_port_gets_rst():
    sim, topo, cstack, sstack = make_net(n_paths=1)
    p = topo.path(0)
    conn = cstack.connect(p.client_addr, Endpoint(p.server_addr, 81))
    outcome = []
    conn.on_reset = lambda c: outcome.append("rst")
    sim.run(until=2)
    assert outcome == ["rst"]


def test_stack_forgets_closed_connections():
    sim, topo, cstack, sstack = make_net(n_paths=1)
    on_accept, _ = bulk_receiver()

    def accept_and_close(conn):
        on_accept(conn)
        conn.on_close = lambda c: c.close()

    sstack.listen(443, accept_and_close)
    p = topo.path(0)
    conn = cstack.connect(p.client_addr, Endpoint(p.server_addr, 443))
    conn.on_established = lambda c: c.close()
    sim.run(until=10)
    assert cstack.connections() == []
    assert sstack.connections() == []


# ---------------------------------------------------------------------------
# Ephemeral port allocation and forget()
# ---------------------------------------------------------------------------


def test_ephemeral_port_wraps_at_range_end():
    from repro.tcp.stack import EPHEMERAL_PORT_BASE

    sim, topo, cstack, _ = make_net(n_paths=1)
    cstack._next_port = 65535
    assert cstack._allocate_port() == 65535
    assert cstack._allocate_port() == EPHEMERAL_PORT_BASE


def test_ephemeral_port_skips_ports_in_use():
    from repro.tcp.stack import EPHEMERAL_PORT_BASE

    sim, topo, cstack, _ = make_net(n_paths=1)
    base = EPHEMERAL_PORT_BASE
    # Occupy the next two ports with (fake) live connections and a
    # listener on the third; allocation must skip all of them.
    cstack._connections[("10.0.0.1", base, "10.0.0.2", 443)] = object()
    cstack._connections[("10.0.0.1", base + 1, "10.0.0.2", 443)] = object()
    cstack.listen(base + 2, lambda c: None)
    assert cstack._allocate_port() == base + 3


def test_ephemeral_port_collision_after_wrap():
    from repro.tcp.stack import EPHEMERAL_PORT_BASE

    sim, topo, cstack, _ = make_net(n_paths=1)
    base = EPHEMERAL_PORT_BASE
    cstack._connections[("10.0.0.1", base, "10.0.0.2", 443)] = object()
    cstack._next_port = 65535
    assert cstack._allocate_port() == 65535
    # Wrapped to base, which is in use -> base + 1.
    assert cstack._allocate_port() == base + 1


def test_ephemeral_port_exhaustion_raises():
    sim, topo, cstack, _ = make_net(n_paths=1)
    for port in range(49152, 65536):
        cstack._connections[("10.0.0.1", port, "10.0.0.2", 443)] = object()
    with pytest.raises(OSError):
        cstack._allocate_port()


def test_forget_unknown_connection_is_noop():
    sim, topo, cstack, sstack = make_net(n_paths=1)
    sstack.listen(443, lambda c: None)
    p = topo.path(0)
    conn = cstack.connect(p.client_addr, Endpoint(p.server_addr, 443))
    cstack.forget(conn)
    assert cstack.connections() == []
    # Forgetting a connection whose key is already gone must not raise.
    cstack.forget(conn)
    assert cstack.connections() == []
