"""MPTCP baseline: subflows, DSS reassembly, reinjection, path managers."""

import pytest

from helpers import make_net

from repro.baselines.mptcp import MptcpClient, MptcpServer


def mptcp_pair(sim, topo, cstack, sstack, **client_kwargs):
    server = MptcpServer(sim, sstack, 443)
    connections = []
    server.on_connection = connections.append
    client = MptcpClient(sim, cstack, **client_kwargs)
    return client, server, connections


def pairs_for(topo, n=None):
    paths = topo.paths if n is None else topo.paths[:n]
    return [(p.client_addr, p.server_addr) for p in paths]


def collect(connections, received, done, sim):
    def hook(conn):
        def on_data(c):
            received.extend(c.recv())
            if c.complete and not done:
                done.append(sim.now)
        conn.on_data = on_data
    return hook


def test_single_subflow_transfer():
    sim, topo, cstack, sstack = make_net()
    client, server, conns = mptcp_pair(sim, topo, cstack, sstack)
    received, done = bytearray(), []
    server.on_connection = collect(conns, received, done, sim)
    client.connect(pairs_for(topo, 1), 443)
    payload = bytes(range(256)) * 4096
    client.on_established = lambda c: (c.send(payload), c.close())
    sim.run(until=20)
    assert done and bytes(received) == payload


def test_fullmesh_aggregates_two_paths():
    sim, topo, cstack, sstack = make_net()
    client, server, conns = mptcp_pair(sim, topo, cstack, sstack)
    received, done = bytearray(), []
    server.on_connection = collect(conns, received, done, sim)
    client.connect(pairs_for(topo), 443)
    size = 4 << 20
    client.on_established = lambda c: (c.send(b"m" * size), c.close())
    sim.run(until=30)
    assert done
    goodput = size * 8 / done[0] / 1e6
    assert goodput > 35  # clearly better than one 25 Mbps path
    assert topo.path(0).c2s.stats.tx_bytes > size // 4
    assert topo.path(1).c2s.stats.tx_bytes > size // 4


def test_backup_path_unused_until_failure():
    sim, topo, cstack, sstack = make_net()
    client, server, conns = mptcp_pair(sim, topo, cstack, sstack,
                                       path_manager="backup")
    received, done = bytearray(), []
    server.on_connection = collect(conns, received, done, sim)
    client.connect(pairs_for(topo), 443)
    size = 2 << 20
    client.on_established = lambda c: (c.send(b"b" * size), c.close())
    sim.run(until=1.0)
    # Path 1 carries only its handshake + token, no bulk data.
    assert topo.path(1).c2s.stats.tx_bytes < 2000
    sim.run(until=30)
    assert done and bytes(received) == b"b" * size


def test_backup_failover_on_blackhole():
    sim, topo, cstack, sstack = make_net()
    client, server, conns = mptcp_pair(sim, topo, cstack, sstack,
                                       path_manager="backup")
    received, done = bytearray(), []
    server.on_connection = collect(conns, received, done, sim)
    failures = []
    client.on_subflow_failed = lambda sf, r: failures.append((sim.now, r))
    client.connect(pairs_for(topo), 443)
    size = 8 << 20
    client.on_established = lambda c: (c.send(b"f" * size), c.close())
    topo.path(0).blackhole(sim, 1.0)
    sim.run(until=60)
    assert done, "transfer stalled after blackhole"
    assert bytes(received) == b"f" * size
    assert failures and failures[0][1] == "stall"
    # Blackhole detection needs RTO backoff: slower than TCPLS's UTO.
    assert failures[0][0] - 1.0 > 0.5


def test_rst_kills_subflow_immediately():
    sim, topo, cstack, sstack = make_net()
    from repro.net.middlebox import RstInjector

    injector = RstInjector()
    topo.path(0).s2c.add_middlebox(injector)
    client, server, conns = mptcp_pair(sim, topo, cstack, sstack)
    received, done = bytearray(), []
    server.on_connection = collect(conns, received, done, sim)
    failures = []
    client.on_subflow_failed = lambda sf, r: failures.append((sim.now, r))
    client.connect(pairs_for(topo), 443)
    size = 4 << 20
    client.on_established = lambda c: (c.send(b"r" * size), c.close())
    injector.schedule_rst(sim, 0.5)
    sim.run(until=60)
    assert done and bytes(received) == b"r" * size
    assert failures and failures[0][1] == "rst"
    assert failures[0][0] == pytest.approx(0.5, abs=0.1)


def test_repeated_rst_blacklists_address_pair():
    """The paper observed MPTCP stalling after repeated RSTs: the model
    gives up re-creating subflows to a twice-reset pair."""
    sim, topo, cstack, sstack = make_net()
    client, server, conns = mptcp_pair(sim, topo, cstack, sstack)
    client.connect(pairs_for(topo, 1), 443)
    sim.run(until=1)
    subflow = client.subflows[0]
    client._on_subflow_failed(subflow, "rst")
    again = client.open_subflow(subflow.pair[0],
                                __import__("repro.net.address",
                                           fromlist=["Endpoint"]).Endpoint(
                                    subflow.pair[1], 443))
    assert again is not None
    client._on_subflow_failed(again, "rst")
    third = client.open_subflow(subflow.pair[0],
                                __import__("repro.net.address",
                                           fromlist=["Endpoint"]).Endpoint(
                                    subflow.pair[1], 443))
    assert third is None  # blacklisted


def test_add_local_address_after_config_delay():
    """Fig. 11: the second interface appears mid-transfer and becomes a
    subflow only after the kernel's configuration delay."""
    sim, topo, cstack, sstack = make_net()
    client, server, conns = mptcp_pair(sim, topo, cstack, sstack,
                                       config_delay=1.0)
    received, done = bytearray(), []
    server.on_connection = collect(conns, received, done, sim)
    client.connect(pairs_for(topo, 1), 443)
    size = 12 << 20
    client.on_established = lambda c: (c.send(b"h" * size), c.close())
    sim.at(2.0, client.add_local_address, topo.path(1).client_addr)
    sim.run(until=60)
    assert done and bytes(received) == b"h" * size
    assert len(client.subflows) == 2
    # The second path saw no data before ~3 s (2 s event + 1 s delay).
    assert topo.path(1).c2s.stats.tx_bytes > size // 8


def test_data_acks_prune_sender_state():
    sim, topo, cstack, sstack = make_net()
    client, server, conns = mptcp_pair(sim, topo, cstack, sstack)
    server.on_connection = lambda conn: setattr(
        conn, "on_data", lambda c: c.recv())
    client.connect(pairs_for(topo, 1), 443)
    client.on_established = lambda c: c.send(b"a" * (1 << 20))
    sim.run(until=20)
    assert len(client.unacked) < 200
