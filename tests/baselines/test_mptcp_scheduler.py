"""MPTCP scheduler and data-plane details."""

from helpers import make_net

from repro.baselines.mptcp import (
    CHUNK_SIZE,
    MptcpClient,
    MptcpServer,
)


def run_transfer(sim, topo, cstack, sstack, size, **client_kwargs):
    server = MptcpServer(sim, sstack, 443)
    received, done = bytearray(), []

    def on_connection(conn):
        def on_data(c):
            received.extend(c.recv())
            if c.complete and not done:
                done.append(sim.now)
        conn.on_data = on_data

    server.on_connection = on_connection
    client = MptcpClient(sim, cstack, **client_kwargs)
    pairs = [(p.client_addr, p.server_addr) for p in topo.paths]
    client.connect(pairs, 443)
    payload = bytes(range(256)) * (size // 256)
    client.on_established = lambda c: (c.send(payload), c.close())
    return client, received, done, payload


def test_lowest_rtt_prefers_fast_path():
    sim, topo, cstack, sstack = make_net(
        n_paths=2, rates=[25_000_000, 25_000_000], delays=[0.005, 0.050])
    client, received, done, payload = run_transfer(
        sim, topo, cstack, sstack, 2 << 20)
    sim.run(until=30)
    assert done and bytes(received) == payload
    fast_bytes = topo.path(0).c2s.stats.tx_bytes
    slow_bytes = topo.path(1).c2s.stats.tx_bytes
    # Lowest-RTT default: the 10 ms path carries clearly more.
    assert fast_bytes > slow_bytes


def test_dss_chunks_are_segment_sized():
    """Fig. 11's smoothness argument rests on MPTCP reordering at
    ~1460-byte granularity; the model must match."""
    assert 1400 <= CHUNK_SIZE <= 1460


def test_reordering_across_paths_is_repaired():
    sim, topo, cstack, sstack = make_net(
        n_paths=2, rates=[25_000_000, 25_000_000], delays=[0.005, 0.040])
    client, received, done, payload = run_transfer(
        sim, topo, cstack, sstack, 2 << 20)
    sim.run(until=30)
    assert done
    assert bytes(received) == payload          # byte-exact despite skew
    assert client.reorder is not client         # smoke: sender side
    # Receiver-side reordering really happened (asymmetric delays).
    server_conn_done = done[0]
    assert server_conn_done > 0


def test_backup_subflow_promoted_only_after_failure():
    sim, topo, cstack, sstack = make_net()
    client, received, done, payload = run_transfer(
        sim, topo, cstack, sstack, 4 << 20, path_manager="backup")
    sim.run(until=1.0)
    backup = client.subflows[1]
    assert backup.backup
    topo.path(0).blackhole(sim, 1.0)
    sim.run(until=30)
    assert done and bytes(received) == payload
    assert not client.subflows[1].backup  # promoted


def test_token_association_rejects_unknown():
    sim, topo, cstack, sstack = make_net(n_paths=1)
    server = MptcpServer(sim, sstack, 443)
    server.on_connection = lambda conn: None
    # A bare TCP connection sending a JOIN for a token that was never
    # announced gets reset.
    from repro.net.address import Endpoint
    from repro.baselines.mptcp import TOKEN_HEADER, CHUNK_JOIN

    p = topo.path(0)
    tcp = cstack.connect(p.client_addr, Endpoint(p.server_addr, 443))
    reset = []
    tcp.on_reset = lambda c: reset.append(1)
    tcp.on_established = lambda c: c.send(
        TOKEN_HEADER.pack(CHUNK_JOIN, 999999))
    sim.run(until=2)
    assert reset
