"""QUIC baseline: UDP, packets/frames, connection behaviour."""

import pytest

from helpers import make_net

from repro.baselines.quic import (
    Datagram,
    QuicClient,
    QuicServer,
    UdpStack,
)
from repro.baselines.quic import packet as qp
from repro.net.address import Endpoint


def quic_net(**net_kwargs):
    sim, topo, _c, _s = make_net(families=[4], n_paths=1, **net_kwargs)
    c_udp = UdpStack(sim, topo.client)
    s_udp = UdpStack(sim, topo.server)
    return sim, topo, c_udp, s_udp


class TestUdp:
    def test_datagram_roundtrip(self):
        sim, topo, c_udp, s_udp = quic_net()
        p = topo.path(0)
        got = []
        server_socket = s_udp.bind(p.server_addr, 4000)
        server_socket.on_datagram = lambda d, src: got.append((d, src))
        client_socket = c_udp.bind(p.client_addr)
        client_socket.sendto(b"ping", Endpoint(p.server_addr, 4000))
        sim.run(until=1)
        assert got and got[0][0] == b"ping"
        assert got[0][1].addr == p.client_addr

    def test_double_bind_rejected(self):
        sim, topo, c_udp, _ = quic_net()
        c_udp.bind(topo.path(0).client_addr, 5000)
        with pytest.raises(ValueError):
            c_udp.bind(topo.path(0).client_addr, 5000)

    def test_wire_size(self):
        assert Datagram(1, 2, b"12345").wire_size() == 8 + 5


class TestFrames:
    def test_stream_frame_roundtrip(self):
        frame = qp.StreamFrame(4, 1000, b"data", fin=True)
        (out,) = qp.decode_frames(frame.encode())
        assert (out.stream_id, out.offset, out.data, out.fin) == (
            4, 1000, b"data", True)

    def test_ack_frame_ranges_roundtrip(self):
        received = {10, 9, 8, 5, 4, 1}
        ack = qp.AckFrame.from_received(received)
        (decoded,) = qp.decode_frames(ack.encode())
        assert decoded.acked_packet_numbers() == received

    def test_ack_contiguous(self):
        ack = qp.AckFrame.from_received(set(range(100)))
        assert ack.acked_packet_numbers() == set(range(100))

    def test_mixed_frames_in_one_packet(self):
        payload = (qp.PingFrame().encode()
                   + qp.StreamFrame(0, 0, b"x").encode()
                   + qp.HandshakeDoneFrame().encode())
        frames = qp.decode_frames(payload)
        assert [type(f).__name__ for f in frames] == [
            "PingFrame", "StreamFrame", "HandshakeDoneFrame"]

    def test_unknown_frame_rejected(self):
        with pytest.raises(ValueError):
            qp.decode_frames(b"\x7f")


class TestConnection:
    def establish(self, sim, topo, c_udp, s_udp, **kwargs):
        p = topo.path(0)
        server = QuicServer(sim, s_udp, p.server_addr, 4433, psk=b"q")
        accepted = []
        server.on_connection = accepted.append
        client = QuicClient(sim, c_udp, p.client_addr,
                            Endpoint(p.server_addr, 4433), psk=b"q",
                            **kwargs)
        client.start()
        sim.run(until=1)
        assert client.established
        return client, server, accepted

    def test_handshake_one_rtt(self):
        sim, topo, c_udp, s_udp = quic_net()
        established = []
        p = topo.path(0)
        QuicServer(sim, s_udp, p.server_addr, 4433, psk=b"q")
        client = QuicClient(sim, c_udp, p.client_addr,
                            Endpoint(p.server_addr, 4433), psk=b"q")
        client.on_established = lambda c: established.append(sim.now)
        client.start()
        sim.run(until=1)
        assert established[0] == pytest.approx(0.02, abs=0.01)

    def test_bulk_stream_transfer(self):
        sim, topo, c_udp, s_udp = quic_net()
        client, server, accepted = self.establish(sim, topo, c_udp, s_udp)
        received, fin = bytearray(), []

        def on_sd(conn, sid, stream):
            received.extend(stream.buffer)
            stream.buffer.clear()
            if stream.finished:
                fin.append(sim.now)

        accepted[0].on_stream_data = on_sd
        size = 2 << 20
        sid = client.open_stream()
        client.stream_send(sid, b"q" * size, fin=True)
        sim.run(until=30)
        assert fin and len(received) == size

    def test_loss_recovery(self):
        sim, topo, c_udp, s_udp = quic_net()
        topo.path(0).c2s.loss_rate = 0.02
        client, server, accepted = self.establish(sim, topo, c_udp, s_udp)
        received, fin = bytearray(), []

        def on_sd(conn, sid, stream):
            received.extend(stream.buffer)
            stream.buffer.clear()
            if stream.finished:
                fin.append(sim.now)

        accepted[0].on_stream_data = on_sd
        size = 512 << 10
        sid = client.open_stream()
        client.stream_send(sid, bytes(range(256)) * (size // 256), fin=True)
        sim.run(until=60)
        assert fin
        assert bytes(received) == bytes(range(256)) * (size // 256)

    def test_acks_are_userspace_packets(self):
        """The architectural difference Fig. 7 charges QUIC for: ACKs
        are packets generated by the peer's user space."""
        sim, topo, c_udp, s_udp = quic_net()
        client, server, accepted = self.establish(sim, topo, c_udp, s_udp)
        accepted[0].on_stream_data = lambda c, s, st: st.buffer.clear()
        sid = client.open_stream()
        client.stream_send(sid, b"a" * 200000, fin=True)
        sim.run(until=10)
        assert accepted[0].acks_sent > 20
        assert client.packets_sent > 100

    def test_gso_batching_reduces_sendmsg_calls(self):
        sim, topo, c_udp, s_udp = quic_net()
        client, _server, accepted = self.establish(
            sim, topo, c_udp, s_udp, gso_batch=16)
        accepted[0].on_stream_data = lambda c, s, st: st.buffer.clear()
        sid = client.open_stream()
        client.stream_send(sid, b"g" * 500000, fin=True)
        sim.run(until=10)
        assert client.sendmsg_calls < client.packets_sent / 2
