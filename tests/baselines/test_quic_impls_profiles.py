"""QUIC implementation profiles and their model interactions."""

import pytest

from repro.baselines.quic.impls import IMPL_PROFILES
from repro.perf import CpuProfile, QuicSenderModel, solve_throughput_gbps


def test_all_profiles_present():
    assert set(IMPL_PROFILES) == {"quicly", "quicly-nogso", "msquic",
                                  "mvfst"}


def test_gso_profiles():
    assert IMPL_PROFILES["quicly"].gso_batch > 1
    assert IMPL_PROFILES["quicly-nogso"].gso_batch == 1
    assert IMPL_PROFILES["msquic"].gso_batch == 1
    assert IMPL_PROFILES["mvfst"].gso_batch > 1


def test_gso_is_worth_roughly_the_syscall_amortisation():
    cpu = CpuProfile()
    with_gso = solve_throughput_gbps(
        QuicSenderModel(cpu, IMPL_PROFILES["quicly"]))
    without = solve_throughput_gbps(
        QuicSenderModel(cpu, IMPL_PROFILES["quicly-nogso"]))
    assert 1.3 < with_gso / without < 3.0


def test_crypto_efficiency_bounds():
    for profile in IMPL_PROFILES.values():
        assert 0.0 < profile.crypto_efficiency <= 1.0


def test_datagram_capped_regardless_of_mtu():
    cpu = CpuProfile()
    model = QuicSenderModel(cpu, IMPL_PROFILES["quicly"], mtu=9000)
    assert model.packet_payload <= cpu.quic_max_datagram


def test_faster_cpu_scales_quic_but_not_the_link_cap():
    fast_cpu = CpuProfile(syscall_ns=900.0, udp_ns_per_packet=250.0)
    slow_cpu = CpuProfile()
    fast = solve_throughput_gbps(
        QuicSenderModel(fast_cpu, IMPL_PROFILES["msquic"]))
    slow = solve_throughput_gbps(
        QuicSenderModel(slow_cpu, IMPL_PROFILES["msquic"]))
    assert fast > slow
    capped = solve_throughput_gbps(
        QuicSenderModel(fast_cpu, IMPL_PROFILES["msquic"]), link_gbps=1.0)
    assert capped == pytest.approx(1.0)
