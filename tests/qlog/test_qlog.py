"""qlog tracing."""

import json

from helpers import connect_tcpls, make_net, tcpls_pair

from repro.net import Simulator
from repro.qlog import QlogTracer, attach_session_tracer


def test_events_carry_time_and_category():
    sim = Simulator()
    tracer = QlogTracer(sim)
    sim.schedule(0.5, tracer.log, "transport", "record_sent", {"n": 1})
    sim.run()
    (event,) = tracer.events
    assert event["time"] == 500.0  # milliseconds
    assert event["category"] == "transport"
    assert event["data"] == {"n": 1}


def test_document_shape_and_json():
    sim = Simulator()
    tracer = QlogTracer(sim, title="t", vantage_point="server")
    tracer.log("a", "b")
    document = json.loads(tracer.dumps())
    assert document["qlog_version"] == "0.4"
    assert document["traces"][0]["vantage_point"]["type"] == "server"
    assert len(document["traces"][0]["events"]) == 1


def test_session_tracer_captures_lifecycle(tmp_path):
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    tracer = attach_session_tracer(client, QlogTracer(sim))
    connect_tcpls(sim, topo, client)
    client.join(topo.path(1).client_addr)
    sim.run(until=sim.now + 0.5)
    names = [e["event"] for e in tracer.events]
    assert "session_ready" in names
    assert "connection_established" in names
    assert "connection_joined" in names
    out = tmp_path / "trace.qlog"
    tracer.dump(str(out))
    assert json.loads(out.read_text())["traces"]


def test_record_level_tracing():
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    tracer = attach_session_tracer(client, QlogTracer(sim),
                                   trace_records=True)
    conn = connect_tcpls(sim, topo, client)
    sessions[0].on_stream_data = lambda st: st.recv()
    stream = client.create_stream(conn)
    stream.send(b"traced" * 100)
    sim.run(until=sim.now + 0.5)
    sent = [e for e in tracer.events if e["event"] == "record_sent"]
    assert sent
    assert {"conn", "stream", "seq", "type", "length"} <= set(
        sent[0]["data"])
    # The stream-attach control and the data record are both visible.
    streams_seen = {e["data"]["stream"] for e in sent}
    assert stream.stream_id in streams_seen


def test_tracer_chains_existing_callbacks():
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    seen = []
    client.on_ready = lambda s: seen.append("app")
    tracer = attach_session_tracer(client, QlogTracer(sim))
    connect_tcpls(sim, topo, client)
    assert seen == ["app"]
    assert any(e["event"] == "session_ready" for e in tracer.events)
