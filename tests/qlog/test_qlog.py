"""qlog tracing."""

import json

import pytest

from helpers import connect_tcpls, make_net, tcpls_pair

from repro.net import Simulator
from repro.qlog import QlogTracer, attach_session_tracer

pytestmark = pytest.mark.obs


def test_events_carry_time_and_category():
    sim = Simulator()
    tracer = QlogTracer(sim)
    sim.schedule(0.5, tracer.log, "transport", "record_sent", {"n": 1})
    sim.run()
    (event,) = tracer.events
    assert event["time"] == 500.0  # milliseconds
    assert event["category"] == "transport"
    assert event["data"] == {"n": 1}


def test_document_shape_and_json():
    sim = Simulator()
    tracer = QlogTracer(sim, title="t", vantage_point="server")
    tracer.log("a", "b")
    document = json.loads(tracer.dumps())
    assert document["qlog_version"] == "0.4"
    assert document["traces"][0]["vantage_point"]["type"] == "server"
    assert len(document["traces"][0]["events"]) == 1


def test_empty_trace_is_valid_qlog(tmp_path):
    """A tracer that saw nothing still writes a loadable document."""
    sim = Simulator()
    tracer = QlogTracer(sim, title="empty")
    out = tmp_path / "empty.qlog"
    tracer.dump(str(out))
    document = json.loads(out.read_text())
    assert document["title"] == "empty"
    assert document["traces"][0]["events"] == []


def test_dump_round_trips_through_json(tmp_path):
    """dump() -> json.loads gives back exactly to_dict()."""
    sim = Simulator()
    tracer = QlogTracer(sim)
    tracer.log("transport", "record_sent", {"seq": 1, "length": 42})
    sim.schedule(0.25, tracer.log, "recovery", "failover",
                 {"from": 0, "to": 1})
    sim.run()
    out = tmp_path / "trace.qlog"
    tracer.dump(str(out))
    assert json.loads(out.read_text()) == tracer.to_dict()


def test_event_times_are_monotone_for_a_live_session():
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    tracer = attach_session_tracer(client, QlogTracer(sim),
                                   trace_records=True)
    conn = connect_tcpls(sim, topo, client)
    stream = client.create_stream(conn)
    stream.send(b"x" * 50000)
    sim.run(until=sim.now + 0.5)
    times = [e["time"] for e in tracer.events]
    assert times, "expected events from a live session"
    assert times == sorted(times)


def test_session_tracer_captures_lifecycle(tmp_path):
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    tracer = attach_session_tracer(client, QlogTracer(sim))
    connect_tcpls(sim, topo, client)
    client.join(topo.path(1).client_addr)
    sim.run(until=sim.now + 0.5)
    names = [e["event"] for e in tracer.events]
    assert "session_ready" in names
    assert "connection_established" in names
    assert "connection_joined" in names
    out = tmp_path / "trace.qlog"
    tracer.dump(str(out))
    assert json.loads(out.read_text())["traces"]


def test_record_level_tracing_subscribes_to_the_bus():
    """trace_records=True captures one tls event per record, scoped to
    this session only."""
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    tracer = attach_session_tracer(client, QlogTracer(sim),
                                   trace_records=True)
    conn = connect_tcpls(sim, topo, client)
    sessions[0].on_stream_data = lambda st: st.recv()
    stream = client.create_stream(conn)
    stream.send(b"traced" * 100)
    sim.run(until=sim.now + 0.5)
    sealed = [e for e in tracer.events if e["event"] == "record_sealed"]
    assert sealed
    assert {"conn", "stream", "seq", "type", "length"} <= set(
        sealed[0]["data"])
    # The stream-attach control and the data record are both visible.
    streams_seen = {e["data"]["stream"] for e in sealed}
    assert stream.stream_id in streams_seen
    # Scoping: only the client session's events were captured, and the
    # server's record events (opened on its own session id) were not.
    sessions_seen = {e["data"]["session"] for e in sealed}
    assert sessions_seen == {client.obs_id}


def test_trace_records_false_captures_no_record_events():
    """Without trace_records, lifecycle is chained but no per-record
    events are captured (the former half-wired session.qlog behaviour
    is gone)."""
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    tracer = attach_session_tracer(client, QlogTracer(sim))
    conn = connect_tcpls(sim, topo, client)
    sessions[0].on_stream_data = lambda st: st.recv()
    client.create_stream(conn).send(b"quiet" * 100)
    sim.run(until=sim.now + 0.5)
    names = {e["event"] for e in tracer.events}
    assert "session_ready" in names
    assert "record_sealed" not in names
    assert "record_opened" not in names


def test_tracer_chains_existing_callbacks():
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    seen = []
    client.on_ready = lambda s: seen.append("app")
    tracer = attach_session_tracer(client, QlogTracer(sim))
    connect_tcpls(sim, topo, client)
    assert seen == ["app"]
    assert any(e["event"] == "session_ready" for e in tracer.events)


def test_tracer_chains_all_preexisting_callbacks_on_failover():
    """Every chained callback still reaches the application: ready,
    established, failed and failover all fire app-side with the tracer
    attached in front."""
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    calls = []
    client.on_ready = lambda s: calls.append("ready")
    client.on_conn_established = lambda c: calls.append("established")
    client.on_conn_failed = lambda c, r: calls.append("failed:" + r)
    client.on_failover = lambda o, n: calls.append("failover")
    tracer = attach_session_tracer(client, QlogTracer(sim))
    connect_tcpls(sim, topo, client)

    def on_session(sess):
        sess.enable_failover()
        sess.on_stream_data = lambda st: st.recv()
    for sess in sessions:
        on_session(sess)
    client.enable_failover()
    client.join(topo.path(1).client_addr)
    sim.run(until=sim.now + 0.5)
    stream = client.create_stream(client.conns[0])
    stream.send(b"data" * 1000)
    client.set_user_timeout(client.conns[0], 0.25)
    topo.path(0).set_blackholed(True)
    sim.run(until=sim.now + 3.0)
    assert "ready" in calls and "established" in calls
    assert any(c.startswith("failed:") for c in calls)
    assert "failover" in calls
    names = [e["event"] for e in tracer.events]
    assert "connection_failed" in names and "failover" in names
