"""Coupled streams: aggregation, steering, migration (Sec. 3.3.3)."""

import pytest

from helpers import connect_tcpls, make_net, tcpls_pair

from repro.core.scheduler import LowestRttScheduler


def join_second_path(sim, topo, client):
    client.join(topo.path(1).client_addr)
    sim.run(until=sim.now + 0.2)
    assert len(client.conns) == 2 and client.conns[1].usable()


def test_aggregation_uses_both_paths():
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    connect_tcpls(sim, topo, client)
    join_second_path(sim, topo, client)
    received = bytearray()
    done = []
    size = 4 << 20

    def on_group_data(group):
        received.extend(group.recv())
        if group.complete:
            done.append(sim.now)

    sessions[0].on_group_data = on_group_data
    start = sim.now
    group = client.create_coupled_group(client.alive_connections())
    payload = bytes(range(256)) * (size // 256)
    group.send(payload)
    group.close()
    sim.run(until=start + 30)
    assert done and bytes(received) == payload
    duration = done[0] - start
    goodput_mbps = size * 8 / duration / 1e6
    # Two 25 Mbps paths: aggregation must clearly beat a single path.
    assert goodput_mbps > 35
    assert topo.path(0).c2s.stats.tx_bytes > size // 4
    assert topo.path(1).c2s.stats.tx_bytes > size // 4


def test_single_path_group_baseline():
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    connect_tcpls(sim, topo, client)
    received = bytearray()
    done = []

    def on_group_data(group):
        received.extend(group.recv())
        if group.complete:
            done.append(sim.now)

    sessions[0].on_group_data = on_group_data
    start = sim.now
    group = client.create_coupled_group([client.conns[0]])
    group.send(b"s" * (2 << 20))
    group.close()
    sim.run(until=start + 30)
    assert done
    goodput = (2 << 20) * 8 / (done[0] - start) / 1e6
    assert 15 < goodput <= 25.1  # one 25 Mbps path


def test_reorder_heap_depth_bounded():
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    connect_tcpls(sim, topo, client)
    join_second_path(sim, topo, client)
    sessions[0].on_group_data = lambda g: g.recv()
    group = client.create_coupled_group(client.alive_connections())
    group.send(b"r" * (2 << 20))
    group.close()
    sim.run(until=sim.now + 20)
    server_group = list(sessions[0].groups.values())[0]
    assert server_group.reorder.out_of_order > 0   # reordering happened
    assert server_group.reorder.max_depth < 64     # and stayed bounded


def test_aggregation_with_asymmetric_paths_lowest_rtt():
    sim, topo, cstack, sstack = make_net(delays=[0.01, 0.04],
                                         rates=[25_000_000, 25_000_000])
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    connect_tcpls(sim, topo, client)
    join_second_path(sim, topo, client)
    received = bytearray()
    done = []

    def on_group_data(group):
        received.extend(group.recv())
        if group.complete:
            done.append(sim.now)

    sessions[0].on_group_data = on_group_data
    start = sim.now
    group = client.create_coupled_group(client.alive_connections(),
                                        scheduler=LowestRttScheduler())
    group.send(b"a" * (3 << 20))
    group.close()
    sim.run(until=start + 30)
    assert done and len(received) == 3 << 20


def test_migration_add_then_remove_path():
    """The Fig. 10 pattern: a download migrates from path 0 to path 1
    through a coupled window, sustaining goodput."""
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    received = bytearray()
    done = []
    size = 6 << 20

    def on_session(sess):
        sessions.append(sess)

        def on_stream_data(stream):
            if stream.recv().startswith(b"GET"):
                group = sess.create_coupled_group([sess.conns[0]])
                sess._fig10_group = group
                group.send(b"M" * size)
                group.close()
        sess.on_stream_data = on_stream_data

    server.on_session = on_session
    client.on_group_data = lambda g: (
        received.extend(g.recv()),
        done.append(sim.now) if g.complete and not done else None,
    )
    connect_tcpls(sim, topo, client)
    request = client.create_stream(client.conns[0])
    request.send(b"GET /file")
    join_second_path(sim, topo, client)
    start = sim.now

    def migrate():
        srv = sessions[0]
        group = srv._fig10_group
        old_stream = group.streams[0]
        srv.add_group_stream(group, srv.conns[1])
        # Coupled window: both paths carry records briefly, then the
        # old path is dropped.
        sim.schedule(0.5, lambda: srv.remove_group_stream(group,
                                                          old_stream))

    sim.at(start + 1.0, migrate)
    sim.run(until=start + 30)
    assert done and len(received) == size
    assert bytes(received) == b"M" * size
    # After migration both paths have moved real data.
    assert topo.path(1).s2c.stats.tx_bytes > (1 << 20)


def test_steer_uncoupled_stream_between_paths():
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    connect_tcpls(sim, topo, client)
    join_second_path(sim, topo, client)
    received = bytearray()
    sessions[0].on_stream_data = lambda st: received.extend(st.recv())
    stream = client.create_stream(client.conns[0])
    stream.send(b"1" * 300000)
    sim.run(until=sim.now + 0.6)
    client.steer_stream(stream, client.conns[1])
    stream.send(b"2" * 300000)
    sim.run(until=sim.now + 3)
    data = bytes(received)
    assert len(data) == 600000
    assert data == b"1" * 300000 + b"2" * 300000
    assert topo.path(1).c2s.stats.tx_bytes > 100000
