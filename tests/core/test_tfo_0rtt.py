"""TCPLS session establishment with TFO + 0-RTT (Sec. 4.5)."""

import pytest

from helpers import PSK, make_net

from repro.core import TcplsClient, TcplsServer
from repro.net.address import Endpoint


def setup_tfo(sim, topo, cstack, sstack):
    cstack.tfo_enabled = True
    sstack.tfo_enabled = True
    server = TcplsServer(sim, sstack, 443, psk=PSK)
    sessions = []
    server.on_session = sessions.append
    return server, sessions


def first_connection(sim, topo, cstack):
    """Regular connection that caches the Fast Open cookie."""
    client = TcplsClient(sim, cstack, psk=PSK)
    p = topo.path(0)
    client.connect(p.client_addr, Endpoint(p.server_addr, 443), tfo=True)
    sim.run(until=1.0)
    assert client.ready
    client.conns[0].tcp.close()
    sim.run(until=sim.now + 0.5)
    return client


def test_first_connection_has_no_cookie_and_runs_two_rtts():
    sim, topo, cstack, sstack = make_net()
    setup_tfo(sim, topo, cstack, sstack)
    client = TcplsClient(sim, cstack, psk=PSK)
    ready = []
    client.on_ready = lambda s: ready.append(sim.now)
    p = topo.path(0)
    client.connect(p.client_addr, Endpoint(p.server_addr, 443), tfo=True)
    sim.run(until=1.0)
    # No cached cookie yet: TFO silently degrades to a normal 2-RTT
    # establishment (TCP 1 RTT + TLS 1 RTT).
    assert ready[0] == pytest.approx(0.04, abs=0.01)
    assert cstack.tfo_cookie_for(p.server_addr) != b""


def test_tfo_resumption_saves_one_rtt():
    sim, topo, cstack, sstack = make_net()
    server, sessions = setup_tfo(sim, topo, cstack, sstack)
    first_connection(sim, topo, cstack)

    start = sim.now
    client = TcplsClient(sim, cstack, psk=PSK)
    ready = []
    client.on_ready = lambda s: ready.append(sim.now - start)
    p = topo.path(0)
    client.connect(p.client_addr, Endpoint(p.server_addr, 443), tfo=True)
    sim.run(until=start + 1.0)
    # ClientHello rides the SYN: the whole handshake fits in ~1 RTT.
    assert ready and ready[0] == pytest.approx(0.02, abs=0.01)
    assert client.tcpls_enabled


def test_tfo_with_early_data_delivers_in_one_rtt():
    sim, topo, cstack, sstack = make_net()
    server, sessions = setup_tfo(sim, topo, cstack, sstack)
    first_connection(sim, topo, cstack)

    got = []
    start = sim.now

    def on_session(session):
        sessions.append(session)
        session.on_stream_data = (
            lambda stream: got.append((sim.now - start, stream.recv())))

    server.on_session = on_session
    client = TcplsClient(sim, cstack, psk=PSK)
    p = topo.path(0)
    client.connect(p.client_addr, Endpoint(p.server_addr, 443), tfo=True,
                   early_data=b"GET /0rtt")
    sim.run(until=start + 1.0)
    assert got, "early data never delivered"
    at, data = got[0]
    assert data == b"GET /0rtt"
    # The request arrives with the SYN (0.5 RTT) and is surfaced once
    # the session is up at ~1.5 RTT -- a cold handshake would deliver
    # the first request no earlier than ~2.5 RTT (0.05 s here).
    assert at < 0.04


def test_tfo_session_still_supports_joins_and_streams():
    sim, topo, cstack, sstack = make_net()
    server, sessions = setup_tfo(sim, topo, cstack, sstack)
    first_connection(sim, topo, cstack)

    client = TcplsClient(sim, cstack, psk=PSK)
    p = topo.path(0)
    client.connect(p.client_addr, Endpoint(p.server_addr, 443), tfo=True)
    sim.run(until=sim.now + 0.5)
    assert client.ready and client.cookies
    client.join(topo.path(1).client_addr)
    sim.run(until=sim.now + 0.5)
    received = bytearray()
    sessions[-1].on_stream_data = lambda st: received.extend(st.recv())
    stream = client.create_stream(client.conns[1])
    stream.send(b"post-tfo data" * 100)
    sim.run(until=sim.now + 1.0)
    assert bytes(received) == b"post-tfo data" * 100
