"""Remote tcp_info retrieval over the secure channel (Sec. 3.3.3)."""

import pytest

from helpers import connect_tcpls, make_net, tcpls_pair

from repro.core import record as rec


def test_request_peer_tcp_info():
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    conn = connect_tcpls(sim, topo, client)
    # Move some data so the peer has non-trivial statistics.
    sessions[0].on_stream_data = lambda st: st.recv()
    stream = client.create_stream(conn)
    stream.send(b"d" * 300000)
    sim.run(until=sim.now + 2)

    answers = []
    client.request_peer_tcp_info(conn, lambda c, info: answers.append(info))
    sim.run(until=sim.now + 0.5)
    assert answers
    info = answers[0]
    # The server's view: it *received* ~300 kB and measured an RTT.
    assert info["bytes_received"] >= 300000
    assert info["srtt"] == pytest.approx(0.02, abs=0.02)
    assert info["cwnd_bytes"] > 0


def test_both_directions_and_multiple_callbacks():
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    connect_tcpls(sim, topo, client)
    srv = sessions[0]
    client_answers, server_answers = [], []
    client.request_peer_tcp_info(
        client.conns[0], lambda c, i: client_answers.append(i))
    client.request_peer_tcp_info(
        client.conns[0], lambda c, i: client_answers.append(i))
    srv.request_peer_tcp_info(
        srv.conns[0], lambda c, i: server_answers.append(i))
    sim.run(until=sim.now + 0.5)
    assert len(client_answers) == 2
    assert len(server_answers) == 1


def test_tcpinfo_codec_roundtrip():
    info = {
        "srtt": 0.0234, "cwnd_bytes": 123456, "ssthresh_bytes": None,
        "bytes_acked": 1 << 33, "bytes_received": 42,
        "retransmissions": 7,
    }
    out = rec.decode_tcpinfo_response(rec.encode_tcpinfo_response(info))
    assert out["srtt"] == pytest.approx(0.0234, abs=1e-6)
    assert out["cwnd_bytes"] == 123456
    assert out["ssthresh_bytes"] is None
    assert out["bytes_acked"] == 1 << 33
    assert out["retransmissions"] == 7

    info["ssthresh_bytes"] = 5000
    out = rec.decode_tcpinfo_response(rec.encode_tcpinfo_response(info))
    assert out["ssthresh_bytes"] == 5000
