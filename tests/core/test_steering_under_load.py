"""Stream steering scenarios from Sec. 3.3.3's application sketches."""

from helpers import connect_tcpls, make_net, tcpls_pair


def test_http_server_steers_by_content_type():
    """'An HTTP server could choose the TCP connection for the stream of
    each response based on the content type': latency-critical objects
    on the low-latency path, bulk on the other."""
    sim, topo, cstack, sstack = make_net(
        n_paths=2, rates=[25_000_000, 25_000_000],
        delays=[0.005, 0.040])  # path0 = low latency
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    connect_tcpls(sim, topo, client)
    client.join(topo.path(1).client_addr)
    sim.run(until=sim.now + 0.3)
    srv = sessions[0]
    arrivals = {}

    def on_stream_data(stream):
        data = stream.recv()
        if data and stream.stream_id not in arrivals:
            arrivals[stream.stream_id] = sim.now
        stream.recv()

    client.on_stream_data = on_stream_data
    start = sim.now
    critical = srv.create_stream(srv.conns[0])   # low-latency path
    bulk = srv.create_stream(srv.conns[1])       # high-latency path
    critical.send(b"{json}" * 10)
    bulk.send(b"IMG" * 100000)
    sim.run(until=start + 5)
    assert arrivals[critical.stream_id] < arrivals[bulk.stream_id]
    # The first critical byte beat one high-latency RTT.
    assert arrivals[critical.stream_id] - start < 0.04


def test_game_chat_and_commands_on_separate_streams():
    """'An interactive game could use different streams for chat
    messages and player's commands' -- a slow consumer on one stream
    never blocks the other (per-stream HoL isolation)."""
    sim, topo, cstack, sstack = make_net(n_paths=1, families=[4])
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    conn = connect_tcpls(sim, topo, client)
    commands_seen = []
    chat_seen = []
    streams = {}

    def on_stream_data(stream):
        role = streams.get(stream.stream_id)
        if role == "commands":
            commands_seen.append((sim.now, stream.recv()))
        else:
            chat_seen.append((sim.now, stream.recv()))

    sessions[0].on_stream_data = on_stream_data
    chat = client.create_stream(conn)
    commands = client.create_stream(conn)
    sim.run(until=sim.now + 0.1)
    streams[chat.stream_id] = "chat"
    streams[commands.stream_id] = "commands"
    # A burst of chat backlog plus a time-critical command.
    chat.send(b"lorem " * 20000)
    commands.send(b"MOVE N")
    sim.run(until=sim.now + 5)
    assert any(data == b"MOVE N" for _t, data in commands_seen)
    assert b"".join(d for _t, d in chat_seen) == b"lorem " * 20000


def test_steering_mid_burst_preserves_order():
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    conn = connect_tcpls(sim, topo, client)
    client.join(topo.path(1).client_addr)
    sim.run(until=sim.now + 0.3)
    received = bytearray()
    sessions[0].on_stream_data = lambda st: received.extend(st.recv())
    stream = client.create_stream(conn)
    # Steer back and forth while continuously writing.
    expected = bytearray()
    for round_index in range(6):
        chunk = bytes([round_index]) * 50000
        stream.send(chunk)
        expected += chunk
        target = client.conns[round_index % 2]
        client.steer_stream(stream, target)
        sim.run(until=sim.now + 0.25)
    sim.run(until=sim.now + 5)
    assert bytes(received) == bytes(expected)
    # Both paths moved data at some point.
    assert topo.path(0).c2s.stats.tx_bytes > 20000
    assert topo.path(1).c2s.stats.tx_bytes > 20000
