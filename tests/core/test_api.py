"""The Fig. 5-style application API facade."""

import pytest

from helpers import make_net, tcpls_pair, PSK

from repro.core.api import TcplsConnection, tcpls_connect
from repro.net.address import Endpoint
from repro.core import TcplsServer


def make_api(sim, topo, cstack, sstack, **kwargs):
    server = TcplsServer(sim, sstack, 443, psk=PSK)
    sessions = []
    server.on_session = sessions.append
    api = TcplsConnection(sim, cstack, psk=PSK, **kwargs)
    for path in topo.paths:
        api.add_address(path.client_addr)
        api.add_peer_address(path.server_addr, 443)
    return api, server, sessions


def test_connect_explicit_pair_and_events():
    sim, topo, cstack, sstack = make_net()
    api, server, sessions = make_api(sim, topo, cstack, sstack)
    events = []
    api.on("ready", lambda s: events.append("ready"))
    api.on("conn_established", lambda c: events.append("conn"))
    api.connect(src=topo.path(0).client_addr,
                dst=Endpoint(topo.path(0).server_addr, 443))
    sim.run(until=1)
    assert "ready" in events and "conn" in events


def test_unknown_event_rejected():
    sim, topo, cstack, sstack = make_net()
    api, _, _ = make_api(sim, topo, cstack, sstack)
    with pytest.raises(ValueError):
        api.on("no-such-event", lambda: None)


def test_happy_eyeballs_races_address_pairs():
    """Fig. 5's example: two connections race; the winner carries the
    TCPLS handshake."""
    sim, topo, cstack, sstack = make_net(delays=[0.08, 0.005])
    api, server, sessions = make_api(sim, topo, cstack, sstack)
    ready = []
    api.on("ready", lambda s: ready.append(sim.now))
    api.connect(timeout=0.05)
    sim.run(until=2)
    assert ready
    # The v6 path (5 ms) won the race.
    winner = api.session.conns[0]
    assert winner.tcp.remote.addr.family == 6


def test_join_and_aggregate_via_api():
    sim, topo, cstack, sstack = make_net()
    api, server, sessions = make_api(sim, topo, cstack, sstack)
    api.connect(src=topo.path(0).client_addr,
                dst=Endpoint(topo.path(0).server_addr, 443))
    sim.run(until=1)
    api.join(src=topo.path(1).client_addr)
    sim.run(until=sim.now + 0.5)
    assert len(api.connections()) == 2
    received = bytearray()
    done = []
    sessions[0].on_group_data = lambda g: (
        received.extend(g.recv()),
        done.append(sim.now) if g.complete and not done else None)
    group = api.aggregate()
    group.send(b"agg" * 100000)
    group.close()
    sim.run(until=sim.now + 10)
    assert done and bytes(received) == b"agg" * 100000


def test_new_stream_and_tcp_info():
    sim, topo, cstack, sstack = make_net()
    api, server, sessions = make_api(sim, topo, cstack, sstack)
    api.connect(src=topo.path(0).client_addr,
                dst=Endpoint(topo.path(0).server_addr, 443))
    sim.run(until=1)
    stream = api.new_stream()
    got = bytearray()
    sessions[0].on_stream_data = lambda st: got.extend(st.recv())
    stream.send(b"api-data")
    sim.run(until=sim.now + 0.5)
    assert bytes(got) == b"api-data"
    info = api.tcp_info()
    assert info["state"] == "ESTABLISHED"
    assert "srtt" in info and "cwnd_bytes" in info


def test_failover_and_uto_via_api():
    sim, topo, cstack, sstack = make_net()
    api, server, sessions = make_api(sim, topo, cstack, sstack)
    api.connect(src=topo.path(0).client_addr,
                dst=Endpoint(topo.path(0).server_addr, 443))
    sim.run(until=1)
    api.enable_failover().set_user_timeout(0.25)
    sim.run(until=sim.now + 0.2)
    assert api.session.failover_enabled
    assert sessions[0].failover_enabled
    assert api.session.conns[0].tcp.user_timeout == pytest.approx(0.25)


def test_tcpls_connect_helper():
    sim, topo, cstack, sstack = make_net()
    server = TcplsServer(sim, sstack, 443, psk=PSK)
    server.on_session = lambda s: None
    p = topo.path(0)
    client = tcpls_connect(sim, cstack, p.client_addr,
                           Endpoint(p.server_addr, 443), PSK)
    sim.run(until=1)
    assert client.ready and client.tcpls_enabled
