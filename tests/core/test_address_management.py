"""Mid-session address advertisement and withdrawal (Sec. 3.3.2)."""

from helpers import connect_tcpls, make_net, tcpls_pair

from repro.net.address import IPAddress


def test_server_announces_new_address():
    sim, topo, cstack, sstack = make_net(n_paths=3, families=[4, 6, 4],
                                         )
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    connect_tcpls(sim, topo, client)
    before = list(client.peer_addresses)
    extra = IPAddress("203.0.113.99")
    sessions[0].announce_address(extra)
    sim.run(until=sim.now + 0.3)
    assert extra in client.peer_addresses
    assert len(client.peer_addresses) == len(before) + 1
    # Duplicate announcements do not grow the list.
    sessions[0].announce_address(extra)
    sim.run(until=sim.now + 0.3)
    assert client.peer_addresses.count(extra) == 1


def test_server_withdraws_address():
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    connect_tcpls(sim, topo, client)
    victim = client.peer_addresses[-1]
    sessions[0].withdraw_address(victim)
    sim.run(until=sim.now + 0.3)
    assert victim not in client.peer_addresses


def test_join_uses_freshly_announced_address():
    """An address announced mid-session immediately participates in the
    join target selection."""
    sim, topo, cstack, sstack = make_net(n_paths=2, families=[4, 4])
    client, server, sessions = tcpls_pair(
        sim, topo, cstack, sstack,
        server_kwargs={"advertise_addresses": False})
    connect_tcpls(sim, topo, client)
    assert client.peer_addresses == []
    sessions[0].announce_address(topo.path(1).server_addr)
    sim.run(until=sim.now + 0.3)
    joined = []
    client.on_join = joined.append
    client.join(topo.path(1).client_addr)
    sim.run(until=sim.now + 0.5)
    assert joined
    assert joined[0].tcp.remote.addr == topo.path(1).server_addr
