"""Joining TCP connections: SESSID + single-use cookies (Fig. 3)."""

import pytest

from helpers import connect_tcpls, make_net, tcpls_pair

from repro.net.address import Endpoint


def test_join_second_path():
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    connect_tcpls(sim, topo, client)
    joined = []
    client.on_join = joined.append
    cookies_before = len(client.cookies)
    client.join(topo.path(1).client_addr)
    sim.run(until=sim.now + 0.5)
    assert joined and joined[0].index == 1
    # One cookie consumed; the server then auto-replenished a batch.
    assert len(client.cookies) == cookies_before - 1 + 8
    assert len(sessions) == 1          # same session, not a new one
    assert len(sessions[0].conns) == 2
    # Both endpoints agree on the joined connection's wire identity.
    assert joined[0].conn_id == sessions[0].conns[1].conn_id != 0


def test_join_picks_family_matching_server_address():
    sim, topo, cstack, sstack = make_net()  # path 0 = v4, path 1 = v6
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    connect_tcpls(sim, topo, client)
    client.join(topo.path(1).client_addr)  # v6 local address
    sim.run(until=sim.now + 0.5)
    join_conn = client.conns[1]
    assert join_conn.tcp.remote.addr.family == 6


def test_cookie_budget_limits_joins():
    """By sending n cookies the server restricts the client to n joins
    (Sec. 3.3.2 resource-exhaustion defence)."""
    sim, topo, cstack, sstack = make_net(n_paths=4)
    client, server, sessions = tcpls_pair(
        sim, topo, cstack, sstack, server_kwargs={"cookie_batch": 1, "auto_replenish": False})
    connect_tcpls(sim, topo, client)
    assert len(client.cookies) == 1
    client.join(topo.path(1).client_addr)
    sim.run(until=sim.now + 0.5)
    with pytest.raises(RuntimeError, match="no join cookies"):
        client.join(topo.path(2).client_addr)


def test_forged_cookie_rejected():
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    connect_tcpls(sim, topo, client)
    client.cookies = [b"\x00" * 16]  # forged
    failures = []
    client.on_conn_failed = lambda c, r: failures.append((c.index, r))
    client.join(topo.path(1).client_addr)
    sim.run(until=sim.now + 1.0)
    assert failures and failures[0][0] == 1
    assert len(sessions[0].conns) == 1


def test_cookie_is_single_use():
    sim, topo, cstack, sstack = make_net(n_paths=3, families=[4, 4, 4])
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    connect_tcpls(sim, topo, client)
    used_cookie = client.cookies[0]
    client.join(topo.path(1).client_addr)
    sim.run(until=sim.now + 0.5)
    # Replay the same cookie on a third connection.
    client.cookies.insert(0, used_cookie)
    failures = []
    client.on_conn_failed = lambda c, r: failures.append(r)
    client.join(topo.path(2).client_addr)
    sim.run(until=sim.now + 1.0)
    assert failures
    assert len(sessions[0].conns) == 2


def test_unknown_sessid_rejected():
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    connect_tcpls(sim, topo, client)
    client.session_id = b"\xEE" * 16
    failures = []
    client.on_conn_failed = lambda c, r: failures.append(r)
    client.join(topo.path(1).client_addr)
    sim.run(until=sim.now + 1.0)
    assert failures


def test_server_can_issue_more_cookies():
    sim, topo, cstack, sstack = make_net(n_paths=3, families=[4, 6, 4])
    client, server, sessions = tcpls_pair(
        sim, topo, cstack, sstack, server_kwargs={"cookie_batch": 1, "auto_replenish": False})
    connect_tcpls(sim, topo, client)
    client.join(topo.path(1).client_addr)
    sim.run(until=sim.now + 0.5)
    assert not client.cookies
    server.issue_cookies(sessions[0], 2)
    sim.run(until=sim.now + 0.5)
    assert len(client.cookies) == 2
    client.join(topo.path(2).client_addr)
    sim.run(until=sim.now + 0.5)
    assert len(sessions[0].conns) == 3


def test_data_flows_on_joined_connection():
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    connect_tcpls(sim, topo, client)
    client.join(topo.path(1).client_addr)
    sim.run(until=sim.now + 0.5)
    received = bytearray()
    sessions[0].on_stream_data = lambda st: received.extend(st.recv())
    stream = client.create_stream(client.conns[1])
    stream.send(b"via-the-joined-path" * 500)
    sim.run(until=sim.now + 1.0)
    assert bytes(received) == b"via-the-joined-path" * 500
    assert topo.path(1).c2s.stats.tx_packets > 5  # really used path 1
