"""TCPLS session: handshake, negotiation, multiplexing, demux."""

import pytest

from helpers import connect_tcpls, make_net, tcpls_pair

from repro.net.address import Endpoint


def test_session_negotiation_and_metadata():
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    conn = connect_tcpls(sim, topo, client)
    assert client.tcpls_enabled
    assert len(client.session_id) == 16
    assert len(client.cookies) == 8           # default cookie batch
    assert len(client.peer_addresses) == 2    # server advertises both
    assert sessions and sessions[0].session_id == client.session_id
    assert conn.usable()


def test_handshake_takes_two_rtts():
    sim, topo, cstack, sstack = make_net()
    client, server, _ = tcpls_pair(sim, topo, cstack, sstack)
    ready_at = []
    client.on_ready = lambda s: ready_at.append(sim.now)
    p = topo.path(0)
    client.connect(p.client_addr, Endpoint(p.server_addr, 443))
    sim.run(until=1)
    # TCP handshake (1 RTT) + TLS 1.3 (1 RTT); RTT = 20 ms.
    assert ready_at[0] == pytest.approx(0.04, abs=0.01)


def test_stream_data_client_to_server():
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    received = bytearray()
    server.on_session = lambda s: setattr(
        s, "on_stream_data", lambda st: received.extend(st.recv()))
    # on_session was replaced after tcpls_pair; re-register collection:
    conn = connect_tcpls(sim, topo, client)
    stream = client.create_stream(conn)
    payload = bytes(range(256)) * 64
    stream.send(payload)
    sim.run(until=2)
    assert bytes(received) == payload


def test_stream_data_server_to_client():
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    received = bytearray()
    client.on_stream_data = lambda st: received.extend(st.recv())
    connect_tcpls(sim, topo, client)
    srv = sessions[0]
    stream = srv.create_stream(srv.conns[0])
    stream.send(b"from-server" * 1000)
    sim.run(until=2)
    assert bytes(received) == b"from-server" * 1000


def test_multiple_streams_multiplexed_one_connection():
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    per_stream = {}

    def on_stream_data(stream):
        per_stream.setdefault(stream.stream_id, bytearray()).extend(
            stream.recv())

    conn = connect_tcpls(sim, topo, client)
    sessions[0].on_stream_data = on_stream_data
    streams = [client.create_stream(conn) for _ in range(4)]
    for index, stream in enumerate(streams):
        stream.send(bytes([index]) * (10000 + index))
    sim.run(until=3)
    assert len(per_stream) == 4
    for index, stream in enumerate(streams):
        assert bytes(per_stream[stream.stream_id]) == bytes([index]) * (
            10000 + index)


def test_client_and_server_stream_ids_disjoint():
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    conn = connect_tcpls(sim, topo, client)
    client_stream = client.create_stream(conn)
    srv = sessions[0]
    server_stream = srv.create_stream(srv.conns[0])
    assert client_stream.stream_id % 2 == 1
    assert server_stream.stream_id % 2 == 0


def test_demux_fast_path_dominates_bulk_transfer():
    """Sec. 4.1: the receiver tries the last successful stream first, so
    a bulk transfer costs ~1 tag trial per record."""
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    conn = connect_tcpls(sim, topo, client)
    stream = client.create_stream(conn)
    stream.send(b"z" * (1 << 20))
    sim.run(until=3)
    stats = sessions[0].stats
    assert stats["records_received"] >= 60
    assert stats["tag_trials"] <= stats["records_received"] * 1.2
    assert stats["demux_drops"] == 0


def test_interleaved_streams_cost_extra_trials():
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    conn = connect_tcpls(sim, topo, client)
    a = client.create_stream(conn)
    b = client.create_stream(conn)
    for _ in range(30):
        a.send(b"A" * 2000)
        b.send(b"B" * 2000)
    sim.run(until=3)
    stats = sessions[0].stats
    assert stats["demux_fallbacks"] > 0  # stream switches need searching
    assert stats["demux_drops"] == 0


def test_ping_pong():
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    conn = connect_tcpls(sim, topo, client)
    pongs = []
    client.on_pong = lambda c, payload: pongs.append((sim.now, payload))
    client.ping(conn, b"probe-1")
    sim.run(until=1)
    assert pongs and pongs[0][1] == b"probe-1"


def test_user_timeout_option_arms_peer():
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    conn = connect_tcpls(sim, topo, client)
    client.set_user_timeout(conn, 0.25)
    sim.run(until=1)
    assert sessions[0].conns[0].tcp.user_timeout == pytest.approx(0.25)
    assert conn.tcp.user_timeout == pytest.approx(0.25)


def test_records_are_indistinguishable_on_the_wire():
    """Every TCPLS record leaves as outer-type 23 (application_data) --
    a middlebox sees only TLS (Fig. 1)."""
    sim, topo, cstack, sstack = make_net()
    outer_types = set()

    from repro.net.middlebox import Middlebox

    class TypeSniffer(Middlebox):
        def process(self, packet):
            if packet.proto == "tcp" and packet.payload.payload:
                outer_types.add(packet.payload.payload[0])
            return packet

    topo.path(0).c2s.add_middlebox(TypeSniffer())
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    conn = connect_tcpls(sim, topo, client)
    stream = client.create_stream(conn)
    client.enable_failover()
    client.set_user_timeout(conn, 1.0)
    stream.send(b"secret" * 5000)
    client.ping(conn)
    sim.run(until=2)
    # 22 = handshake flight, 23 = everything else. No TCPLS-specific
    # outer type ever appears. (Byte values of segment payload starts
    # can alias mid-record bytes, so check the recorded first-bytes of
    # whole segments only loosely: types 22/23 must dominate.)
    assert 23 in outer_types
    unexpected = outer_types - {22, 23}
    # Mid-record segment boundaries can start with arbitrary bytes; the
    # strong claim is checked at the record layer elsewhere.
    assert len(unexpected - set(range(256))) == 0
