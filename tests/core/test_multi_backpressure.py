"""Per-session memory budgets and backpressure in the multi-session
mux (:class:`repro.core.drivers.multi.MultiSessionServer`).

A session whose application stops draining must stop being *read* --
its buffered bytes bounded near the budget, its peer throttled through
the closing receive window -- while every other session keeps moving
(no cross-session head-of-line blocking).  Reads resume once the
application drains below the low watermark, and the budget keeps
applying when an MPJOIN adds a second transport.
"""

from helpers import PSK, make_net

from repro.core import TcplsClient
from repro.core.drivers.multi import MultiSessionServer
from repro.core.drivers.sim import SimDriver
from repro.net import Simulator, build_multipath
from repro.net.address import Endpoint
from repro.tcp import TcpStack

PORT = 4443
BUDGET = 64 * 1024


def _setup(budget=BUDGET, n_paths=2, seed=7):
    sim = Simulator(seed=seed)
    topo = build_multipath(sim, n_paths=n_paths,
                           rate_bps=100_000_000, delay=0.002)
    cstack = TcpStack(sim, topo.client)
    sstack = TcpStack(sim, topo.server)
    mux = MultiSessionServer(SimDriver(sim, sstack), PORT, PSK,
                             budget_bytes=budget, auto_retire=True)
    return sim, topo, cstack, mux


def _connect(sim, topo, cstack, path=0):
    client = TcplsClient(sim, cstack, psk=PSK)
    p = topo.path(path)
    client.connect(p.client_addr, Endpoint(p.server_addr, PORT))
    sim.run(until=sim.now + 1.0)
    assert client.ready
    return client


def _flood(client, nbytes):
    conn = next(c for c in client.conns if c.usable())
    stream = client.create_stream(conn)
    stream.send(b"\xAB" * nbytes)
    return stream


def test_over_budget_session_stops_being_read():
    sim, topo, cstack, mux = _setup()
    # The server application never drains this session's streams.
    mux.on_session = lambda s: None
    client = _connect(sim, topo, cstack)
    _flood(client, 512 * 1024)
    sim.run(until=sim.now + 5.0)

    session = next(iter(mux.sessions.values()))
    assert mux.paused_fds(), "over-budget session was never paused"
    assert mux.pauses >= 1
    # Bounded: the budget is a soft watermark -- one batched read may
    # overshoot, but buffering must stay in the budget's neighbourhood,
    # nowhere near the 512 KiB the peer wants to push.
    assert session.buffered_rx_bytes() < 3 * BUDGET
    # The peer is throttled, not reset: its connection stays alive.
    assert client.conns[0].tcp.is_open()


def test_no_cross_session_head_of_line_blocking():
    sim, topo, cstack, mux = _setup()
    stalled_sessions = []
    echoed = []

    def serve(session):
        if not stalled_sessions:
            stalled_sessions.append(session)  # first session: never drain
            return

        def on_stream_data(stream):
            data = stream.recv()
            stream.send(data)
            echoed.append(len(data))

        session.on_stream_data = on_stream_data

    mux.on_session = serve
    stalled = _connect(sim, topo, cstack)
    healthy = _connect(sim, topo, cstack)
    _flood(stalled, 512 * 1024)

    got = []
    healthy.on_stream_data = lambda s: got.append(s.recv())
    stream = _flood(healthy, 4096)
    sim.run(until=sim.now + 5.0)

    assert mux.paused_fds(), "stalled session should be paused"
    assert sum(len(d) for d in got) == 4096, \
        "healthy session starved behind a stalled one"


def test_resume_after_drain():
    sim, topo, cstack, mux = _setup()
    sessions = []
    mux.on_session = sessions.append      # buffer, don't drain yet
    client = _connect(sim, topo, cstack)
    total = 512 * 1024
    _flood(client, total)
    sim.run(until=sim.now + 5.0)
    assert mux.paused_fds()

    # Application catches up: drain everything buffered, repeatedly --
    # each drain below the low watermark resumes reads, the peer sends
    # more, possibly pausing again, until the full flood arrives.
    (session,) = sessions
    drained = []

    def pump():
        for stream in list(session.streams.values()):
            data = stream.recv()
            if data:
                drained.append(len(data))
        if sum(drained) < total:
            sim.schedule(0.05, pump)

    pump()
    sim.run(until=sim.now + 30.0)
    assert sum(drained) == total
    assert not mux.paused_fds()
    assert mux.resumes >= 1
    assert session.buffered_rx_bytes() == 0


def test_budget_survives_mpjoin_second_transport():
    sim, topo, cstack, mux = _setup()
    mux.on_session = lambda s: None       # never drain
    client = _connect(sim, topo, cstack)
    p1 = topo.path(1)
    client.join(p1.client_addr, remote=Endpoint(p1.server_addr, PORT))
    sim.run(until=sim.now + 1.0)
    assert len(client.conns) == 2 and client.conns[1].usable()

    session = next(iter(mux.sessions.values()))
    assert len(mux.table.entries_for(session)) == 2

    # Flood through BOTH transports: the shared session budget must
    # pause each of them, since buffered_rx_bytes is session-wide.
    for conn in client.conns:
        stream = client.create_stream(conn)
        stream.send(b"\xCD" * (512 * 1024))
    sim.run(until=sim.now + 5.0)

    assert len(mux.paused_fds()) == 2, \
        "both transports of the over-budget session must pause"
    assert session.buffered_rx_bytes() < 4 * BUDGET
