"""The sans-I/O engine over stub transports: record/replay determinism.

These tests never touch the simulator or sockets: two engines are
bootstrapped post-handshake over :class:`ReplayTransport` doubles and
exchange real sealed records by shuttling bytes between them.  The
input log captured on one run then replays into a fresh engine and
must reproduce identical state -- the debugging workflow the
engine/driver split unlocks.
"""

import pytest

from repro.core.engine import (
    InputLog,
    ManualClock,
    StubDriver,
    bootstrap_ready_session,
)
from repro.core.errors import SessionNotReadyError, TcplsError


def make_pair():
    client, cconn = bootstrap_ready_session(is_client=True)
    server, sconn = bootstrap_ready_session(is_client=False)
    return client, cconn, server, sconn


def shuttle(a_conn, b, b_conn):
    """Deliver everything a wrote to b (one direction)."""
    wire = a_conn.tcp.take_sent()
    if wire:
        b.bytes_received(b_conn, wire)
    return wire


class TestStubEngine:
    def test_stream_data_crosses_stub_transports(self):
        client, cconn, server, sconn = make_pair()
        stream = client.create_stream(cconn)
        stream.send(b"engine bytes with no I/O underneath")
        shuttle(cconn, server, sconn)
        delivered = [s for s in server.streams.values()
                     if bytes(s.recv_buffer)]
        assert len(delivered) == 1
        assert bytes(delivered[0].recv_buffer) == \
            b"engine bytes with no I/O underneath"

    def test_bidirectional_exchange(self):
        client, cconn, server, sconn = make_pair()
        cstream = client.create_stream(cconn)
        cstream.send(b"ping over records")
        shuttle(cconn, server, sconn)
        sstream = next(s for s in server.streams.values()
                       if bytes(s.recv_buffer))
        sstream.send(b"pong over records")
        shuttle(sconn, client, cconn)
        assert bytes(cstream.recv_buffer) == b"pong over records"

    def test_not_ready_raises_typed_error(self):
        driver = StubDriver()
        from repro.core.engine import TcplsEngine

        engine = TcplsEngine(driver, is_client=True)
        with pytest.raises(SessionNotReadyError):
            engine.create_stream(None)
        with pytest.raises(TcplsError):      # same exception, base class
            engine.enable_failover()
        with pytest.raises(RuntimeError):    # legacy catch still works
            engine.create_coupled_group([])

    def test_manual_clock_orders_timers(self):
        clock = ManualClock()
        fired = []
        clock.call_later(2.0, fired.append, "b")
        clock.call_later(1.0, fired.append, "a")
        cancelled = clock.call_later(1.5, fired.append, "x")
        cancelled.cancel()
        clock.advance(3.0)
        assert fired == ["a", "b"]
        assert clock.now == 3.0


class TestInputReplay:
    def test_log_captures_external_inputs(self):
        client, cconn, server, sconn = make_pair()
        server.input_log = InputLog()
        stream = client.create_stream(cconn)
        stream.send(b"x" * 40_000)   # several records
        shuttle(cconn, server, sconn)
        kinds = {entry[1] for entry in server.input_log}
        assert kinds == {"bytes"}
        assert len(server.input_log) >= 1

    def test_replay_reproduces_session_state(self):
        client, cconn, server, sconn = make_pair()
        server.input_log = InputLog()
        stream = client.create_stream(cconn)
        stream.send(b"deterministic " * 1000)
        stream.close()
        shuttle(cconn, server, sconn)
        log = server.input_log

        replayed, _rconn = bootstrap_ready_session(is_client=False)
        log.replay_into(replayed)

        def state(engine):
            return {
                sid: (bytes(s.recv_buffer), s.fin_received)
                for sid, s in engine.streams.items()
            }

        assert state(replayed) == state(server)
        assert replayed.stats["records_received"] == \
            server.stats["records_received"]
        assert replayed.stats["tag_trials"] == server.stats["tag_trials"]

    def test_replay_covers_failure_events(self):
        client, cconn, _server, _sconn = make_pair()
        client.input_log = InputLog()
        client.conn_failed(cconn, "rst")
        log = client.input_log

        replayed, rconn = bootstrap_ready_session(is_client=True)
        log.replay_into(replayed)
        assert rconn.failed
        assert not rconn.alive

    def test_replay_advances_manual_clock(self):
        server, sconn = bootstrap_ready_session(is_client=False)
        log = InputLog()
        log.record(1.25, "writable", sconn.conn_id, None)
        log.replay_into(server)
        assert server.clock.now == 1.25

    def test_replay_unknown_conn_id_raises(self):
        server, _sconn = bootstrap_ready_session(is_client=False)
        log = InputLog()
        log.record(0.0, "bytes", 999, b"zz")
        with pytest.raises(TcplsError):
            log.replay_into(server)
