"""eBPF code remote attachment over the session (Sec. 4.4)."""

from helpers import connect_tcpls, make_net, tcpls_pair

from repro.ebpf.programs import cubic_bytecode, reno_bytecode
from repro.tcp.congestion import Cubic


def test_server_ships_cc_client_attaches():
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    connect_tcpls(sim, topo, client)
    attached = []
    client.on_ebpf_attached = lambda c, p: attached.append((c.index, p))
    srv = sessions[0]
    srv.send_ebpf_program(srv.conns[0], cubic_bytecode(), program_id=7)
    sim.run(until=sim.now + 1)
    assert attached == [(0, 7)]
    assert client.conns[0].tcp.cc.name == "ebpf:prog7"


def test_attached_cc_inherits_window_state():
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    connect_tcpls(sim, topo, client)
    client.conns[0].tcp.cc.cwnd = 123456.0
    srv = sessions[0]
    srv.send_ebpf_program(srv.conns[0], reno_bytecode())
    sim.run(until=sim.now + 1)
    assert client.conns[0].tcp.cc.cwnd == 123456


def test_large_program_is_chunked():
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(
        sim, topo, cstack, sstack,
        client_kwargs={"record_payload": 256},
        server_kwargs={"record_payload": 256},
    )
    connect_tcpls(sim, topo, client)
    attached = []
    client.on_ebpf_attached = lambda c, p: attached.append(p)
    srv = sessions[0]
    bytecode = cubic_bytecode()
    assert len(bytecode) > 256  # really needs several records
    srv.send_ebpf_program(srv.conns[0], bytecode, program_id=2)
    sim.run(until=sim.now + 1)
    assert attached == [2]


def test_unverifiable_program_rejected_quietly():
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    connect_tcpls(sim, topo, client)
    attached = []
    client.on_ebpf_attached = lambda c, p: attached.append(p)
    before = client.conns[0].tcp.cc
    srv = sessions[0]
    srv.send_ebpf_program(srv.conns[0], b"\xff" * 64, program_id=9)
    sim.run(until=sim.now + 1)
    assert attached == []
    assert client.conns[0].tcp.cc is before
    assert isinstance(client.conns[0].tcp.cc, Cubic)


def test_attached_cc_drives_real_transfer():
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    connect_tcpls(sim, topo, client)
    srv = sessions[0]
    srv.send_ebpf_program(srv.conns[0], reno_bytecode())
    sim.run(until=sim.now + 0.5)
    cc = client.conns[0].tcp.cc
    assert cc.name.startswith("ebpf")
    received = bytearray()
    srv.on_stream_data = lambda st: received.extend(st.recv())
    stream = client.create_stream(client.conns[0])
    stream.send(b"d" * (1 << 20))
    sim.run(until=sim.now + 10)
    assert len(received) == 1 << 20
    assert cc.invocations > 50  # the VM really ran per ACK
