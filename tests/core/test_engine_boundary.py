"""Lint: the sans-I/O engine must not reach into the I/O layers.

Walks every module under ``repro.core.engine`` with :mod:`ast` and
rejects any import (top-level *or* nested inside a function) of
``repro.net`` or ``repro.tcp`` -- those belong to drivers.  This is the
acceptance gate for the engine/driver split: the engine only sees the
Transport/Clock/Driver interfaces.
"""

import ast
import pathlib

import repro.core.engine

ENGINE_DIR = pathlib.Path(repro.core.engine.__file__).parent
FORBIDDEN_PREFIXES = ("repro.net", "repro.tcp")


def _forbidden(name):
    return any(name == prefix or name.startswith(prefix + ".")
               for prefix in FORBIDDEN_PREFIXES)


def _imports_of(tree):
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.name, node.lineno
        elif isinstance(node, ast.ImportFrom):
            if node.module is not None and node.level == 0:
                yield node.module, node.lineno


def test_engine_modules_do_not_import_io_layers():
    offences = []
    for path in sorted(ENGINE_DIR.glob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for module, lineno in _imports_of(tree):
            if _forbidden(module):
                offences.append("%s:%d imports %s"
                                % (path.name, lineno, module))
    assert not offences, (
        "engine modules must stay I/O-agnostic:\n" + "\n".join(offences)
    )


def test_engine_package_is_nonempty():
    modules = list(ENGINE_DIR.glob("*.py"))
    names = {p.stem for p in modules}
    assert {"interfaces", "session", "client", "server", "scheduler",
            "replay"} <= names
