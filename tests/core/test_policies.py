"""The policy layer: both decision points, bus attribution, invariants.

Covers the promotion of the record schedulers into
:class:`~repro.core.engine.policy.Policy`:

- every built-in policy stamps its ``name`` on the ``scheduler:pick``
  bus events its decisions emit;
- replication is the typed :attr:`~repro.core.engine.policy.Policy.replicate`
  capability (the pump fans out; ``pick_stream`` returns one stream);
- deficit-round-robin credit is keyed by stream *identity*, so emitted
  ratios hold and credit survives candidate-list churn;
- a hypothesis property: under any policy and any offered-stream
  sequence, bytes pumped are conserved per stream (every chunk goes to
  exactly one stream -- or all of them, for a replicating policy);
- ``assign_transfer`` semantics per built-in over a stubbed pool view.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import connect_tcpls, make_net, tcpls_pair

from repro.core.engine.policy import (
    LowestRttScheduler,
    Policy,
    PredictivePolicy,
    RecordContext,
    RedundantScheduler,
    RoundRobinScheduler,
    WeightedScheduler,
)
from repro.obs import CaptureSink


# -- stub transports for bare pick_stream calls ----------------------------


class FakeTcp:
    def __init__(self, srtt=0.02, cwnd=14600, inflight=0, unsent=0):
        self._srtt = srtt
        self._cwnd = cwnd
        self._inflight = inflight
        self._unsent = unsent

    def tcp_info(self):
        return {"srtt": self._srtt}

    def congestion_window(self):
        return self._cwnd

    def bytes_in_flight(self):
        return self._inflight

    def unsent_bytes(self):
        return self._unsent


class FakeConn:
    def __init__(self, tcp):
        self.tcp = tcp


class FakeStream:
    def __init__(self, stream_id, srtt=0.02, cwnd=14600, inflight=0):
        self.stream_id = stream_id
        self.connection = FakeConn(FakeTcp(srtt, cwnd, inflight))

    def __repr__(self):
        return "FakeStream(%d)" % self.stream_id


# -- stub pool view for assign_transfer ------------------------------------


class FakeCandidate:
    def __init__(self, kind, index, active=0, srtt=float("inf"),
                 cwnd=15000.0, backlog=0.0):
        self.kind = kind
        self.index = index
        self.active = active
        self._srtt = srtt
        self._cwnd = cwnd
        self._backlog = backlog

    def srtt(self):
        return self._srtt

    def cwnd(self):
        return self._cwnd

    def backlog_bytes(self):
        return self._backlog


class FakeView:
    def __init__(self, candidates, typical=None):
        self._candidates = candidates
        self._typical = typical

    def candidates(self):
        return list(self._candidates)

    def typical_srtt(self):
        return self._typical


class FakeTransfer:
    def __init__(self, size=50_000):
        self.size = size


# -- bus attribution over a real coupled group -----------------------------


def run_group_upload(scheduler, size=256 << 10):
    """Upload over a 2-path coupled group; returns the captured events
    plus (payload, received) for integrity checking."""
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    connect_tcpls(sim, topo, client)
    client.join(topo.path(1).client_addr)
    sim.run(until=sim.now + 0.2)
    assert len(client.conns) == 2 and client.conns[1].usable()

    capture = CaptureSink()
    sim.bus.subscribe(capture, categories=("scheduler",))
    received = bytearray()
    done = []

    def on_group_data(group):
        received.extend(group.recv())
        if group.complete:
            done.append(sim.now)

    sessions[0].on_group_data = on_group_data
    group = client.create_coupled_group(client.alive_connections(),
                                        scheduler=scheduler)
    payload = bytes(range(256)) * (size // 256)
    group.send(payload)
    group.close()
    sim.run(until=sim.now + 30)
    assert done, "group upload did not complete"
    assert bytes(received) == payload
    return capture.select(category="scheduler", name="pick")


ALL_BUILTINS = [
    (RoundRobinScheduler, (), "round-robin"),
    (LowestRttScheduler, (), "lowest-rtt"),
    (WeightedScheduler, ([3, 1],), "weighted"),
    (RedundantScheduler, (), "redundant"),
    (PredictivePolicy, (), "predictive"),
]


class TestBusAttribution:
    @pytest.mark.parametrize("cls,args,expected",
                             ALL_BUILTINS,
                             ids=[b[2] for b in ALL_BUILTINS])
    def test_pick_events_carry_policy_name(self, cls, args, expected):
        picks = run_group_upload(cls(*args))
        assert picks, "no scheduler pick events captured"
        assert all(e.data["scheduler"] == expected for e in picks)
        assert all(e.data["candidates"] >= 1 for e in picks)

    def test_redundant_pick_events_list_every_stream(self):
        picks = run_group_upload(RedundantScheduler())
        two_candidate_picks = [e for e in picks
                               if e.data["candidates"] == 2]
        assert two_candidate_picks, "never saw both streams sendable"
        for event in two_candidate_picks:
            assert len(event.data["streams"]) == 2

    def test_single_target_policies_emit_one_stream(self):
        picks = run_group_upload(RoundRobinScheduler())
        assert all(len(e.data["streams"]) == 1 for e in picks)

    def test_legacy_pick_only_scheduler_still_works(self):
        class LegacyScheduler:
            """Pre-policy surface: only ``pick``, no name."""

            def __init__(self):
                self.calls = 0

            def pick(self, streams):
                self.calls += 1
                return streams[self.calls % len(streams)]

        legacy = LegacyScheduler()
        picks = run_group_upload(legacy)
        assert legacy.calls > 0
        assert all(e.data["scheduler"] == "custom" for e in picks)


# -- the replicate capability ----------------------------------------------


class TestReplicateCapability:
    def test_flags(self):
        assert RedundantScheduler.replicate is True
        for cls, args, _name in ALL_BUILTINS:
            if cls is not RedundantScheduler:
                assert cls(*args).replicate is False

    def test_pick_stream_returns_single_stream(self):
        streams = [FakeStream(1), FakeStream(3)]
        picked = RedundantScheduler().pick_stream(streams)
        assert picked is streams[0]

    def test_legacy_pick_returns_all(self):
        streams = [FakeStream(1), FakeStream(3)]
        assert RedundantScheduler().pick(streams) == streams


# -- deficit round robin ----------------------------------------------------


class TestWeightedDrr:
    def test_emitted_ratio_3_to_1(self):
        sched = WeightedScheduler([3, 1])
        streams = [FakeStream(1), FakeStream(3)]
        picks = [sched.pick_stream(streams).stream_id for _ in range(8)]
        assert picks == [1, 1, 1, 3, 1, 1, 1, 3]

    def test_emitted_ratio_2_to_1(self):
        sched = WeightedScheduler([2, 1])
        streams = [FakeStream(1), FakeStream(3)]
        picks = [sched.pick_stream(streams).stream_id for _ in range(6)]
        assert picks == [1, 1, 3, 1, 1, 3]

    def test_credit_keyed_by_identity_survives_churn(self):
        sched = WeightedScheduler([3, 1])
        a, b = FakeStream(1), FakeStream(3)
        # Refill gives a=3, b=1; two picks leave a=1, b=1.
        assert sched.pick_stream([a, b]) is a
        assert sched.pick_stream([a, b]) is a
        # a drops out; b spends ITS earned credit, not a's leftovers.
        assert sched.pick_stream([b]) is b
        assert sched._credit == {3: 0}
        # a's stale credit was pruned: on return the round refills both.
        assert sched.pick_stream([a, b]) is a

    def test_stale_credit_never_resurrects(self):
        sched = WeightedScheduler([5, 1])
        a, b = FakeStream(1), FakeStream(3)
        for _ in range(3):
            sched.pick_stream([a, b])
        assert sched._credit[1] > 0
        # A successor stream re-using the candidate SLOT (but not the
        # id) must not inherit a's balance.
        c = FakeStream(7)
        picked = sched.pick_stream([c, b])
        assert 1 not in sched._credit
        assert picked in (b, c)

    def test_rejects_non_positive_weights(self):
        with pytest.raises(ValueError):
            WeightedScheduler([])
        with pytest.raises(ValueError):
            WeightedScheduler([1, 0])


# -- byte conservation under any policy ------------------------------------


def _policy_instances():
    return [
        RoundRobinScheduler(),
        LowestRttScheduler(),
        WeightedScheduler([3, 1]),
        WeightedScheduler([1, 2, 5]),
        RedundantScheduler(),
        PredictivePolicy(rate_cap_bps=25_000_000),
    ]


class TestByteConservation:
    @settings(max_examples=60, deadline=None)
    @given(
        policy_index=st.integers(min_value=0, max_value=5),
        chunks=st.lists(st.integers(min_value=1, max_value=16384),
                        min_size=1, max_size=40),
        offered=st.lists(
            st.sets(st.integers(min_value=0, max_value=3),
                    min_size=1, max_size=4),
            min_size=1, max_size=40),
    )
    def test_every_chunk_lands_on_exactly_the_picked_streams(
            self, policy_index, chunks, offered):
        """Model the pump: each chunk is offered to the policy over an
        arbitrary live subset of four streams.  Whatever the policy
        does, per-stream byte counts must sum to the bytes pumped
        (times fan-out for a replicating policy), and every pick must
        come from the offered list."""
        policy = _policy_instances()[policy_index]
        streams = [FakeStream(i, srtt=0.01 * (i + 1)) for i in range(4)]
        sent = {s.stream_id: 0 for s in streams}
        total = 0
        for chunk, live in zip(chunks, offered):
            candidates = [streams[i] for i in sorted(live)]
            if getattr(policy, "replicate", False):
                targets = list(candidates)
            else:
                targets = [policy.pick_stream(
                    candidates, RecordContext(now=0.0))]
            for target in targets:
                assert target in candidates
                sent[target.stream_id] += chunk
            total += chunk * len(targets)
        assert sum(sent.values()) == total


# -- assign_transfer (decision point 2) ------------------------------------


class TestAssignTransfer:
    def test_default_prefers_reuse_then_new_then_least_loaded(self):
        reuse = FakeCandidate("reuse", 0)
        new = FakeCandidate("new", 2)
        busy = FakeCandidate("share", 1, active=3)
        idle_ish = FakeCandidate("share", 3, active=1)
        policy = LowestRttScheduler()     # inherits the default? no --
        # LowestRtt overrides; use the base class explicitly.
        base = Policy()
        assert base.assign_transfer(
            FakeTransfer(), FakeView([busy, new, reuse])) is reuse
        assert base.assign_transfer(
            FakeTransfer(), FakeView([busy, new])) is new
        assert base.assign_transfer(
            FakeTransfer(), FakeView([busy, idle_ish])) is idle_ish
        with pytest.raises(ValueError):
            base.assign_transfer(FakeTransfer(), FakeView([]))
        assert policy is not base    # (guard against accidental reuse)

    def test_round_robin_rotates_over_candidates(self):
        policy = RoundRobinScheduler()
        a = FakeCandidate("reuse", 0)
        b = FakeCandidate("share", 1, active=1)
        picks = [policy.assign_transfer(FakeTransfer(), FakeView([a, b]))
                 for _ in range(4)]
        assert picks == [a, b, a, b]

    def test_lowest_rtt_prefers_measured_minimum(self):
        policy = LowestRttScheduler()
        fast = FakeCandidate("share", 0, active=1, srtt=0.01)
        slow = FakeCandidate("reuse", 1, srtt=0.05)
        fresh = FakeCandidate("new", 2)
        assert policy.assign_transfer(
            FakeTransfer(), FakeView([slow, fast, fresh])) is fast

    def test_predictive_picks_earliest_estimated_finish(self):
        policy = PredictivePolicy(rate_cap_bps=25_000_000)
        fast = FakeCandidate("share", 0, active=1, srtt=0.02,
                             cwnd=100_000.0, backlog=0.0)
        loaded = FakeCandidate("share", 1, active=1, srtt=0.02,
                               cwnd=100_000.0, backlog=5_000_000.0)
        choice = policy.assign_transfer(
            FakeTransfer(200_000), FakeView([loaded, fast]))
        assert choice is fast
        assert len(policy.last_estimates) == 2

    def test_predictive_models_new_connection_via_typical_srtt(self):
        policy = PredictivePolicy(rate_cap_bps=25_000_000)
        # A deeply backlogged existing connection vs. a fresh one on a
        # 20 ms path: opening wins despite the handshake penalty.
        swamped = FakeCandidate("share", 0, active=4, srtt=0.02,
                                cwnd=30_000.0, backlog=50_000_000.0)
        fresh = FakeCandidate("new", 1)
        choice = policy.assign_transfer(
            FakeTransfer(40_000), FakeView([swamped, fresh],
                                           typical=0.02))
        assert choice is fresh

    def test_predictive_falls_back_when_nothing_measured(self):
        policy = PredictivePolicy()
        fresh = FakeCandidate("new", 0)
        # No typical SRTT either: the base reuse>new>share order rules.
        choice = policy.assign_transfer(
            FakeTransfer(), FakeView([fresh], typical=None))
        assert choice is fresh


class TestPredictiveEstimator:
    def test_estimate_scales_with_size(self):
        policy = PredictivePolicy(rate_cap_bps=25_000_000)
        small = policy.estimate_completion(10_000, 0.02, 14600)
        large = policy.estimate_completion(1_000_000, 0.02, 14600)
        assert 0 < small < large

    def test_backlog_delays_completion(self):
        policy = PredictivePolicy(rate_cap_bps=25_000_000)
        clear = policy.estimate_completion(100_000, 0.02, 14600)
        queued = policy.estimate_completion(100_000, 0.02, 14600,
                                            backlog=1_000_000)
        assert queued > clear

    def test_unmeasured_path_is_inf(self):
        policy = PredictivePolicy()
        assert policy.estimate_completion(1000, None, 14600) \
            == float("inf")
        assert policy.estimate_completion(1000, float("inf"), 14600) \
            == float("inf")

    def test_horizon_bounds_the_forked_clock(self):
        policy = PredictivePolicy(rate_cap_bps=1000, horizon=5.0)
        assert policy.estimate_completion(10 << 20, 0.5, 1500.0) \
            == float("inf")
