"""Per-stream IV derivation (Fig. 2) and nonce-uniqueness properties."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.crypto_context import (
    StreamCryptoContext,
    derive_stream_iv,
    record_nonce,
)
from repro.crypto.aead import NullTagCipher

BASE_IV = bytes(range(12))


def test_stream_zero_iv_is_the_handshake_iv():
    """Stream 0 is 'equivalent to the cryptographic context derived
    directly from the handshake' (Sec. 3.3.1)."""
    assert derive_stream_iv(BASE_IV, 0) == BASE_IV


def test_left_32_bits_summed():
    iv = derive_stream_iv(BASE_IV, 5)
    (left_base,) = struct.unpack_from("!I", BASE_IV, 0)
    (left,) = struct.unpack_from("!I", iv, 0)
    assert left == (left_base + 5) & 0xFFFFFFFF
    assert iv[4:] == BASE_IV[4:]  # right bits untouched by stream id


def test_left_sum_wraps_mod_2_32():
    iv = derive_stream_iv(b"\xff\xff\xff\xff" + bytes(8), 1)
    assert iv[:4] == b"\x00\x00\x00\x00"


def test_right_64_bits_xored_with_sequence():
    iv = derive_stream_iv(BASE_IV, 3)
    nonce = record_nonce(iv, 0x0102)
    (right_iv,) = struct.unpack_from("!Q", iv, 4)
    (right_nonce,) = struct.unpack_from("!Q", nonce, 4)
    assert right_nonce == right_iv ^ 0x0102
    assert nonce[:4] == iv[:4]


def test_iv_length_enforced():
    with pytest.raises(ValueError):
        derive_stream_iv(b"short", 1)


@settings(max_examples=50)
@given(st.sets(st.integers(0, 2**31), min_size=2, max_size=20),
       st.sets(st.integers(0, 2**20), min_size=2, max_size=20))
def test_property_global_nonce_uniqueness(stream_ids, seqs):
    """Every (stream, record) pair must map to a unique nonce -- the
    AEAD-safety requirement the Fig. 2 construction guarantees."""
    nonces = set()
    for stream_id in stream_ids:
        iv = derive_stream_iv(BASE_IV, stream_id)
        for seq in seqs:
            nonces.add(record_nonce(iv, seq))
    assert len(nonces) == len(stream_ids) * len(seqs)


class TestStreamCryptoContext:
    def make(self, stream_id):
        return StreamCryptoContext(NullTagCipher(b"K" * 32), BASE_IV,
                                   stream_id)

    def test_seal_open_at_sequence(self):
        tx, rx = self.make(7), self.make(7)
        records = [tx.seal(b"rec%d" % i) for i in range(3)]
        for i, record in enumerate(records):
            assert rx.open_at(record, i) == b"rec%d" % i

    def test_wrong_stream_fails_tag(self):
        tx = self.make(1)
        rx_other = self.make(3)
        record = tx.seal(b"data")
        assert not rx_other.verify_at(record, 0)

    def test_wrong_sequence_fails_tag(self):
        tx, rx = self.make(1), self.make(1)
        record = tx.seal(b"data")
        assert not rx.verify_at(record, 1)
        assert rx.verify_at(record, 0)

    def test_trial_statistics(self):
        tx, rx = self.make(1), self.make(1)
        record = tx.seal(b"data")
        rx.verify_at(record, 5)
        rx.verify_at(record, 0)
        assert rx.tag_trials == 2
        assert rx.tag_hits == 1

    def test_try_open(self):
        tx, rx = self.make(2), self.make(2)
        record = tx.seal(b"xyz")
        assert rx.try_open(record, 1) is None
        assert rx.try_open(record, 0) == b"xyz"

    def test_ciphertext_is_connection_independent(self):
        """Fig. 4: stored ciphertext can be replayed as-is after a
        failover because the nonce depends only on (stream, seq)."""
        tx = self.make(9)
        record = tx.seal(b"replayable")
        rx_a, rx_b = self.make(9), self.make(9)
        assert rx_a.open_at(record, 0) == b"replayable"
        assert rx_b.open_at(record, 0) == b"replayable"
